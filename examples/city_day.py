#!/usr/bin/env python3
"""A day in the city: a diurnal 10k-client demand scenario, end to end.

Loads the ``examples/population.json`` demand scenario — a full
simulated day of collaborative VR sessions arriving on a diurnal curve
that peaks in the evening, spiked by a flash crowd, with mixed apps,
mixed 4G/5G/Wi-Fi links, and per-client churn — expands it into
thousands of event-driven sessions, and streams every client-session
through the sharded batch executor.  Memory stays bounded: each result
folds into order-independent streaming aggregates and is dropped, so
the same report comes back bit-identical at any shard count.

The optional scale factor multiplies the arrival rate, keeping the
diurnal shape while shrinking the city: the default 0.02 runs a ~2%
day in a few seconds (what CI's examples smoke runs), and 1.0 is the
full 10,000+ client-session day:

    python examples/city_day.py [scale] [shards]
"""

import sys
from dataclasses import replace

from repro.analysis import format_table
from repro.sim.demand import DemandScenario, run_population
from repro.sim.runner import BatchEngine


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.02
    shards = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    scenario = DemandScenario.from_json("examples/population.json")
    if scale != 1.0:
        scenario = replace(
            scenario,
            arrivals=replace(
                scenario.arrivals,
                rate_per_min=scenario.arrivals.rate_per_min * scale,
            ),
        )
    print(
        f"Expanding a {scale:g}x day of {scenario.name!r} "
        f"(mean {scenario.arrivals.rate_per_min:.3f} sessions/min, "
        f"{len(scenario.flash_crowds)} flash crowd(s)) ..."
    )
    engine = BatchEngine(shards=shards, shard_mode="process")
    report = run_population(scenario, seed=7, engine=engine)
    print(
        f"{report['sessions']} sessions -> {report['clients']} clients -> "
        f"{report['client_sessions']} client-sessions across "
        f"{len(report['policies'])} policies"
    )
    rows = []
    for policy, r in report["policies"].items():
        slo = r["slo"]
        attainment = (
            "-"
            if slo["measured"] == 0
            else f"{100.0 * slo['met'] / slo['measured']:.1f}%"
        )
        rows.append(
            [
                policy,
                r["executed"],
                f"{r['latency_ms']['mean']:.2f}",
                f"{r['latency_ms']['p99']:.2f}",
                f"{r['fps']['mean']:.1f}",
                f"{r['client_p99_fps']['p50']:.1f}",
                f"{slo['met']}/{slo['measured']}",
                attainment,
            ]
        )
    print(
        format_table(
            [
                "policy", "executed", "mean lat (ms)", "p99 lat (ms)",
                "mean FPS", "median client p99", "SLO met", "attainment",
            ],
            rows,
            title=(
                f"city-day @ {scale:g}x — fleet-wide SLO attainment "
                f"(p99-FPS floor {report['slo_p99_fps_floor']:g})"
            ),
        )
    )


if __name__ == "__main__":
    main()
