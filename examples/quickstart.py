#!/usr/bin/env python3
"""Quickstart: run Q-VR against every baseline on one game.

Simulates all seven system designs of the paper on Doom3-H under the
default platform (500 MHz mobile GPU, Wi-Fi), then prints the end-to-end
latency, frame rate, adapted eccentricity and downlink payload of each —
a miniature Fig. 12 for a single title.

Run:
    python examples/quickstart.py [app-name]
"""

import sys

from repro import run_comparison, speedup_over
from repro.analysis import format_table


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "Doom3-H"
    print(f"Simulating all system designs on {app} (500 MHz, Wi-Fi)...")
    results = run_comparison(
        app,
        systems=("local", "remote", "static", "ffr", "dfr", "sw-qvr", "qvr"),
        n_frames=240,
    )

    rows = []
    for name, result in results.items():
        rows.append(
            [
                name,
                result.mean_latency_ms,
                f"{speedup_over(results, name):.2f}x",
                result.measured_fps,
                result.mean_e1_deg,
                result.mean_transmitted_bytes / 1e3,
                result.meets_mtp,
                result.meets_target_fps,
            ]
        )
    print()
    print(
        format_table(
            [
                "design", "latency (ms)", "speedup", "FPS",
                "e1 (deg)", "downlink (KB)", "<25ms MTP", ">=90 FPS",
            ],
            rows,
            title=f"Q-VR reproduction — {app}",
        )
    )
    qvr = results["qvr"]
    print(
        f"\nQ-VR settles at e1 = {qvr.mean_e1_deg:.1f} deg with a "
        f"T_remote/T_local balance ratio of {qvr.mean_latency_ratio:.2f}."
    )


if __name__ == "__main__":
    main()
