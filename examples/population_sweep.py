#!/usr/bin/env python3
"""Population sweep: 1,000+ runs through the sharded streaming executor.

Expands a population-scale parameter grid — every system design of the
paper, all seven Table 3 titles, and a couple dozen random seeds — into
1,029 run specs, executes them through the sharded work-stealing
executor, and aggregates per-system latency and frame-rate statistics
*while results stream past*.  No full-sweep result list ever exists:
each ``(spec, result)`` pair is folded into O(1) mergeable summaries
(:class:`~repro.sim.metrics.StreamSummary`) and dropped, so peak memory
is one in-flight result regardless of population size.  The spill
stream on disk doubles as a resumable checkpoint: re-running against
the same ``stream_dir`` would skip every completed shard.

Run:
    python examples/population_sweep.py [n_seeds]
"""

import sys
import tempfile

from repro.analysis import format_table
from repro.sim.metrics import StreamSummary
from repro.sim.runner import BatchEngine, Sweep
from repro.workloads.apps import TABLE3_ORDER

SYSTEMS = ("local", "remote", "static", "ffr", "dfr", "sw-qvr", "qvr")


def main() -> None:
    n_seeds = int(sys.argv[1]) if len(sys.argv) > 1 else 21
    sweep = Sweep(
        systems=SYSTEMS,
        apps=TABLE3_ORDER,
        seeds=tuple(range(n_seeds)),
        n_frames=30,
    )
    n_specs = len(sweep.specs())
    print(
        f"Streaming {n_specs} runs ({len(SYSTEMS)} systems x "
        f"{len(TABLE3_ORDER)} apps x {n_seeds} seeds) through 16 shards..."
    )

    latency = {name: StreamSummary() for name in SYSTEMS}
    fps = {name: StreamSummary() for name in SYSTEMS}
    with tempfile.TemporaryDirectory(prefix="qvr-population-") as stream_dir:
        engine = BatchEngine(shards=16, shard_mode="process", stream_dir=stream_dir)
        for spec, result in engine.stream_sweep(sweep):
            result.fold_into(latency=latency[spec.system], fps=fps[spec.system])
        stats = engine.last_shard_stats

    rows = []
    for name in SYSTEMS:
        lat, rate = latency[name].row(), fps[name].row()
        rows.append(
            [
                name,
                lat["count"],
                f"{lat['mean']:.1f}",
                f"{lat['p50']:.1f}",
                f"{lat['p90']:.1f}",
                f"{lat['p99']:.1f}",
                f"{rate['mean']:.0f}",
                f"{rate['p99']:.0f}",
            ]
        )
    print()
    print(
        format_table(
            [
                "design", "frames", "lat mean", "lat p50",
                "lat p90", "lat p99", "FPS mean", "FPS p99",
            ],
            rows,
            title=f"Population sweep — {n_specs} runs, streamed",
        )
    )
    print(
        f"\nExecutor: {stats.shards} shards, {stats.workers or 1} worker(s), "
        f"{stats.executed} specs executed, {stats.steals} steals, "
        f"{stats.requeues} requeues."
    )


if __name__ == "__main__":
    main()
