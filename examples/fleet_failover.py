#!/usr/bin/env python3
"""Render-fleet failover: migration vs naive re-queue after a server dies.

The remote tier of a collaborative session is not one fixed box but an
elastic, failure-prone fleet.  This example builds a two-server
:class:`repro.sim.fleet.RenderFleet` (a: 2.0, b: 1.0 client-equivalents,
least-loaded placement), lets a heavy client land alone on server ``b``,
then fails ``b`` mid-session and compares the two failover modes:

* ``migrate`` — the displaced client is re-seated on the surviving
  server, paying a migration penalty (a starvation window spliced into
  its share schedule while state transfers), then keeps rendering;
* ``requeue`` — the naive baseline: the client drops to the back of the
  admission queue and stalls at the starvation share, waiting for a
  re-planning event that never comes.

The displaced client's p99 tail frame rate inside the failure window
tells the story; the incumbent pays a small contention tax for hosting
the refugee.  The same scenario runs from the shell via::

    python -m repro scenarios --clients Doom3-L GRID \
        --fleet examples/fleet.json --events examples/fleet_events.json

Run:
    python examples/fleet_failover.py [frames]
"""

import sys

from repro import constants
from repro.analysis import format_table
from repro.analysis.experiments import default_failover_session
from repro.sim.session import simulate_session


def main() -> None:
    n_frames = int(sys.argv[1]) if len(sys.argv) > 1 else 180
    duration_ms = n_frames * constants.FRAME_BUDGET_MS
    fail_ms = 0.4 * duration_ms
    window = (fail_ms, fail_ms + 0.4 * duration_ms)

    for mode in ("least-loaded", "requeue"):
        session = default_failover_session(n_frames, mode=mode)
        result = simulate_session(session, n_frames=n_frames)
        timeline = result.timeline

        print(
            format_table(
                ["epoch", "window (ms)", "server", "load/cap", "clients"],
                [
                    [
                        index,
                        f"{epoch.start_ms:.0f}-{epoch.end_ms:.0f}",
                        w.server,
                        f"{w.load:g}/{w.capacity:g}",
                        ",".join(str(i) for i in w.clients) or "-",
                    ]
                    for index, epoch in enumerate(timeline.epochs)
                    for w in epoch.servers
                ],
                title=f"{mode}: server b fails at {fail_ms:.0f} ms",
            )
        )

        rows = []
        for client in timeline.clients:
            run = result.result_for(client.index)
            if run is None:
                continue
            stats = result.client_window(client.index, *window)
            rows.append(
                [
                    client.index,
                    client.spec.app,
                    "->".join(
                        name if name is not None else "~"
                        for _, name in client.servers
                    ),
                    client.migrations,
                    f"{run.measured_fps:.1f}",
                    f"{stats.p99_fps:.1f}" if stats is not None else "-",
                ]
            )
        print(
            format_table(
                ["client", "app", "servers", "migr", "FPS", "window p99"],
                rows,
            )
        )
        print()


if __name__ == "__main__":
    main()
