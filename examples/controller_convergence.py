#!/usr/bin/env python3
"""Controller convergence: Fig. 14 as an ASCII trace.

Runs Q-VR from a cold start (e1 = 5 degrees) and plots the per-frame
T_remote/T_local latency ratio and eccentricity as ASCII charts, showing
the LIWC controller walking the system from network-bound imbalance to
the balanced operating point.  A software-adaptive controller is run on
the same frames for comparison.

Run:
    python examples/controller_convergence.py [app-name] [frames]
"""

import sys

from repro import get_app, make_system


def ascii_plot(values, height=12, width=72, label=""):
    """Render a numeric series as a crude ASCII line chart."""
    if len(values) > width:
        stride = len(values) / width
        values = [values[int(i * stride)] for i in range(width)]
    finite = [v for v in values if v == v and v != float("inf")]
    lo, hi = min(finite), max(finite)
    span = (hi - lo) or 1.0
    rows = [[" "] * len(values) for _ in range(height)]
    for x, v in enumerate(values):
        if v != v or v == float("inf"):
            continue
        y = int((v - lo) / span * (height - 1))
        rows[height - 1 - y][x] = "*"
    lines = [f"{label}  (min {lo:.2f}, max {hi:.2f})"]
    for row in rows:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * len(values))
    return "\n".join(lines)


def main() -> None:
    app_name = sys.argv[1] if len(sys.argv) > 1 else "GRID"
    frames = int(sys.argv[2]) if len(sys.argv) > 2 else 300
    app = get_app(app_name)

    qvr = make_system("qvr", app).run(n_frames=frames, warmup_frames=0)
    sw = make_system("sw-qvr", app).run(n_frames=frames, warmup_frames=0)

    ratios = [min(r, 8.0) for r in qvr.latency_ratios()]
    print(ascii_plot(ratios, label=f"{app.name}: Q-VR latency ratio T_remote/T_local"))
    print()
    print(ascii_plot([r.e1_deg for r in qvr.records], label="Q-VR eccentricity e1 (deg)"))
    print()
    print(
        f"Q-VR:    steady ratio {qvr.mean_latency_ratio:.2f}, "
        f"e1 {qvr.mean_e1_deg:.1f} deg, {qvr.measured_fps:.0f} FPS, "
        f"{qvr.mean_latency_ms:.1f} ms"
    )
    print(
        f"SW-QVR:  steady ratio {sw.mean_latency_ratio:.2f}, "
        f"e1 {sw.mean_e1_deg:.1f} deg, {sw.measured_fps:.0f} FPS, "
        f"{sw.mean_latency_ms:.1f} ms"
    )
    print(
        f"\nHardware prediction sustains {qvr.measured_fps / sw.measured_fps:.1f}x "
        "the frame rate of the software implementation on the same workload."
    )


if __name__ == "__main__":
    main()
