#!/usr/bin/env python3
"""Energy profile: where does the mobile system's energy go?

Reproduces the Fig. 15 methodology for one title: runs the local baseline
and Q-VR, breaks mobile system energy into GPU / radio / decoder /
LIWC / UCA components, and reports the normalised saving across the three
network classes.

Run:
    python examples/energy_profile.py [app-name]
"""

import sys

from repro import PlatformConfig, get_app, make_system
from repro.analysis import format_table
from repro.energy import EnergyAccountant
from repro.network.conditions import ALL_CONDITIONS


def main() -> None:
    app_name = sys.argv[1] if len(sys.argv) > 1 else "Wolf"
    app = get_app(app_name)
    accountant = EnergyAccountant()

    baseline = make_system("local", app).run(n_frames=240)
    base = accountant.breakdown(baseline, 500.0, "Wi-Fi")
    print(
        f"{app.name} local baseline: {base.total_mj:.1f} mJ/frame "
        f"(GPU {base.gpu_mj:.1f} mJ)"
    )

    rows = []
    for conditions in ALL_CONDITIONS:
        platform = PlatformConfig(network=conditions)
        result = make_system("qvr", app, platform).run(n_frames=240)
        breakdown = accountant.breakdown(
            result, 500.0, conditions.name, has_liwc=True, has_uca=True
        )
        rows.append(
            [
                conditions.name,
                breakdown.gpu_mj,
                breakdown.radio_mj,
                breakdown.decoder_mj,
                breakdown.uca_mj + breakdown.liwc_mj,
                breakdown.total_mj,
                breakdown.total_mj / base.total_mj,
            ]
        )
    print()
    print(
        format_table(
            [
                "network", "GPU mJ", "radio mJ", "decoder mJ",
                "LIWC+UCA mJ", "total mJ", "vs local",
            ],
            rows,
            title=f"Q-VR per-frame energy — {app.name}",
        )
    )
    print(
        "\nThe GPU only shades the fovea, so its energy collapses; the radio "
        "cost it buys back is far smaller (the Fig. 15 effect)."
    )


if __name__ == "__main__":
    main()
