#!/usr/bin/env python3
"""Network adaptation: watch Q-VR re-balance as the link changes.

The paper's Table 4 shows that the best eccentricity depends on the
network: slow links push work onto the local GPU (big fovea), fast links
pull it to the server (small fovea).  This example runs one title across
Wi-Fi, 4G LTE and Early 5G and reports where the controller settles,
its balance quality, and the resulting latency/FPS — a single-app slice
of Table 4.

Run:
    python examples/network_adaptation.py [app-name]
"""

import sys

from repro import PlatformConfig, get_app, make_system
from repro.analysis import format_table
from repro.network.conditions import ALL_CONDITIONS


def main() -> None:
    app_name = sys.argv[1] if len(sys.argv) > 1 else "HL2-H"
    app = get_app(app_name)
    rows = []
    for conditions in ALL_CONDITIONS:
        platform = PlatformConfig(network=conditions)
        result = make_system("qvr", app, platform).run(n_frames=240)
        rows.append(
            [
                conditions.name,
                f"{conditions.throughput_mbps:.0f} Mbps",
                result.mean_e1_deg,
                result.mean_latency_ratio,
                result.mean_latency_ms,
                result.measured_fps,
                result.mean_transmitted_bytes / 1e3,
                result.meets_target_fps,
            ]
        )
    print(
        format_table(
            [
                "network", "nominal", "e1 (deg)", "balance ratio",
                "latency (ms)", "FPS", "downlink (KB)", ">=90 FPS",
            ],
            rows,
            title=f"Q-VR network adaptation — {app.name}",
        )
    )
    print(
        "\nSlower links grow the local fovea (more rendering on the SoC); "
        "faster links shrink it (more offload) — the Table 4 behaviour."
    )


if __name__ == "__main__":
    main()
