#!/usr/bin/env python3
"""Multi-user deployment: Q-VR clients sharing a server and a link.

The paper's opening promise is planet-scale VR for "users around the
world, regardless of their hardware and network conditions".  This example
scales a shared edge deployment from 1 to 6 co-located Q-VR clients and
shows how each client's LIWC independently re-balances as its share of the
server and downlink shrinks: fovea grow, latencies rise, and the number of
clients holding 90 Hz falls.

Run:
    python examples/multi_user.py [app-name]
"""

import sys

from repro import PlatformConfig
from repro.analysis import format_table
from repro.sim.multiuser import MultiUserScenario, simulate_shared_infrastructure


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "HL2-L"
    rows = []
    for n_clients in (1, 2, 4, 6):
        scenario = MultiUserScenario(apps=(app,) * n_clients, platform=PlatformConfig())
        result = simulate_shared_infrastructure(scenario, n_frames=150)
        rows.append(
            [
                n_clients,
                result.mean_e1_deg,
                result.mean_latency_ms,
                result.mean_fps,
                f"{result.clients_meeting_fps}/{n_clients}",
            ]
        )
    print(
        format_table(
            ["clients", "mean e1 (deg)", "latency (ms)", "FPS/client", ">=90 FPS"],
            rows,
            title=f"Shared-infrastructure scaling — {app} per client",
        )
    )
    print(
        "\nEach client's controller independently migrates work onto its own "
        "SoC as the shared server/link saturates — Q-VR's per-user "
        "adaptation is what makes the shared deployment degrade gracefully."
    )


if __name__ == "__main__":
    main()
