#!/usr/bin/env python3
"""Perception survey: why adaptive fovea sizing is imperceptible.

Reproduces the Sec. 3.1 image-quality survey *as a constraint check*: for
eccentricities from 40 down to 5 degrees it builds the adaptive partition
plan, verifies the MAR sampling constraint per layer, and prints the
mean-opinion-style quality score — flat at the ceiling while the
constraint holds, exactly the survey's finding.  It then shows what a
constraint-violating plan (periphery over-reduced beyond the MAR bound)
would score.

Run:
    python examples/perception_survey.py
"""

from dataclasses import replace

from repro import DisplayGeometry, FoveationModel
from repro.analysis import format_table
from repro.core.perception import check_plan, quality_score


def main() -> None:
    model = FoveationModel(DisplayGeometry(1920, 2160))
    rows = []
    for e1 in (40, 35, 30, 25, 20, 15, 10, 5):
        plan = model.plan(float(e1))
        verdict = check_plan(model, plan)
        rows.append(
            [
                e1,
                plan.e2_deg,
                plan.middle_scale,
                plan.outer_scale,
                verdict.passes,
                quality_score(model, plan),
            ]
        )
    print(
        format_table(
            ["e1 (deg)", "*e2 (deg)", "s_middle", "s_outer", "MAR ok", "score /5"],
            rows,
            title="Sec. 3.1 survey — adaptive plans under the MAR constraint",
        )
    )

    plan = model.plan(15.0)
    violating = replace(plan, middle_scale=plan.middle_scale * 6)
    print(
        f"\nOver-reduced periphery (6x beyond MAR): score "
        f"{quality_score(model, violating):.1f}/5 — participants would notice."
    )
    print(
        "While the MAR constraint holds, every eccentricity scores the "
        "ceiling: the survey's 'no visible difference' result."
    )


if __name__ == "__main__":
    main()
