#!/usr/bin/env python3
"""Session churn: clients joining, queueing, and starting late.

Collaborative VR sessions are dynamic: clients join mid-session, leave
early, and roam between links.  This example builds an event-driven
:class:`repro.sim.session.Session` — two incumbents filling a
two-client server in queue mode, a third client joining mid-session and
waiting for the capacity a departing incumbent frees — and shows how
the server re-plans at every event: the joiner genuinely *starts late*
(nonzero start, fewer frames) instead of sitting out, and deadline
scheduling shields the heavy incumbent's tail frame rate through the
contention window better than fair sharing.

Run:
    python examples/session_churn.py [frames]
"""

import sys

from repro import constants
from repro.analysis import format_table
from repro.analysis.experiments import default_churn_session
from repro.sim.session import simulate_session


def main() -> None:
    n_frames = int(sys.argv[1]) if len(sys.argv) > 1 else 150
    duration_ms = n_frames * constants.FRAME_BUDGET_MS

    for policy in ("fair-share", "deadline"):
        session = default_churn_session(n_frames, policy=policy)
        result = simulate_session(session, n_frames=n_frames)
        timeline = result.timeline

        epoch_rows = []
        for index, epoch in enumerate(timeline.epochs):
            epoch_rows.append(
                [
                    index,
                    f"{epoch.start_ms:.0f}-{epoch.end_ms:.0f}",
                    ",".join(str(i) for i in epoch.serviced),
                    ",".join(str(i) for i in epoch.queued) or "-",
                ]
            )
        print(
            format_table(
                ["epoch", "window (ms)", "serviced", "queued"],
                epoch_rows,
                title=f"{policy}: {len(timeline.epochs)} epochs over "
                f"{duration_ms:.0f} ms",
            )
        )

        rows = []
        for client in timeline.clients:
            run = result.result_for(client.index)
            if run is None:
                rows.append([client.index, client.spec.app, "-", "-", "-", "-"])
                continue
            rows.append(
                [
                    client.index,
                    client.spec.app,
                    f"{client.start_ms:.0f}",
                    f"{client.queued_ms:.0f}",
                    len(run.records),
                    f"{run.measured_fps:.1f}",
                ]
            )
        print(
            format_table(
                ["client", "app", "start (ms)", "queued (ms)", "frames", "FPS"],
                rows,
            )
        )
        print()


if __name__ == "__main__":
    main()
