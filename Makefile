# Convenience targets mirroring the CI gates.

.PHONY: lint test

# Style (ruff) + determinism/hash-integrity (repro lint) in one gate.
lint:
	./scripts/lint.sh

# The tier-1 suite, exactly as CI runs it.
test:
	PYTHONPATH=src python -m pytest -x -q
