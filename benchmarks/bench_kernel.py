"""Frame-kernel microbenchmark: scalar oracle vs vectorized kernels.

Times every system design (all seven, including ``remote``, which the
Fig. 12 sweep of ``bench_batch.py`` omits) across the Table 3 titles on
both execution engines, one spec at a time in one process, and writes a
``BENCH_kernel.json`` artifact:

* per-system scalar and vectorized wall time, per-spec means, and the
  per-system speedup — the breakdown that shows where kernel time goes
  (the software controller's direct lattice sweeps make ``sw-qvr`` the
  slowest vectorized system by far);
* aggregate ``kernel_speedup`` — total scalar time over total vectorized
  time, the same headline ratio ``bench_batch.py`` embeds in
  ``BENCH_batch.json`` for the regression gate.

Every timed pair is also checked for bit-identical results, so the
benchmark doubles as a quick parity smoke test.

Usage::

    PYTHONPATH=src python benchmarks/bench_kernel.py --frames 120
"""

from __future__ import annotations

import argparse
import json
import pickle
import sys
import time
from dataclasses import replace
from pathlib import Path

from repro.sim.runner import RunSpec, Sweep, run
from repro.sim.systems import SYSTEM_NAMES
from repro.workloads.apps import TABLE3_ORDER


def bench(n_frames: int, seed: int) -> dict:
    """Time both engines per system over the Table 3 titles."""
    sweep = Sweep(
        systems=SYSTEM_NAMES, apps=TABLE3_ORDER, seeds=(seed,), n_frames=n_frames
    )
    by_system: dict[str, list[RunSpec]] = {name: [] for name in SYSTEM_NAMES}
    for spec in sweep.specs():
        by_system[spec.system].append(spec)

    per_system: dict[str, dict] = {}
    identical = True
    total_scalar_s = 0.0
    total_vector_s = 0.0
    for system, specs in by_system.items():
        start = time.perf_counter()
        scalar = [run(replace(spec, engine="scalar")) for spec in specs]
        scalar_s = time.perf_counter() - start

        start = time.perf_counter()
        vector = [run(replace(spec, engine="vector")) for spec in specs]
        vector_s = time.perf_counter() - start

        identical = identical and all(
            pickle.dumps(a) == pickle.dumps(b) for a, b in zip(scalar, vector)
        )
        total_scalar_s += scalar_s
        total_vector_s += vector_s
        per_system[system] = {
            "n_specs": len(specs),
            "scalar_s": round(scalar_s, 3),
            "vector_s": round(vector_s, 3),
            "scalar_ms_per_spec": round(1000.0 * scalar_s / len(specs), 2),
            "vector_ms_per_spec": round(1000.0 * vector_s / len(specs), 2),
            "speedup": round(scalar_s / vector_s, 2),
        }

    return {
        "sweep": {
            "systems": list(SYSTEM_NAMES),
            "apps": list(TABLE3_ORDER),
            "n_specs": len(sweep),
            "n_frames": n_frames,
            "seed": seed,
        },
        "per_system": per_system,
        "scalar_serial_s": round(total_scalar_s, 3),
        "vector_serial_s": round(total_vector_s, 3),
        "kernel_speedup": round(total_scalar_s / total_vector_s, 2),
        "bit_identical": identical,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--frames", type=int, default=120)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default="BENCH_kernel.json")
    args = parser.parse_args(argv)

    report = bench(n_frames=args.frames, seed=args.seed)
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    if not report["bit_identical"]:
        print("ERROR: scalar and vectorized results diverged", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
