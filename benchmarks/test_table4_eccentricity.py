"""Table 4: best eccentricity under different hardware/network conditions.

Regenerates the {300, 400, 500 MHz} x {Wi-Fi, 4G LTE, Early 5G} x 7-app
sweep of steady-state eccentricities, flagging configurations that miss
the 90 Hz requirement (the paper's underlined cells).  The asserted
shapes: eccentricities stay within [5, 90] degrees, lighter titles get
larger fovea than heavier ones, slower networks push work local (larger
e1), faster networks pull work remote (smaller e1), and faster GPUs grow
the fovea.
"""

import numpy as np

from repro import constants
from repro.analysis.experiments import table4_eccentricity
from repro.analysis.report import format_table
from repro.workloads.apps import APPS, TABLE3_ORDER


def test_table4(paper_benchmark, batch_engine):
    cells = paper_benchmark(table4_eccentricity, 200, engine=batch_engine)

    by_config: dict[tuple[float, str], dict[str, object]] = {}
    for cell in cells:
        row = by_config.setdefault((cell.frequency_mhz, cell.network), {})
        marker = "" if cell.meets_fps else "*"
        row[cell.app] = f"{cell.mean_e1_deg:.1f}{marker}"

    print()
    print(
        format_table(
            ["Freq", "Network"] + [APPS[a].short_name for a in TABLE3_ORDER],
            [
                [f"{freq:.0f} MHz", network] + [row[a] for a in TABLE3_ORDER]
                for (freq, network), row in by_config.items()
            ],
            title="Table 4 — steady-state e1 (degrees); * = misses 90 Hz",
        )
    )

    lookup = {
        (c.frequency_mhz, c.network, c.app): c.mean_e1_deg for c in cells
    }
    for cell in cells:
        assert (
            constants.MIN_ECCENTRICITY_DEG - 1e-6
            <= cell.mean_e1_deg
            <= constants.MAX_ECCENTRICITY_DEG + 1e-6
        )

    for freq in (500.0, 400.0, 300.0):
        for net in ("Wi-Fi", "4G LTE", "Early 5G"):
            # Lighter scenes keep a bigger fovea than the heaviest scene.
            assert lookup[(freq, net, "Doom3-L")] > lookup[(freq, net, "GRID")]
        # Slower network -> larger fovea; faster network -> smaller fovea.
        for app in TABLE3_ORDER:
            assert lookup[(freq, "4G LTE", app)] >= lookup[(freq, "Wi-Fi", app)] - 2.0
            assert lookup[(freq, "Early 5G", app)] <= lookup[(freq, "Wi-Fi", app)] + 2.0
    # Faster GPU -> larger fovea (averaged across apps, per network).
    for net in ("Wi-Fi", "4G LTE", "Early 5G"):
        fast = np.mean([lookup[(500.0, net, a)] for a in TABLE3_ORDER])
        slow = np.mean([lookup[(300.0, net, a)] for a in TABLE3_ORDER])
        assert fast > slow
