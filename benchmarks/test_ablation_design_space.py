"""Ablation: design-space sensitivity of the DESIGN.md-called-out choices.

Sweeps three design knobs the paper fixes by construction and DESIGN.md
flags for ablation:

* streaming chunk count (Sec. 3.2 parallel streaming) — more chunks must
  monotonically reduce the remote path latency toward the bottleneck;
* LIWC reward alpha — convergence must hold across a reasonable range;
* remote server scale (the OO-VR-style MCM GPU count) — the remote render
  stage must shrink with more chiplets, with diminishing returns.
"""


from repro.analysis.report import format_table
from repro.codec.stream import pipelined_latency_ms
from repro.core.liwc import LIWCConfig
from repro.core.controllers import LIWCController
from repro.gpu.config import RemoteServerConfig
from repro.sim.systems import CollaborativeFoveatedSystem
from repro.workloads.apps import get_app


def _chunk_sweep():
    stages = [2.0, 1.2, 7.5, 0.9]  # render, encode, transmit, decode (ms)
    return [(k, pipelined_latency_ms(stages, k)) for k in (1, 2, 4, 8, 16, 32)]


def _alpha_sweep(n_frames=150):
    app = get_app("HL2-H")
    rows = []
    for alpha in (0.05, 0.15, 0.30, 0.60):
        system = CollaborativeFoveatedSystem(
            app,
            LIWCController(LIWCConfig(reward_alpha=alpha)),
            uses_uca=True,
            name="qvr",
        )
        result = system.run(n_frames=n_frames)
        rows.append((alpha, result.mean_latency_ratio, result.mean_latency_ms))
    return rows


def _server_sweep():
    rows = []
    for gpus in (1, 2, 4, 8):
        cfg = RemoteServerConfig(num_gpus=gpus)
        rows.append((gpus, cfg.effective_speedup))
    return rows


def test_design_space(paper_benchmark):
    chunks, alphas, servers = paper_benchmark(
        lambda: (_chunk_sweep(), _alpha_sweep(), _server_sweep())
    )

    print()
    print(format_table(["chunks", "remote path (ms)"], chunks,
                       title="Ablation — streaming chunk count"))
    print(format_table(["alpha", "steady latency ratio", "mean latency (ms)"], alphas,
                       title="Ablation — LIWC reward alpha"))
    print(format_table(["MCM GPUs", "effective speedup"], servers,
                       title="Ablation — remote server scale"))

    # Chunking: monotone improvement, bounded by the bottleneck stage.
    latencies = [lat for _, lat in chunks]
    assert latencies == sorted(latencies, reverse=True)
    assert latencies[-1] >= 7.5

    # Alpha: the controller balances across the whole sweep.
    for alpha, ratio, _ in alphas:
        assert 0.5 < ratio < 2.0, alpha

    # Server scale: more chiplets, more speedup, sublinear growth.
    speedups = [s for _, s in servers]
    assert speedups == sorted(speedups)
    assert speedups[-1] < 8 * speedups[0]
