"""Fig. 6: foveal-layer render latency and frame size vs eccentricity.

Regenerates the runtime-aware adaptive foveal sizing study on the three
synthetic Foveated3D-style scene configurations.  The paper's headline
finding is asserted: at eccentricities up to 15 degrees, *every* scene
complexity fits the 11 ms / 90 Hz budget on the Table 2 mobile GPU, so the
SoC can render far more than the classic 5-degree fovea.
"""

from repro import constants
from repro.analysis.experiments import fig6_foveal_sizing
from repro.analysis.report import format_table


def test_fig6(paper_benchmark):
    rows = paper_benchmark(fig6_foveal_sizing)

    print()
    print(
        format_table(
            ["scene", "e1 (deg)", "latency (ms)", "relative frame size"],
            [[r.scene, r.e1_deg, r.local_latency_ms, r.relative_frame_size] for r in rows],
            title="Fig. 6 — foveal rendering latency vs eccentricity",
        )
    )

    # All scene complexities fit the budget at e1 <= 15 degrees.
    for row in rows:
        if row.e1_deg <= 15.0:
            assert row.local_latency_ms <= constants.FRAME_BUDGET_MS, row
    # The heaviest configuration exceeds the budget at large eccentricity
    # (the knob matters) ...
    heavy = [r for r in rows if "8k" in r.scene]
    assert max(r.local_latency_ms for r in heavy) > constants.FRAME_BUDGET_MS
    # ... and latency grows monotonically with e1 within each scene.
    by_scene: dict[str, list] = {}
    for row in rows:
        by_scene.setdefault(row.scene, []).append(row)
    for scene_rows in by_scene.values():
        latencies = [r.local_latency_ms for r in sorted(scene_rows, key=lambda r: r.e1_deg)]
        assert latencies == sorted(latencies)
        sizes = [r.relative_frame_size for r in sorted(scene_rows, key=lambda r: r.e1_deg)]
        assert all(0.0 < s <= 1.0 for s in sizes)
