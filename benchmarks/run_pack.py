"""Canonical run packs: repeat a headline bench, keep every raw number.

A single benchmark run is a point sample of a noisy process; a *run
pack* is the committable unit of evidence this repo standardises on
instead.  One pack holds ``--runs`` complete repetitions of a headline
bench (batch, kernel, or session), the full per-run reports, the raw
timing vector of every numeric metric, and a trimmed mean per metric
(drop the single best and worst run, average the rest) — the summary
statistic the leaderboard and regression gates read.  Environment
provenance (commit, python, CPU budget, seed, config) rides along so a
number can always be traced back to how it was produced.

Every repetition runs in a **fresh subprocess**: the simulator keeps
process-wide kernel caches, so repeating a bench in one process would
time cache hits from the second run on and average two different
regimes into one number.

Usage::

    PYTHONPATH=src python benchmarks/run_pack.py --bench batch --runs 5
    PYTHONPATH=src python benchmarks/run_pack.py --bench kernel --frames 60 \
        --out benchmarks/packs/PACK_kernel.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import tempfile
import time
from pathlib import Path

BENCHES = ("batch", "kernel", "session")

_BENCH_DIR = Path(__file__).resolve().parent
_SRC_DIR = _BENCH_DIR.parent / "src"


def _git_commit() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=_BENCH_DIR,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    return out.stdout.strip() if out.returncode == 0 else None


def _bench_command(bench: str, args: argparse.Namespace, out: Path) -> list[str]:
    if bench == "batch":
        cmd = [
            sys.executable,
            str(_BENCH_DIR / "bench_batch.py"),
            "--frames", str(args.frames),
            "--seed", str(args.seed),
            "--out", str(out),
        ]
        if args.jobs is not None:
            cmd += ["--jobs", str(args.jobs)]
        if args.shards is not None:
            cmd += ["--shards", str(args.shards)]
        return cmd
    if bench == "kernel":
        return [
            sys.executable,
            str(_BENCH_DIR / "bench_kernel.py"),
            "--frames", str(args.frames),
            "--seed", str(args.seed),
            "--out", str(out),
        ]
    return [
        sys.executable,
        str(_BENCH_DIR / "bench_session.py"),
        "--events", str(args.events),
        "--frames", str(args.session_frames),
        "--seed", str(args.seed),
        "--tolerance", str(args.tolerance),
        "--out", str(out),
    ]


def _run_once(bench: str, args: argparse.Namespace) -> dict:
    """One complete repetition of the selected bench, in a fresh process."""
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        str(_SRC_DIR) if not existing else str(_SRC_DIR) + os.pathsep + existing
    )
    with tempfile.TemporaryDirectory(prefix="qvr-pack-") as tmp:
        out = Path(tmp) / "report.json"
        subprocess.run(
            _bench_command(bench, args, out),
            env=env,
            check=True,
            stdout=subprocess.DEVNULL,
        )
        return json.loads(out.read_text())


def _numeric_items(report: dict, prefix: str = "") -> list[tuple[str, float]]:
    """Flatten the numeric scalars of one report into dotted-key pairs."""
    items: list[tuple[str, float]] = []
    for key, value in report.items():
        name = f"{prefix}{key}"
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            items.append((name, float(value)))
        elif isinstance(value, dict):
            items.extend(_numeric_items(value, prefix=f"{name}."))
    return items


def trimmed_mean(values: list[float]) -> float:
    """Mean after dropping the single min and max (needs >= 3 samples)."""
    if len(values) >= 3:
        values = sorted(values)[1:-1]
    return sum(values) / len(values)


def build_pack(bench: str, runs: int, args: argparse.Namespace) -> dict:
    reports = []
    for index in range(runs):
        started = time.perf_counter()
        report = _run_once(bench, args)
        elapsed = time.perf_counter() - started
        print(
            f"[{bench} run {index + 1}/{runs}] completed in {elapsed:.1f}s",
            file=sys.stderr,
        )
        reports.append(report)

    raw: dict[str, list[float]] = {}
    for report in reports:
        for key, value in _numeric_items(report):
            raw.setdefault(key, []).append(value)
    # Only metrics present in every run are summarised — a key that
    # appears in some runs only would get a silently biased mean.
    raw = {key: values for key, values in raw.items() if len(values) == runs}
    summary = {key: round(trimmed_mean(values), 4) for key, values in raw.items()}

    return {
        "pack_version": 1,
        "bench": bench,
        "runs": runs,
        "trimmed_mean": summary,
        "raw": raw,
        "environment": {
            "commit": _git_commit(),
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
            "seed": args.seed,
        },
        "reports": reports,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--bench", choices=BENCHES, default="batch")
    parser.add_argument("--runs", type=int, default=5)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default=None, help="output path (default: benchmarks/packs/PACK_<bench>.json)")
    # batch/kernel knobs
    parser.add_argument("--frames", type=int, default=120)
    parser.add_argument("--jobs", type=int, default=None)
    parser.add_argument("--shards", type=int, default=None)
    # session knobs
    parser.add_argument("--events", type=int, default=150)
    parser.add_argument("--session-frames", type=int, default=600)
    parser.add_argument("--tolerance", type=float, default=1.5)
    args = parser.parse_args(argv)

    if args.runs < 1:
        parser.error("--runs must be >= 1")
    pack = build_pack(args.bench, args.runs, args)
    out = (
        Path(args.out)
        if args.out is not None
        else Path(__file__).resolve().parent / "packs" / f"PACK_{args.bench}.json"
    )
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(pack, indent=2) + "\n")
    print(f"wrote {out} ({args.runs} runs, {len(pack['raw'])} metrics)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
