"""Sec. 4.3: design overhead analysis (area, power, UCA tile latency).

Regenerates the McPAT-style overhead numbers for LIWC and UCA and the
UCA tile-throughput arithmetic, asserting the paper's reported values:
LIWC ~0.66 mm^2 / <= 25 mW (64 KB fp16 table), UCA ~1.6 mm^2 / ~94 mW,
532 cycles per 32x32 tile, and two 500 MHz UCAs being sufficient for
realtime (full stereo frame under the 11 ms budget).
"""

from repro import constants
from repro.analysis.calibration import ANCHORS
from repro.analysis.experiments import overhead_analysis
from repro.analysis.report import format_table
from repro.core.liwc import MappingTable
from repro.core.uca import UCAUnit


def test_overheads(paper_benchmark):
    reports = paper_benchmark(overhead_analysis)

    uca = UCAUnit()
    table = MappingTable()
    print()
    print(
        format_table(
            ["block", "area (mm^2)", "power (mW)"],
            [[name, r.area_mm2, r.power_mw] for name, r in reports.items()],
            title="Sec. 4.3 — design overhead (45 nm, 500 MHz)",
        )
    )
    print(f"LIWC table: depth {table.depth}, {table.size_bytes // 1024} KB")
    print(
        f"UCA: {constants.UCA_CYCLES_PER_TILE} cycles/tile, "
        f"stereo frame occupancy {uca.occupancy_ms(1920, 2160):.2f} ms"
    )

    assert ANCHORS["liwc_area_mm2"].check(reports["LIWC"].area_mm2)
    assert ANCHORS["liwc_power_mw"].check(reports["LIWC"].power_mw)
    assert ANCHORS["uca_area_mm2"].check(reports["UCA"].area_mm2)
    assert ANCHORS["uca_power_mw"].check(reports["UCA"].power_mw)
    assert table.depth == 2**15
    assert table.size_bytes == 64 * 1024
    assert uca.occupancy_ms(1920, 2160) < constants.FRAME_BUDGET_MS
