"""Fig. 13: transmitted data size and resolution reduction.

Regenerates the per-app transmission comparison normalised to remote-only
full-frame streaming, asserting the paper's shapes: the static design
transmits *more* than remote-only (depth maps on top of colour), Q-VR cuts
transmitted data by ~85 % on average, Doom3-L approaches ~96 % reduction
with only a small resolution reduction (most work runs locally), and the
average resolution reduction lands in the reported band.
"""

import numpy as np

from repro.analysis.calibration import ANCHORS
from repro.analysis.experiments import fig13_transmission
from repro.analysis.report import format_table


def test_fig13(paper_benchmark, batch_engine):
    rows = paper_benchmark(fig13_transmission, 240, engine=batch_engine)

    print()
    print(
        format_table(
            ["app", "Static", "FFR", "Q-VR", "resolution reduction"],
            [
                [
                    r.app, r.static_normalized, r.ffr_normalized,
                    r.qvr_normalized, r.resolution_reduction,
                ]
                for r in rows
            ],
            title="Fig. 13 — transmitted data normalised to remote-only",
        )
    )

    # Static does not reduce transmitted data (it adds depth maps).
    for row in rows:
        assert row.static_normalized >= 1.0
        assert row.qvr_normalized < row.static_normalized
        assert row.qvr_normalized <= row.ffr_normalized * 1.05

    mean_reduction = 1.0 - float(np.mean([r.qvr_normalized for r in rows]))
    assert ANCHORS["qvr_data_reduction"].check(mean_reduction)

    doom3l = next(r for r in rows if r.app == "Doom3-L")
    assert ANCHORS["doom3l_data_reduction"].check(1.0 - doom3l.qvr_normalized)
    # Doom3-L runs mostly local: its resolution reduction is the smallest.
    assert doom3l.resolution_reduction == min(r.resolution_reduction for r in rows)

    mean_resolution = float(np.mean([r.resolution_reduction for r in rows]))
    assert ANCHORS["qvr_resolution_reduction"].check(mean_resolution)
