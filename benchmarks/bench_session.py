"""Churn stress harness: session-planner scaling in event count.

Plans (does **not** execute) event-driven fleet sessions carrying
hundreds of join/leave/capacity events and writes a
``BENCH_session.json`` timing artifact.  The property under test is the
planner's complexity: one planning epoch per event boundary over a
bounded roster, so wall-clock time must scale **~linearly** in the event
count — a superlinear planner would make large churn studies (and the
CI scenario grid) quadratic.  The script times the planner at a base
size and at double that size, asserts the per-event cost ratio stays
under ``--tolerance``, and verifies the plan is deterministic (two
plans of the same session freeze identical specs).

Usage::

    PYTHONPATH=src python benchmarks/bench_session.py --events 150 --frames 600
    PYTHONPATH=src python benchmarks/bench_session.py \
        --baseline BENCH_session.json --out BENCH_fresh.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from collections import deque
from pathlib import Path

from repro import constants
from repro.sim.fleet import RenderFleet, ServerDown, ServerUp
from repro.sim.multiuser import ClientSpec
from repro.sim.session import Join, Leave, Session

#: Stress-fleet shape: three homogeneous servers, least-loaded placement
#: so capacity toggles genuinely displace and re-seat clients.
FLEET_CAPACITIES = {"a": 2.0, "b": 2.0, "c": 2.0}


def stress_events(n_events: int, duration_ms: float):
    """A deterministic churn script of ``n_events`` valid session events.

    Joins and leaves alternate (the roster stays bounded, so scaling is
    attributable to the event count, not a growing roster) and every
    fifth event toggles server ``c`` down/up, exercising displacement,
    migration and queue promotion on top of membership churn.
    """
    events = []
    fifo: deque[int] = deque()
    next_index = 2  # two initial clients occupy indices 0 and 1
    c_down = False
    spacing = duration_ms / (n_events + 1)
    for i in range(n_events):
        t = spacing * (i + 1)
        kind = i % 5
        if kind == 4:
            events.append(
                ServerUp(t, server="c") if c_down else ServerDown(t, server="c")
            )
            c_down = not c_down
        elif kind in (1, 3) and fifo:
            events.append(Leave(t, client=fifo.popleft()))
        else:
            events.append(Join(t, ClientSpec("Doom3-L")))
            fifo.append(next_index)
            next_index += 1
    return tuple(events)


def stress_session(n_events: int, n_frames: int) -> Session:
    """A fleet session carrying ``n_events`` churn/capacity events."""
    duration_ms = n_frames * constants.FRAME_BUDGET_MS
    return Session(
        clients=(ClientSpec("GRID"), ClientSpec("Doom3-L")),
        events=stress_events(n_events, duration_ms),
        fleet=RenderFleet.from_capacities(
            FLEET_CAPACITIES, placement="least-loaded"
        ),
    )


def time_planner(session: Session, n_frames: int, seed: int, repeats: int) -> float:
    """Best-of-``repeats`` wall-clock seconds for one full plan."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        session.timeline(n_frames=n_frames, seed=seed)
        best = min(best, time.perf_counter() - start)
    return best


def bench(
    base_events: int, n_frames: int, seed: int, repeats: int, tolerance: float
) -> dict:
    """Time the planner at ``base_events`` and double it; check linearity."""
    sizes = (base_events, 2 * base_events)
    times: dict[str, float] = {}
    epochs: dict[str, int] = {}
    for size in sizes:
        session = stress_session(size, n_frames)
        timeline = session.timeline(n_frames=n_frames, seed=seed)
        again = session.timeline(n_frames=n_frames, seed=seed)
        assert timeline.specs == again.specs, "planner is not deterministic"
        epochs[str(size)] = len(timeline.epochs)
        times[str(size)] = round(
            time_planner(session, n_frames, seed, repeats), 4
        )
    per_event = {
        size: 1000.0 * times[size] / int(size) for size in map(str, sizes)
    }
    ratio = per_event[str(sizes[1])] / per_event[str(sizes[0])]
    return {
        "sizes": list(sizes),
        "n_frames": n_frames,
        "seed": seed,
        "repeats": repeats,
        "fleet": FLEET_CAPACITIES,
        "times_s": times,
        "epochs": epochs,
        "per_event_ms": {size: round(value, 4) for size, value in per_event.items()},
        "linearity_ratio": round(ratio, 3),
        "tolerance": tolerance,
        "linear_ok": ratio <= tolerance,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--events", type=int, default=150,
                        help="base event count (also timed at 2x)")
    parser.add_argument("--frames", type=int, default=600)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--tolerance", type=float, default=1.5,
        help="max allowed per-event cost ratio between 2x and 1x sizes "
        "(a quadratic planner measures 2.0 here; linear ~1.0)",
    )
    parser.add_argument("--out", default="BENCH_session.json")
    parser.add_argument(
        "--baseline", default=None,
        help="committed BENCH_session.json to gate per-event cost against",
    )
    parser.add_argument(
        "--max-slowdown", type=float, default=3.0,
        help="max fractional per-event slowdown vs the baseline "
        "(generous: machines differ; catches superlinear blowups)",
    )
    args = parser.parse_args(argv)

    report = bench(
        base_events=args.events, n_frames=args.frames, seed=args.seed,
        repeats=args.repeats, tolerance=args.tolerance,
    )
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    if not report["linear_ok"]:
        print(
            f"ERROR: planner per-event cost grew {report['linearity_ratio']:.2f}x "
            f"from {args.events} to {2 * args.events} events "
            f"(tolerance {args.tolerance:g}x)",
            file=sys.stderr,
        )
        return 1
    if args.baseline is not None:
        baseline = json.loads(Path(args.baseline).read_text())
        key = str(max(baseline["sizes"]))
        fresh_key = str(max(report["sizes"]))
        allowed = baseline["per_event_ms"][key] * (1.0 + args.max_slowdown)
        if report["per_event_ms"][fresh_key] > allowed:
            print(
                f"ERROR: per-event cost {report['per_event_ms'][fresh_key]:.3f} ms "
                f"exceeds baseline {baseline['per_event_ms'][key]:.3f} ms "
                f"by more than {args.max_slowdown:.0%}",
                file=sys.stderr,
            )
            return 1
        print(
            f"baseline gate ok: {report['per_event_ms'][fresh_key]:.3f} ms/event "
            f"vs committed {baseline['per_event_ms'][key]:.3f} ms/event"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
