"""Fig. 14: local/remote latency balancing and FPS across 300 frames.

Regenerates the per-frame latency-ratio and FPS traces for the five
high-resolution titles, with Q-VR initialised at e1 = 5 degrees.  The
paper's dynamics are asserted: the early frames are strongly
network-imbalanced (high T_remote/T_local), the controller converges to a
ratio near 1 within the run, and steady-state FPS stays above the 90 Hz
target for the (feasible) titles.
"""

import numpy as np

from repro.analysis.experiments import FIG14_APPS, fig14_balancing
from repro.analysis.report import format_series, format_table


def test_fig14(paper_benchmark, batch_engine):
    series = paper_benchmark(fig14_balancing, 300, engine=batch_engine)

    print()
    summary_rows = []
    for s in series:
        early = float(np.nanmean(s.latency_ratios[1:10]))
        late = float(np.nanmean(s.latency_ratios[200:]))
        late_fps = float(np.nanmean(s.fps[200:]))
        summary_rows.append([s.app, early, late, late_fps, s.e1_deg[-1]])
        print(format_series(f"{s.app} latency ratio (every 30th frame)", s.latency_ratios[::30]))
    print(
        format_table(
            ["app", "early ratio", "steady ratio", "steady FPS", "final e1"],
            summary_rows,
            title="Fig. 14 — balancing summary (e1 initialised at 5 deg)",
        )
    )

    assert {s.app for s in series} == set(FIG14_APPS)
    steady_fps = []
    for s in series:
        # The optimistic table prior converges within a handful of frames,
        # so the imbalance is visible only at the very start of the run.
        early = float(np.nanmax(s.latency_ratios[:5]))
        late = float(np.nanmean(s.latency_ratios[200:]))
        # Starts imbalanced (network-bound with a 5-degree fovea) ...
        assert early > 1.5, s.app
        # ... and converges near the balanced point.
        assert 0.6 < late < 1.6, s.app
        # Eccentricity grows away from the initial classic fovea.
        assert s.e1_deg[-1] > 5.0
        steady_fps.append(float(np.nanmean(s.fps[200:])))
    # The paper reports every title above 90 Hz; in our calibration the
    # two heaviest balanced points land a few FPS under it (recorded in
    # EXPERIMENTS.md), so the bench requires >75 per title and the
    # majority above the target.
    assert all(fps > 75.0 for fps in steady_fps)
    assert sum(fps >= 90.0 for fps in steady_fps) >= 3
