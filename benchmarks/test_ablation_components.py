"""Ablation: isolate the contribution of each Q-VR component.

Not a paper figure per se, but the decomposition Sec. 6.1 narrates:
FFR -> DFR isolates LIWC's dynamic balancing; DFR -> Q-VR isolates UCA's
contention removal; SW-QVR -> Q-VR isolates the hardware prediction path.
Asserted: each component contributes positively on the heavy titles.
"""


from repro.analysis.report import format_table
from repro.sim.runner import run_comparison, speedup_over

ABLATION_APPS = ("Doom3-H", "GRID", "Wolf")


def _run_ablation(n_frames=200, engine=None):
    rows = []
    for app in ABLATION_APPS:
        results = run_comparison(
            app, systems=("local", "ffr", "dfr", "sw-qvr", "qvr"),
            n_frames=n_frames, engine=engine,
        )
        rows.append(
            {
                "app": app,
                "ffr": speedup_over(results, "ffr"),
                "dfr": speedup_over(results, "dfr"),
                "qvr": speedup_over(results, "qvr"),
                "sw_fps": results["sw-qvr"].measured_fps,
                "dfr_fps": results["dfr"].measured_fps,
                "qvr_fps": results["qvr"].measured_fps,
            }
        )
    return rows


def test_component_ablation(paper_benchmark, batch_engine):
    rows = paper_benchmark(_run_ablation, engine=batch_engine)

    print()
    print(
        format_table(
            ["app", "FFR", "+LIWC (DFR)", "+UCA (Q-VR)", "SW FPS", "DFR FPS", "Q-VR FPS"],
            [
                [r["app"], r["ffr"], r["dfr"], r["qvr"], r["sw_fps"], r["dfr_fps"], r["qvr_fps"]]
                for r in rows
            ],
            title="Ablation — per-component contribution (speedup over local)",
        )
    )

    for r in rows:
        # LIWC's balancing does not hurt, UCA adds a clear step.
        assert r["dfr"] >= r["ffr"] * 0.95, r["app"]
        assert r["qvr"] > r["dfr"], r["app"]
        # UCA lifts the frame rate (GPU freed from composition/ATW).
        assert r["qvr_fps"] > r["dfr_fps"], r["app"]
        # Hardware prediction beats software control on throughput.
        assert r["qvr_fps"] > r["sw_fps"], r["app"]
