"""Bench regression gate: compare a fresh BENCH_batch.json to the baseline.

CI runs ``bench_batch.py`` on every PR and then this script, which fails
the job when the batch engine's headline numbers regress against the
committed ``BENCH_batch.json`` baseline:

* ``speedup_cold`` (serial time over cold batched time) must not fall by
  more than ``--max-speedup-regression`` (default 25%).  Both terms of
  the ratio are measured in the *same* fresh run, so machine speed
  cancels and the gate tracks engine overhead, not runner hardware —
  unlike the warm-cache ratio, whose denominator is ~20 ms of cache
  lookups and which therefore swings with absolute CPU speed;
* ``kernel_speedup`` (scalar-oracle time over vectorized-kernel time,
  both from the same fresh run) must not fall by more than
  ``--max-kernel-regression`` (default 25%).  This is the headline win
  of the array-programmed frame kernels; baselines written before the
  field existed are reported informationally instead of gated;
* ``serial_s`` (the plain one-spec-at-a-time wall time, a proxy for the
  simulator's own speed) must not grow by more than
  ``--max-serial-slowdown`` (default 50%).  This is an absolute time
  compared across machines, so the generous tolerance is load-bearing:
  it absorbs runner-hardware spread while still catching multi-x
  simulator slowdowns.  Re-baseline (re-run ``bench_batch.py`` and
  commit the JSON) whenever a PR legitimately moves it;
* the warm engine must answer **every** spec from the cache
  (``warm_cache_hits == n_specs``) and serial/batched results must stay
  bit-identical — both deterministic, timing-free functional checks.

The before/after comparison is printed as a Markdown table and appended
to ``$GITHUB_STEP_SUMMARY`` when that file is available, so the verdict
shows up in the job summary without digging through logs.  Only the
standard library is required — the gate adds no dependencies to the
benchmark job.

Usage::

    python benchmarks/check_bench_regression.py BENCH_batch.json fresh.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path


def _fmt(value: float) -> str:
    return f"{value:.2f}"


def compare(
    baseline: dict,
    fresh: dict,
    max_speedup_regression: float,
    max_serial_slowdown: float,
    max_kernel_regression: float = 0.25,
) -> tuple[list[list[str]], list[str]]:
    """Build the comparison table and the list of violated limits."""
    failures: list[str] = []
    rows: list[list[str]] = []

    base_speedup = float(baseline["speedup_cold"])
    new_speedup = float(fresh["speedup_cold"])
    speedup_floor = base_speedup * (1.0 - max_speedup_regression)
    speedup_ok = new_speedup >= speedup_floor
    rows.append(
        [
            "parallel speedup (serial / cold batched)",
            f"{_fmt(base_speedup)}x",
            f"{_fmt(new_speedup)}x",
            f">= {_fmt(speedup_floor)}x",
            "ok" if speedup_ok else "REGRESSED",
        ]
    )
    if not speedup_ok:
        failures.append(
            f"parallel speedup regressed more than "
            f"{max_speedup_regression:.0%}: {_fmt(base_speedup)}x -> "
            f"{_fmt(new_speedup)}x (floor {_fmt(speedup_floor)}x)"
        )

    # The vectorized-kernel speedup shares the ratio-of-same-run structure
    # of speedup_cold: scalar oracle and vector kernels are timed in the
    # same process, so machine speed cancels and the gate tracks kernel
    # efficiency.  Older baselines predate the field, hence the guard on
    # the baseline side only — the fresh side must always report it.
    new_kernel = float(fresh["kernel_speedup"])
    if "kernel_speedup" in baseline:
        base_kernel = float(baseline["kernel_speedup"])
        kernel_floor = base_kernel * (1.0 - max_kernel_regression)
        kernel_ok = new_kernel >= kernel_floor
        rows.append(
            [
                "kernel speedup (scalar oracle / vector)",
                f"{_fmt(base_kernel)}x",
                f"{_fmt(new_kernel)}x",
                f">= {_fmt(kernel_floor)}x",
                "ok" if kernel_ok else "REGRESSED",
            ]
        )
        if not kernel_ok:
            failures.append(
                f"vectorized-kernel speedup regressed more than "
                f"{max_kernel_regression:.0%}: {_fmt(base_kernel)}x -> "
                f"{_fmt(new_kernel)}x (floor {_fmt(kernel_floor)}x)"
            )
    else:
        rows.append(
            [
                "kernel speedup (scalar oracle / vector)",
                "-",
                f"{_fmt(new_kernel)}x",
                "-",
                "info",
            ]
        )

    base_serial = float(baseline["serial_s"])
    new_serial = float(fresh["serial_s"])
    serial_ceiling = base_serial * (1.0 + max_serial_slowdown)
    serial_ok = new_serial <= serial_ceiling
    rows.append(
        [
            "serial wall time",
            f"{_fmt(base_serial)}s",
            f"{_fmt(new_serial)}s",
            f"<= {_fmt(serial_ceiling)}s",
            "ok" if serial_ok else "REGRESSED",
        ]
    )
    if not serial_ok:
        failures.append(
            f"serial wall time grew more than {max_serial_slowdown:.0%}: "
            f"{_fmt(base_serial)}s -> {_fmt(new_serial)}s "
            f"(ceiling {_fmt(serial_ceiling)}s)"
        )

    # Functional (timing-free) checks: the cache must answer every spec
    # and batched execution must stay bit-identical to serial.  Direct
    # indexing is deliberate: a schema drift in bench_batch.py must fail
    # this gate loudly, not degrade it to a no-op.
    expected_hits = int(fresh["sweep"]["n_specs"])
    warm_hits = int(fresh["warm_cache_hits"])
    hits_ok = warm_hits == expected_hits
    rows.append(
        [
            "warm cache hits",
            str(baseline.get("warm_cache_hits", "-")),
            str(warm_hits),
            f"== {expected_hits}",
            "ok" if hits_ok else "BROKEN",
        ]
    )
    if not hits_ok:
        failures.append(
            f"warm engine answered only {warm_hits}/{expected_hits} specs "
            "from the cache"
        )
    if not bool(fresh.get("bit_identical", True)):
        failures.append("fresh run reports serial/batched result divergence")
        rows.append(["bit identical", "true", "false", "true", "DIVERGED"])

    # Informational rows (no gate): they explain a moved headline number.
    for key, label, unit in (
        ("parallel_cold_s", "parallel cold", "s"),
        ("parallel_warm_s", "parallel warm (cache)", "s"),
        ("speedup_warm", "warm speedup", "x"),
        ("cpu_count", "cpu count", ""),
        ("jobs", "jobs", ""),
    ):
        if key in baseline and key in fresh:
            rows.append(
                [label, f"{baseline[key]}{unit}", f"{fresh[key]}{unit}", "-", "info"]
            )
    return rows, failures


def render_markdown(rows: list[list[str]], failures: list[str]) -> str:
    lines = [
        "### Batch-engine bench regression gate",
        "",
        "| metric | baseline | fresh | limit | status |",
        "| --- | --- | --- | --- | --- |",
    ]
    lines += ["| " + " | ".join(row) + " |" for row in rows]
    lines.append("")
    if failures:
        lines.append("**FAILED:**")
        lines += [f"- {failure}" for failure in failures]
    else:
        lines.append("**PASSED** — no regression beyond the configured limits.")
    return "\n".join(lines) + "\n"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed BENCH_batch.json baseline")
    parser.add_argument("fresh", help="freshly produced BENCH_batch.json")
    parser.add_argument(
        "--max-speedup-regression", type=float, default=0.25,
        help="tolerated relative speedup loss (default: 0.25 = 25%%)",
    )
    parser.add_argument(
        "--max-serial-slowdown", type=float, default=0.50,
        help="tolerated relative serial wall-time growth (default: 0.50 = 50%%)",
    )
    parser.add_argument(
        "--max-kernel-regression", type=float, default=0.25,
        help="tolerated relative vectorized-kernel speedup loss "
        "(default: 0.25 = 25%%)",
    )
    args = parser.parse_args(argv)

    baseline = json.loads(Path(args.baseline).read_text())
    fresh = json.loads(Path(args.fresh).read_text())
    rows, failures = compare(
        baseline,
        fresh,
        args.max_speedup_regression,
        args.max_serial_slowdown,
        args.max_kernel_regression,
    )
    report = render_markdown(rows, failures)
    print(report)
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a") as handle:
            handle.write(report)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
