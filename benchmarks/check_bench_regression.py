"""Bench regression gate: compare a fresh BENCH_batch.json to the baseline.

CI runs ``bench_batch.py`` on every PR and then this script, which fails
the job when the batch engine's headline numbers regress against the
committed ``BENCH_batch.json`` baseline:

* ``speedup_cold`` (serial time over cold batched time) must not fall by
  more than ``--max-speedup-regression`` (default 25%).  Both terms of
  the ratio are measured in the *same* fresh run, so machine speed
  cancels and the gate tracks engine overhead, not runner hardware —
  unlike the warm-cache ratio, whose denominator is ~20 ms of cache
  lookups and which therefore swings with absolute CPU speed;
* ``kernel_speedup`` (scalar-oracle time over vectorized-kernel time,
  both from the same fresh run) must not fall by more than
  ``--max-kernel-regression`` (default 25%).  This is the headline win
  of the array-programmed frame kernels; baselines written before the
  field existed are reported informationally instead of gated;
* ``speedup_shard_cold`` (serial time over cold *sharded* batched time,
  the work-stealing executor's headline) is gated exactly like
  ``speedup_cold`` with ``--max-shard-regression`` (default 25%);
  baselines written before sharded execution existed are reported
  informationally instead of gated;
* ``serial_s`` (the plain one-spec-at-a-time wall time, a proxy for the
  simulator's own speed) must not grow by more than
  ``--max-serial-slowdown`` (default 50%).  This is an absolute time
  compared across machines, so the generous tolerance is load-bearing:
  it absorbs runner-hardware spread while still catching multi-x
  simulator slowdowns.  Re-baseline (re-run ``bench_batch.py`` and
  commit the JSON) whenever a PR legitimately moves it;
* ``obs_disabled_overhead`` (the serial sweep re-timed after tracer
  configure/shutdown cycles, over the warm serial reference timed
  before any tracer existed — two identical warm code paths in the
  same fresh run) must stay under ``1 + --max-obs-overhead`` (default
  2%).  This is the "tracing is free when disabled" promise of
  ``docs/observability.md``; the threshold is absolute because both
  terms come from the same run.  Baselines written before the obs
  plane existed are not gated on the baseline side;
* the warm engine must answer **every** spec from the cache
  (``warm_cache_hits == n_specs``) and serial/batched results must stay
  bit-identical — both deterministic, timing-free functional checks.

The before/after comparison is printed as a Markdown table and appended
to ``$GITHUB_STEP_SUMMARY`` when that file is available, so the verdict
shows up in the job summary without digging through logs.  With
``--leaderboard-json`` / ``--leaderboard-html`` the same comparison is
also written as machine-readable and browsable leaderboard artifacts;
``--pack`` folds the trimmed means of canonical run packs (see
``run_pack.py``) into them.  Only the standard library is required —
the gate adds no dependencies to the benchmark job.

Usage::

    python benchmarks/check_bench_regression.py BENCH_batch.json fresh.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path


def _fmt(value: float) -> str:
    return f"{value:.2f}"


def compare(
    baseline: dict,
    fresh: dict,
    max_speedup_regression: float,
    max_serial_slowdown: float,
    max_kernel_regression: float = 0.25,
    max_shard_regression: float = 0.25,
    max_obs_overhead: float = 0.02,
) -> tuple[list[list[str]], list[str]]:
    """Build the comparison table and the list of violated limits."""
    failures: list[str] = []
    rows: list[list[str]] = []

    base_speedup = float(baseline["speedup_cold"])
    new_speedup = float(fresh["speedup_cold"])
    speedup_floor = base_speedup * (1.0 - max_speedup_regression)
    speedup_ok = new_speedup >= speedup_floor
    rows.append(
        [
            "parallel speedup (serial / cold batched)",
            f"{_fmt(base_speedup)}x",
            f"{_fmt(new_speedup)}x",
            f">= {_fmt(speedup_floor)}x",
            "ok" if speedup_ok else "REGRESSED",
        ]
    )
    if not speedup_ok:
        failures.append(
            f"parallel speedup regressed more than "
            f"{max_speedup_regression:.0%}: {_fmt(base_speedup)}x -> "
            f"{_fmt(new_speedup)}x (floor {_fmt(speedup_floor)}x)"
        )

    # The vectorized-kernel speedup shares the ratio-of-same-run structure
    # of speedup_cold: scalar oracle and vector kernels are timed in the
    # same process, so machine speed cancels and the gate tracks kernel
    # efficiency.  Older baselines predate the field, hence the guard on
    # the baseline side only — the fresh side must always report it.
    new_kernel = float(fresh["kernel_speedup"])
    if "kernel_speedup" in baseline:
        base_kernel = float(baseline["kernel_speedup"])
        kernel_floor = base_kernel * (1.0 - max_kernel_regression)
        kernel_ok = new_kernel >= kernel_floor
        rows.append(
            [
                "kernel speedup (scalar oracle / vector)",
                f"{_fmt(base_kernel)}x",
                f"{_fmt(new_kernel)}x",
                f">= {_fmt(kernel_floor)}x",
                "ok" if kernel_ok else "REGRESSED",
            ]
        )
        if not kernel_ok:
            failures.append(
                f"vectorized-kernel speedup regressed more than "
                f"{max_kernel_regression:.0%}: {_fmt(base_kernel)}x -> "
                f"{_fmt(new_kernel)}x (floor {_fmt(kernel_floor)}x)"
            )
    else:
        rows.append(
            [
                "kernel speedup (scalar oracle / vector)",
                "-",
                f"{_fmt(new_kernel)}x",
                "-",
                "info",
            ]
        )

    # The sharded executor's headline shares the same structure again:
    # serial and sharded-cold are timed in the same fresh run, so the
    # ratio tracks executor overhead (spill I/O, claim files, stealing)
    # rather than machine speed.  Baselines committed before sharded
    # execution existed lack the field and are not gated.
    if "speedup_shard_cold" in fresh:
        new_shard = float(fresh["speedup_shard_cold"])
        if "speedup_shard_cold" in baseline:
            base_shard = float(baseline["speedup_shard_cold"])
            shard_floor = base_shard * (1.0 - max_shard_regression)
            shard_ok = new_shard >= shard_floor
            rows.append(
                [
                    "sharded speedup (serial / cold sharded)",
                    f"{_fmt(base_shard)}x",
                    f"{_fmt(new_shard)}x",
                    f">= {_fmt(shard_floor)}x",
                    "ok" if shard_ok else "REGRESSED",
                ]
            )
            if not shard_ok:
                failures.append(
                    f"sharded speedup regressed more than "
                    f"{max_shard_regression:.0%}: {_fmt(base_shard)}x -> "
                    f"{_fmt(new_shard)}x (floor {_fmt(shard_floor)}x)"
                )
        else:
            rows.append(
                [
                    "sharded speedup (serial / cold sharded)",
                    "-",
                    f"{_fmt(new_shard)}x",
                    "-",
                    "info",
                ]
            )

    # The observability plane's "free when disabled" promise, as a ratio
    # of two identical code paths timed in the same fresh run (machine
    # speed cancels, so the 2% threshold is absolute, not relative to
    # the baseline — a cross-machine comparison could never resolve 2%).
    # Baselines written before the obs plane existed lack the field;
    # the fresh side must always report it.
    if "obs_disabled_overhead" in fresh:
        new_obs = float(fresh["obs_disabled_overhead"])
        obs_ceiling = 1.0 + max_obs_overhead
        obs_ok = new_obs <= obs_ceiling
        rows.append(
            [
                "obs disabled overhead (untraced / warm serial)",
                str(baseline.get("obs_disabled_overhead", "-")),
                f"{new_obs:.4f}",
                f"<= {obs_ceiling:.4f}",
                "ok" if obs_ok else "REGRESSED",
            ]
        )
        if not obs_ok:
            failures.append(
                f"disabled-mode observability overhead exceeds "
                f"{max_obs_overhead:.0%}: obs_untraced_s / serial_s = "
                f"{new_obs:.4f} (ceiling {obs_ceiling:.4f}) — tracing must "
                "be free when disabled"
            )

    base_serial = float(baseline["serial_s"])
    new_serial = float(fresh["serial_s"])
    serial_ceiling = base_serial * (1.0 + max_serial_slowdown)
    serial_ok = new_serial <= serial_ceiling
    rows.append(
        [
            "serial wall time",
            f"{_fmt(base_serial)}s",
            f"{_fmt(new_serial)}s",
            f"<= {_fmt(serial_ceiling)}s",
            "ok" if serial_ok else "REGRESSED",
        ]
    )
    if not serial_ok:
        failures.append(
            f"serial wall time grew more than {max_serial_slowdown:.0%}: "
            f"{_fmt(base_serial)}s -> {_fmt(new_serial)}s "
            f"(ceiling {_fmt(serial_ceiling)}s)"
        )

    # Functional (timing-free) checks: the cache must answer every spec
    # and batched execution must stay bit-identical to serial.  Direct
    # indexing is deliberate: a schema drift in bench_batch.py must fail
    # this gate loudly, not degrade it to a no-op.
    expected_hits = int(fresh["sweep"]["n_specs"])
    warm_hits = int(fresh["warm_cache_hits"])
    hits_ok = warm_hits == expected_hits
    rows.append(
        [
            "warm cache hits",
            str(baseline.get("warm_cache_hits", "-")),
            str(warm_hits),
            f"== {expected_hits}",
            "ok" if hits_ok else "BROKEN",
        ]
    )
    if not hits_ok:
        failures.append(
            f"warm engine answered only {warm_hits}/{expected_hits} specs "
            "from the cache"
        )
    if not bool(fresh.get("bit_identical", True)):
        failures.append("fresh run reports serial/batched result divergence")
        rows.append(["bit identical", "true", "false", "true", "DIVERGED"])

    # Informational rows (no gate): they explain a moved headline number.
    for key, label, unit in (
        ("parallel_cold_s", "parallel cold", "s"),
        ("shard_cold_s", "sharded cold", "s"),
        ("parallel_warm_s", "parallel warm (cache)", "s"),
        ("speedup_warm", "warm speedup", "x"),
        ("obs_traced_s", "serial with tracing active", "s"),
        ("obs_trace_overhead", "enabled-tracing cost (traced / untraced)", "x"),
        ("cpu_count", "cpu count", ""),
        ("available_cpus", "available cpus", ""),
        ("jobs", "jobs", ""),
        ("shards", "shards", ""),
    ):
        if key in baseline and key in fresh:
            rows.append(
                [label, f"{baseline[key]}{unit}", f"{fresh[key]}{unit}", "-", "info"]
            )
    return rows, failures


def compare_population(
    baseline: dict,
    fresh: dict,
    max_shard_regression: float = 0.25,
    max_serial_slowdown: float = 0.50,
    max_volume_drift: float = 0.02,
) -> tuple[list[list[str]], list[str]]:
    """Gate a fresh BENCH_population.json against its committed baseline.

    Mirrors the batch gate's structure: the sharded speedup is a
    ratio-of-same-run (machine speed cancels), the serial wall time gets
    the generous cross-machine tolerance, and two timing-free checks —
    the serial and sharded reports must be bit-identical
    (``deterministic``), and the expanded city must stay the same size
    (``client_sessions`` within ``max_volume_drift``, absorbing libm
    rounding differences in the arrival sampler across platforms while
    catching any real change to the expansion).
    """
    failures: list[str] = []
    rows: list[list[str]] = []

    base_speedup = float(baseline["speedup_population_shard"])
    new_speedup = float(fresh["speedup_population_shard"])
    floor = base_speedup * (1.0 - max_shard_regression)
    speedup_ok = new_speedup >= floor
    rows.append(
        [
            "population sharded speedup (serial / sharded)",
            f"{_fmt(base_speedup)}x",
            f"{_fmt(new_speedup)}x",
            f">= {_fmt(floor)}x",
            "ok" if speedup_ok else "REGRESSED",
        ]
    )
    if not speedup_ok:
        failures.append(
            f"population sharded speedup regressed more than "
            f"{max_shard_regression:.0%}: {_fmt(base_speedup)}x -> "
            f"{_fmt(new_speedup)}x (floor {_fmt(floor)}x)"
        )

    base_serial = float(baseline["population_serial_s"])
    new_serial = float(fresh["population_serial_s"])
    ceiling = base_serial * (1.0 + max_serial_slowdown)
    serial_ok = new_serial <= ceiling
    rows.append(
        [
            "population serial wall time",
            f"{_fmt(base_serial)}s",
            f"{_fmt(new_serial)}s",
            f"<= {_fmt(ceiling)}s",
            "ok" if serial_ok else "REGRESSED",
        ]
    )
    if not serial_ok:
        failures.append(
            f"population serial wall time grew more than "
            f"{max_serial_slowdown:.0%}: {_fmt(base_serial)}s -> "
            f"{_fmt(new_serial)}s (ceiling {_fmt(ceiling)}s)"
        )

    deterministic = bool(fresh.get("deterministic", False))
    rows.append(
        [
            "population report determinism (serial == sharded)",
            str(baseline.get("deterministic", "-")),
            str(deterministic),
            "true",
            "ok" if deterministic else "DIVERGED",
        ]
    )
    if not deterministic:
        failures.append(
            "fresh population run reports serial/sharded report divergence"
        )

    base_volume = int(baseline["client_sessions"])
    new_volume = int(fresh["client_sessions"])
    drift = abs(new_volume - base_volume) / base_volume if base_volume else 1.0
    volume_ok = drift <= max_volume_drift
    rows.append(
        [
            "population client-sessions",
            str(base_volume),
            str(new_volume),
            f"within {max_volume_drift:.0%}",
            "ok" if volume_ok else "BROKEN",
        ]
    )
    if not volume_ok:
        failures.append(
            f"expanded city changed size: {base_volume} -> {new_volume} "
            f"client-sessions ({drift:.1%} drift, limit {max_volume_drift:.0%})"
        )

    for key, label, unit in (
        ("plan_s", "population plan time", "s"),
        ("specs_per_s", "population plan throughput", " specs/s"),
        ("population_shard_s", "population sharded cold", "s"),
        ("sessions", "population sessions", ""),
    ):
        if key in baseline and key in fresh:
            rows.append(
                [label, f"{baseline[key]}{unit}", f"{fresh[key]}{unit}", "-", "info"]
            )
    return rows, failures


def build_leaderboard(
    baseline: dict,
    fresh: dict,
    rows: list[list[str]],
    failures: list[str],
    pack_paths: list[Path],
) -> dict:
    """The comparison as a machine-readable leaderboard document.

    One entry per compared metric (baseline, fresh, limit, status) plus
    the trimmed-mean summaries of any canonical run packs, so dashboards
    and follow-up tooling read one JSON file instead of re-parsing the
    Markdown gate output.
    """
    packs = []
    for path in pack_paths:
        try:
            pack = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as error:
            packs.append({"path": str(path), "error": str(error)})
            continue
        packs.append(
            {
                "path": str(path),
                "bench": pack.get("bench"),
                "runs": pack.get("runs"),
                "commit": (pack.get("environment") or {}).get("commit"),
                "trimmed_mean": pack.get("trimmed_mean", {}),
            }
        )
    return {
        "leaderboard_version": 1,
        "verdict": "fail" if failures else "pass",
        "failures": failures,
        "metrics": [
            {
                "metric": metric,
                "baseline": base,
                "fresh": new,
                "limit": limit,
                "status": status,
            }
            for metric, base, new, limit, status in rows
        ],
        "sweep": fresh.get("sweep", {}),
        "baseline_sweep": baseline.get("sweep", {}),
        "packs": packs,
    }


_HTML_STATUS_COLOURS = {
    "ok": "#2da44e",
    "info": "#57606a",
    "REGRESSED": "#cf222e",
    "BROKEN": "#cf222e",
    "DIVERGED": "#cf222e",
}


def render_leaderboard_html(board: dict) -> str:
    """A dependency-free, single-file HTML view of the leaderboard."""
    verdict = board["verdict"]
    colour = "#2da44e" if verdict == "pass" else "#cf222e"
    parts = [
        "<!DOCTYPE html>",
        "<html><head><meta charset='utf-8'>",
        "<title>Benchmark leaderboard</title>",
        "<style>body{font-family:sans-serif;margin:2em}"
        "table{border-collapse:collapse}"
        "td,th{border:1px solid #d0d7de;padding:4px 10px;text-align:left}"
        "th{background:#f6f8fa}</style>",
        "</head><body>",
        "<h1>Benchmark leaderboard</h1>",
        f"<p>Verdict: <strong style='color:{colour}'>{verdict.upper()}</strong></p>",
        "<table><tr><th>metric</th><th>baseline</th><th>fresh</th>"
        "<th>limit</th><th>status</th></tr>",
    ]
    for entry in board["metrics"]:
        status = entry["status"]
        status_colour = _HTML_STATUS_COLOURS.get(status, "#57606a")
        parts.append(
            f"<tr><td>{entry['metric']}</td><td>{entry['baseline']}</td>"
            f"<td>{entry['fresh']}</td><td>{entry['limit']}</td>"
            f"<td style='color:{status_colour}'>{status}</td></tr>"
        )
    parts.append("</table>")
    if board["failures"]:
        parts.append("<h2>Failures</h2><ul>")
        parts += [f"<li>{failure}</li>" for failure in board["failures"]]
        parts.append("</ul>")
    for pack in board["packs"]:
        if "error" in pack:
            parts.append(
                f"<p>pack {pack['path']}: unreadable ({pack['error']})</p>"
            )
            continue
        parts.append(
            f"<h2>Run pack: {pack['bench']} ({pack['runs']} runs)</h2>"
        )
        commit = pack.get("commit") or "unknown commit"
        parts.append(f"<p>{commit}</p>")
        parts.append(
            "<table><tr><th>metric</th><th>trimmed mean</th></tr>"
        )
        for metric, value in sorted(pack["trimmed_mean"].items()):
            parts.append(f"<tr><td>{metric}</td><td>{value}</td></tr>")
        parts.append("</table>")
    parts.append("</body></html>")
    return "\n".join(parts) + "\n"


def render_markdown(rows: list[list[str]], failures: list[str]) -> str:
    lines = [
        "### Batch-engine bench regression gate",
        "",
        "| metric | baseline | fresh | limit | status |",
        "| --- | --- | --- | --- | --- |",
    ]
    lines += ["| " + " | ".join(row) + " |" for row in rows]
    lines.append("")
    if failures:
        lines.append("**FAILED:**")
        lines += [f"- {failure}" for failure in failures]
    else:
        lines.append("**PASSED** — no regression beyond the configured limits.")
    return "\n".join(lines) + "\n"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed BENCH_batch.json baseline")
    parser.add_argument("fresh", help="freshly produced BENCH_batch.json")
    parser.add_argument(
        "--max-speedup-regression", type=float, default=0.25,
        help="tolerated relative speedup loss (default: 0.25 = 25%%)",
    )
    parser.add_argument(
        "--max-serial-slowdown", type=float, default=0.50,
        help="tolerated relative serial wall-time growth (default: 0.50 = 50%%)",
    )
    parser.add_argument(
        "--max-kernel-regression", type=float, default=0.25,
        help="tolerated relative vectorized-kernel speedup loss "
        "(default: 0.25 = 25%%)",
    )
    parser.add_argument(
        "--max-shard-regression", type=float, default=0.25,
        help="tolerated relative sharded-executor speedup loss "
        "(default: 0.25 = 25%%)",
    )
    parser.add_argument(
        "--max-obs-overhead", type=float, default=0.02,
        help="tolerated disabled-mode observability overhead on the "
        "serial sweep, as a same-run ratio (default: 0.02 = 2%%)",
    )
    parser.add_argument(
        "--population-baseline", default=None, metavar="PATH",
        help="committed BENCH_population.json baseline; with "
        "--population-fresh, the population gate joins the comparison",
    )
    parser.add_argument(
        "--population-fresh", default=None, metavar="PATH",
        help="freshly produced BENCH_population.json",
    )
    parser.add_argument(
        "--leaderboard-json", default=None, metavar="PATH",
        help="also write the comparison as a leaderboard JSON document",
    )
    parser.add_argument(
        "--leaderboard-html", default=None, metavar="PATH",
        help="also write the comparison as a browsable HTML leaderboard",
    )
    parser.add_argument(
        "--pack", action="append", default=[], metavar="PACK_JSON",
        help="canonical run pack (run_pack.py output) to fold into the "
        "leaderboard; repeatable",
    )
    args = parser.parse_args(argv)

    baseline = json.loads(Path(args.baseline).read_text())
    fresh = json.loads(Path(args.fresh).read_text())
    rows, failures = compare(
        baseline,
        fresh,
        args.max_speedup_regression,
        args.max_serial_slowdown,
        args.max_kernel_regression,
        args.max_shard_regression,
        args.max_obs_overhead,
    )
    if bool(args.population_baseline) != bool(args.population_fresh):
        parser.error(
            "--population-baseline and --population-fresh go together"
        )
    if args.population_baseline:
        pop_rows, pop_failures = compare_population(
            json.loads(Path(args.population_baseline).read_text()),
            json.loads(Path(args.population_fresh).read_text()),
            max_shard_regression=args.max_shard_regression,
            max_serial_slowdown=args.max_serial_slowdown,
        )
        rows += pop_rows
        failures += pop_failures
    report = render_markdown(rows, failures)
    print(report)
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a") as handle:
            handle.write(report)
    if args.leaderboard_json or args.leaderboard_html:
        board = build_leaderboard(
            baseline, fresh, rows, failures, [Path(p) for p in args.pack]
        )
        if args.leaderboard_json:
            Path(args.leaderboard_json).write_text(
                json.dumps(board, indent=2) + "\n"
            )
        if args.leaderboard_html:
            Path(args.leaderboard_html).write_text(render_leaderboard_html(board))
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
