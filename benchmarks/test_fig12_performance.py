"""Fig. 12: normalized performance of Static/FFR/DFR/Q-VR + FPS lines.

Regenerates the headline comparison under the default 500 MHz / Wi-Fi
platform and asserts the paper's bands: Q-VR ~3.4x average (up to ~6.7x)
end-to-end speedup over local rendering, ~4.1x FPS over static
collaboration, ~2.8x FPS over the pure-software implementation, and the
static < FFR <= DFR < Q-VR ordering.
"""

import numpy as np

from repro.analysis.calibration import ANCHORS
from repro.analysis.experiments import fig12_performance
from repro.analysis.report import format_table


def test_fig12(paper_benchmark, batch_engine):
    rows = paper_benchmark(fig12_performance, 240, engine=batch_engine)

    print()
    print(
        format_table(
            [
                "app", "Static", "FFR", "DFR", "Q-VR",
                "SW-FPS", "Q-VR-FPS", "Static-FPS",
            ],
            [
                [
                    r.app, r.static_speedup, r.ffr_speedup, r.dfr_speedup,
                    r.qvr_speedup, r.sw_fps, r.qvr_fps, r.static_fps,
                ]
                for r in rows
            ],
            title="Fig. 12 — normalized performance over local rendering (500 MHz, Wi-Fi)",
        )
    )

    qvr = [r.qvr_speedup for r in rows]
    ffr = [r.ffr_speedup for r in rows]
    dfr = [r.dfr_speedup for r in rows]
    static = [r.static_speedup for r in rows]

    assert ANCHORS["qvr_avg_speedup"].check(float(np.mean(qvr)))
    assert ANCHORS["qvr_max_speedup"].check(float(np.max(qvr)))
    assert ANCHORS["ffr_avg_speedup"].check(float(np.mean(ffr)))
    assert ANCHORS["ffr_max_speedup"].check(float(np.max(ffr)))
    assert ANCHORS["static_avg_speedup"].check(float(np.mean(static)))
    assert ANCHORS["dfr_over_ffr"].check(float(np.mean(dfr)) / float(np.mean(ffr)))

    # Per-app ordering: Q-VR dominates every other design everywhere.
    for row in rows:
        assert row.qvr_speedup > row.dfr_speedup
        assert row.qvr_speedup > row.static_speedup

    fps_vs_static = float(np.mean([r.qvr_fps / r.static_fps for r in rows]))
    fps_vs_sw = float(np.mean([r.qvr_fps / r.sw_fps for r in rows]))
    assert ANCHORS["qvr_fps_over_static"].check(fps_vs_static)
    assert ANCHORS["qvr_fps_over_sw"].check(fps_vs_sw)
