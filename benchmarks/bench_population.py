"""Population demand benchmark: plan and stream a city slice, gated.

Expands a slice of the shipped ``examples/population.json`` demand
scenario (``--max-sessions`` arrivals of the full diurnal day) and times
the two phases the population path is made of:

* **plan** — ``DemandScenario.expand`` plus per-session timeline
  planning: arrival thinning, party/app/link sampling, churn-event
  expansion, fleet placement.  Reported as ``plan_s`` and
  ``specs_per_s``;
* **execute** — ``run_population`` folding every client-session through
  the batch path, once serially (flat in-process engine) and once
  through the sharded work-stealing executor
  (``population_serial_s`` vs ``population_shard_s``;
  ``speedup_population_shard`` is their same-run ratio, so machine
  speed cancels and the gate tracks executor overhead).

The functional check is the population path's core promise: the serial
and sharded runs must produce **bit-identical reports** (compared by
SHA-256 of the canonical JSON), which only holds because every streamed
aggregate is order-independent.  ``deterministic`` records the verdict
and the regression gate fails on ``false``.

Writes a ``BENCH_population.json`` artifact;
``benchmarks/check_bench_regression.py --population-baseline/-fresh``
gates it against the committed baseline.

Usage::

    PYTHONPATH=src python benchmarks/bench_population.py --max-sessions 120
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
import time
from pathlib import Path

from repro.sim.demand import DemandScenario, run_population
from repro.sim.runner import BatchEngine

REPO = Path(__file__).resolve().parents[1]
SCENARIO = REPO / "examples" / "population.json"


def available_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    counter = getattr(os, "process_cpu_count", None)
    if counter is not None:
        return counter() or 1
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # platforms without an affinity API
        return os.cpu_count() or 1


def _digest(report: dict) -> str:
    return hashlib.sha256(
        json.dumps(report, sort_keys=True).encode()
    ).hexdigest()


def bench(
    max_sessions: int, seed: int, jobs: int, shards: int, reps: int
) -> dict:
    """Time planning and execution of one city slice, both engines."""
    if reps < 1:
        raise ValueError(f"reps must be >= 1, got {reps}")
    scenario = DemandScenario.from_json(str(SCENARIO))

    start = time.perf_counter()
    planned = scenario.expand(seed, max_sessions=max_sessions)
    specs = 0
    clients = 0
    for item in planned:
        timeline = item.session.timeline(
            system=scenario.system, n_frames=item.n_frames, seed=item.seed
        )
        specs += len(timeline.specs)
        clients += len(timeline.clients)
    plan_s = time.perf_counter() - start
    client_sessions = specs * len(scenario.policies)

    serial_s = shard_s = float("inf")
    serial_report = shard_report = None
    for _ in range(reps):
        engine = BatchEngine()
        start = time.perf_counter()
        serial_report = run_population(
            scenario, seed=seed, engine=engine, max_sessions=max_sessions
        )
        serial_s = min(serial_s, time.perf_counter() - start)

        engine = BatchEngine(jobs=jobs, shards=shards, shard_mode="process")
        start = time.perf_counter()
        shard_report = run_population(
            scenario, seed=seed, engine=engine, max_sessions=max_sessions
        )
        shard_s = min(shard_s, time.perf_counter() - start)

    serial_digest = _digest(serial_report)
    deterministic = serial_digest == _digest(shard_report)
    return {
        "scenario": {
            "path": str(SCENARIO.relative_to(REPO)),
            "name": scenario.name,
            "max_sessions": max_sessions,
            "seed": seed,
            "policies": list(scenario.policies),
        },
        "jobs": jobs,
        "shards": shards,
        "reps": reps,
        "cpu_count": os.cpu_count(),
        "available_cpus": available_cpus(),
        "sessions": len(planned),
        "clients": clients,
        "client_sessions": client_sessions,
        "plan_s": round(plan_s, 3),
        "specs_per_s": round(client_sessions / plan_s, 1),
        "population_serial_s": round(serial_s, 3),
        "population_shard_s": round(shard_s, 3),
        "speedup_population_shard": round(serial_s / shard_s, 2),
        "report_digest": serial_digest,
        "deterministic": deterministic,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--max-sessions", type=int, default=120,
        help="arrivals of the full city-day to expand (default: 120)",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for the sharded leg (default: available CPUs)",
    )
    parser.add_argument(
        "--shards", type=int, default=None,
        help="shard count for the sharded leg (default: max(4, 2 * jobs))",
    )
    parser.add_argument(
        "--reps", type=int, default=2,
        help="repetitions of the execution legs; the minimum is reported",
    )
    parser.add_argument("--out", default="BENCH_population.json")
    args = parser.parse_args(argv)

    jobs = args.jobs if args.jobs is not None else available_cpus()
    shards = args.shards if args.shards is not None else max(4, 2 * jobs)
    report = bench(
        max_sessions=args.max_sessions,
        seed=args.seed,
        jobs=jobs,
        shards=shards,
        reps=args.reps,
    )
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    if not report["deterministic"]:
        print(
            "ERROR: serial and sharded population reports diverged",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
