"""Table 1: static collaborative rendering characterisation.

Regenerates the per-app interactive-share ranges, local latency statistics,
compressed background sizes and remote fetch times, and asserts the
paper-anchored bands: background sizes in the ~480-660 KB range, remote
fetch times ~28-38 ms on Wi-Fi, and worst-case local latencies exceeding
the 11 ms / 90 Hz budget (Challenge I).
"""

from repro import constants
from repro.analysis.experiments import table1_static_characterization
from repro.analysis.report import format_table
from repro.workloads.tethered import TABLE1_ORDER


def test_table1(paper_benchmark):
    rows = paper_benchmark(table1_static_characterization)

    print()
    print(
        format_table(
            [
                "app", "resolution", "#tris", "interactive", "f range",
                "avg Tlocal", "min", "max", "back KB", "Tremote",
            ],
            [
                [
                    r.app, r.resolution, f"{r.triangles/1e3:.0f}K",
                    r.interactive_objects, f"{r.f_min:.0%}-{r.f_max:.0%}",
                    r.avg_local_ms, r.min_local_ms, r.max_local_ms,
                    r.back_size_kb, r.remote_ms,
                ]
                for r in rows
            ],
            title="Table 1 — static collaborative VR characterisation (90 Hz)",
        )
    )

    assert [r.app for r in rows] == list(TABLE1_ORDER)
    for row in rows:
        assert 400.0 < row.back_size_kb < 700.0
        assert 25.0 < row.remote_ms < 45.0
        assert row.min_local_ms <= row.avg_local_ms <= row.max_local_ms
        # Challenge I: every app's worst case blows the 90 Hz frame budget.
        assert row.max_local_ms > constants.FRAME_BUDGET_MS
    # Remote fetches alone already exceed the frame budget (Challenge II).
    assert all(r.remote_ms > constants.FRAME_BUDGET_MS for r in rows)
