"""Shared benchmark configuration.

Each benchmark regenerates one paper table/figure.  The experiments are
deterministic simulations, so a single measured round per benchmark is
both sufficient and what keeps the full suite's runtime reasonable.

All simulation-backed benchmarks share one session-scoped
:class:`~repro.sim.runner.BatchEngine` with an on-disk cache, so runs
that recur across figures (Table 4 and Fig. 15 share their Q-VR grid;
the ablation reuses Fig. 15's local baselines) execute exactly once per
session.  ``QVR_BENCH_JOBS`` sets the engine's process-pool width
(default 1, keeping single-figure timings comparable across machines);
``QVR_BENCH_CACHE`` pins the cache directory so the warm cache can
persist across pytest sessions.
"""

import os

import pytest

from repro.sim.runner import BatchEngine


@pytest.fixture(scope="session")
def batch_engine(tmp_path_factory):
    """One warm-cache batch engine shared by every benchmark."""
    cache_dir = os.environ.get("QVR_BENCH_CACHE") or str(
        tmp_path_factory.mktemp("qvr-batch-cache")
    )
    return BatchEngine(
        jobs=int(os.environ.get("QVR_BENCH_JOBS", "1")),
        cache_dir=cache_dir,
    )


@pytest.fixture
def paper_benchmark(benchmark):
    """A pytest-benchmark fixture pinned to one round / one iteration."""

    def run(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return run
