"""Shared benchmark configuration.

Each benchmark regenerates one paper table/figure.  The experiments are
deterministic simulations, so a single measured round per benchmark is
both sufficient and what keeps the full suite's runtime reasonable.

All simulation-backed benchmarks share one session-scoped
:class:`~repro.sim.runner.BatchEngine` with an on-disk cache, so runs
that recur across figures (Table 4 and Fig. 15 share their Q-VR grid;
the ablation reuses Fig. 15's local baselines) execute exactly once per
session.  ``QVR_BENCH_JOBS`` sets the engine's process-pool width
(default 1, keeping single-figure timings comparable across machines);
``QVR_BENCH_CACHE`` pins the cache directory so the warm cache can
persist across pytest sessions.

The directory must stay importable with *only* the runtime deps the CI
``bench-batch-smoke`` job installs (numpy): ``bench_batch.py`` and the
regression gate are plain scripts, and the ``paper_benchmark`` fixture
degrades to a direct call when pytest-benchmark is absent, so an
unused-dep drift in the job's install line can't break the suite.
"""

import os

import pytest

from repro.sim.runner import BatchEngine

try:
    import pytest_benchmark  # noqa: F401

    _HAS_PYTEST_BENCHMARK = True
except ImportError:
    _HAS_PYTEST_BENCHMARK = False


@pytest.fixture(scope="session")
def batch_engine(tmp_path_factory):
    """One warm-cache batch engine shared by every benchmark."""
    cache_dir = os.environ.get("QVR_BENCH_CACHE") or str(
        tmp_path_factory.mktemp("qvr-batch-cache")
    )
    return BatchEngine(
        jobs=int(os.environ.get("QVR_BENCH_JOBS", "1")),
        cache_dir=cache_dir,
    )


@pytest.fixture
def paper_benchmark(request):
    """A pytest-benchmark fixture pinned to one round / one iteration.

    Falls back to calling the function directly (no timing report) when
    pytest-benchmark is not installed, so the benchmarks collect and run
    as plain regression checks in minimal environments.
    """
    if _HAS_PYTEST_BENCHMARK:
        benchmark = request.getfixturevalue("benchmark")

        def run(func, *args, **kwargs):
            return benchmark.pedantic(
                func, args=args, kwargs=kwargs, rounds=1, iterations=1
            )
    else:

        def run(func, *args, **kwargs):
            return func(*args, **kwargs)

    return run
