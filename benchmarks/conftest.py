"""Shared benchmark configuration.

Each benchmark regenerates one paper table/figure.  The experiments are
deterministic simulations, so a single measured round per benchmark is
both sufficient and what keeps the full suite's runtime reasonable.
"""

import pytest


@pytest.fixture
def paper_benchmark(benchmark):
    """A pytest-benchmark fixture pinned to one round / one iteration."""

    def run(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return run
