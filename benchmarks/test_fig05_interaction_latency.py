"""Fig. 5: realtime interaction changes one object's render latency.

Regenerates the Nature-tree sweep: approaching the interactive tree raises
its local render cost from ~12 ms to ~26 ms, the variability that breaks
the static design's worst-case provisioning.
"""

from repro.analysis.experiments import fig5_interaction_latency
from repro.analysis.report import format_table


def test_fig5(paper_benchmark):
    points = paper_benchmark(
        fig5_interaction_latency, "Nature", tuple(i / 10 for i in range(0, 11))
    )

    print()
    print(
        format_table(
            ["closeness", "interactive latency (ms)"],
            [[c, lat] for c, lat in points],
            title="Fig. 5 — Nature tree latency vs interaction closeness",
        )
    )

    latencies = [lat for _, lat in points]
    # Monotone LOD response covering the paper's 12 -> 26 ms span.
    assert latencies == sorted(latencies)
    assert latencies[0] < 13.0
    assert latencies[-1] > 24.0
    # The paper's three snapshots (12, 15, 26 ms) lie inside the sweep.
    spans = fig5_interaction_latency("Nature", (0.0, 0.5, 1.0))
    assert spans[1][1] - spans[0][1] > 1.0
