"""Batch-engine timing smoke benchmark: serial vs parallel vs warm cache.

Runs one multi-point figure sweep (the Fig. 12 grid: six system designs
across the Table 3 titles) four ways and writes a ``BENCH_batch.json``
timing artifact:

* ``scalar_serial_s`` — one spec at a time on the scalar task-graph
  oracle (the original per-frame execution model);
* ``serial_s`` — one spec at a time on the requested ``--engine``
  (default: the vectorized frame kernels);
* ``parallel_cold_s`` — the batch engine at ``--jobs`` workers with a
  cold on-disk cache;
* ``shard_cold_s`` — the sharded work-stealing executor (``--shards``
  shards, process mode) with a cold cache and a spill-to-disk stream;
* ``parallel_warm_s`` — the flat engine invoked again, so every spec is
  answered by the cache;
* ``serial_warm_s`` / ``obs_untraced_s`` / ``obs_traced_s`` — the
  serial sweep re-timed min-of-reps with warm memo caches: before any
  tracer exists, after configure/shutdown cycles (disabled again), and
  with tracing active into a throwaway directory
  (``docs/observability.md``).

``kernel_speedup`` is ``scalar_serial_s`` over ``serial_s`` — the
per-spec win of the array-programmed kernels, measured in the same
process on the same machine (the ratio the regression gate tracks).
``speedup`` is ``serial_s`` over the best batched time.
``obs_disabled_overhead`` is ``obs_untraced_s`` over ``serial_warm_s``
— a ratio of two identical warm code paths in the same run, so it sits
at ~1.0 unless disabled instrumentation stops being free (a leaked
tracer or registry surviving shutdown); the regression gate holds it
under ``--max-obs-overhead``.  ``obs_trace_overhead`` (traced over
untraced) is the recording cost of an *enabled* tracer, reported as
information.

Worker sizing is honest: ``--jobs`` defaults to the CPUs *available to
this process* (the scheduler affinity mask, not the machine's nominal
core count), and both numbers are recorded so a reader can tell a
single-core container's ~1x "parallel" result from a real multi-core
win.  The script also verifies that scalar, serial, parallel, and
sharded results are all bit-identical.

Usage::

    PYTHONPATH=src python benchmarks/bench_batch.py --frames 120
"""

from __future__ import annotations

import argparse
import json
import os
import pickle
import sys
import tempfile
import time
from dataclasses import replace
from pathlib import Path

from repro.obs import trace as obs_trace
from repro.sim.runner import BatchEngine, ENGINE_NAMES, Sweep, run
from repro.workloads.apps import TABLE3_ORDER

#: The Fig. 12 design spectrum — the sweep every machine can complete fast.
SYSTEMS = ("local", "static", "ffr", "dfr", "sw-qvr", "qvr")


def available_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware).

    ``os.cpu_count()`` reports the machine; a container or a ``taskset``
    launch can pin the process to far fewer.  Sizing workers off the
    machine count then just multiplies scheduling overhead — the bug this
    helper exists to prevent.
    """
    counter = getattr(os, "process_cpu_count", None)
    if counter is not None:
        return counter() or 1
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # platforms without an affinity API
        return os.cpu_count() or 1


def bench(
    jobs: int,
    n_frames: int,
    seed: int,
    engine: str = "vector",
    shards: int | None = None,
    reps: int = 3,
) -> dict:
    """Time the execution modes over one Fig. 12-style sweep.

    The serial legs dominate wall-clock and are timed once; the batched
    legs finish in a fraction of that time, so a single sample of each is
    mostly scheduler noise.  Those legs repeat ``reps`` times (a fresh
    cache/stream directory per repetition, so every "cold" run really is
    cold) and report the minimum — the standard microbenchmark estimator
    for the cost the code actually imposes.
    """
    if shards is None:
        shards = max(4, 2 * jobs)
    if reps < 1:
        raise ValueError(f"reps must be >= 1, got {reps}")
    sweep = Sweep(
        systems=SYSTEMS,
        apps=TABLE3_ORDER,
        seeds=(seed,),
        n_frames=n_frames,
        engine=engine,
    )
    specs = sweep.specs()

    start = time.perf_counter()
    scalar = [run(replace(spec, engine="scalar")) for spec in specs]
    scalar_serial_s = time.perf_counter() - start

    start = time.perf_counter()
    serial = [run(spec) for spec in specs]
    serial_s = time.perf_counter() - start

    # Observability legs.  serial_s above ran with cold module-level
    # memo caches (workloads, foveation plans), so it cannot anchor a
    # 2%-level comparison; serial_warm_s re-times the identical loop
    # min-of-reps with those caches warm and *no tracer ever configured
    # in this process* — the virgin disabled path.  The traced leg then
    # records into a throwaway directory, and the untraced leg re-times
    # the plain loop after each configure/shutdown cycle: the
    # untraced/warm ratio gates that tracing leaves no residue behind
    # (a leaked tracer or registry would show up as JSONL writes or
    # live-instrument updates in a leg that must be free).
    serial_warm_s = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        warm_serial = [run(spec) for spec in specs]
        serial_warm_s = min(serial_warm_s, time.perf_counter() - start)

    obs_untraced_s = obs_traced_s = float("inf")
    for _ in range(reps):
        with tempfile.TemporaryDirectory(prefix="qvr-bench-trace-") as trace_dir:
            obs_trace.configure(trace_dir, process="bench")
            try:
                start = time.perf_counter()
                traced = [run(spec) for spec in specs]
                obs_traced_s = min(obs_traced_s, time.perf_counter() - start)
            finally:
                obs_trace.shutdown()
        start = time.perf_counter()
        untraced = [run(spec) for spec in specs]
        obs_untraced_s = min(obs_untraced_s, time.perf_counter() - start)

    parallel_cold_s = parallel_warm_s = shard_cold_s = float("inf")
    for _ in range(reps):
        with tempfile.TemporaryDirectory(prefix="qvr-bench-cache-") as cache_dir:
            cold_engine = BatchEngine(jobs=jobs, cache_dir=cache_dir)
            start = time.perf_counter()
            cold = cold_engine.run_specs(specs)
            parallel_cold_s = min(parallel_cold_s, time.perf_counter() - start)

            warm_engine = BatchEngine(jobs=jobs, cache_dir=cache_dir)
            start = time.perf_counter()
            warm = warm_engine.run_specs(specs)
            parallel_warm_s = min(parallel_warm_s, time.perf_counter() - start)
            warm_hits = warm_engine.stats.cache_hits

        # The sharded leg persists through its spill stream, not the
        # result cache — writing both would double-serialize every result
        # and time an artifact no sharded deployment produces.  Cold-for-
        # cold the two legs are symmetric: each starts empty and leaves a
        # store the next run could resume from (the cache for the flat
        # engine, the stream for the sharded one).
        with tempfile.TemporaryDirectory(prefix="qvr-bench-shards-") as stream_dir:
            shard_engine = BatchEngine(
                jobs=jobs, shards=shards, shard_mode="process", stream_dir=stream_dir
            )
            start = time.perf_counter()
            sharded = shard_engine.run_specs(specs)
            shard_cold_s = min(shard_cold_s, time.perf_counter() - start)
            shard_stats = shard_engine.last_shard_stats

    identical = all(
        pickle.dumps(cold[spec]) == pickle.dumps(result)
        and pickle.dumps(warm[spec]) == pickle.dumps(result)
        and pickle.dumps(sharded[spec]) == pickle.dumps(result)
        and pickle.dumps(oracle) == pickle.dumps(result)
        and pickle.dumps(plain) == pickle.dumps(result)
        and pickle.dumps(recorded) == pickle.dumps(result)
        and pickle.dumps(rewarmed) == pickle.dumps(result)
        for spec, result, oracle, plain, recorded, rewarmed in zip(
            specs, serial, scalar, untraced, traced, warm_serial
        )
    )
    best_batched_s = min(parallel_cold_s, parallel_warm_s, shard_cold_s)
    return {
        "sweep": {
            "systems": list(SYSTEMS),
            "apps": list(TABLE3_ORDER),
            "n_specs": len(specs),
            "n_frames": n_frames,
            "seed": seed,
        },
        "engine": engine,
        "jobs": jobs,
        "shards": shards,
        "reps": reps,
        "cpu_count": os.cpu_count(),
        "available_cpus": available_cpus(),
        "scalar_serial_s": round(scalar_serial_s, 3),
        "kernel_speedup": round(scalar_serial_s / serial_s, 2),
        "serial_s": round(serial_s, 3),
        "serial_warm_s": round(serial_warm_s, 3),
        "obs_untraced_s": round(obs_untraced_s, 3),
        "obs_traced_s": round(obs_traced_s, 3),
        "obs_disabled_overhead": round(obs_untraced_s / serial_warm_s, 4),
        "obs_trace_overhead": round(obs_traced_s / obs_untraced_s, 2),
        "parallel_cold_s": round(parallel_cold_s, 3),
        "shard_cold_s": round(shard_cold_s, 3),
        "parallel_warm_s": round(parallel_warm_s, 3),
        "speedup_cold": round(serial_s / parallel_cold_s, 2),
        "speedup_shard_cold": round(serial_s / shard_cold_s, 2),
        "speedup_warm": round(serial_s / parallel_warm_s, 2),
        "speedup": round(serial_s / best_batched_s, 2),
        "shard_stats": {
            "shards": shard_stats.shards,
            "workers": shard_stats.workers,
            "steals": shard_stats.steals,
            "requeues": shard_stats.requeues,
            "executed": shard_stats.executed,
        },
        "warm_cache_hits": warm_hits,
        "bit_identical": identical,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes (default: CPUs available to this process)",
    )
    parser.add_argument(
        "--shards", type=int, default=None,
        help="shard count for the sharded run (default: max(4, 2 * jobs))",
    )
    parser.add_argument(
        "--reps", type=int, default=3,
        help="repetitions of the batched legs; the minimum is reported",
    )
    parser.add_argument("--frames", type=int, default=120)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--engine", default="vector", choices=list(ENGINE_NAMES))
    parser.add_argument("--out", default="BENCH_batch.json")
    args = parser.parse_args(argv)

    jobs = args.jobs if args.jobs is not None else available_cpus()
    report = bench(
        jobs=jobs,
        n_frames=args.frames,
        seed=args.seed,
        engine=args.engine,
        shards=args.shards,
        reps=args.reps,
    )
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    if not report["bit_identical"]:
        print("ERROR: scalar/serial/batched results diverged", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
