"""Batch-engine timing smoke benchmark: serial vs parallel vs warm cache.

Runs one multi-point figure sweep (the Fig. 12 grid: six system designs
across the Table 3 titles) three ways and writes a ``BENCH_batch.json``
timing artifact:

* ``scalar_serial_s`` — one spec at a time on the scalar task-graph
  oracle (the original per-frame execution model);
* ``serial_s`` — one spec at a time on the requested ``--engine``
  (default: the vectorized frame kernels);
* ``parallel_cold_s`` — the batch engine at ``--jobs`` workers with a
  cold on-disk cache;
* ``parallel_warm_s`` — the same engine invoked again, so every spec is
  answered by the cache.

``kernel_speedup`` is ``scalar_serial_s`` over ``serial_s`` — the
per-spec win of the array-programmed kernels, measured in the same
process on the same machine (the ratio the regression gate tracks).
``speedup`` is ``serial_s`` over the best batched time.  On a multi-core
machine the cold pool already wins; on a single core the win comes from
memoization (``cpu_count`` is recorded so readers can tell which).  The
script also verifies that scalar, serial and parallel results are all
bit-identical.

Usage::

    PYTHONPATH=src python benchmarks/bench_batch.py --jobs 4 --frames 120
"""

from __future__ import annotations

import argparse
import json
import os
import pickle
import sys
import tempfile
import time
from dataclasses import replace
from pathlib import Path

from repro.sim.runner import BatchEngine, ENGINE_NAMES, Sweep, run
from repro.workloads.apps import TABLE3_ORDER

#: The Fig. 12 design spectrum — the sweep every machine can complete fast.
SYSTEMS = ("local", "static", "ffr", "dfr", "sw-qvr", "qvr")


def bench(jobs: int, n_frames: int, seed: int, engine: str = "vector") -> dict:
    """Time the execution modes over one Fig. 12-style sweep."""
    sweep = Sweep(
        systems=SYSTEMS,
        apps=TABLE3_ORDER,
        seeds=(seed,),
        n_frames=n_frames,
        engine=engine,
    )
    specs = sweep.specs()

    start = time.perf_counter()
    scalar = [run(replace(spec, engine="scalar")) for spec in specs]
    scalar_serial_s = time.perf_counter() - start

    start = time.perf_counter()
    serial = [run(spec) for spec in specs]
    serial_s = time.perf_counter() - start

    with tempfile.TemporaryDirectory(prefix="qvr-bench-cache-") as cache_dir:
        cold_engine = BatchEngine(jobs=jobs, cache_dir=cache_dir)
        start = time.perf_counter()
        cold = cold_engine.run_specs(specs)
        parallel_cold_s = time.perf_counter() - start

        warm_engine = BatchEngine(jobs=jobs, cache_dir=cache_dir)
        start = time.perf_counter()
        warm = warm_engine.run_specs(specs)
        parallel_warm_s = time.perf_counter() - start
        warm_hits = warm_engine.stats.cache_hits

    identical = all(
        pickle.dumps(cold[spec]) == pickle.dumps(result)
        and pickle.dumps(warm[spec]) == pickle.dumps(result)
        and pickle.dumps(oracle) == pickle.dumps(result)
        for spec, result, oracle in zip(specs, serial, scalar)
    )
    best_batched_s = min(parallel_cold_s, parallel_warm_s)
    return {
        "sweep": {
            "systems": list(SYSTEMS),
            "apps": list(TABLE3_ORDER),
            "n_specs": len(specs),
            "n_frames": n_frames,
            "seed": seed,
        },
        "engine": engine,
        "jobs": jobs,
        "cpu_count": os.cpu_count(),
        "scalar_serial_s": round(scalar_serial_s, 3),
        "kernel_speedup": round(scalar_serial_s / serial_s, 2),
        "serial_s": round(serial_s, 3),
        "parallel_cold_s": round(parallel_cold_s, 3),
        "parallel_warm_s": round(parallel_warm_s, 3),
        "speedup_cold": round(serial_s / parallel_cold_s, 2),
        "speedup_warm": round(serial_s / parallel_warm_s, 2),
        "speedup": round(serial_s / best_batched_s, 2),
        "warm_cache_hits": warm_hits,
        "bit_identical": identical,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument("--frames", type=int, default=120)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--engine", default="vector", choices=list(ENGINE_NAMES))
    parser.add_argument("--out", default="BENCH_batch.json")
    args = parser.parse_args(argv)

    report = bench(
        jobs=args.jobs, n_frames=args.frames, seed=args.seed, engine=args.engine
    )
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    if not report["bit_identical"]:
        print("ERROR: scalar/serial/batched results diverged", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
