"""Fig. 3: latency breakdown + FPS of local-only and remote-only rendering.

Regenerates both subfigures on the Table 1 tethered apps.  The paper's
headline observations are asserted: local-only is bottlenecked by the raw
GPU (latencies far above 25 ms MTP, FPS well under 90), and remote-only
spends ~63 % of its latency in network transmission.
"""

import numpy as np

from repro.analysis.calibration import ANCHORS
from repro.analysis.experiments import fig3_motivation
from repro.analysis.report import format_table


def test_fig3_motivation(paper_benchmark):
    local_rows, remote_rows = paper_benchmark(fig3_motivation)

    print()
    print(
        format_table(
            ["app", "tracking", "render", "ATW", "display", "total(ms)", "FPS"],
            [
                [r.app, r.tracking_ms, r.rendering_ms, r.atw_ms, r.display_ms, r.total_ms, r.fps]
                for r in local_rows
            ],
            title="Fig. 3a — local-only rendering",
        )
    )
    print(
        format_table(
            ["app", "send", "render", "transmit", "ATW+VD", "total(ms)", "FPS", "tx share"],
            [
                [
                    r.app, r.sending_ms, r.rendering_ms, r.transmit_ms,
                    r.atw_ms, r.total_ms, r.fps, r.transmit_share,
                ]
                for r in remote_rows
            ],
            title="Fig. 3b — remote-only rendering",
        )
    )

    # Local-only: GPU-bound, misses both realtime requirements.
    for row in local_rows:
        assert row.total_ms > 25.0
        assert row.fps < 90.0
    # Remote-only: transmission dominates (paper: ~63 %).
    mean_share = float(np.mean([r.transmit_share for r in remote_rows]))
    assert ANCHORS["remote_transmit_share"].check(mean_share)
    for row in remote_rows:
        assert row.total_ms > 25.0
