"""Fig. 15: normalized system energy under hardware/network conditions.

Regenerates the Q-VR-vs-local energy grid and asserts the paper's shapes:
~73 % average energy reduction at the default configuration (band), higher
network throughput generally improving energy efficiency, and the
existence of a small number of unfavourable cells (the paper's 1.24 / 1.09
outliers on 4G LTE) without the average degrading.
"""

import numpy as np

from repro.analysis.calibration import ANCHORS
from repro.analysis.experiments import fig15_energy
from repro.analysis.report import format_table
from repro.workloads.apps import APPS, TABLE3_ORDER


def test_fig15(paper_benchmark, batch_engine):
    cells = paper_benchmark(fig15_energy, 200, engine=batch_engine)

    by_config: dict[tuple[float, str], dict[str, float]] = {}
    for cell in cells:
        row = by_config.setdefault((cell.frequency_mhz, cell.network), {})
        row[cell.app] = cell.normalized_energy

    print()
    print(
        format_table(
            ["Freq", "Network"] + [APPS[a].short_name for a in TABLE3_ORDER],
            [
                [f"{freq:.0f} MHz", network] + [row[a] for a in TABLE3_ORDER]
                for (freq, network), row in by_config.items()
            ],
            title="Fig. 15 — Q-VR system energy normalised to local rendering",
        )
    )

    default_cells = [c for c in cells if c.frequency_mhz == 500.0 and c.network == "Wi-Fi"]
    mean_reduction = 1.0 - float(np.mean([c.normalized_energy for c in default_cells]))
    assert ANCHORS["qvr_energy_reduction"].check(mean_reduction)

    # Higher downlink throughput improves (or maintains) energy efficiency.
    for freq in (500.0, 400.0, 300.0):
        lte = np.mean(list(by_config[(freq, "4G LTE")].values()))
        wifi = np.mean(list(by_config[(freq, "Wi-Fi")].values()))
        fiveg = np.mean(list(by_config[(freq, "Early 5G")].values()))
        assert fiveg <= wifi + 0.05
        assert wifi <= lte + 0.05

    # All cells stay positive; the grand average is a clear win.
    values = [c.normalized_energy for c in cells]
    assert all(v > 0 for v in values)
    assert float(np.mean(values)) < 0.75
