#!/usr/bin/env bash
# Consolidated lint entry point: the ruff style gate plus the repro-lint
# determinism & hash-integrity gate (docs/determinism.md).  CI and
# `make lint` both run this script, so local runs match the gate.
#
# Extra arguments are passed through to `repro lint` (e.g.
# `scripts/lint.sh --format json`).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== ruff check =="
if command -v ruff >/dev/null 2>&1; then
    ruff check src tests benchmarks examples
else
    # CI installs ruff explicitly; locally the determinism gate is still
    # worth running on its own.
    echo "ruff not installed; skipping the style gate" >&2
fi

echo "== repro lint =="
PYTHONPATH=src python -m repro lint src "$@"
