"""Setup shim: enables editable installs on toolchains without the
``wheel`` package (offline environments)."""

from setuptools import setup

setup()
