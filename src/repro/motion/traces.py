"""Synthetic head- and eye-motion trace generation.

The paper's controller exploits the strong correlation between user motion
and rendering workload (Sec. 4.1, Fig. 8).  Real HMD traces are not
available offline, so this module synthesises statistically realistic ones:

* **head motion** — an Ornstein-Uhlenbeck (OU) process on the 6-DoF
  velocity vector.  OU velocities are mean-reverting and temporally
  correlated, which matches measured head-motion spectra far better than
  white noise: users drift, sweep and settle.  Alternating *calm* and
  *active* phases reproduce the bursty exploration behaviour that makes
  static partitioning fail (Challenge I);
* **gaze motion** — a saccade/fixation model: gaze fixates for an
  exponentially distributed duration with small pursuit drift, then jumps
  (saccades) to a new target biased toward the panel centre.

All generation is deterministic for a given seed, so every experiment in
the repository is exactly reproducible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import WorkloadError
from repro.motion.dof import GazePoint, Pose

__all__ = [
    "HeadMotionConfig",
    "GazeMotionConfig",
    "MotionSample",
    "MotionTrace",
    "generate_trace",
]


@dataclass(frozen=True)
class HeadMotionConfig:
    """Parameters of the OU-process head motion model.

    Attributes
    ----------
    rotation_intensity_deg_s:
        RMS angular speed (per axis) during *active* phases.
    translation_intensity_m_s:
        RMS linear speed (per axis) during active phases.
    calm_scale:
        Multiplier applied to both intensities during calm phases (< 1).
    mean_phase_s:
        Mean duration of a calm/active phase.
    correlation_time_s:
        OU mean-reversion time constant of the velocity process.
    """

    rotation_intensity_deg_s: float = 40.0
    translation_intensity_m_s: float = 0.25
    calm_scale: float = 0.25
    mean_phase_s: float = 2.0
    correlation_time_s: float = 0.4

    def __post_init__(self) -> None:
        if self.correlation_time_s <= 0 or self.mean_phase_s <= 0:
            raise WorkloadError("motion time constants must be positive")
        if not 0 <= self.calm_scale <= 1:
            raise WorkloadError(f"calm_scale must be in [0, 1], got {self.calm_scale}")


@dataclass(frozen=True)
class GazeMotionConfig:
    """Parameters of the saccade/fixation gaze model.

    Attributes
    ----------
    mean_fixation_s:
        Mean fixation duration before a saccade (~300 ms for natural
        viewing).
    pursuit_speed_px_s:
        RMS smooth-pursuit drift speed during fixations.
    center_bias:
        0..1 pull of saccade targets toward the panel centre.
    """

    mean_fixation_s: float = 0.3
    pursuit_speed_px_s: float = 60.0
    center_bias: float = 0.4

    def __post_init__(self) -> None:
        if self.mean_fixation_s <= 0:
            raise WorkloadError("mean_fixation_s must be positive")
        if not 0 <= self.center_bias <= 1:
            raise WorkloadError(f"center_bias must be in [0, 1], got {self.center_bias}")


@dataclass(frozen=True)
class MotionSample:
    """One frame's worth of user state.

    Attributes
    ----------
    frame:
        Frame index.
    time_ms:
        Nominal sample time in milliseconds from trace start.
    pose:
        6-DoF head pose.
    gaze:
        Fovea centre on the panel.
    activity:
        0..1 instantaneous motion activity level (normalised head speed);
        the workload model uses it to correlate scene complexity with
        motion, as Fig. 8 observes.
    """

    frame: int
    time_ms: float
    pose: Pose
    gaze: GazePoint
    activity: float


@dataclass
class MotionTrace:
    """A deterministic per-frame sequence of :class:`MotionSample`."""

    samples: list[MotionSample] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.samples)

    def __getitem__(self, index: int) -> MotionSample:
        return self.samples[index]

    def __iter__(self):
        return iter(self.samples)

    @property
    def mean_activity(self) -> float:
        """Average activity level over the trace."""
        if not self.samples:
            return 0.0
        return float(np.mean([s.activity for s in self.samples]))


def generate_trace(
    n_frames: int,
    frame_dt_ms: float,
    panel_width_px: int,
    panel_height_px: int,
    seed: int = 0,
    head: HeadMotionConfig | None = None,
    gaze: GazeMotionConfig | None = None,
) -> MotionTrace:
    """Generate a deterministic motion trace.

    Parameters
    ----------
    n_frames:
        Number of frames to generate.
    frame_dt_ms:
        Nominal inter-frame interval used to integrate the motion models.
    panel_width_px, panel_height_px:
        Per-eye panel dimensions that bound the gaze point.
    seed:
        RNG seed; identical seeds produce identical traces.
    head, gaze:
        Model parameters; defaults reproduce natural exploration behaviour.
    """
    if n_frames < 0:
        raise WorkloadError(f"n_frames must be >= 0, got {n_frames}")
    if frame_dt_ms <= 0:
        raise WorkloadError(f"frame_dt_ms must be > 0, got {frame_dt_ms}")
    head_cfg = head if head is not None else HeadMotionConfig()
    gaze_cfg = gaze if gaze is not None else GazeMotionConfig()
    rng = np.random.default_rng(seed)
    dt_s = frame_dt_ms / 1000.0

    samples: list[MotionSample] = []
    pose = np.zeros(6)  # x, y, z, yaw, pitch, roll
    velocity = np.zeros(6)
    active = bool(rng.integers(0, 2))
    phase_left_s = float(rng.exponential(head_cfg.mean_phase_s))

    gaze_x = panel_width_px / 2.0
    gaze_y = panel_height_px / 2.0
    fixation_left_s = float(rng.exponential(gaze_cfg.mean_fixation_s))

    # OU discretisation: v' = v * decay + sigma * sqrt(1 - decay^2) * noise
    decay = math.exp(-dt_s / head_cfg.correlation_time_s)
    diffusion = math.sqrt(max(1.0 - decay * decay, 0.0))
    sigma = np.array(
        [head_cfg.translation_intensity_m_s] * 3
        + [head_cfg.rotation_intensity_deg_s] * 3
    )
    max_speed = float(np.linalg.norm(sigma[3:])) * 2.0  # activity normaliser
    # Hoist the per-frame ``sigma * scale * diffusion`` products: only two
    # scale values ever occur, and ``sigma * 1.0`` is bitwise ``sigma``.
    coeff_active = sigma * diffusion
    coeff_calm = (sigma * head_cfg.calm_scale) * diffusion

    for frame in range(n_frames):
        phase_left_s -= dt_s
        if phase_left_s <= 0:
            active = not active
            phase_left_s = float(rng.exponential(head_cfg.mean_phase_s))

        noise = rng.standard_normal(6)
        velocity = velocity * decay + (coeff_active if active else coeff_calm) * noise
        pose = pose + velocity * dt_s

        fixation_left_s -= dt_s
        if fixation_left_s <= 0:
            # Saccade: jump toward a fresh target, biased to the centre.
            target_x = rng.uniform(0, panel_width_px)
            target_y = rng.uniform(0, panel_height_px)
            bias = gaze_cfg.center_bias
            gaze_x = (1 - bias) * target_x + bias * panel_width_px / 2.0
            gaze_y = (1 - bias) * target_y + bias * panel_height_px / 2.0
            fixation_left_s = float(rng.exponential(gaze_cfg.mean_fixation_s))
        else:
            # Smooth pursuit drift inside the fixation.
            gaze_x += rng.normal(0, gaze_cfg.pursuit_speed_px_s) * dt_s
            gaze_y += rng.normal(0, gaze_cfg.pursuit_speed_px_s) * dt_s
        # Branchy clamps instead of np.clip: identical bits for finite
        # floats, without the per-frame numpy scalar dispatch cost.
        gaze_x = 0.0 if gaze_x < 0 else min(float(gaze_x), float(panel_width_px))
        gaze_y = 0.0 if gaze_y < 0 else min(float(gaze_y), float(panel_height_px))

        rotation_speed = float(np.linalg.norm(velocity[3:]))
        activity = min(1.0, rotation_speed / max_speed) if max_speed > 0 else 0.0
        samples.append(
            MotionSample(
                frame=frame,
                time_ms=frame * frame_dt_ms,
                pose=Pose(*pose.tolist()),
                gaze=GazePoint(gaze_x, gaze_y),
                activity=activity,
            )
        )
    return MotionTrace(samples=samples)
