"""Sensor sampling model: trackers run on their own frequencies.

Sec. 2.1 / Sec. 7 of the paper: motion sensors and eye trackers execute in
parallel with the graphics pipeline at their own refresh rates (IMU ~1 kHz,
eye tracker 120 Hz), and sensor data takes ~2 ms to reach the rendering
engine.  The consequence for end-to-end latency is *sampling staleness*:
when the pipeline starts a frame at time ``t`` it sees the latest sample
taken at or before ``t - transport``, not the instantaneous user state.

:class:`SampledSensor` captures exactly that: given a per-frame ground-truth
trace, it answers "which sample does the pipeline see at time t, and how old
is it?".
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro import constants
from repro.errors import ConfigurationError

__all__ = ["SensorReading", "SampledSensor", "eye_tracker", "head_tracker"]


@dataclass(frozen=True)
class SensorReading:
    """A sensor sample as observed by the rendering pipeline.

    Attributes
    ----------
    sample_time_ms:
        When the sensor physically captured the sample.
    available_time_ms:
        When the sample became visible to the pipeline (capture + transport).
    age_ms:
        Staleness at the query instant (query time - sample time).
    """

    sample_time_ms: float
    available_time_ms: float
    age_ms: float


@dataclass(frozen=True)
class SampledSensor:
    """A periodic sensor with a fixed transport delay into the pipeline.

    Parameters
    ----------
    rate_hz:
        Sensor refresh rate.
    transport_ms:
        Fixed latency from physical capture to pipeline visibility.
    """

    rate_hz: float
    transport_ms: float = constants.SENSOR_TRANSPORT_MS

    def __post_init__(self) -> None:
        if self.rate_hz <= 0:
            raise ConfigurationError(f"sensor rate must be > 0 Hz, got {self.rate_hz}")
        if self.transport_ms < 0:
            raise ConfigurationError(
                f"transport latency must be >= 0, got {self.transport_ms}"
            )

    @property
    def period_ms(self) -> float:
        """Interval between consecutive sensor samples."""
        return 1000.0 / self.rate_hz

    def latest_reading(self, query_time_ms: float) -> SensorReading:
        """Return the newest sample visible to the pipeline at a given time.

        A sample captured at ``k * period`` becomes visible at
        ``k * period + transport``; the newest visible one at ``t`` is
        ``k = floor((t - transport) / period)`` (clamped at the first
        sample, which is defined to exist at t=0).
        """
        k = math.floor((query_time_ms - self.transport_ms) / self.period_ms)
        k = max(k, 0)
        sample_time = k * self.period_ms
        return SensorReading(
            sample_time_ms=sample_time,
            available_time_ms=sample_time + self.transport_ms,
            age_ms=max(query_time_ms - sample_time, 0.0),
        )

    def worst_case_age_ms(self) -> float:
        """Maximum staleness a frame can observe (one period + transport)."""
        return self.period_ms + self.transport_ms


def eye_tracker() -> SampledSensor:
    """The paper's state-of-the-art 120 Hz eye tracker (HTC Vive Pro Eye)."""
    return SampledSensor(rate_hz=constants.EYE_TRACKER_RATE_HZ)


def head_tracker() -> SampledSensor:
    """A 1 kHz-class head-tracking IMU."""
    return SampledSensor(rate_hz=constants.HEAD_TRACKER_RATE_HZ)
