"""Six-degree-of-freedom pose algebra for HMD head tracking.

A head pose is position (x, y, z) in metres plus orientation (yaw, pitch,
roll) in degrees.  The Q-VR hardware consumes *deltas* between consecutive
frames (Sec. 4.1: "6 bits for degrees of freedom changes on HMD"), so the
module centres on :class:`Pose` and :class:`PoseDelta` with subtraction,
magnitude and per-axis threshold tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["Pose", "PoseDelta", "GazePoint", "GazeDelta"]

_DOF_NAMES = ("x", "y", "z", "yaw", "pitch", "roll")


@dataclass(frozen=True)
class Pose:
    """A 6-DoF head pose: translation in metres, rotation in degrees."""

    x: float = 0.0
    y: float = 0.0
    z: float = 0.0
    yaw: float = 0.0
    pitch: float = 0.0
    roll: float = 0.0

    def delta_from(self, previous: "Pose") -> "PoseDelta":
        """Per-axis change from ``previous`` to this pose."""
        return PoseDelta(
            dx=self.x - previous.x,
            dy=self.y - previous.y,
            dz=self.z - previous.z,
            dyaw=_wrap_angle(self.yaw - previous.yaw),
            dpitch=_wrap_angle(self.pitch - previous.pitch),
            droll=_wrap_angle(self.roll - previous.roll),
        )

    def as_tuple(self) -> tuple[float, float, float, float, float, float]:
        """Return ``(x, y, z, yaw, pitch, roll)``."""
        return (self.x, self.y, self.z, self.yaw, self.pitch, self.roll)


@dataclass(frozen=True)
class PoseDelta:
    """Per-axis 6-DoF change between two consecutive frames."""

    dx: float = 0.0
    dy: float = 0.0
    dz: float = 0.0
    dyaw: float = 0.0
    dpitch: float = 0.0
    droll: float = 0.0

    def as_tuple(self) -> tuple[float, float, float, float, float, float]:
        """Return ``(dx, dy, dz, dyaw, dpitch, droll)``."""
        return (self.dx, self.dy, self.dz, self.dyaw, self.dpitch, self.droll)

    @property
    def translation_magnitude_m(self) -> float:
        """Euclidean translation distance in metres."""
        return math.sqrt(self.dx**2 + self.dy**2 + self.dz**2)

    @property
    def rotation_magnitude_deg(self) -> float:
        """Euclidean rotation magnitude in degrees."""
        return math.sqrt(self.dyaw**2 + self.dpitch**2 + self.droll**2)

    def exceeds(
        self, translation_threshold_m: float, rotation_threshold_deg: float
    ) -> tuple[bool, bool, bool, bool, bool, bool]:
        """Per-axis "moved beyond threshold" flags, in DoF order.

        This is the 6-bit signal LIWC's motion codec quantises.
        """
        return (
            abs(self.dx) > translation_threshold_m,
            abs(self.dy) > translation_threshold_m,
            abs(self.dz) > translation_threshold_m,
            abs(self.dyaw) > rotation_threshold_deg,
            abs(self.dpitch) > rotation_threshold_deg,
            abs(self.droll) > rotation_threshold_deg,
        )


@dataclass(frozen=True)
class GazePoint:
    """Gaze (fovea centre) position on the panel, in pixels."""

    x_px: float
    y_px: float

    def delta_from(self, previous: "GazePoint") -> "GazeDelta":
        """Gaze movement from ``previous`` to this point."""
        return GazeDelta(dx_px=self.x_px - previous.x_px, dy_px=self.y_px - previous.y_px)


@dataclass(frozen=True)
class GazeDelta:
    """Fovea-centre movement between two frames, in pixels."""

    dx_px: float = 0.0
    dy_px: float = 0.0

    @property
    def magnitude_px(self) -> float:
        """Euclidean gaze movement in pixels."""
        return math.hypot(self.dx_px, self.dy_px)

    @property
    def direction_quadrant(self) -> int:
        """Quadrant (0..3) of the movement direction.

        0 = +x/+y, 1 = -x/+y, 2 = -x/-y, 3 = +x/-y.  Used by the motion
        codec's 2 direction bits.
        """
        if self.dx_px >= 0 and self.dy_px >= 0:
            return 0
        if self.dx_px < 0 and self.dy_px >= 0:
            return 1
        if self.dx_px < 0 and self.dy_px < 0:
            return 2
        return 3


def _wrap_angle(angle_deg: float) -> float:
    """Wrap an angle difference into (-180, 180] degrees."""
    wrapped = (angle_deg + 180.0) % 360.0 - 180.0
    if wrapped == -180.0:
        return 180.0
    return wrapped
