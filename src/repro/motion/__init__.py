"""Motion substrate: 6-DoF pose algebra, trace synthesis, sensor sampling."""

from repro.motion.dof import GazeDelta, GazePoint, Pose, PoseDelta
from repro.motion.sensors import SampledSensor, SensorReading, eye_tracker, head_tracker
from repro.motion.traces import (
    GazeMotionConfig,
    HeadMotionConfig,
    MotionSample,
    MotionTrace,
    generate_trace,
)

__all__ = [
    "Pose",
    "PoseDelta",
    "GazePoint",
    "GazeDelta",
    "SampledSensor",
    "SensorReading",
    "eye_tracker",
    "head_tracker",
    "HeadMotionConfig",
    "GazeMotionConfig",
    "MotionSample",
    "MotionTrace",
    "generate_trace",
]
