"""Q-VR reproduction: collaborative foveated rendering for mobile VR.

A complete Python reproduction of *Q-VR: System-Level Design for Future
Mobile Collaborative Virtual Reality* (ASPLOS 2021): the collaborative
foveated software layer (adaptive fovea sizing, Eq. 1), the LIWC hardware
workload controller (Eq. 2 + Q-learning table), the unified composition
and ATW unit (Eq. 3/4), every baseline the paper compares against, and the
full simulation substrate (mobile GPU timing model, network/codec models,
motion traces, discrete-event pipeline, energy accounting).

Quick start::

    from repro import run_comparison, speedup_over

    results = run_comparison("GRID", systems=("local", "qvr"))
    print(speedup_over(results, "qvr"))  # end-to-end speedup over local
"""

from repro._version import __version__
from repro.core.foveation import DisplayGeometry, FoveationModel, MARModel, PartitionPlan
from repro.core.liwc import LIWC, LIWCConfig
from repro.core.uca import UCAConfig, UCAUnit
from repro.network.conditions import ALL_CONDITIONS, EARLY_5G, LTE_4G, WIFI
from repro.network.profile import (
    ConstantProfile,
    MarkovProfile,
    NetworkProfile,
    PiecewiseProfile,
    TraceProfile,
    as_profile,
    profile_by_name,
)
from repro.sim.metrics import FrameRecord, SimulationResult
from repro.sim.runner import (
    BatchEngine,
    RunSpec,
    Sweep,
    run,
    run_batch,
    run_comparison,
    speedup_over,
)
from repro.sim.systems import PlatformConfig, SYSTEM_NAMES, make_system
from repro.workloads.apps import APPS, TABLE3_ORDER, get_app

__all__ = [
    "MARModel",
    "DisplayGeometry",
    "FoveationModel",
    "PartitionPlan",
    "LIWC",
    "LIWCConfig",
    "UCAUnit",
    "UCAConfig",
    "WIFI",
    "LTE_4G",
    "EARLY_5G",
    "ALL_CONDITIONS",
    "NetworkProfile",
    "ConstantProfile",
    "PiecewiseProfile",
    "TraceProfile",
    "MarkovProfile",
    "as_profile",
    "profile_by_name",
    "SimulationResult",
    "FrameRecord",
    "RunSpec",
    "Sweep",
    "BatchEngine",
    "run",
    "run_batch",
    "run_comparison",
    "speedup_over",
    "PlatformConfig",
    "SYSTEM_NAMES",
    "make_system",
    "APPS",
    "TABLE3_ORDER",
    "get_app",
    "__version__",
]
