"""Q-VR core: foveation model, partition engine, LIWC, UCA, controllers."""

from repro.core.controllers import (
    ControlContext,
    ControlFeedback,
    EccentricityController,
    FixedEccentricityController,
    LIWCController,
    SoftwareAdaptiveController,
)
from repro.core.foveation import (
    DisplayGeometry,
    FoveationModel,
    LayerPartition,
    MARModel,
    PartitionPlan,
)
from repro.core.liwc import ACTIONS_DEG, LIWC, LIWCConfig, LatencyPredictor, MappingTable, MotionCodec
from repro.core.partition import FramePartition, PartitionEngine
from repro.core.perception import SurveyVerdict, check_plan, quality_score
from repro.core.uca import TileStats, UCAConfig, UCAUnit

__all__ = [
    "MARModel",
    "DisplayGeometry",
    "FoveationModel",
    "LayerPartition",
    "PartitionPlan",
    "SurveyVerdict",
    "check_plan",
    "quality_score",
    "FramePartition",
    "PartitionEngine",
    "LIWC",
    "LIWCConfig",
    "MotionCodec",
    "MappingTable",
    "LatencyPredictor",
    "ACTIONS_DEG",
    "UCAConfig",
    "UCAUnit",
    "TileStats",
    "ControlContext",
    "ControlFeedback",
    "EccentricityController",
    "FixedEccentricityController",
    "SoftwareAdaptiveController",
    "LIWCController",
]
