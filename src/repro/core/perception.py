"""Perception-constraint checking (stand-in for the paper's user survey).

Sec. 3.1 of the paper runs a 50-candidate image-quality survey and concludes
that *participants observe no visible quality difference between eccentricity
selections as long as the target MAR is satisfied*.  The survey's output is
therefore a binary constraint, which we encode directly: a partition plan
"passes the survey" iff every periphery layer is sampled at least as finely
as the MAR model demands at that layer's most acuity-critical (inner)
eccentricity, and the fovea layer is at native resolution.

This module also provides a small quality-score model used by the
``perception_survey`` example to reproduce the survey's *shape*: scores stay
flat while the MAR constraint holds and fall off once sampling drops below
the MAR requirement.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.foveation import FoveationModel, PartitionPlan
from repro.errors import FoveationError

__all__ = ["SurveyVerdict", "check_plan", "quality_score"]


@dataclass(frozen=True)
class SurveyVerdict:
    """Outcome of the MAR-constraint check for one partition plan.

    Attributes
    ----------
    passes:
        True when no layer violates its MAR sampling requirement.
    middle_margin, outer_margin:
        Ratio of allowed to actual sampling factor per layer; >= 1 means the
        layer satisfies its constraint (with slack), < 1 means violation.
    """

    passes: bool
    middle_margin: float
    outer_margin: float


def check_plan(model: FoveationModel, plan: PartitionPlan) -> SurveyVerdict:
    """Check a plan against the MAR constraints (the survey's conclusion).

    The maximum admissible sampling factor of a periphery layer is the MAR
    at its inner eccentricity divided by the display's native pixel pitch;
    the plan's actual factor must not exceed it.
    """
    allowed_middle, allowed_outer = model.layer_scales(plan.e1_deg, plan.e2_deg)
    if plan.middle_scale <= 0 or plan.outer_scale <= 0:
        raise FoveationError("layer scales must be positive")
    middle_margin = allowed_middle / plan.middle_scale
    outer_margin = allowed_outer / plan.outer_scale
    return SurveyVerdict(
        passes=middle_margin >= 1.0 - 1e-9 and outer_margin >= 1.0 - 1e-9,
        middle_margin=middle_margin,
        outer_margin=outer_margin,
    )


def quality_score(model: FoveationModel, plan: PartitionPlan) -> float:
    """Mean-opinion-style score in [0, 5] for a partition plan.

    Reproduces the survey's reported behaviour: a constant ceiling score
    while the MAR constraint is satisfied, degrading smoothly with the
    worst-layer violation margin otherwise.  The exact fall-off slope is not
    specified by the paper; we use a conservative linear penalty.
    """
    verdict = check_plan(model, plan)
    worst = min(verdict.middle_margin, verdict.outer_margin)
    if worst >= 1.0:
        return 5.0
    return max(0.0, 5.0 * worst)
