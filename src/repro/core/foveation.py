"""Vision-perception foveation model (paper Sec. 3, Eq. 1).

This module implements the software layer's central mathematics:

* the **MAR model** — the minimum angle of resolution the human eye can
  resolve grows linearly with eccentricity, ``omega(e) = omega_0 + m * e``
  (after Guenter et al. 2012, the model the paper adopts);
* the **display geometry** — converting eccentricity in degrees into pixel
  radii and screen areas for a given per-eye panel and field of view;
* the **layer partition** — Q-VR reorganises the classic three foveated
  layers into a *local fovea* layer (radius ``e1``, native resolution) and
  two *remote periphery* layers (middle: ``e1..e2``, outer: ``e2..edge``)
  rendered at MAR-reduced resolutions;
* **Eq. (1)** — the adaptive second eccentricity ``*e2`` is the one that
  minimises the total transmitted periphery pixels
  ``P_middle + P_outer``, with per-layer sampling factors
  ``*s_i = omega_i / omega* = (m * e_i + omega_0) / omega*``.

The resulting :class:`PartitionPlan` carries every quantity the rest of the
system consumes: per-layer pixel counts, resolution scales, transmitted
pixel totals and the resolution-reduction metric reported in Fig. 13.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro import constants
from repro.errors import FoveationError

__all__ = [
    "MARModel",
    "DisplayGeometry",
    "LayerPartition",
    "PartitionPlan",
    "FoveationModel",
]


@dataclass(frozen=True)
class MARModel:
    """Linear minimum-angle-of-resolution model ``omega(e) = omega_0 + m*e``.

    Parameters
    ----------
    slope:
        MAR growth per degree of eccentricity (``m`` in the paper), in
        degrees per degree.
    omega_0:
        MAR at the fovea centre, in degrees (finest resolvable angle).
    """

    slope: float = constants.MAR_SLOPE_DEG_PER_DEG
    omega_0: float = constants.FOVEA_MAR_DEG

    def __post_init__(self) -> None:
        if self.slope < 0 or self.omega_0 <= 0:
            raise FoveationError(
                f"MAR model requires slope >= 0 and omega_0 > 0, got "
                f"slope={self.slope}, omega_0={self.omega_0}"
            )

    def mar(self, eccentricity_deg: float) -> float:
        """Return the resolvable angle (degrees) at ``eccentricity_deg``."""
        if eccentricity_deg < 0:
            raise FoveationError(f"eccentricity must be >= 0, got {eccentricity_deg}")
        return self.omega_0 + self.slope * eccentricity_deg

    def sampling_factor(self, eccentricity_deg: float, display_mar_deg: float) -> float:
        """Return the linear down-sampling factor ``*s_i`` of Eq. (1).

        ``*s_i = omega_i / omega*`` where ``omega*`` is the display's native
        angular pixel pitch.  The factor is clamped to at least 1: near the
        fovea the display itself is the limit, so no further reduction is
        possible without perceptible loss.
        """
        if display_mar_deg <= 0:
            raise FoveationError(f"display MAR must be > 0, got {display_mar_deg}")
        return max(1.0, self.mar(eccentricity_deg) / display_mar_deg)


@dataclass(frozen=True)
class DisplayGeometry:
    """Per-eye HMD panel geometry, converting visual angle to pixels.

    Parameters
    ----------
    width_px, height_px:
        Native per-eye panel resolution.
    hfov_deg, vfov_deg:
        Per-eye field of view in degrees.
    """

    width_px: int
    height_px: int
    hfov_deg: float = constants.HMD_HFOV_DEG
    vfov_deg: float = constants.HMD_VFOV_DEG

    def __post_init__(self) -> None:
        if self.width_px <= 0 or self.height_px <= 0:
            raise FoveationError(
                f"panel must have positive dimensions, got "
                f"{self.width_px}x{self.height_px}"
            )
        if not 0 < self.hfov_deg <= 180 or not 0 < self.vfov_deg <= 180:
            raise FoveationError(
                f"FOV must be in (0, 180], got {self.hfov_deg}x{self.vfov_deg}"
            )

    @property
    def pixels_per_degree(self) -> float:
        """Average linear pixel density in pixels per degree of visual angle."""
        return 0.5 * (self.width_px / self.hfov_deg + self.height_px / self.vfov_deg)

    @property
    def native_mar_deg(self) -> float:
        """Angular pitch ``omega*`` of one native pixel, in degrees."""
        return 1.0 / self.pixels_per_degree

    @property
    def total_pixels(self) -> int:
        """Native per-eye pixel count."""
        return self.width_px * self.height_px

    @property
    def corner_eccentricity_deg(self) -> float:
        """Eccentricity (from panel centre) of the farthest panel corner."""
        half_diag_px = math.hypot(self.width_px / 2.0, self.height_px / 2.0)
        return half_diag_px / self.pixels_per_degree

    def radius_px(self, eccentricity_deg: float) -> float:
        """Convert an eccentricity in degrees to a pixel radius."""
        if eccentricity_deg < 0:
            raise FoveationError(f"eccentricity must be >= 0, got {eccentricity_deg}")
        return eccentricity_deg * self.pixels_per_degree

    def region_area_px(
        self,
        eccentricity_deg: float,
        gaze_x_px: float | None = None,
        gaze_y_px: float | None = None,
        samples: int = 256,
    ) -> float:
        """Area (px^2) of the eccentricity disc clipped to the panel.

        The disc of radius ``eccentricity_deg`` around the gaze point is
        intersected with the panel rectangle by numerically integrating the
        horizontal chord overlap over the vertical extent.  The integration
        is deterministic and accurate to well under 0.1 % at the default
        sample count.
        """
        gaze_x = self.width_px / 2.0 if gaze_x_px is None else gaze_x_px
        gaze_y = self.height_px / 2.0 if gaze_y_px is None else gaze_y_px
        radius = self.radius_px(eccentricity_deg)
        if radius == 0.0:
            return 0.0
        return _disc_rect_area(
            gaze_x, gaze_y, radius, self.width_px, self.height_px, samples
        )


_TRAPEZOID = getattr(np, "trapezoid", None) or np.trapz


def _disc_rect_area(
    cx: float, cy: float, r: float, width: float, height: float, samples: int
) -> float:
    """Area of a disc centred at ``(cx, cy)`` clipped to ``[0,w]x[0,h]``."""
    y_lo = max(0.0, cy - r)
    y_hi = min(height, cy + r)
    if y_hi <= y_lo:
        return 0.0
    ys = np.linspace(y_lo, y_hi, samples)
    half_chord = np.sqrt(np.maximum(r * r - (ys - cy) ** 2, 0.0))
    x_lo = np.maximum(0.0, cx - half_chord)
    x_hi = np.minimum(width, cx + half_chord)
    widths = np.maximum(x_hi - x_lo, 0.0)
    return float(_TRAPEZOID(widths, ys))


def _disc_rect_areas(
    cx: float,
    cy: float,
    radii: np.ndarray,
    width: float,
    height: float,
    samples: int = 129,
) -> np.ndarray:
    """Vectorised :func:`_disc_rect_area` over an array of radii.

    Each radius integrates the horizontal chord overlap on its own
    normalised vertical grid; all radii are evaluated in one broadcast
    pass, which is what keeps the per-frame Eq. (1) optimisation cheap.
    """
    radii = np.asarray(radii, dtype=float)
    if radii.ndim != 1:
        raise FoveationError("radii must be a 1-D array")
    # Integrate each radius over its own clipped vertical extent so that
    # the trapezoid rule never straddles the panel border (which would
    # introduce O(step) error for discs larger than the panel).
    y_lo = np.maximum(0.0, cy - radii)
    y_hi = np.minimum(height, cy + radii)
    span = np.maximum(y_hi - y_lo, 0.0)
    t = np.linspace(0.0, 1.0, samples)
    ys = y_lo[:, None] + np.outer(span, t)
    dy2 = np.maximum(radii[:, None] ** 2 - (ys - cy) ** 2, 0.0)
    half = np.sqrt(dy2)
    x_lo = np.maximum(0.0, cx - half)
    x_hi = np.minimum(width, cx + half)
    widths = np.maximum(x_hi - x_lo, 0.0)
    return _TRAPEZOID(widths, ys, axis=1)


@dataclass(frozen=True)
class LayerPartition:
    """Raw geometric split of one eye's frame into fovea/middle/outer areas.

    All areas are in native pixels-squared *before* any resolution scaling.
    """

    e1_deg: float
    e2_deg: float
    fovea_area_px: float
    middle_area_px: float
    outer_area_px: float

    @property
    def total_area_px(self) -> float:
        """Sum of the three layer areas (the full panel)."""
        return self.fovea_area_px + self.middle_area_px + self.outer_area_px


@dataclass(frozen=True)
class PartitionPlan:
    """Complete per-frame foveated partition decision (both eyes).

    This is the object the partition engine hands to the local renderer, the
    remote channel setup and the metrics pipeline.  Pixel quantities are
    totals over both eyes.

    Attributes
    ----------
    e1_deg, e2_deg:
        Selected fovea and second eccentricities (degrees).
    middle_scale, outer_scale:
        Linear down-sampling factors ``*s_i`` (>= 1) for the remote layers.
    fovea_pixels:
        Native-resolution pixels rendered locally.
    middle_pixels, outer_pixels:
        *Transmitted* (already down-sampled) pixels of the remote layers.
    native_pixels:
        Native panel pixels over both eyes (the no-foveation reference).
    """

    e1_deg: float
    e2_deg: float
    middle_scale: float
    outer_scale: float
    fovea_pixels: float
    middle_pixels: float
    outer_pixels: float
    native_pixels: float

    @property
    def periphery_pixels(self) -> float:
        """Transmitted periphery pixels ``P_middle + P_outer`` of Eq. (1)."""
        return self.middle_pixels + self.outer_pixels

    @property
    def effective_pixels(self) -> float:
        """Total pixels actually rendered anywhere (local + remote layers)."""
        return self.fovea_pixels + self.periphery_pixels

    @property
    def resolution_reduction(self) -> float:
        """Fraction of native resolution eliminated (Fig. 13 right axis)."""
        return 1.0 - self.effective_pixels / self.native_pixels

    @property
    def fovea_fraction(self) -> float:
        """Fraction of the native frame area covered by the local fovea."""
        return self.fovea_pixels / self.native_pixels

    @property
    def covers_full_frame(self) -> bool:
        """True when the fovea layer covers (essentially) the whole panel."""
        return self.periphery_pixels <= 1e-9


class FoveationModel:
    """Combined MAR + display model implementing Q-VR's layer partition.

    Parameters
    ----------
    display:
        Per-eye panel geometry.
    mar:
        Human visual acuity model; defaults to the paper's parameters.
    eyes:
        Number of eyes rendered (2 for a stereo HMD).

    Examples
    --------
    >>> display = DisplayGeometry(1920, 2160)
    >>> model = FoveationModel(display)
    >>> plan = model.plan(e1_deg=15.0)
    >>> 0.0 < plan.fovea_fraction < 1.0
    True
    >>> plan.e2_deg >= plan.e1_deg
    True
    """

    def __init__(
        self,
        display: DisplayGeometry,
        mar: MARModel | None = None,
        eyes: int = constants.EYES,
        scale_cap: float = 2.0,
    ) -> None:
        if eyes < 1:
            raise FoveationError(f"eyes must be >= 1, got {eyes}")
        if scale_cap < 1.0:
            raise FoveationError(f"scale_cap must be >= 1, got {scale_cap}")
        self.display = display
        self.mar = mar if mar is not None else MARModel()
        self.eyes = eyes
        #: Practical upper bound on the linear down-sampling factor.  The
        #: raw MAR model admits very coarse periphery on a wide-FOV HMD;
        #: production foveated pipelines (including the VRS hardware the
        #: paper's server side uses) cap the reduction to bound
        #: reconstruction artefacts, and the paper's reported data/
        #: resolution reductions (Fig. 13: 85 % data, 41 % resolution on
        #: average) correspond to a conservative cap of ~2x linear.
        self.scale_cap = scale_cap

    # -- layer geometry ----------------------------------------------------

    def partition_areas(
        self,
        e1_deg: float,
        e2_deg: float,
        gaze_x_px: float | None = None,
        gaze_y_px: float | None = None,
    ) -> LayerPartition:
        """Split one eye's panel into fovea/middle/outer native areas."""
        if e2_deg < e1_deg:
            raise FoveationError(f"e2 ({e2_deg}) must be >= e1 ({e1_deg})")
        area_e1 = self.display.region_area_px(e1_deg, gaze_x_px, gaze_y_px)
        area_e2 = self.display.region_area_px(e2_deg, gaze_x_px, gaze_y_px)
        total = float(self.display.total_pixels)
        return LayerPartition(
            e1_deg=e1_deg,
            e2_deg=e2_deg,
            fovea_area_px=area_e1,
            middle_area_px=max(area_e2 - area_e1, 0.0),
            outer_area_px=max(total - area_e2, 0.0),
        )

    # -- Eq. (1): periphery quality / *e2 optimisation ----------------------

    def layer_scales(self, e1_deg: float, e2_deg: float) -> tuple[float, float]:
        """Return ``(*s_middle, *s_outer)`` sampling factors per Eq. (1).

        Each periphery layer is sampled to just satisfy the MAR at its inner
        (most acuity-demanding) eccentricity, bounded by :attr:`scale_cap`.
        Capping only *increases* layer resolution relative to the raw MAR
        bound, so capped plans always satisfy the perception constraint.
        """
        omega_star = self.display.native_mar_deg
        middle = min(self.mar.sampling_factor(e1_deg, omega_star), self.scale_cap)
        outer = min(self.mar.sampling_factor(e2_deg, omega_star), self.scale_cap)
        return middle, outer

    def periphery_pixels(
        self,
        e1_deg: float,
        e2_deg: float,
        gaze_x_px: float | None = None,
        gaze_y_px: float | None = None,
    ) -> tuple[float, float]:
        """Transmitted (down-sampled) middle and outer pixels, both eyes."""
        partition = self.partition_areas(e1_deg, e2_deg, gaze_x_px, gaze_y_px)
        s_mid, s_out = self.layer_scales(e1_deg, e2_deg)
        middle = self.eyes * partition.middle_area_px / (s_mid * s_mid)
        outer = self.eyes * partition.outer_area_px / (s_out * s_out)
        return middle, outer

    def optimize_e2(
        self,
        e1_deg: float,
        gaze_x_px: float | None = None,
        gaze_y_px: float | None = None,
        step_deg: float = 0.5,
    ) -> float:
        """Select ``*e2 = argmin (P_middle + P_outer)`` — paper Eq. (1).

        A deterministic grid search over ``[e1, corner]`` at ``step_deg``
        resolution; the objective is smooth and unimodal in practice, so the
        grid minimum is within one step of the true optimum.
        """
        if step_deg <= 0:
            raise FoveationError(f"step_deg must be > 0, got {step_deg}")
        e_max = self.display.corner_eccentricity_deg
        if e1_deg >= e_max:
            return e1_deg
        candidates = np.arange(e1_deg, e_max + step_deg, step_deg)
        candidates = np.minimum(candidates, e_max)

        gaze_x = self.display.width_px / 2.0 if gaze_x_px is None else gaze_x_px
        gaze_y = self.display.height_px / 2.0 if gaze_y_px is None else gaze_y_px
        ppd = self.display.pixels_per_degree
        areas = _disc_rect_areas(
            gaze_x, gaze_y, candidates * ppd, self.display.width_px, self.display.height_px
        )
        area_e1 = areas[0]
        total = float(self.display.total_pixels)

        omega_star = self.display.native_mar_deg
        s_mid = min(self.mar.sampling_factor(e1_deg, omega_star), self.scale_cap)
        s_out = np.minimum(
            (self.mar.omega_0 + self.mar.slope * candidates) / omega_star,
            self.scale_cap,
        )
        s_out = np.maximum(s_out, 1.0)

        middle = np.maximum(areas - area_e1, 0.0) / (s_mid * s_mid)
        outer = np.maximum(total - areas, 0.0) / (s_out * s_out)
        cost = middle + outer
        return float(candidates[int(np.argmin(cost))])

    # -- full plan -----------------------------------------------------------

    def plan(
        self,
        e1_deg: float,
        e2_deg: float | None = None,
        gaze_x_px: float | None = None,
        gaze_y_px: float | None = None,
    ) -> PartitionPlan:
        """Build the complete :class:`PartitionPlan` for one frame.

        When ``e2_deg`` is omitted it is chosen adaptively via
        :meth:`optimize_e2` (the Q-VR behaviour); passing an explicit value
        reproduces the classic fixed-layer foveated rendering.
        """
        if e1_deg < 0:
            raise FoveationError(f"e1 must be >= 0, got {e1_deg}")
        e1 = min(e1_deg, self.display.corner_eccentricity_deg)
        e2 = self.optimize_e2(e1, gaze_x_px, gaze_y_px) if e2_deg is None else e2_deg
        if e2 < e1:
            raise FoveationError(f"e2 ({e2}) must be >= e1 ({e1})")
        e2 = min(e2, self.display.corner_eccentricity_deg)

        partition = self.partition_areas(e1, e2, gaze_x_px, gaze_y_px)
        s_mid, s_out = self.layer_scales(e1, e2)
        middle_px = self.eyes * partition.middle_area_px / (s_mid * s_mid)
        outer_px = self.eyes * partition.outer_area_px / (s_out * s_out)
        return PartitionPlan(
            e1_deg=e1,
            e2_deg=e2,
            middle_scale=s_mid,
            outer_scale=s_out,
            fovea_pixels=self.eyes * partition.fovea_area_px,
            middle_pixels=middle_px,
            outer_pixels=outer_px,
            native_pixels=float(self.eyes * self.display.total_pixels),
        )


@lru_cache(maxsize=64)
def default_model(width_px: int, height_px: int) -> FoveationModel:
    """Return a cached :class:`FoveationModel` for a per-eye resolution."""
    return FoveationModel(DisplayGeometry(width_px, height_px))
