"""Partition engine: from an eccentricity decision to concrete work.

Implements the software-layer setup of Fig. 7: given a frame's full
workload, a gaze point and the selected ``e1``, it

* builds the :class:`~repro.core.foveation.PartitionPlan` (with the Eq. (1)
  adaptive ``*e2``),
* splits the rendering workload into the local *fovea channel* and the
  remote *periphery channels*, and
* computes the transmitted payload of the middle/outer layer streams.

Workload split model: fragments scale with the rendered area of each
region; vertices (and draw batches) scale sub-linearly because frustum/
scissor culling is imperfect — a *culling residue* of the scene's geometry
is processed regardless of viewport size.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codec.h264 import H264Model
from repro.core.foveation import FoveationModel, PartitionPlan
from repro.errors import FoveationError
from repro.gpu.perf_model import RenderWorkload
from repro.motion.dof import GazePoint

__all__ = ["FramePartition", "PartitionEngine", "split_local_workload", "split_remote_workload"]

#: Fraction of scene geometry processed even for a tiny viewport
#: (coarse-grained culling leaves this residue).
CULLING_RESIDUE = 0.12

#: Geometry share the remote server always processes (shared scene graph,
#: shadow casters) even when the periphery is small.
REMOTE_GEOMETRY_FLOOR = 0.20


def split_local_workload(full: RenderWorkload, plan: PartitionPlan) -> RenderWorkload:
    """Local fovea-channel workload for a partition plan.

    Fragments scale with the fovea's share of the native frame area;
    vertices and batches keep the culling residue.
    """
    area = plan.fovea_fraction
    vertex_scale = CULLING_RESIDUE + (1.0 - CULLING_RESIDUE) * area
    return full.scaled(fragment_scale=area, vertex_scale=vertex_scale)


def split_remote_workload(full: RenderWorkload, plan: PartitionPlan) -> RenderWorkload:
    """Remote periphery-channel workload (what the server renders).

    The server shades the *down-sampled* periphery pixels; its geometry
    load covers the scene outside the fovea plus a floor for shared work.
    """
    fragment_scale = plan.periphery_pixels / plan.native_pixels
    vertex_scale = REMOTE_GEOMETRY_FLOOR + (1.0 - REMOTE_GEOMETRY_FLOOR) * (
        1.0 - plan.fovea_fraction
    )
    return full.scaled(fragment_scale=fragment_scale, vertex_scale=vertex_scale)


@dataclass(frozen=True)
class FramePartition:
    """A fully resolved per-frame partition decision.

    Attributes
    ----------
    plan:
        The geometric foveation plan (e1, *e2, scales, pixel counts).
    local:
        Fovea-channel workload for the mobile GPU.
    remote:
        Periphery-channel workload for the rendering server.
    middle_bytes, outer_bytes:
        Compressed payload of the two periphery streams.
    """

    plan: PartitionPlan
    local: RenderWorkload
    remote: RenderWorkload
    middle_bytes: float
    outer_bytes: float

    @property
    def transmitted_bytes(self) -> float:
        """Total downlink payload for this frame."""
        return self.middle_bytes + self.outer_bytes


class PartitionEngine:
    """Builds :class:`FramePartition` objects for successive frames.

    Parameters
    ----------
    foveation:
        Display/MAR model used for the geometric plan.
    codec:
        Rate model used to size the periphery streams.
    """

    def __init__(self, foveation: FoveationModel, codec: H264Model | None = None) -> None:
        self.foveation = foveation
        self.codec = codec if codec is not None else H264Model()

    def partition(
        self,
        full: RenderWorkload,
        e1_deg: float,
        gaze: GazePoint | None = None,
        content_complexity: float = 0.5,
        e2_deg: float | None = None,
    ) -> FramePartition:
        """Resolve one frame's partition at the given fovea eccentricity."""
        if e1_deg < 0:
            raise FoveationError(f"e1 must be >= 0, got {e1_deg}")
        gaze_x = gaze.x_px if gaze is not None else None
        gaze_y = gaze.y_px if gaze is not None else None
        plan = self.foveation.plan(e1_deg, e2_deg, gaze_x, gaze_y)
        middle = self.codec.encode_layer(
            plan.middle_pixels, content_complexity, plan.middle_scale
        )
        outer = self.codec.encode_layer(
            plan.outer_pixels, content_complexity, plan.outer_scale
        )
        return FramePartition(
            plan=plan,
            local=split_local_workload(full, plan),
            remote=split_remote_workload(full, plan),
            middle_bytes=middle.payload_bytes,
            outer_bytes=outer.payload_bytes,
        )
