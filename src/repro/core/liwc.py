"""LIWC: Lightweight Interaction-Aware Workload Controller (paper Sec. 4.1).

LIWC is the paper's Q-learning-style hardware controller that selects the
fovea eccentricity ``e1`` for every frame.  It is built from the four
components of Fig. 9:

1. a **motion codec** that quantises the user's inter-frame motion into a
   10-bit index — 6 bits for per-axis 6-DoF changes on the HMD and 4 bits
   for the fovea-centre movement;
2. an SRAM **motion-to-eccentricity mapping table** holding a 16-bit
   half-precision *latency gradient offset* for every (motion, delta-
   eccentricity) pair.  With 10 motion bits and a 5-bit action field the
   table depth is 2^15 = 32768 entries = 64 KB, matching the paper's
   overhead analysis (Sec. 4.3);
3. a **latency predictor** implementing Eq. (2): it estimates the frame's
   local and remote latencies *before rendering completes* from
   intermediate hardware data — the triangle count observed during render
   setup and the network ACK throughput;
4. a **runtime updater** that refines both the table (reward
   ``g <- (1 - alpha) * g' + alpha * delta_latency``) and the predictor's
   hardware parameters (GPU throughput, stream rate, path overhead) from
   measured latencies.

Selection rule: for the current motion index and the predicted
local/remote imbalance ``diff = T_remote - T_local``, LIWC picks the delta
eccentricity whose stored gradient offset comes closest to cancelling the
imbalance (``argmin |diff + g[motion, action]|``), then clamps ``e1`` to
the legal range.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import constants
from repro.errors import ControllerError
from repro.motion.dof import GazeDelta, PoseDelta

__all__ = [
    "MotionCodec",
    "MappingTable",
    "LatencyPredictor",
    "LIWCConfig",
    "LIWC",
    "ACTIONS_DEG",
]

#: Eccentricity delta tags: integer degrees in [-5, +5] (Sec. 4.1).
ACTIONS_DEG: tuple[int, ...] = tuple(range(-5, 6))

#: Bits allocated to the action field (11 actions padded into 5 bits,
#: giving the 2^15-deep table of the paper's overhead analysis).
_ACTION_BITS = 5

#: Bits of the motion index (6 DoF bits + 4 gaze bits).
_MOTION_BITS = 10


class MotionCodec:
    """Quantises inter-frame motion into the 10-bit LIWC table index.

    Encoding (Sec. 4.1): one bit per 6-DoF axis ("changed beyond
    threshold"), 2 bits for the gaze movement quadrant and 2 bits for the
    gaze movement magnitude bucket.
    """

    def __init__(
        self,
        translation_threshold_m: float = 0.004,
        rotation_threshold_deg: float = 0.35,
        gaze_magnitude_bounds_px: tuple[float, float, float] = (10.0, 60.0, 200.0),
    ) -> None:
        if translation_threshold_m <= 0 or rotation_threshold_deg <= 0:
            raise ControllerError("motion thresholds must be positive")
        b1, b2, b3 = gaze_magnitude_bounds_px
        if not 0 < b1 < b2 < b3:
            raise ControllerError(
                f"gaze magnitude bounds must be increasing, got {gaze_magnitude_bounds_px}"
            )
        self.translation_threshold_m = translation_threshold_m
        self.rotation_threshold_deg = rotation_threshold_deg
        self.gaze_magnitude_bounds_px = gaze_magnitude_bounds_px

    @property
    def index_space(self) -> int:
        """Number of distinct motion codes (2^10)."""
        return 1 << _MOTION_BITS

    def gaze_magnitude_bucket(self, magnitude_px: float) -> int:
        """2-bit gaze movement magnitude bucket (0 = still .. 3 = saccade)."""
        for bucket, bound in enumerate(self.gaze_magnitude_bounds_px):
            if magnitude_px < bound:
                return bucket
        return 3

    def encode(self, pose_delta: PoseDelta, gaze_delta: GazeDelta) -> int:
        """Return the 10-bit motion code for one frame's motion deltas."""
        bits = pose_delta.exceeds(
            self.translation_threshold_m, self.rotation_threshold_deg
        )
        code = 0
        for bit in bits:
            code = (code << 1) | int(bit)
        code = (code << 2) | gaze_delta.direction_quadrant
        code = (code << 2) | self.gaze_magnitude_bucket(gaze_delta.magnitude_px)
        return code


class MappingTable:
    """The motion-to-eccentricity SRAM table of latency gradient offsets.

    Entries are stored as IEEE half-precision floats (the paper's 16-bit
    representation), organised as ``table[motion_code, action_index]``.

    The table is initialised with an optimistic physical prior: action
    ``a`` (degrees) is expected to change ``T_remote - T_local`` by
    ``-a * prior_slope`` — growing the fovea raises local latency and
    shrinks the transmitted periphery.
    """

    def __init__(self, motion_codes: int = 1 << _MOTION_BITS, prior_slope_ms_per_deg: float = 0.6) -> None:
        if motion_codes < 1:
            raise ControllerError(f"motion_codes must be >= 1, got {motion_codes}")
        self.motion_codes = motion_codes
        self.prior_slope_ms_per_deg = prior_slope_ms_per_deg
        actions = np.array(ACTIONS_DEG, dtype=np.float16)
        self._table = np.tile(
            (-prior_slope_ms_per_deg * actions).astype(np.float16),
            (motion_codes, 1),
        )

    @property
    def depth(self) -> int:
        """Addressable entries (motion codes x padded action space)."""
        return self.motion_codes * (1 << _ACTION_BITS)

    @property
    def size_bytes(self) -> int:
        """SRAM size in bytes (2 bytes per fp16 entry over the full depth)."""
        return self.depth * 2

    def gradients(self, motion_code: int) -> np.ndarray:
        """The 11 gradient offsets for one motion code (as float32)."""
        self._check_code(motion_code)
        return self._table[motion_code].astype(np.float32)

    def lookup(self, motion_code: int, imbalance_ms: float) -> int:
        """Select the action whose gradient best cancels the imbalance.

        Returns the index into :data:`ACTIONS_DEG` minimising
        ``|imbalance + gradient|``; ties break toward the smallest
        eccentricity change to avoid hunting.
        """
        gradients = self.gradients(motion_code)
        residual = np.abs(imbalance_ms + gradients)
        best = np.flatnonzero(residual <= residual.min() + 1e-9)
        magnitudes = np.abs(np.array(ACTIONS_DEG)[best])
        return int(best[int(np.argmin(magnitudes))])

    def update(self, motion_code: int, action_index: int, observed_delta_ms: float, alpha: float) -> None:
        """Reward update: ``g <- (1 - alpha) * g' + alpha * delta_latency``."""
        self._check_code(motion_code)
        if not 0 <= action_index < len(ACTIONS_DEG):
            raise ControllerError(f"action index out of range: {action_index}")
        if not 0 < alpha <= 1:
            raise ControllerError(f"alpha must be in (0, 1], got {alpha}")
        old = float(self._table[motion_code, action_index])
        new = (1.0 - alpha) * old + alpha * observed_delta_ms
        self._table[motion_code, action_index] = np.float16(new)

    def _check_code(self, motion_code: int) -> None:
        if not 0 <= motion_code < self.motion_codes:
            raise ControllerError(
                f"motion code {motion_code} outside [0, {self.motion_codes})"
            )


@dataclass
class LatencyPredictor:
    """Eq. (2) latency predictor driven by intermediate hardware data.

    ``T_local = triangles * %fovea / P(GPU_m)`` and
    ``T_remote = DataSize(M + O) / Throughput (+ path overhead)``.

    ``P(GPU_m)``, the effective bits-per-pixel of the periphery streams and
    the fixed path overhead are EWMA estimates refined by the runtime
    updater from measured frames; the network throughput comes from the
    ACK monitor.

    Attributes
    ----------
    gpu_throughput:
        Estimated ``P(GPU_m)`` in (triangles * fovea-fraction) per ms.
    bits_per_pixel:
        Estimated compressed rate of the periphery streams.
    path_overhead_ms:
        Estimated fixed remote-path cost (propagation, codec).
    ewma_alpha:
        Smoothing factor of the online estimates.
    """

    gpu_throughput: float = 20_000.0
    bits_per_pixel: float = 0.6
    path_overhead_ms: float = 4.0
    ewma_alpha: float = 0.25

    def predict_local_ms(self, triangles: float, fovea_fraction: float) -> float:
        """``T_local`` per Eq. (2) for an observed render-setup state."""
        if triangles < 0 or not 0 <= fovea_fraction <= 1:
            raise ControllerError("invalid predictor inputs")
        return triangles * fovea_fraction / max(self.gpu_throughput, 1e-9)

    def predict_remote_ms(self, periphery_pixels: float, ack_throughput_bytes_per_ms: float) -> float:
        """``T_remote`` per Eq. (2) for the planned periphery payload."""
        if periphery_pixels < 0 or ack_throughput_bytes_per_ms <= 0:
            raise ControllerError("invalid predictor inputs")
        payload = periphery_pixels * self.bits_per_pixel / constants.BITS_PER_BYTE
        return payload / ack_throughput_bytes_per_ms + self.path_overhead_ms

    # -- runtime updater hooks -------------------------------------------------

    def observe_local(self, triangles: float, fovea_fraction: float, measured_ms: float) -> None:
        """Refine ``P(GPU_m)`` from a measured local render time."""
        if measured_ms <= 0:
            return
        observed = triangles * fovea_fraction / measured_ms
        self.gpu_throughput = self._ewma(self.gpu_throughput, observed)

    def observe_remote(
        self,
        periphery_pixels: float,
        payload_bytes: float,
        measured_ms: float,
        ack_throughput_bytes_per_ms: float,
    ) -> None:
        """Refine the stream rate and path overhead from a measured fetch."""
        if periphery_pixels > 0 and payload_bytes > 0:
            observed_bpp = payload_bytes * constants.BITS_PER_BYTE / periphery_pixels
            self.bits_per_pixel = self._ewma(self.bits_per_pixel, observed_bpp)
        if measured_ms > 0 and ack_throughput_bytes_per_ms > 0:
            transmit = payload_bytes / ack_throughput_bytes_per_ms
            overhead = max(measured_ms - transmit, 0.0)
            self.path_overhead_ms = self._ewma(self.path_overhead_ms, overhead)

    def _ewma(self, old: float, new: float) -> float:
        return (1.0 - self.ewma_alpha) * old + self.ewma_alpha * new


@dataclass(frozen=True)
class LIWCConfig:
    """Tunables of the LIWC controller.

    Attributes
    ----------
    reward_alpha:
        The paper's reward parameter ``alpha``.
    min_e1_deg, max_e1_deg:
        Legal eccentricity range (Table 4 saturates at 5 and 90 degrees).
    prior_slope_ms_per_deg:
        Initial per-degree latency-difference slope of the mapping table.
    deadband_ms:
        Imbalance below which LIWC holds the current eccentricity; models
        the controller's hysteresis against jitter-induced hunting.
    """

    reward_alpha: float = 0.15
    min_e1_deg: float = constants.MIN_ECCENTRICITY_DEG
    max_e1_deg: float = constants.MAX_ECCENTRICITY_DEG
    prior_slope_ms_per_deg: float = 0.6
    deadband_ms: float = 0.35

    def __post_init__(self) -> None:
        if not 0 < self.reward_alpha <= 1:
            raise ControllerError(f"reward_alpha must be in (0, 1], got {self.reward_alpha}")
        if not 0 < self.min_e1_deg <= self.max_e1_deg:
            raise ControllerError("invalid eccentricity bounds")
        if self.deadband_ms < 0:
            raise ControllerError("deadband must be >= 0")


@dataclass
class _PendingDecision:
    """State carried between select() and observe() for one frame."""

    motion_code: int
    action_index: int
    predicted_diff_ms: float


class LIWC:
    """The assembled controller: codec + table + predictor + updater.

    Typical per-frame protocol (mirroring the hardware pipeline)::

        e1 = liwc.select(pose_delta, gaze_delta, triangles,
                         fovea_fraction_fn, periphery_pixels_fn,
                         ack_throughput)
        ... frame renders with e1 ...
        liwc.observe(measured_local_ms, measured_remote_ms, ...)

    ``fovea_fraction_fn`` / ``periphery_pixels_fn`` map a candidate ``e1``
    to plan geometry; in hardware these are the partition engine's lookup
    tables.
    """

    def __init__(self, config: LIWCConfig | None = None, codec: MotionCodec | None = None) -> None:
        self.config = config if config is not None else LIWCConfig()
        self.codec = codec if codec is not None else MotionCodec()
        self.table = MappingTable(
            motion_codes=self.codec.index_space,
            prior_slope_ms_per_deg=self.config.prior_slope_ms_per_deg,
        )
        self.predictor = LatencyPredictor()
        self.e1_deg: float = self.config.min_e1_deg
        self._pending: _PendingDecision | None = None
        self._last_diff_ms: float | None = None

    def reset(self, e1_deg: float | None = None) -> None:
        """Reset the controller state (table contents are preserved)."""
        self.e1_deg = self.config.min_e1_deg if e1_deg is None else e1_deg
        self._pending = None
        self._last_diff_ms = None

    # -- per-frame selection ---------------------------------------------------

    def select(
        self,
        pose_delta: PoseDelta,
        gaze_delta: GazeDelta,
        triangles: float,
        fovea_fraction: float,
        periphery_pixels: float,
        ack_throughput_bytes_per_ms: float,
    ) -> float:
        """Choose this frame's ``e1`` from hardware-visible state.

        Parameters
        ----------
        pose_delta, gaze_delta:
            Motion deltas since the previous frame (from the sensors).
        triangles:
            Triangle count observed during render setup.
        fovea_fraction, periphery_pixels:
            Plan geometry at the *current* eccentricity.
        ack_throughput_bytes_per_ms:
            The ACK monitor's link-throughput estimate.
        """
        t_local = self.predictor.predict_local_ms(triangles, fovea_fraction)
        t_remote = self.predictor.predict_remote_ms(
            periphery_pixels, ack_throughput_bytes_per_ms
        )
        diff = t_remote - t_local
        motion_code = self.codec.encode(pose_delta, gaze_delta)

        if abs(diff) <= self.config.deadband_ms:
            action_index = ACTIONS_DEG.index(0)
        else:
            action_index = self.table.lookup(motion_code, diff)
        self._pending = _PendingDecision(
            motion_code=motion_code,
            action_index=action_index,
            predicted_diff_ms=diff,
        )
        # Branchy clamp instead of np.clip: identical bits for finite
        # floats, without the per-frame numpy scalar dispatch cost.
        e1 = self.e1_deg + ACTIONS_DEG[action_index]
        lo = self.config.min_e1_deg
        hi = self.config.max_e1_deg
        self.e1_deg = lo if e1 < lo else hi if e1 > hi else e1
        return self.e1_deg

    # -- runtime updater ---------------------------------------------------------

    def observe(
        self,
        measured_local_ms: float,
        measured_remote_ms: float,
        triangles: float,
        fovea_fraction: float,
        periphery_pixels: float,
        payload_bytes: float,
        ack_throughput_bytes_per_ms: float,
    ) -> None:
        """Feed back one frame's measured latencies (the runtime updater).

        Updates the mapping-table gradient for the action just taken with
        the observed latency-difference change, and refines the predictor's
        hardware parameters.  Executed in parallel with composition/display
        in hardware, so it costs nothing on the critical path.
        """
        diff = (measured_remote_ms - measured_local_ms)
        if self._pending is not None and self._last_diff_ms is not None:
            observed_delta = diff - self._last_diff_ms
            self.table.update(
                self._pending.motion_code,
                self._pending.action_index,
                observed_delta,
                self.config.reward_alpha,
            )
        self._last_diff_ms = diff
        self.predictor.observe_local(triangles, fovea_fraction, measured_local_ms)
        self.predictor.observe_remote(
            periphery_pixels, payload_bytes, measured_remote_ms, ack_throughput_bytes_per_ms
        )
        self._pending = None

    @property
    def last_imbalance_ms(self) -> float | None:
        """Most recent measured ``T_remote - T_local`` (None before data)."""
        return self._last_diff_ms
