"""UCA: Unified Composition and ATW unit (paper Sec. 4.2 / 4.3).

UCA is the dedicated SoC block that replaces the GPU-executed composition
and ATW passes.  Its design rests on the algorithmic similarity of Eq. (3):
both composition (layer averaging + MSAA at layer borders) and ATW
(lens-distorted bilinear resampling) are linear filters, so reordering
them (Eq. (4)) fuses the two passes into a single *trilinear* filter that
samples the inputs once.

This module models the hardware unit:

* the frame is cut into 32x32-pixel tiles processed at a measured 532
  cycles per tile (Sec. 4.3), on :data:`~repro.constants.UCA_UNIT_COUNT`
  units clocked at the SoC frequency;
* tiles are classified as **bound tiles** (crossing a layer border: they
  need the fused trilinear path) or **non-overlapping tiles** (single
  layer: plain bilinear), per Fig. 11;
* because UCA starts on non-overlapping tiles *before* rendering and
  streaming complete ("asynchronously executing them across frame tiles
  prior to the rendering completion"), only the tail of the tile stream
  contributes to the frame's critical path;
* when a frame's remote layers miss their deadline, UCA reconstructs the
  frame from the previous layers at the new head position (the ATW
  fill-in behaviour).

The *functional* pixel-level filters live in
:mod:`repro.graphics.unified_filter`; this module is the timing/area side.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro import constants
from repro.core.foveation import PartitionPlan
from repro.errors import ConfigurationError

__all__ = ["UCAConfig", "TileStats", "UCAUnit"]


@dataclass(frozen=True)
class UCAConfig:
    """Hardware parameters of the UCA block (Table 2 / Sec. 4.3).

    Attributes
    ----------
    units:
        Number of UCA instances on the SoC.
    frequency_mhz:
        Clock of the units.
    cycles_per_tile:
        Measured cycles to process one 32x32 tile.
    tile_px:
        Tile side in pixels.
    critical_tail_fraction:
        Share of the tile stream that depends on the last-arriving input
        (the remote periphery around the fovea border) and therefore lands
        on the frame's critical path.  The rest is processed while the
        frame is still being rendered/streamed.
    """

    units: int = constants.UCA_UNIT_COUNT
    frequency_mhz: float = constants.DEFAULT_GPU_FREQ_MHZ
    cycles_per_tile: int = constants.UCA_CYCLES_PER_TILE
    tile_px: int = constants.UCA_TILE_PX
    critical_tail_fraction: float = 0.30

    def __post_init__(self) -> None:
        if self.units < 1:
            raise ConfigurationError(f"units must be >= 1, got {self.units}")
        if self.frequency_mhz <= 0 or self.cycles_per_tile <= 0 or self.tile_px <= 0:
            raise ConfigurationError("UCA hardware parameters must be positive")
        if not 0 < self.critical_tail_fraction <= 1:
            raise ConfigurationError(
                f"critical_tail_fraction must be in (0, 1], got {self.critical_tail_fraction}"
            )


@dataclass(frozen=True)
class TileStats:
    """Tile classification for one frame (both eyes)."""

    total_tiles: int
    bound_tiles: int

    @property
    def non_overlapping_tiles(self) -> int:
        """Tiles on a single layer (bilinear path)."""
        return self.total_tiles - self.bound_tiles

    @property
    def bound_fraction(self) -> float:
        """Share of tiles requiring the fused trilinear path."""
        if self.total_tiles == 0:
            return 0.0
        return self.bound_tiles / self.total_tiles


class UCAUnit:
    """Timing model of the unified composition and ATW hardware."""

    def __init__(self, config: UCAConfig | None = None) -> None:
        self.config = config if config is not None else UCAConfig()

    # -- tile accounting ---------------------------------------------------------

    def tile_grid(self, width_px: int, height_px: int) -> tuple[int, int]:
        """Tiles per row/column for one eye's panel."""
        if width_px <= 0 or height_px <= 0:
            raise ConfigurationError("panel dimensions must be positive")
        tile = self.config.tile_px
        return (math.ceil(width_px / tile), math.ceil(height_px / tile))

    def tile_count(self, width_px: int, height_px: int, eyes: int = constants.EYES) -> int:
        """Total tiles per frame across both eyes."""
        tx, ty = self.tile_grid(width_px, height_px)
        return tx * ty * eyes

    def classify_tiles(
        self,
        width_px: int,
        height_px: int,
        plan: PartitionPlan,
        pixels_per_degree: float,
        eyes: int = constants.EYES,
    ) -> TileStats:
        """Count bound tiles: those crossed by the e1 or e2 layer borders.

        A circle of radius ``r`` crosses about ``2*pi*r / tile`` tiles of
        side ``tile`` (circumference divided by tile pitch, the standard
        rasterisation estimate), clipped to the panel's tile count.
        """
        total = self.tile_count(width_px, height_px, eyes)
        per_eye_total = total // eyes if eyes else 0
        bound = 0
        for ecc in (plan.e1_deg, plan.e2_deg):
            radius_px = ecc * pixels_per_degree
            ring = int(2.0 * math.pi * radius_px / self.config.tile_px)
            bound += min(ring, per_eye_total)
        return TileStats(total_tiles=total, bound_tiles=min(bound * eyes, total))

    # -- timing --------------------------------------------------------------------

    def occupancy_ms(self, width_px: int, height_px: int, eyes: int = constants.EYES) -> float:
        """Wall time the UCA block is busy producing one frame."""
        tiles = self.tile_count(width_px, height_px, eyes)
        cycles = tiles * self.config.cycles_per_tile
        return cycles / (self.config.frequency_mhz * 1e3) / self.config.units

    def critical_tail_ms(self, width_px: int, height_px: int, eyes: int = constants.EYES) -> float:
        """Latency UCA adds after the last input layer arrives."""
        return self.occupancy_ms(width_px, height_px, eyes) * self.config.critical_tail_fraction

    def reconstruct_time_ms(self, width_px: int, height_px: int, eyes: int = constants.EYES) -> float:
        """Time to synthesise a dropped frame from previous layers.

        Reconstruction replays the same tile pipeline over the stale
        layers with the updated pose, so it costs one full occupancy.
        """
        return self.occupancy_ms(width_px, height_px, eyes)

    # -- sanity against the paper -----------------------------------------------------

    def tiles_per_second(self) -> float:
        """Aggregate tile throughput of all units."""
        return self.config.units * self.config.frequency_mhz * 1e6 / self.config.cycles_per_tile
