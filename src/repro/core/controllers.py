"""Eccentricity controllers: fixed (FFR), software-adaptive, and LIWC.

All the collaborative-foveated designs the paper evaluates differ in *who*
chooses ``e1`` each frame and from *what* information:

* :class:`FixedEccentricityController` — FFR: the classic 5-degree fovea,
  never adapted;
* :class:`SoftwareAdaptiveController` — the paper's "pure software
  implementation of Q-VR": selects eccentricity from the *previous*
  frame's measured local and remote latencies (it has no access to
  intermediate hardware data, so it always lags reality by a frame and
  must wait for rendering to complete);
* :class:`LIWCController` — wraps :class:`~repro.core.liwc.LIWC`: predicts
  this frame's latencies from render-setup triangle counts and ACK
  throughput before rendering completes.

The shared :class:`ControlContext` / :class:`ControlFeedback` records carry
every signal any controller might need; each controller reads only what its
design is allowed to see.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro import constants
from repro.core.liwc import LIWC, LIWCConfig
from repro.errors import ControllerError
from repro.motion.dof import GazeDelta, PoseDelta

__all__ = [
    "ControlContext",
    "ControlFeedback",
    "EccentricityController",
    "FixedEccentricityController",
    "SoftwareAdaptiveController",
    "LIWCController",
]


@dataclass(frozen=True)
class ControlContext:
    """Hardware-visible state available when a frame's ``e1`` is chosen."""

    pose_delta: PoseDelta
    gaze_delta: GazeDelta
    triangles: float
    fovea_fraction: float
    periphery_pixels: float
    ack_throughput_bytes_per_ms: float


@dataclass(frozen=True)
class ControlFeedback:
    """Measured outcome of a frame, fed back after it completes."""

    measured_local_ms: float
    measured_remote_ms: float
    triangles: float
    fovea_fraction: float
    periphery_pixels: float
    payload_bytes: float
    ack_throughput_bytes_per_ms: float


class EccentricityController(ABC):
    """Interface every per-frame eccentricity policy implements."""

    @abstractmethod
    def select_e1(self, context: ControlContext) -> float:
        """Choose the fovea eccentricity for the upcoming frame."""

    @abstractmethod
    def observe(self, feedback: ControlFeedback) -> None:
        """Ingest the measured outcome of the frame just completed."""

    @abstractmethod
    def reset(self) -> None:
        """Return to the initial state (used between experiment runs)."""

    #: Whether the controller needs to wait for the previous frame's
    #: rendering to complete before it can decide (software designs do;
    #: the hardware LIWC does not) — this shapes the execution pipeline.
    requires_completed_frame: bool = False


class FixedEccentricityController(EccentricityController):
    """FFR: a constant eccentricity (default: the classic 5-degree fovea)."""

    def __init__(self, e1_deg: float = constants.CLASSIC_FOVEA_ECCENTRICITY_DEG) -> None:
        if e1_deg <= 0:
            raise ControllerError(f"e1 must be > 0, got {e1_deg}")
        self.e1_deg = e1_deg

    def select_e1(self, context: ControlContext) -> float:
        return self.e1_deg

    def observe(self, feedback: ControlFeedback) -> None:
        """FFR ignores feedback by design."""

    def reset(self) -> None:
        """Stateless: nothing to reset."""


class SoftwareAdaptiveController(EccentricityController):
    """The pure-software Q-VR baseline (Sec. 6.1, "SW-FPS").

    Selects eccentricity *"based on previous local and remote rendering
    latency instead of using the intermediate hardware data"*: a
    proportional step on the last measured imbalance, clamped to the same
    +/-5 degree per-frame authority as LIWC.  Because the decision depends
    on completed-frame measurements, :attr:`requires_completed_frame` is
    True and the pipeline builder serialises control logic behind the
    previous frame (Fig. 4-B).
    """

    requires_completed_frame = True

    def __init__(
        self,
        gain_deg_per_ms: float = 0.8,
        min_e1_deg: float = constants.MIN_ECCENTRICITY_DEG,
        max_e1_deg: float = constants.MAX_ECCENTRICITY_DEG,
        initial_e1_deg: float | None = None,
    ) -> None:
        if gain_deg_per_ms <= 0:
            raise ControllerError(f"gain must be > 0, got {gain_deg_per_ms}")
        if not 0 < min_e1_deg <= max_e1_deg:
            raise ControllerError("invalid eccentricity bounds")
        self.gain = gain_deg_per_ms
        self.min_e1 = min_e1_deg
        self.max_e1 = max_e1_deg
        self.initial_e1 = initial_e1_deg if initial_e1_deg is not None else min_e1_deg
        self.e1_deg = self.initial_e1
        self._last_imbalance_ms: float | None = None

    def select_e1(self, context: ControlContext) -> float:
        if self._last_imbalance_ms is not None:
            # Branchy clamps instead of np.clip: identical bits for finite
            # floats, without the per-frame numpy scalar dispatch cost.
            step = self.gain * self._last_imbalance_ms
            step = -5.0 if step < -5.0 else 5.0 if step > 5.0 else step
            e1 = self.e1_deg + step
            self.e1_deg = (
                self.min_e1 if e1 < self.min_e1
                else self.max_e1 if e1 > self.max_e1
                else e1
            )
        return self.e1_deg

    def observe(self, feedback: ControlFeedback) -> None:
        self._last_imbalance_ms = (
            feedback.measured_remote_ms - feedback.measured_local_ms
        )

    def reset(self) -> None:
        self.e1_deg = self.initial_e1
        self._last_imbalance_ms = None


class LIWCController(EccentricityController):
    """Adapter exposing :class:`~repro.core.liwc.LIWC` as a controller."""

    requires_completed_frame = False

    def __init__(self, config: LIWCConfig | None = None) -> None:
        self.liwc = LIWC(config)

    @property
    def e1_deg(self) -> float:
        """Current eccentricity held by the LIWC state machine."""
        return self.liwc.e1_deg

    def select_e1(self, context: ControlContext) -> float:
        return self.liwc.select(
            pose_delta=context.pose_delta,
            gaze_delta=context.gaze_delta,
            triangles=context.triangles,
            fovea_fraction=context.fovea_fraction,
            periphery_pixels=context.periphery_pixels,
            ack_throughput_bytes_per_ms=context.ack_throughput_bytes_per_ms,
        )

    def observe(self, feedback: ControlFeedback) -> None:
        self.liwc.observe(
            measured_local_ms=feedback.measured_local_ms,
            measured_remote_ms=feedback.measured_remote_ms,
            triangles=feedback.triangles,
            fovea_fraction=feedback.fovea_fraction,
            periphery_pixels=feedback.periphery_pixels,
            payload_bytes=feedback.payload_bytes,
            ack_throughput_bytes_per_ms=feedback.ack_throughput_bytes_per_ms,
        )

    def reset(self) -> None:
        self.liwc.reset()
