"""Command-line interface: run any experiment from the shell.

Usage (also via ``python -m repro``)::

    python -m repro compare --app GRID --systems local qvr
    python -m repro table4 --frames 120
    python -m repro fig12 --frames 200 --jobs 4 --cache-dir .qvr-cache
    python -m repro batch --jobs 4 --cache-dir .qvr-cache
    python -m repro overheads

Each subcommand prints the same ASCII tables the benchmark suite produces.
``batch`` runs several figure sweeps through one shared
:class:`~repro.sim.runner.BatchEngine`, so overlapping runs (Table 4 and
Fig. 15 share their Q-VR grid) execute once; ``--jobs`` spreads uncached
specs over a process pool and ``--cache-dir`` memoizes results on disk
across invocations.
"""

from __future__ import annotations

import argparse
import time

from repro.analysis.experiments import (
    SIM_EXPERIMENTS,
    fig12_performance,
    fig15_energy,
    overhead_analysis,
    table1_static_characterization,
    table4_eccentricity,
)
from repro.analysis.report import format_table
from repro.network.conditions import by_name
from repro.sim.runner import BatchEngine, run_comparison, speedup_over
from repro.sim.systems import PlatformConfig, SYSTEM_NAMES
from repro.workloads.apps import APPS, TABLE3_ORDER

__all__ = ["main", "build_parser"]


def _add_engine_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for uncached runs (default: 1, in-process)",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="directory for the on-disk result cache (default: no cache)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Q-VR (ASPLOS 2021) reproduction experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    compare = sub.add_parser("compare", help="run designs on one title")
    compare.add_argument("--app", default="Doom3-H", choices=sorted(APPS))
    compare.add_argument(
        "--systems", nargs="+", default=["local", "static", "qvr"],
        choices=list(SYSTEM_NAMES),
    )
    compare.add_argument("--frames", type=int, default=240)
    compare.add_argument("--network", default="Wi-Fi")
    compare.add_argument("--freq", type=float, default=500.0)
    compare.add_argument("--seed", type=int, default=0)

    fig12 = sub.add_parser("fig12", help="reproduce Fig. 12")
    fig12.add_argument("--frames", type=int, default=240)
    _add_engine_options(fig12)

    table4 = sub.add_parser("table4", help="reproduce Table 4")
    table4.add_argument("--frames", type=int, default=200)
    _add_engine_options(table4)

    fig15 = sub.add_parser("fig15", help="reproduce Fig. 15")
    fig15.add_argument("--frames", type=int, default=200)
    _add_engine_options(fig15)

    batch = sub.add_parser(
        "batch", help="run figure sweeps through one shared batch engine"
    )
    batch.add_argument(
        "--experiments", nargs="+", default=sorted(SIM_EXPERIMENTS),
        choices=sorted(SIM_EXPERIMENTS),
        help="simulation-backed experiments to run (default: all)",
    )
    batch.add_argument("--frames", type=int, default=240)
    batch.add_argument("--seed", type=int, default=0)
    _add_engine_options(batch)

    sub.add_parser("table1", help="reproduce Table 1")
    sub.add_parser("overheads", help="reproduce the Sec. 4.3 overheads")
    return parser


def _engine_from(args: argparse.Namespace) -> BatchEngine:
    return BatchEngine(jobs=args.jobs, cache_dir=args.cache_dir)


def _cmd_compare(args: argparse.Namespace) -> None:
    platform = PlatformConfig(network=by_name(args.network)).with_gpu_frequency(args.freq)
    results = run_comparison(
        args.app, systems=tuple(args.systems), platform=platform,
        n_frames=args.frames, seed=args.seed,
    )
    rows = [
        [
            name, r.mean_latency_ms,
            f"{speedup_over(results, name, baseline=args.systems[0]):.2f}x",
            r.measured_fps, r.mean_e1_deg, r.mean_transmitted_bytes / 1e3,
        ]
        for name, r in results.items()
    ]
    print(
        format_table(
            ["design", "latency (ms)", f"vs {args.systems[0]}", "FPS", "e1", "KB/frame"],
            rows,
            title=f"{args.app} @ {args.freq:.0f} MHz, {args.network}",
        )
    )


def _cmd_fig12(args: argparse.Namespace) -> None:
    rows = fig12_performance(n_frames=args.frames, engine=_engine_from(args))
    print(
        format_table(
            ["app", "Static", "FFR", "DFR", "Q-VR", "SW-FPS", "Q-VR-FPS"],
            [
                [r.app, r.static_speedup, r.ffr_speedup, r.dfr_speedup,
                 r.qvr_speedup, r.sw_fps, r.qvr_fps]
                for r in rows
            ],
            title="Fig. 12 — normalized performance",
        )
    )


def _cmd_table4(args: argparse.Namespace) -> None:
    cells = table4_eccentricity(n_frames=args.frames, engine=_engine_from(args))
    grid: dict[tuple[float, str], dict[str, str]] = {}
    for cell in cells:
        marker = "" if cell.meets_fps else "*"
        grid.setdefault((cell.frequency_mhz, cell.network), {})[cell.app] = (
            f"{cell.mean_e1_deg:.1f}{marker}"
        )
    print(
        format_table(
            ["Freq", "Network"] + [APPS[a].short_name for a in TABLE3_ORDER],
            [
                [f"{f:.0f}", n] + [row[a] for a in TABLE3_ORDER]
                for (f, n), row in grid.items()
            ],
            title="Table 4 — steady-state e1 (deg); * = misses 90 Hz",
        )
    )


def _cmd_fig15(args: argparse.Namespace) -> None:
    cells = fig15_energy(n_frames=args.frames, engine=_engine_from(args))
    grid: dict[tuple[float, str], dict[str, float]] = {}
    for cell in cells:
        grid.setdefault((cell.frequency_mhz, cell.network), {})[cell.app] = (
            cell.normalized_energy
        )
    print(
        format_table(
            ["Freq", "Network"] + [APPS[a].short_name for a in TABLE3_ORDER],
            [
                [f"{f:.0f}", n] + [row[a] for a in TABLE3_ORDER]
                for (f, n), row in grid.items()
            ],
            title="Fig. 15 — normalized system energy",
        )
    )


def _cmd_batch(args: argparse.Namespace) -> None:
    engine = _engine_from(args)
    rows = []
    total_start = time.perf_counter()
    for name in args.experiments:
        start = time.perf_counter()
        result = SIM_EXPERIMENTS[name](
            n_frames=args.frames, seed=args.seed, engine=engine
        )
        rows.append([name, len(result), f"{time.perf_counter() - start:.2f}"])
    total_s = time.perf_counter() - total_start
    print(
        format_table(
            ["experiment", "rows", "wall (s)"],
            rows,
            title=(
                f"repro batch — {len(args.experiments)} experiments, "
                f"jobs={args.jobs}, frames={args.frames}"
            ),
        )
    )
    stats = engine.stats
    print(
        f"specs: {stats.requested} requested, {stats.unique} unique, "
        f"{stats.executed} executed, {stats.cache_hits} cache hits, "
        f"{stats.deduplicated} deduplicated in-batch; total {total_s:.2f}s"
    )


def _cmd_table1(args: argparse.Namespace) -> None:
    rows = table1_static_characterization()
    print(
        format_table(
            ["app", "f range", "avg", "min", "max", "back KB", "Tremote"],
            [
                [r.app, f"{r.f_min:.0%}-{r.f_max:.0%}", r.avg_local_ms,
                 r.min_local_ms, r.max_local_ms, r.back_size_kb, r.remote_ms]
                for r in rows
            ],
            title="Table 1",
        )
    )


def _cmd_overheads(args: argparse.Namespace) -> None:
    reports = overhead_analysis()
    print(
        format_table(
            ["block", "area (mm^2)", "power (mW)"],
            [[name, r.area_mm2, r.power_mw] for name, r in reports.items()],
            title="Sec. 4.3 — overheads",
        )
    )


_COMMANDS = {
    "compare": _cmd_compare,
    "fig12": _cmd_fig12,
    "table4": _cmd_table4,
    "fig15": _cmd_fig15,
    "batch": _cmd_batch,
    "table1": _cmd_table1,
    "overheads": _cmd_overheads,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    _COMMANDS[args.command](args)
    return 0
