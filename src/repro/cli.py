"""Command-line interface: run any experiment from the shell.

Usage (also via ``python -m repro``)::

    python -m repro compare --app GRID --systems local qvr
    python -m repro table4 --frames 120
    python -m repro fig12 --frames 200 --jobs 4 --cache-dir .qvr-cache
    python -m repro batch --jobs 4 --cache-dir .qvr-cache
    python -m repro batch --profile wifi-drop --experiments fig12 netdrop
    python -m repro scenarios --clients Doom3-H:wifi GRID:wifi-drop:300
    python -m repro scenarios --clients GRID Doom3-L --policy deadline
    python -m repro scenarios --clients GRID Doom3-L --events events.json \
        --capacity 2 --overflow queue
    python -m repro scenarios --clients GRID Doom3-L --fleet fleet.json \
        --events fleet_events.json
    python -m repro scenarios --clients GRID Doom3-L \
        --motion-events data/lte_4g_drive.csv
    python -m repro overheads

Each subcommand prints the same ASCII tables the benchmark suite produces.
``batch`` runs several figure sweeps through one shared
:class:`~repro.sim.runner.BatchEngine`, so overlapping runs (Table 4 and
Fig. 15 share their Q-VR grid) execute once; ``--jobs`` spreads uncached
specs over a process pool and ``--cache-dir`` memoizes results on disk
across invocations (``--clear-cache`` evicts it first).  ``--profile``
swaps the default static network for a named dynamic profile (or a trace
CSV path); ``scenarios`` runs a heterogeneous multi-client session where
every client names its own ``APP[:PROFILE[:FREQ_MHZ]]`` and ``--policy``
selects the shared server's scheduling policy (fair-share, weighted,
deadline — see :mod:`repro.sim.server`).  ``--events`` upgrades the
scenario to an event-driven session (:mod:`repro.sim.session`): a JSON
timeline of ``join`` / ``leave`` / ``switch`` entries the server re-plans
at, with ``--capacity``/``--overflow`` configuring admission (overflow
``queue`` makes late joiners wait for freed capacity and genuinely start
late).  ``--fleet`` swaps the single server for a named multi-server
:class:`~repro.sim.fleet.RenderFleet` (JSON: servers, placement,
migration mode/penalty), whose event files may additionally carry
``up`` / ``down`` / ``fail`` capacity entries; the output grows
per-server epoch occupancy and placement-history fate tables.
``--motion-events`` synthesizes degraded-link ``ProfileSwitch`` events
for client 0 from the deterministic head-motion trace (high-velocity
windows roam onto the named profile or trace CSV, e.g. the checked-in
``data/`` corpus, then recover).
"""

from __future__ import annotations

import argparse
import inspect
import json
import sys

from repro.analysis.experiments import (
    SIM_EXPERIMENTS,
    fig12_performance,
    fig15_energy,
    overhead_analysis,
    table1_static_characterization,
    table4_eccentricity,
)
from repro import constants
from repro.analysis.report import format_table
from repro.errors import ConfigurationError
from repro.motion.traces import generate_trace
from repro.network.conditions import by_name
from repro.obs import clock as obs_clock
from repro.obs import trace as obs_trace
from repro.network.profile import PiecewiseProfile, as_profile, profile_by_name
from repro.sim.demand import DemandScenario, run_population
from repro.sim.fleet import (
    RenderFleet,
    ServerDown,
    ServerFail,
    ServerUp,
    fleet_from_payload,
)
from repro.sim.multiuser import (
    ClientSpec,
    MultiUserScenario,
    simulate_shared_infrastructure,
)
from repro.sim.runner import (
    BatchEngine,
    ENGINE_NAMES,
    ResultCache,
    run_comparison,
    speedup_over,
)
from repro.sim.server import OVERFLOW_MODES, POLICY_NAMES, RenderServer
from repro.sim.shard import SHARD_MODES
from repro.sim.session import (
    Join,
    Leave,
    ProfileSwitch,
    Session,
    SessionEvent,
    events_from_motion,
    simulate_session,
)
from repro.sim.systems import PlatformConfig, SYSTEM_NAMES
from repro.workloads.apps import APPS, TABLE3_ORDER

__all__ = ["main", "build_parser"]


def _add_engine_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for uncached runs (default: 1, in-process)",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="directory for the on-disk result cache (default: no cache)",
    )
    parser.add_argument(
        "--engine", default="vector", choices=list(ENGINE_NAMES),
        help="execution engine: the array-programmed frame kernels "
        "(vector, default) or the per-frame task-graph reference oracle "
        "(scalar); both produce bit-identical results",
    )
    parser.add_argument(
        "--shards", type=int, default=None,
        help="route uncached runs through the sharded work-stealing "
        "executor with this many spec shards (results are bit-identical "
        "to the flat pool at any shard/worker count)",
    )
    parser.add_argument(
        "--shard-mode", default="process", choices=list(SHARD_MODES),
        help="sharded execution mode: process pool with parent-scheduled "
        "stealing (default), subprocess workers simulating a multi-machine "
        "fleet (claim files, heartbeats, requeue), or inline",
    )
    parser.add_argument(
        "--stream", nargs="?", const="", default=None, metavar="DIR",
        dest="stream_dir",
        help="stream sharded results through a spill-to-disk directory; "
        "with DIR, reusing it resumes an interrupted sweep (completed "
        "shards are skipped, partial shard files resume after their valid "
        "prefix); without DIR, results spill through a temporary directory",
    )
    parser.add_argument(
        "--trace", default=None, metavar="DIR", dest="trace_dir",
        help="record spans, instants, and metric snapshots to JSONL files "
        "under DIR (one file per process); inspect with 'repro obs' — "
        "results are bit-identical with tracing on or off",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Q-VR (ASPLOS 2021) reproduction experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    compare = sub.add_parser("compare", help="run designs on one title")
    compare.add_argument("--app", default="Doom3-H", choices=sorted(APPS))
    compare.add_argument(
        "--systems", nargs="+", default=["local", "static", "qvr"],
        choices=list(SYSTEM_NAMES),
    )
    compare.add_argument("--frames", type=int, default=240)
    compare.add_argument("--network", default="Wi-Fi")
    compare.add_argument("--freq", type=float, default=500.0)
    compare.add_argument("--seed", type=int, default=0)

    fig12 = sub.add_parser("fig12", help="reproduce Fig. 12")
    fig12.add_argument("--frames", type=int, default=240)
    _add_engine_options(fig12)

    table4 = sub.add_parser("table4", help="reproduce Table 4")
    table4.add_argument("--frames", type=int, default=200)
    _add_engine_options(table4)

    fig15 = sub.add_parser("fig15", help="reproduce Fig. 15")
    fig15.add_argument("--frames", type=int, default=200)
    _add_engine_options(fig15)

    batch = sub.add_parser(
        "batch", help="run figure sweeps through one shared batch engine"
    )
    batch.add_argument(
        "--experiments", nargs="+", default=sorted(SIM_EXPERIMENTS),
        choices=sorted(SIM_EXPERIMENTS),
        help="simulation-backed experiments to run (default: all)",
    )
    batch.add_argument("--frames", type=int, default=240)
    batch.add_argument("--seed", type=int, default=0)
    batch.add_argument(
        "--profile", default=None,
        help="network profile name (e.g. wifi-drop) or trace CSV path; "
        "applies to experiments that take a platform",
    )
    batch.add_argument(
        "--clear-cache", action="store_true",
        help="evict every on-disk cache entry before running "
        "(requires --cache-dir)",
    )
    _add_engine_options(batch)

    scenarios = sub.add_parser(
        "scenarios", help="heterogeneous multi-client shared sessions"
    )
    scenarios.add_argument(
        "--clients", nargs="+", required=True, metavar="APP[:PROFILE[:FREQ_MHZ]]",
        help="one entry per client, e.g. Doom3-H:wifi GRID:wifi-drop:300",
    )
    scenarios.add_argument(
        "--system", default="qvr", choices=list(SYSTEM_NAMES),
    )
    scenarios.add_argument("--frames", type=int, default=200)
    scenarios.add_argument("--seed", type=int, default=0)
    scenarios.add_argument("--sharing-efficiency", type=float, default=0.9)
    scenarios.add_argument(
        "--policy", default="fair-share", choices=list(POLICY_NAMES),
        help="server scheduling policy for the shared session "
        "(default: fair-share, the uniform division)",
    )
    scenarios.add_argument(
        "--events", default=None, metavar="EVENTS_JSON",
        help="JSON event timeline (join/leave/switch entries) upgrading "
        "the scenario to an event-driven session that re-plans admission "
        "and scheduling at every event",
    )
    scenarios.add_argument(
        "--capacity", type=float, default=None,
        help="server capacity in client-equivalents (default: one per "
        "server GPU)",
    )
    scenarios.add_argument(
        "--overflow", default=None, choices=list(OVERFLOW_MODES),
        help="what happens to demand beyond capacity: degrade (default), "
        "reject, or queue (queued clients start late when capacity frees)",
    )
    scenarios.add_argument(
        "--fleet", default=None, metavar="FLEET_JSON",
        help="JSON fleet description (named servers, placement policy, "
        "migration mode/penalty) replacing the single server; event files "
        "may then carry up/down/fail capacity entries",
    )
    scenarios.add_argument(
        "--motion-events", default=None, metavar="PROFILE",
        help="synthesize degraded-link ProfileSwitch events for client 0 "
        "from the head-motion trace: high-velocity windows roam onto this "
        "profile (a registry name or trace CSV, e.g. data/lte_4g_drive.csv) "
        "and recover afterwards",
    )
    _add_engine_options(scenarios)

    population = sub.add_parser(
        "population",
        help="expand a demand scenario into a city of sessions and stream "
        "it through the batch path",
    )
    population.add_argument(
        "scenario", metavar="SCENARIO_JSON",
        help="demand-scenario JSON file (schema: docs/demand_scenarios.md)",
    )
    population.add_argument("--seed", type=int, default=0)
    population.add_argument(
        "--policy", action="append", default=None, choices=list(POLICY_NAMES),
        help="evaluate only this scheduling policy (repeatable; must be in "
        "the scenario's policy list; default: every scenario policy)",
    )
    population.add_argument(
        "--max-sessions", type=int, default=None,
        help="cap the expansion after this many arrivals — a capped city "
        "is a strict prefix of the full one (CI smoke cells use this)",
    )
    population.add_argument(
        "--report", default=None, metavar="REPORT_JSON",
        help="write the full deterministic population report as JSON",
    )
    _add_engine_options(population)

    lint = sub.add_parser(
        "lint",
        help="static determinism & hash-integrity analysis "
        "(rules: docs/determinism.md)",
    )
    lint.add_argument(
        "paths", nargs="*", default=["src"], metavar="PATH",
        help="files or directories to lint (default: src)",
    )
    lint.add_argument(
        "--format", default="text", choices=["text", "json"],
        help="report format: human-readable text (default) or the JSON "
        "payload CI consumes (includes suppressed findings + justifications)",
    )
    lint.add_argument(
        "--config", default=None, metavar="TOML",
        help="lint config file (default: discover repro-lint.toml upward "
        "from the first PATH)",
    )

    obs = sub.add_parser(
        "obs",
        help="inspect a recorded trace directory (stage breakdown, "
        "Perfetto export, HTML timeline)",
    )
    obs.add_argument(
        "action", choices=["report"],
        help="'report' prints the stage-level latency/utilization breakdown",
    )
    obs.add_argument(
        "trace_dir", metavar="TRACE_DIR",
        help="trace directory recorded by a traced run",
    )
    obs.add_argument(
        "--html", default=None, metavar="OUT_HTML",
        help="also write a standalone HTML timeline to OUT_HTML",
    )
    obs.add_argument(
        "--chrome-trace", default=None, metavar="OUT_JSON",
        help="also write Chrome trace-event JSON to OUT_JSON "
        "(load in Perfetto or chrome://tracing)",
    )

    sub.add_parser("table1", help="reproduce Table 1")
    sub.add_parser("overheads", help="reproduce the Sec. 4.3 overheads")
    return parser


def _engine_from(args: argparse.Namespace) -> BatchEngine:
    stream_dir = getattr(args, "stream_dir", None)
    return BatchEngine(
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        engine=getattr(args, "engine", None),
        shards=getattr(args, "shards", None),
        shard_mode=getattr(args, "shard_mode", "process"),
        stream_dir=stream_dir or None,
    )


def _cmd_compare(args: argparse.Namespace) -> None:
    platform = PlatformConfig(network=by_name(args.network)).with_gpu_frequency(args.freq)
    results = run_comparison(
        args.app, systems=tuple(args.systems), platform=platform,
        n_frames=args.frames, seed=args.seed,
    )
    rows = [
        [
            name, r.mean_latency_ms,
            f"{speedup_over(results, name, baseline=args.systems[0]):.2f}x",
            r.measured_fps, r.mean_e1_deg, r.mean_transmitted_bytes / 1e3,
        ]
        for name, r in results.items()
    ]
    print(
        format_table(
            ["design", "latency (ms)", f"vs {args.systems[0]}", "FPS", "e1", "KB/frame"],
            rows,
            title=f"{args.app} @ {args.freq:.0f} MHz, {args.network}",
        )
    )


def _cmd_fig12(args: argparse.Namespace) -> None:
    rows = fig12_performance(n_frames=args.frames, engine=_engine_from(args))
    print(
        format_table(
            ["app", "Static", "FFR", "DFR", "Q-VR", "SW-FPS", "Q-VR-FPS"],
            [
                [r.app, r.static_speedup, r.ffr_speedup, r.dfr_speedup,
                 r.qvr_speedup, r.sw_fps, r.qvr_fps]
                for r in rows
            ],
            title="Fig. 12 — normalized performance",
        )
    )


def _cmd_table4(args: argparse.Namespace) -> None:
    cells = table4_eccentricity(n_frames=args.frames, engine=_engine_from(args))
    grid: dict[tuple[float, str], dict[str, str]] = {}
    for cell in cells:
        marker = "" if cell.meets_fps else "*"
        grid.setdefault((cell.frequency_mhz, cell.network), {})[cell.app] = (
            f"{cell.mean_e1_deg:.1f}{marker}"
        )
    print(
        format_table(
            ["Freq", "Network"] + [APPS[a].short_name for a in TABLE3_ORDER],
            [
                [f"{f:.0f}", n] + [row[a] for a in TABLE3_ORDER]
                for (f, n), row in grid.items()
            ],
            title="Table 4 — steady-state e1 (deg); * = misses 90 Hz",
        )
    )


def _cmd_fig15(args: argparse.Namespace) -> None:
    cells = fig15_energy(n_frames=args.frames, engine=_engine_from(args))
    grid: dict[tuple[float, str], dict[str, float]] = {}
    for cell in cells:
        grid.setdefault((cell.frequency_mhz, cell.network), {})[cell.app] = (
            cell.normalized_energy
        )
    print(
        format_table(
            ["Freq", "Network"] + [APPS[a].short_name for a in TABLE3_ORDER],
            [
                [f"{f:.0f}", n] + [row[a] for a in TABLE3_ORDER]
                for (f, n), row in grid.items()
            ],
            title="Fig. 15 — normalized system energy",
        )
    )


def _cmd_batch(args: argparse.Namespace) -> None:
    if args.clear_cache:
        if args.cache_dir is None:
            raise ConfigurationError("--clear-cache requires --cache-dir")
        removed = ResultCache(args.cache_dir).clear()
        print(f"cleared {removed} cached result(s) from {args.cache_dir}")
    profile = profile_by_name(args.profile) if args.profile is not None else None
    engine = _engine_from(args)
    rows = []
    # Wall-clock here times the *batch run* for the report table; results
    # come from the deterministic engine, never from these timers.
    total_start = obs_clock.perf_s()
    for name in args.experiments:
        func = SIM_EXPERIMENTS[name]
        kwargs = {"n_frames": args.frames, "seed": args.seed, "engine": engine}
        if profile is not None:
            params = inspect.signature(func).parameters
            if "profile" in params and isinstance(profile, PiecewiseProfile):
                kwargs["profile"] = profile
            elif "platform" in params:
                kwargs["platform"] = PlatformConfig(network=profile)
            else:
                rows.append([name, "skipped (no --profile support)", "-"])
                continue
        start = obs_clock.perf_s()
        result = func(**kwargs)
        rows.append([name, len(result), f"{obs_clock.perf_s() - start:.2f}"])
    total_s = obs_clock.perf_s() - total_start
    print(
        format_table(
            ["experiment", "rows", "wall (s)"],
            rows,
            title=(
                f"repro batch — {len(args.experiments)} experiments, "
                f"engine={args.engine}, jobs={args.jobs}, frames={args.frames}"
                + (f", profile={args.profile}" if args.profile else "")
            ),
        )
    )
    stats = engine.stats
    print(
        f"specs: {stats.requested} requested, {stats.unique} unique, "
        f"{stats.executed} executed, {stats.cache_hits} cache hits, "
        f"{stats.deduplicated} deduplicated in-batch; total {total_s:.2f}s"
    )
    shard_stats = engine.last_shard_stats
    if shard_stats is not None:
        print(
            f"shards: {shard_stats.shards} planned ({shard_stats.specs} specs), "
            f"{shard_stats.skipped_shards} resumed complete, "
            f"{shard_stats.salvaged} frames salvaged, "
            f"{shard_stats.steals} steals, {shard_stats.requeues} requeues, "
            f"{shard_stats.workers} workers ({args.shard_mode})"
        )


def _parse_client(token: str) -> ClientSpec:
    """Parse one ``APP[:PROFILE[:FREQ_MHZ]]`` client description."""
    parts = token.split(":")
    if len(parts) > 3 or not parts[0]:
        raise ConfigurationError(
            f"bad client spec {token!r}; expected APP[:PROFILE[:FREQ_MHZ]]"
        )
    app = parts[0]
    if app not in APPS:
        raise ConfigurationError(f"unknown app {app!r}; known: {sorted(APPS)}")
    profile = profile_by_name(parts[1]) if len(parts) >= 2 and parts[1] else None
    platform = None
    if len(parts) == 3 and parts[2]:
        try:
            frequency_mhz = float(parts[2])
        except ValueError:
            raise ConfigurationError(
                f"bad frequency {parts[2]!r} in client spec {token!r}"
            ) from None
        platform = PlatformConfig().with_gpu_frequency(frequency_mhz)
    return ClientSpec(app=app, platform=platform, profile=profile)


def _parse_events(path: str) -> tuple[SessionEvent, ...]:
    """Load a JSON event timeline for ``repro scenarios --events``.

    Accepts a top-level list (or a ``{"events": [...]}`` wrapper) of
    entries carrying ``t_ms`` plus exactly one of:

    * ``"join": "APP[:PROFILE[:FREQ_MHZ]]"`` — a new client arrives;
    * ``"leave": INDEX`` — session client INDEX departs;
    * ``"switch": INDEX, "profile": NAME`` — client INDEX roams onto
      another link profile (or trace CSV path);
    * ``"up": SERVER`` / ``"down": SERVER`` / ``"fail": SERVER`` — fleet
      capacity events (require ``--fleet``); ``down`` takes an optional
      ``"drain": false`` to skip the graceful migration.
    """
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except OSError as error:
        raise ConfigurationError(f"cannot read events file {path!r}: {error}") from None
    except json.JSONDecodeError as error:
        raise ConfigurationError(f"invalid JSON in {path!r}: {error}") from None
    if isinstance(payload, dict):
        payload = payload.get("events")
    if not isinstance(payload, list):
        raise ConfigurationError(
            f"{path!r} must hold a JSON list of events "
            '(or {"events": [...]})'
        )
    events: list[SessionEvent] = []
    for entry in payload:
        if not isinstance(entry, dict) or "t_ms" not in entry:
            raise ConfigurationError(f"bad event entry in {path!r}: {entry}")
        try:
            t_ms = float(entry["t_ms"])
        except (TypeError, ValueError):
            raise ConfigurationError(
                f"bad t_ms {entry['t_ms']!r} in {path!r}: {entry}"
            ) from None
        kinds = [
            k for k in ("join", "leave", "switch", "up", "down", "fail")
            if k in entry
        ]
        if len(kinds) != 1:
            raise ConfigurationError(
                f"event at {t_ms:g} ms in {path!r} needs exactly one of "
                f"join/leave/switch/up/down/fail, got {sorted(entry)}"
            )
        if kinds[0] == "join":
            events.append(Join(t_ms, _parse_client(str(entry["join"]))))
        elif kinds[0] == "leave":
            events.append(Leave(t_ms, client=_event_index(entry, "leave", path)))
        elif kinds[0] == "switch":
            if "profile" not in entry:
                raise ConfigurationError(
                    f"switch event at {t_ms:g} ms in {path!r} needs a "
                    '"profile"'
                )
            events.append(
                ProfileSwitch(
                    t_ms,
                    client=_event_index(entry, "switch", path),
                    profile=profile_by_name(str(entry["profile"])),
                )
            )
        elif kinds[0] == "up":
            events.append(ServerUp(t_ms, server=str(entry["up"])))
        elif kinds[0] == "down":
            events.append(
                ServerDown(
                    t_ms,
                    server=str(entry["down"]),
                    drain=bool(entry.get("drain", True)),
                )
            )
        else:
            events.append(ServerFail(t_ms, server=str(entry["fail"])))
    return tuple(events)


def _parse_fleet(path: str) -> RenderFleet:
    """Load a JSON fleet description for ``repro scenarios --fleet``.

    Schema::

        {"servers": {"a": 2.0, "b": {"capacity": 1.0}},
         "placement": "least-loaded",      # optional
         "migration": "migrate",           # optional: migrate | requeue
         "migration_penalty_ms": 120.0,    # optional
         "initial": ["a"],                 # optional: names up at t = 0
         "overflow": "queue"}              # optional: queue | reject

    Server values are a bare capacity (client-equivalents) or an object
    with a ``"capacity"`` key.
    """
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except OSError as error:
        raise ConfigurationError(f"cannot read fleet file {path!r}: {error}") from None
    except json.JSONDecodeError as error:
        raise ConfigurationError(f"invalid JSON in {path!r}: {error}") from None
    return fleet_from_payload(payload, source=repr(path))


def _event_index(entry: dict, key: str, path: str) -> int:
    """The client index of a leave/switch entry, validated."""
    try:
        return int(entry[key])
    except (TypeError, ValueError):
        raise ConfigurationError(
            f"bad client index {entry[key]!r} for {key!r} in {path!r}: {entry}"
        ) from None


def _server_from(args: argparse.Namespace) -> RenderServer | None:
    if args.capacity is None and args.overflow is None:
        return None
    return RenderServer(
        capacity_clients=args.capacity,
        overflow=args.overflow if args.overflow is not None else "degrade",
    )


def _motion_events(
    args: argparse.Namespace, clients: tuple[ClientSpec, ...]
) -> tuple[SessionEvent, ...]:
    """Synthesize client-0 ProfileSwitch events from the motion trace.

    Recovery switches back onto client 0's *declared* link (its profile
    override, or the session default) — a client on 4G roams back to 4G,
    not onto the default Wi-Fi.
    """
    trace = generate_trace(
        args.frames, constants.FRAME_BUDGET_MS, 1920, 2160, seed=args.seed
    )
    baseline = clients[0].resolved_platform(PlatformConfig()).network
    return events_from_motion(
        trace,
        degraded=profile_by_name(args.motion_events),
        recovered=as_profile(baseline),
    )


def _cmd_session(args: argparse.Namespace, clients: tuple[ClientSpec, ...]) -> None:
    """The event-driven branch of ``repro scenarios``.

    Taken for ``--events``, ``--fleet``, and/or ``--motion-events``; a
    fleet session prints per-server occupancy and placement history on
    top of the usual epoch/fate tables.
    """
    fleet = _parse_fleet(args.fleet) if args.fleet is not None else None
    if fleet is not None and (args.capacity is not None or args.overflow is not None):
        raise ConfigurationError(
            "--fleet already describes the servers; --capacity/--overflow "
            "apply only to the single-server session"
        )
    events: tuple[SessionEvent, ...] = ()
    if args.events is not None:
        events += _parse_events(args.events)
    if args.motion_events is not None:
        events += _motion_events(args, clients)
    session = Session(
        clients=clients,
        events=events,
        sharing_efficiency=args.sharing_efficiency,
        policy=args.policy,
        server=_server_from(args) if fleet is None else None,
        fleet=fleet,
    )
    result = simulate_session(
        session,
        n_frames=args.frames,
        seed=args.seed,
        system=args.system,
        engine=_engine_from(args),
    )
    timeline = result.timeline
    print(
        format_table(
            ["epoch", "window (ms)", "serviced", "queued"],
            [
                [
                    index,
                    f"{epoch.start_ms:.0f}-{epoch.end_ms:.0f}",
                    ",".join(str(i) for i in epoch.serviced) or "-",
                    ",".join(str(i) for i in epoch.queued) or "-",
                ]
                for index, epoch in enumerate(timeline.epochs)
            ],
            title=(
                f"{args.system} — session of {len(timeline.clients)} clients, "
                f"{len(timeline.epochs)} epochs, {args.policy} scheduling, "
                f"{args.engine} engine"
                + (f", {fleet.placement} placement" if fleet is not None else "")
            ),
        )
    )
    if fleet is not None:
        print(
            format_table(
                ["epoch", "server", "load/cap", "clients", "migrated in"],
                [
                    [
                        index,
                        window.server,
                        f"{window.load:g}/{window.capacity:g}",
                        ",".join(str(i) for i in window.clients) or "-",
                        ",".join(str(i) for i in window.migrated_in) or "-",
                    ]
                    for index, epoch in enumerate(timeline.epochs)
                    for window in epoch.servers
                ],
                title="per-server occupancy (down servers have no row)",
            )
        )
    rows = []
    for client in timeline.clients:
        run = result.result_for(client.index)
        history = (
            "->".join(
                name if name is not None else "~" for _, name in client.servers
            )
            or "-"
        )
        if run is None:
            ever_queued = any(
                client.index in epoch.queued for epoch in timeline.epochs
            )
            if client.end_ms is not None:
                fate = "left (queued)" if ever_queued else "left"
            else:
                fate = "queued" if ever_queued else "rejected"
            row = [client.index, client.spec.app, f"{client.joined_ms:.0f}",
                   "-", fate, "-", "-", "-"]
            if fleet is not None:
                row += [history, client.migrations]
            rows.append(row)
            continue
        assert client.start_ms is not None
        fate = "late-start" if client.start_ms > client.joined_ms else "admit"
        if client.end_ms is not None:
            fate += ", left"
        row = [
            client.index,
            client.spec.app,
            f"{client.joined_ms:.0f}",
            f"{client.start_ms:.0f}",
            fate,
            len(run.records),
            run.measured_fps,
            run.mean_latency_ms,
        ]
        if fleet is not None:
            row += [history, client.migrations]
        rows.append(row)
    headers = ["client", "app", "join (ms)", "start (ms)", "fate", "frames",
               "FPS", "latency (ms)"]
    if fleet is not None:
        headers += ["servers", "migr"]
    print(format_table(headers, rows))
    if fleet is not None:
        print(
            format_table(
                ["server", "up (ms)", "mean util", "peak load",
                 "clients", "migr in"],
                [
                    [
                        stats.server,
                        f"{stats.up_ms:.0f}",
                        stats.mean_utilisation,
                        stats.peak_load,
                        stats.distinct_clients,
                        stats.migrations_in,
                    ]
                    for stats in timeline.server_stats
                ],
                title="fleet summary",
            )
        )
    serviced = len(result.per_client)
    print(
        f"aggregate: {result.mean_fps:.1f} FPS mean across {serviced} serviced "
        f"clients, {result.clients_meeting_fps}/{serviced} hold 90 Hz"
    )


def _cmd_scenarios(args: argparse.Namespace) -> None:
    clients = tuple(_parse_client(token) for token in args.clients)
    if (
        args.events is not None
        or args.fleet is not None
        or args.motion_events is not None
    ):
        _cmd_session(args, clients)
        return
    scenario = MultiUserScenario.heterogeneous(
        clients,
        sharing_efficiency=args.sharing_efficiency,
        policy=args.policy,
        server=_server_from(args),
    )
    result = simulate_shared_infrastructure(
        scenario,
        n_frames=args.frames,
        seed=args.seed,
        system=args.system,
        engine=_engine_from(args),
    )
    assert result.decisions is not None
    results_by_index = dict(
        zip((d.client_index for d in result.decisions if d.serviced),
            result.per_client)
    )
    rows = []
    for decision, client in zip(result.decisions, clients):
        platform = client.resolved_platform(scenario.platform)
        network = platform.network
        client_result = results_by_index.get(decision.client_index)
        if client_result is None:
            rows.append(
                [client.app, getattr(network, "name", type(network).__name__),
                 f"{platform.gpu.frequency_mhz:.0f}", decision.action,
                 "-", "-", "-", "-"]
            )
            continue
        rows.append(
            [
                client.app,
                getattr(network, "name", type(network).__name__),
                f"{platform.gpu.frequency_mhz:.0f}",
                decision.action,
                client_result.mean_e1_deg,
                client_result.measured_fps,
                client_result.mean_latency_ms,
                "yes" if client_result.meets_target_fps else "no",
            ]
        )
    print(
        format_table(
            [
                "app", "profile", "MHz", "admission", "e1 (deg)", "FPS",
                "latency (ms)", ">=90 FPS",
            ],
            rows,
            title=(
                f"{args.system} — {scenario.n_clients} heterogeneous clients, "
                f"shared server + downlink, {args.policy} scheduling, "
                f"{args.engine} engine"
            ),
        )
    )
    serviced = len(result.per_client)
    print(
        f"aggregate: {result.mean_fps:.1f} FPS mean, "
        f"e1 {result.mean_e1_deg:.1f} deg mean, "
        f"{result.clients_meeting_fps}/{serviced} serviced clients hold 90 Hz"
    )


def _cmd_population(args: argparse.Namespace) -> None:
    scenario = DemandScenario.from_json(args.scenario)
    engine = _engine_from(args)

    tracer = obs_trace.active()

    def progress(policy: str, done: int, total: int) -> None:
        if done % 1000 != 0 and done != total:
            return
        message = f"{policy}: {done}/{total} client-sessions"
        if tracer.enabled:
            tracer.instant("population.progress", policy=policy, done=done,
                           total=total, message=message)
        else:
            print(f"  {message}", file=sys.stderr)

    # Wall-clock times the CLI invocation for the stderr footer; the
    # population report itself is bit-deterministic in (scenario, seed).
    start = obs_clock.perf_s()
    report = run_population(
        scenario,
        seed=args.seed,
        engine=engine,
        policies=tuple(args.policy) if args.policy else None,
        max_sessions=args.max_sessions,
        progress=progress,
    )
    wall = obs_clock.perf_s() - start
    rows = []
    for policy, r in report["policies"].items():
        slo = r["slo"]
        attainment = (
            "-"
            if slo["measured"] == 0
            else f"{100.0 * slo['met'] / slo['measured']:.1f}%"
        )
        rows.append(
            [
                policy,
                r["clients"],
                r["client_sessions"],
                r["executed"],
                f"{r['latency_ms']['p99']:.2f}",
                f"{r['fps']['mean']:.1f}",
                f"{r['client_p99_fps']['p50']:.1f}",
                f"{slo['met']}/{slo['measured']}",
                attainment,
            ]
        )
    print(
        format_table(
            [
                "policy", "clients", "client-sessions", "executed",
                "p99 latency (ms)", "mean FPS", "median client p99",
                "SLO met", "attainment",
            ],
            rows,
            title=(
                f"repro population — {report['scenario']}: "
                f"{report['sessions']} sessions, {report['clients']} clients, "
                f"seed {report['seed']}, system {report['system']}, "
                f"p99-FPS floor {report['slo_p99_fps_floor']:g}"
            ),
        )
    )
    if args.report is not None:
        with open(args.report, "w") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"report written to {args.report}", file=sys.stderr)
    stats = engine.stats
    print(
        f"specs: {stats.requested} requested, {stats.unique} unique, "
        f"{stats.executed} executed, {stats.cache_hits} cache hits; "
        f"total {wall:.2f}s",
        file=sys.stderr,
    )
    shard_stats = engine.last_shard_stats
    if shard_stats is not None:
        print(
            f"shards: {shard_stats.shards} planned ({shard_stats.specs} specs), "
            f"{shard_stats.steals} steals, {shard_stats.requeues} requeues, "
            f"{shard_stats.workers} workers ({args.shard_mode})",
            file=sys.stderr,
        )


def _cmd_obs(args: argparse.Namespace) -> int:
    from repro.obs import report as obs_report

    print(obs_report.render_report(args.trace_dir))
    if args.chrome_trace is not None:
        count = obs_report.export_chrome_trace(args.trace_dir, args.chrome_trace)
        print(f"chrome trace ({count} events) written to {args.chrome_trace}",
              file=sys.stderr)
    if args.html is not None:
        with open(args.html, "w", encoding="utf-8") as handle:
            handle.write(obs_report.render_html(args.trace_dir))
        print(f"HTML timeline written to {args.html}", file=sys.stderr)
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    """Run the static determinism analyzer; exit 1 on unsuppressed findings."""
    from repro.lint import lint_paths, render_json, render_text

    result = lint_paths(args.paths, config=args.config)
    if args.format == "json":
        sys.stdout.write(render_json(result))
    else:
        print(render_text(result))
    return 0 if result.ok else 1


def _cmd_table1(args: argparse.Namespace) -> None:
    rows = table1_static_characterization()
    print(
        format_table(
            ["app", "f range", "avg", "min", "max", "back KB", "Tremote"],
            [
                [r.app, f"{r.f_min:.0%}-{r.f_max:.0%}", r.avg_local_ms,
                 r.min_local_ms, r.max_local_ms, r.back_size_kb, r.remote_ms]
                for r in rows
            ],
            title="Table 1",
        )
    )


def _cmd_overheads(args: argparse.Namespace) -> None:
    reports = overhead_analysis()
    print(
        format_table(
            ["block", "area (mm^2)", "power (mW)"],
            [[name, r.area_mm2, r.power_mw] for name, r in reports.items()],
            title="Sec. 4.3 — overheads",
        )
    )


_COMMANDS = {
    "compare": _cmd_compare,
    "fig12": _cmd_fig12,
    "table4": _cmd_table4,
    "fig15": _cmd_fig15,
    "batch": _cmd_batch,
    "scenarios": _cmd_scenarios,
    "population": _cmd_population,
    "obs": _cmd_obs,
    "lint": _cmd_lint,
    "table1": _cmd_table1,
    "overheads": _cmd_overheads,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    trace_dir = None if args.command == "obs" else getattr(args, "trace_dir", None)
    if trace_dir is not None:
        obs_trace.configure(trace_dir, process="parent")
    try:
        code = _COMMANDS[args.command](args)
    finally:
        if trace_dir is not None:
            obs_trace.shutdown()
    return code if isinstance(code, int) else 0
