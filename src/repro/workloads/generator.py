"""Per-frame workload stream generation.

Combines a :class:`~repro.workloads.apps.VRApp`, a motion trace and the
scene dynamics into the sequence of :class:`FrameWorkload` objects that
every system simulation consumes.  A workload stream is deterministic for a
given (app, seed, frame count) triple.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import constants
from repro.errors import WorkloadError
from repro.gpu.perf_model import RenderWorkload
from repro.motion.traces import MotionSample, MotionTrace, generate_trace
from repro.workloads.apps import VRApp
from repro.workloads.scene_model import SceneComplexityModel

__all__ = ["FrameWorkload", "WorkloadGenerator", "generate_workloads"]


@dataclass(frozen=True)
class FrameWorkload:
    """Everything the pipelines need to simulate one frame.

    Attributes
    ----------
    index:
        Frame number.
    motion:
        The user state sampled for this frame.
    complexity:
        Scene complexity multiplier applied to the app's base workload.
    full:
        Full-frame (no partition) rendering workload.
    interactive_fraction:
        Share of frame time attributable to the nearest interactive
        objects — the portion the *static* collaborative design renders
        locally.
    content_complexity:
        Codec rate driver for this frame's remote layers.
    """

    index: int
    motion: MotionSample
    complexity: float
    full: RenderWorkload
    interactive_fraction: float
    content_complexity: float


class WorkloadGenerator:
    """Deterministic per-app workload stream factory.

    Parameters
    ----------
    app:
        The Table 3 title to model.
    seed:
        Master seed; motion, scene and interaction streams derive their
        own sub-seeds from it.
    frame_dt_ms:
        Nominal frame interval used to integrate the motion models
        (defaults to the 90 Hz frame budget).
    """

    def __init__(
        self,
        app: VRApp,
        seed: int = 0,
        frame_dt_ms: float = constants.FRAME_BUDGET_MS,
    ) -> None:
        if frame_dt_ms <= 0:
            raise WorkloadError(f"frame_dt_ms must be > 0, got {frame_dt_ms}")
        self.app = app
        self.seed = seed
        self.frame_dt_ms = frame_dt_ms

    def trace(self, n_frames: int) -> MotionTrace:
        """The motion trace underlying a stream of ``n_frames`` frames."""
        return generate_trace(
            n_frames=n_frames,
            frame_dt_ms=self.frame_dt_ms,
            panel_width_px=self.app.width_px,
            panel_height_px=self.app.height_px,
            seed=self.seed,
        )

    def generate(self, n_frames: int) -> list[FrameWorkload]:
        """Produce ``n_frames`` frames of deterministic workload."""
        if n_frames < 0:
            raise WorkloadError(f"n_frames must be >= 0, got {n_frames}")
        trace = self.trace(n_frames)
        scene = SceneComplexityModel(
            panel_width_px=self.app.width_px,
            panel_height_px=self.app.height_px,
            seed=self.seed + 101,
        )
        # Interactive share follows hotspot density and activity: the user
        # looking at / moving toward dense content is what creates the
        # foreground workload of the static design.
        f_lo, f_hi = self.app.interactive_fraction_range
        frames: list[FrameWorkload] = []
        for sample in trace:
            complexity = scene.step(sample)
            density = scene.hotspot_density(sample.gaze.x_px, sample.gaze.y_px)
            closeness = 0.6 * density + 0.4 * sample.activity
            interactive = f_lo + (f_hi - f_lo) * closeness
            frames.append(
                FrameWorkload(
                    index=sample.frame,
                    motion=sample,
                    complexity=complexity,
                    full=self.app.full_workload(complexity),
                    interactive_fraction=interactive,
                    content_complexity=self.app.content_complexity,
                )
            )
        return frames


def generate_workloads(
    app: VRApp, n_frames: int, seed: int = 0
) -> list[FrameWorkload]:
    """Convenience wrapper: one call from app to workload stream."""
    return WorkloadGenerator(app, seed=seed).generate(n_frames)
