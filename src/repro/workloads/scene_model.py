"""Motion-correlated scene dynamics (paper Sec. 4.1, Figs. 5 and 8).

Two observations drive LIWC's design and must hold in the synthetic
workloads:

1. *"The scene complexity change for the local foveated rendering across
   continuous frames is highly related to user's head and eye motions"*
   (Fig. 8) — as the fovea sweeps across the scene, the geometry under it
   changes; fast head motion means fast complexity change.
2. Interaction changes workload (Fig. 5) — approaching an interactive
   object raises its level of detail and render cost.

:class:`SceneComplexityModel` produces a per-frame complexity multiplier
combining (a) spatial *hotspots* — fixed dense regions of the scene in
gaze space, so complexity is a deterministic function of where the user
looks, (b) an activity coupling, and (c) a slow OU noise floor for scene
animation.  :class:`InteractionModel` produces the closeness signal for
tethered apps.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.motion.traces import MotionSample

__all__ = ["SceneComplexityModel", "InteractionModel"]


@dataclass(frozen=True)
class _Hotspot:
    """A dense scene region in normalised gaze space."""

    x: float
    y: float
    sigma: float
    gain: float


class SceneComplexityModel:
    """Per-frame complexity multiplier correlated with user motion.

    Parameters
    ----------
    panel_width_px, panel_height_px:
        Gaze coordinate bounds.
    n_hotspots:
        Number of dense scene regions.
    activity_gain:
        Complexity response to head-motion activity.
    noise_sigma:
        RMS of the slow OU scene-animation noise.
    lo, hi:
        Clamp range of the multiplier.
    seed:
        Hotspot placement / noise seed (per app).
    """

    def __init__(
        self,
        panel_width_px: int,
        panel_height_px: int,
        n_hotspots: int = 4,
        activity_gain: float = 0.25,
        hotspot_gain: float = 0.30,
        noise_sigma: float = 0.05,
        lo: float = 0.70,
        hi: float = 1.40,
        seed: int = 0,
    ) -> None:
        if panel_width_px <= 0 or panel_height_px <= 0:
            raise WorkloadError("panel dimensions must be positive")
        if lo <= 0 or hi < lo:
            raise WorkloadError(f"invalid clamp range [{lo}, {hi}]")
        self.width = panel_width_px
        self.height = panel_height_px
        self.activity_gain = activity_gain
        self.hotspot_gain = hotspot_gain
        self.noise_sigma = noise_sigma
        self.lo = lo
        self.hi = hi
        rng = np.random.default_rng(seed)
        self._hotspots = [
            _Hotspot(
                x=float(rng.uniform(0.15, 0.85)),
                y=float(rng.uniform(0.15, 0.85)),
                sigma=float(rng.uniform(0.12, 0.3)),
                gain=float(rng.uniform(0.5, 1.0)),
            )
            for _ in range(n_hotspots)
        ]
        self._noise_rng = np.random.default_rng(seed + 1)
        self._noise = 0.0
        self._noise_decay = 0.9

    def hotspot_density(self, gaze_x_px: float, gaze_y_px: float) -> float:
        """Scene density under the gaze point, in [0, 1]."""
        gx = gaze_x_px / self.width
        gy = gaze_y_px / self.height
        density = 0.0
        for spot in self._hotspots:
            d2 = (gx - spot.x) ** 2 + (gy - spot.y) ** 2
            density += spot.gain * math.exp(-d2 / (2.0 * spot.sigma**2))
        return min(1.0, density)

    def step(self, sample: MotionSample) -> float:
        """Advance one frame and return the complexity multiplier."""
        self._noise = self._noise * self._noise_decay + self.noise_sigma * math.sqrt(
            1.0 - self._noise_decay**2
        ) * float(self._noise_rng.standard_normal())
        density = self.hotspot_density(sample.gaze.x_px, sample.gaze.y_px)
        multiplier = (
            1.0
            + self.activity_gain * (sample.activity - 0.3)
            + self.hotspot_gain * (density - 0.5)
            + self._noise
        )
        # Branchy clamp instead of np.clip: identical bits for finite
        # floats, without the per-frame numpy scalar dispatch cost.
        lo, hi = self.lo, self.hi
        return lo if multiplier < lo else hi if multiplier > hi else multiplier


class InteractionModel:
    """Mean-reverting interaction-closeness process for tethered apps.

    Produces a closeness signal in [0, 1] (0 = far, 1 = touching) whose
    excursions reproduce the paper's Fig. 5: users drift toward and away
    from interactive objects over seconds.
    """

    def __init__(
        self,
        mean_closeness: float = 0.35,
        swing: float = 0.35,
        correlation_frames: float = 45.0,
        seed: int = 0,
    ) -> None:
        if not 0 <= mean_closeness <= 1:
            raise WorkloadError(f"mean_closeness must be in [0, 1], got {mean_closeness}")
        if correlation_frames <= 0:
            raise WorkloadError("correlation_frames must be positive")
        self.mean = mean_closeness
        self.swing = swing
        self._decay = math.exp(-1.0 / correlation_frames)
        self._rng = np.random.default_rng(seed)
        self._state = 0.0

    def step(self) -> float:
        """Advance one frame and return the closeness in [0, 1]."""
        diffusion = math.sqrt(1.0 - self._decay**2)
        self._state = self._state * self._decay + diffusion * float(
            self._rng.standard_normal()
        )
        closeness = self.mean + self.swing * self._state
        # Branchy clamp instead of np.clip (identical bits, no dispatch).
        return 0.0 if closeness < 0.0 else 1.0 if closeness > 1.0 else closeness
