"""Workload substrate: Table 3 games, Table 1 tethered apps, scene dynamics."""

from repro.workloads.apps import APPS, TABLE3_ORDER, VRApp, get_app
from repro.workloads.generator import FrameWorkload, WorkloadGenerator, generate_workloads
from repro.workloads.scene_model import InteractionModel, SceneComplexityModel
from repro.workloads.tethered import (
    TABLE1_ORDER,
    TETHERED_APPS,
    TetheredApp,
    get_tethered_app,
)

__all__ = [
    "APPS",
    "TABLE3_ORDER",
    "VRApp",
    "get_app",
    "FrameWorkload",
    "WorkloadGenerator",
    "generate_workloads",
    "InteractionModel",
    "SceneComplexityModel",
    "TABLE1_ORDER",
    "TETHERED_APPS",
    "TetheredApp",
    "get_tethered_app",
]
