"""Benchmark application models (paper Table 3).

The paper drives ATTILA-sim with API traces of five well-known 3D games —
Doom 3, Half-Life 2 (each at two resolutions), GRID, Unreal Tournament 3
and Wolfenstein — adjusted to VR per-eye resolutions.  Traces are not
redistributable, so each title is modelled by the quantities the simulator
extracts from a trace: per-eye resolution, draw-batch count (Table 3),
per-frame triangle count, average overdraw, average shader cycles per
fragment, and a content-complexity score that drives the video-codec rate.

The numeric calibration targets the paper's observable anchors: full-frame
local render times that reproduce the baseline latencies behind Fig. 12
(GRID is the heaviest title and batch-bound, Doom3-L the lightest) and
compressed background sizes around the ~0.5 bit/px the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import constants
from repro.errors import WorkloadError
from repro.gpu.perf_model import RenderWorkload

__all__ = ["VRApp", "APPS", "TABLE3_ORDER", "get_app"]


@dataclass(frozen=True)
class VRApp:
    """A Table 3 game title as a parametric workload model.

    Attributes
    ----------
    name:
        Table 3 label, e.g. ``"Doom3-H"``.
    short_name:
        Table 4 column code, e.g. ``"D3H"``.
    api:
        Rendering library of the original trace (OpenGL / DirectX).
    width_px, height_px:
        Per-eye resolution.
    draw_batches:
        Draw calls per frame (Table 3).
    triangles:
        Mean triangles per frame.
    overdraw:
        Average depth complexity (shaded fragments per covered pixel).
    fragment_cycles:
        Mean shader cycles per fragment.
    content_complexity:
        0..1 codec rate driver (texture/detail richness).
    interactive_fraction_range:
        (min, max) share of frame time spent on the nearest (interactive)
        objects — what the *static* collaborative design renders locally.
    texture_working_set_mb:
        Unique texture footprint per frame.
    """

    name: str
    short_name: str
    api: str
    width_px: int
    height_px: int
    draw_batches: int
    triangles: float
    overdraw: float
    fragment_cycles: float
    content_complexity: float
    interactive_fraction_range: tuple[float, float]
    texture_working_set_mb: float = 32.0

    def __post_init__(self) -> None:
        if self.width_px <= 0 or self.height_px <= 0:
            raise WorkloadError(f"{self.name}: resolution must be positive")
        if self.triangles <= 0 or self.draw_batches <= 0:
            raise WorkloadError(f"{self.name}: geometry quantities must be positive")
        if not 0 <= self.content_complexity <= 1:
            raise WorkloadError(f"{self.name}: content_complexity must be in [0, 1]")
        lo, hi = self.interactive_fraction_range
        if not 0 <= lo <= hi <= 1:
            raise WorkloadError(f"{self.name}: invalid interactive fraction range")

    @property
    def pixels_per_frame(self) -> float:
        """Native shaded output pixels per stereo frame (both eyes)."""
        return float(self.width_px * self.height_px * constants.EYES)

    def full_workload(self, complexity_multiplier: float = 1.0) -> RenderWorkload:
        """Full-frame rendering workload for one stereo frame.

        ``complexity_multiplier`` scales geometry and shading together; the
        scene model derives it from user motion and scene dynamics.
        """
        if complexity_multiplier <= 0:
            raise WorkloadError(
                f"complexity multiplier must be > 0, got {complexity_multiplier}"
            )
        return RenderWorkload(
            vertices=self.triangles * complexity_multiplier,
            fragments=self.pixels_per_frame * self.overdraw * complexity_multiplier,
            fragment_cycles=self.fragment_cycles,
            draw_batches=float(self.draw_batches),
            texture_working_set_bytes=self.texture_working_set_mb * 1e6,
        )


def _app(**kwargs) -> VRApp:
    return VRApp(**kwargs)


#: All Table 3 titles keyed by name.  Calibration notes: `fragment_cycles`
#: and `overdraw` are fitted so the 500 MHz full-frame render times span
#: ~15 ms (Doom3-L) to ~90 ms (GRID), reproducing the baseline spread the
#: paper's Fig. 12 speedups are computed against.
APPS: dict[str, VRApp] = {
    app.name: app
    for app in (
        _app(
            name="Doom3-H", short_name="D3H", api="OpenGL",
            width_px=1920, height_px=2160, draw_batches=382,
            triangles=450e3, overdraw=1.7, fragment_cycles=270.0,
            content_complexity=0.40, interactive_fraction_range=(0.12, 0.30),
        ),
        _app(
            name="Doom3-L", short_name="D3L", api="OpenGL",
            width_px=1280, height_px=1600, draw_batches=382,
            triangles=450e3, overdraw=1.7, fragment_cycles=270.0,
            content_complexity=0.35, interactive_fraction_range=(0.12, 0.30),
        ),
        _app(
            name="HL2-H", short_name="H2H", api="DirectX",
            width_px=1920, height_px=2160, draw_batches=656,
            triangles=700e3, overdraw=1.8, fragment_cycles=335.0,
            content_complexity=0.45, interactive_fraction_range=(0.10, 0.25),
        ),
        _app(
            name="HL2-L", short_name="H2L", api="DirectX",
            width_px=1280, height_px=1600, draw_batches=656,
            triangles=700e3, overdraw=1.8, fragment_cycles=335.0,
            content_complexity=0.40, interactive_fraction_range=(0.10, 0.25),
        ),
        _app(
            name="GRID", short_name="GD", api="DirectX",
            width_px=1920, height_px=2160, draw_batches=3680,
            triangles=2.5e6, overdraw=2.5, fragment_cycles=680.0,
            content_complexity=0.65, interactive_fraction_range=(0.15, 0.45),
            texture_working_set_mb=64.0,
        ),
        _app(
            name="UT3", short_name="UT3", api="DirectX",
            width_px=1920, height_px=2160, draw_batches=1752,
            triangles=1.4e6, overdraw=2.0, fragment_cycles=368.0,
            content_complexity=0.55, interactive_fraction_range=(0.10, 0.30),
            texture_working_set_mb=48.0,
        ),
        _app(
            name="Wolf", short_name="WF", api="DirectX",
            width_px=1920, height_px=2160, draw_batches=3394,
            triangles=1.8e6, overdraw=2.1, fragment_cycles=440.0,
            content_complexity=0.60, interactive_fraction_range=(0.10, 0.35),
            texture_working_set_mb=48.0,
        ),
    )
}

#: Presentation order used across every figure and table.
TABLE3_ORDER: tuple[str, ...] = (
    "Doom3-H",
    "Doom3-L",
    "HL2-H",
    "HL2-L",
    "GRID",
    "UT3",
    "Wolf",
)


def get_app(name: str) -> VRApp:
    """Look up a Table 3 title by name or short code (case-insensitive)."""
    for app in APPS.values():
        if name.lower() in (app.name.lower(), app.short_name.lower()):
            return app
    raise WorkloadError(f"unknown app: {name!r}; known: {sorted(APPS)}")
