"""Tethered high-quality VR applications (paper Table 1, Figs. 3 and 5).

The motivation study (Sec. 2.3) runs five photorealistic Windows VR apps —
Foveated3D, Viking Village, Nature, Sponza and San Miguel — on a Gen 9
Intel mobile processor, characterising the *static* collaborative design:
the share ``f`` of frame time spent rendering the pre-defined interactive
objects, the local render latency range, and the compressed background
sizes / remote fetch times.

These apps are modelled directly by their Table 1 characteristics.  The
interactive share ``f`` varies with the user's interaction *closeness*
(Fig. 5: approaching the Nature tree raises its render cost from 12 ms to
26 ms) through a level-of-detail model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import constants
from repro.errors import WorkloadError

__all__ = ["TetheredApp", "TETHERED_APPS", "TABLE1_ORDER", "get_tethered_app"]


@dataclass(frozen=True)
class TetheredApp:
    """A Table 1 application on the paper's physical test platform.

    Attributes
    ----------
    name:
        Table 1 label.
    width_px, height_px:
        Per-eye resolution (all Table 1 apps run at 1920x2160).
    triangles:
        Scene triangle count from Table 1.
    interactive_objects:
        Human-readable description of the pre-defined interactive set.
    f_range:
        (min, max) share of frame time for the interactive objects.
    full_frame_ms:
        Full-frame local render time on the Gen 9 test platform.
    content_complexity:
        Codec rate driver, fitted to the Table 1 background sizes.
    """

    name: str
    width_px: int
    height_px: int
    triangles: float
    interactive_objects: str
    f_range: tuple[float, float]
    full_frame_ms: float
    content_complexity: float

    def __post_init__(self) -> None:
        lo, hi = self.f_range
        if not 0 <= lo <= hi <= 1:
            raise WorkloadError(f"{self.name}: invalid f range {self.f_range}")
        if self.full_frame_ms <= 0:
            raise WorkloadError(f"{self.name}: full_frame_ms must be positive")

    @property
    def pixels_per_frame(self) -> float:
        """Native stereo output pixels per frame."""
        return float(self.width_px * self.height_px * constants.EYES)

    def interactive_fraction(self, closeness: float) -> float:
        """Interactive workload share ``f`` at an interaction closeness.

        ``closeness`` in [0, 1]: 0 = far from every interactive object
        (minimum detail), 1 = touching distance (maximum detail).  The LOD
        response is superlinear in closeness — detail pops in quickly as
        the user approaches, which is what makes the static design's
        worst case so much larger than its average (Challenge I).
        """
        if not 0.0 <= closeness <= 1.0:
            raise WorkloadError(f"closeness must be in [0, 1], got {closeness}")
        lo, hi = self.f_range
        return lo + (hi - lo) * closeness**1.5

    def interactive_latency_ms(self, closeness: float) -> float:
        """Local render latency of the interactive objects (static design)."""
        return self.interactive_fraction(closeness) * self.full_frame_ms

    def background_fraction(self, closeness: float) -> float:
        """Complement of :meth:`interactive_fraction`."""
        return 1.0 - self.interactive_fraction(closeness)


TETHERED_APPS: dict[str, TetheredApp] = {
    app.name: app
    for app in (
        TetheredApp(
            name="Foveated3D", width_px=1920, height_px=2160, triangles=231e3,
            interactive_objects="9 Chess", f_range=(0.16, 0.52),
            full_frame_ms=128.0, content_complexity=0.72,
        ),
        TetheredApp(
            name="Viking", width_px=1920, height_px=2160, triangles=2.8e6,
            interactive_objects="1 Carriage", f_range=(0.10, 0.13),
            full_frame_ms=123.0, content_complexity=0.40,
        ),
        TetheredApp(
            name="Nature", width_px=1920, height_px=2160, triangles=1.4e6,
            interactive_objects="1 Tree", f_range=(0.10, 0.24),
            full_frame_ms=110.0, content_complexity=0.29,
        ),
        TetheredApp(
            name="Sponza", width_px=1920, height_px=2160, triangles=282e3,
            interactive_objects="Lion Shield", f_range=(0.001, 0.20),
            full_frame_ms=60.0, content_complexity=0.42,
        ),
        TetheredApp(
            name="San Miguel", width_px=1920, height_px=2160, triangles=4.2e6,
            interactive_objects="4 Chairs, 1 Table", f_range=(0.06, 0.15),
            full_frame_ms=93.0, content_complexity=0.50,
        ),
    )
}

#: Table 1 presentation order.
TABLE1_ORDER: tuple[str, ...] = (
    "Foveated3D",
    "Viking",
    "Nature",
    "Sponza",
    "San Miguel",
)


def get_tethered_app(name: str) -> TetheredApp:
    """Look up a Table 1 application by name (case-insensitive)."""
    for app in TETHERED_APPS.values():
        if app.name.lower() == name.lower():
            return app
    raise WorkloadError(f"unknown tethered app: {name!r}; known: {sorted(TETHERED_APPS)}")
