"""Process-local spans and instant events, free when disabled.

The module holds one active :class:`Tracer` per process.  Disabled —
the default — it is a shared null singleton whose ``span``/``instant``
methods are empty and allocation-free, so instrumentation sites can
call it unconditionally.  :func:`configure` activates tracing into a
directory (one JSONL stream per process, see :mod:`repro.obs.sinks`)
and switches :mod:`repro.obs.metrics` live as well; :func:`shutdown`
flushes the metrics snapshot into the stream and restores the null
singleton.

Span and instant IDs are deterministic: a keyed event's ID is a hash of
its name and key (spec keys and shard ordinals in practice), so the
same logical work carries the same ID in every run, at any worker
count, whichever process executed it.  Unkeyed events fall back to a
per-process sequence so they stay unique.  Timestamps come from
:mod:`repro.obs.clock` and never touch results — the bit-parity suite
in ``tests/obs`` runs the population path with tracing on and off and
asserts identical reports.

Fork/exec safety: :func:`ensure` re-anchors a tracer whose PID no
longer matches the process (a forked pool worker inherits the parent's
active tracer) by opening a fresh per-PID stream, so two processes
never interleave writes into one file.
"""

from __future__ import annotations

import atexit
import hashlib
import os
import re
from typing import Iterator

from repro.obs import clock, metrics
from repro.obs.sinks import JsonlSink

__all__ = [
    "Tracer",
    "active",
    "configure",
    "deterministic_id",
    "ensure",
    "shutdown",
]

_SAFE_PROC = re.compile(r"[^A-Za-z0-9._-]+")


def deterministic_id(name: str, key: object) -> str:
    """A stable 64-bit hex ID for a (name, key) pair."""
    material = f"{name}|{key!r}".encode()
    return hashlib.sha256(material).hexdigest()[:16]


class _NullSpan:
    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """Context manager emitting span_begin/span_end around a block."""

    __slots__ = ("_tracer", "_name", "_id")

    def __init__(self, tracer: "Tracer", name: str, span_id: str) -> None:
        self._tracer = tracer
        self._name = name
        self._id = span_id

    def __enter__(self) -> "_Span":
        self._tracer._begin(self._name, self._id)
        return self

    def __exit__(self, *exc: object) -> bool:
        self._tracer._end(self._name, self._id)
        return False


class Tracer:
    """A live tracer bound to one process's JSONL stream."""

    enabled = True

    def __init__(self, directory: str, process: str) -> None:
        self.directory = str(directory)
        self.process = _SAFE_PROC.sub("-", process) or "proc"
        self.pid = os.getpid()
        self._seq = 0
        self._stack: list[str] = []
        self._pending: dict[str, dict] = {}
        self._sink = JsonlSink(
            os.path.join(self.directory, f"{self.process}.jsonl")
        )
        self._sink.emit(
            {
                "kind": "process",
                "proc": self.process,
                "pid": self.pid,
                "wall_s": clock.wall_s(),
                "mono_s": clock.monotonic_s(),
            }
        )

    def _event_id(self, name: str, key: object) -> str:
        if key is not None:
            return deterministic_id(name, key)
        self._seq += 1
        return deterministic_id(name, (self.process, self._seq))

    def span(self, name: str, key: object = None, **attrs: object) -> _Span:
        """A context manager tracing one stage; nests via a stack."""
        span_id = self._event_id(name, key)
        if attrs:
            self._pending[span_id] = attrs
        return _Span(self, name, span_id)

    def _begin(self, name: str, span_id: str) -> None:
        record = {
            "kind": "span_begin",
            "id": span_id,
            "name": name,
            "mono_s": clock.monotonic_s(),
        }
        if self._stack:
            record["parent"] = self._stack[-1]
        attrs = self._pending.pop(span_id, None)
        if attrs:
            record["attrs"] = attrs
        self._stack.append(span_id)
        self._sink.emit(record)

    def _end(self, name: str, span_id: str) -> None:
        if self._stack and self._stack[-1] == span_id:
            self._stack.pop()
        self._sink.emit(
            {
                "kind": "span_end",
                "id": span_id,
                "name": name,
                "mono_s": clock.monotonic_s(),
            }
        )

    def instant(self, name: str, key: object = None, **attrs: object) -> None:
        """Emit one point-in-time event."""
        record = {
            "kind": "instant",
            "id": self._event_id(name, key),
            "name": name,
            "mono_s": clock.monotonic_s(),
        }
        if self._stack:
            record["parent"] = self._stack[-1]
        if attrs:
            record["attrs"] = attrs
        self._sink.emit(record)

    def close(self) -> None:
        """Flush the metrics snapshot into the stream and close it."""
        self._sink.emit(
            {
                "kind": "metrics",
                "proc": self.process,
                "snapshot": metrics.registry().snapshot(),
            }
        )
        self._sink.close()


class _NullTracer:
    """The disabled singleton: every method is a cheap no-op."""

    enabled = False
    directory = None
    process = None
    pid = None

    def span(self, name: str, key: object = None, **attrs: object) -> _NullSpan:
        return _NULL_SPAN

    def instant(self, name: str, key: object = None, **attrs: object) -> None:
        return None

    def close(self) -> None:
        return None


_NULL_TRACER = _NullTracer()
_active = _NULL_TRACER


def active():
    """The process-active tracer (the null singleton when disabled)."""
    return _active


def configure(trace_dir: str | os.PathLike, process: str = "parent"):
    """Activate tracing for this process into ``trace_dir``."""
    global _active
    if _active.enabled and _active.pid == os.getpid():
        # Re-configuration within one process flushes the old stream; a
        # forked child must NOT close the tracer it inherited — that
        # would write into (and close) the parent's file descriptor.
        _active.close()
    metrics.deactivate()
    metrics.activate()
    _active = Tracer(str(trace_dir), process)
    return _active


def ensure(trace_dir: str | os.PathLike | None, process: str | None = None):
    """Idempotent, fork-safe activation (no-op when ``trace_dir`` is None).

    Reuses the active tracer when it already belongs to this process;
    re-anchors into a fresh per-PID stream after a fork.
    """
    if trace_dir is None:
        return _active
    if _active.enabled and _active.pid == os.getpid():
        return _active
    return configure(trace_dir, process or f"pid-{os.getpid()}")


def shutdown() -> None:
    """Flush and close the active tracer; instrumentation goes free again."""
    global _active
    if _active.enabled and _active.pid == os.getpid():
        # Same fork guard as configure(): never flush a tracer this
        # process merely inherited.
        _active.close()
    _active = _NULL_TRACER
    metrics.deactivate()


# Pool workers have no explicit teardown hook; flushing at interpreter
# exit lands their metrics snapshot in the stream.  Idempotent and
# PID-guarded, so the parent's explicit shutdown stays the normal path.
atexit.register(shutdown)


def spans(events: list[dict]) -> Iterator[tuple[dict, dict]]:
    """Pair (begin, end) records from a merged event list, by process+ID."""
    open_spans: dict[tuple[str, str], dict] = {}
    for event in events:
        kind = event.get("kind")
        if kind == "span_begin":
            open_spans[(event.get("proc", ""), event["id"])] = event
        elif kind == "span_end":
            begin = open_spans.pop((event.get("proc", ""), event["id"]), None)
            if begin is not None:
                yield begin, event
