"""The single sanctioned host-clock site.

Results must be a function of the spec alone, so the determinism
analyzer (DET002, see ``docs/determinism.md``) flags every wall-clock
read in the tree.  The reads that legitimately remain — dead-worker
staleness decisions, heartbeat pacing, reporting-only timers, trace
timestamps — all route through this module, which carries the one
ledgered DET002 exception in ``repro-lint.toml`` (``sanctioned_paths``)
instead of scattering per-site suppressions.

Nothing returned from these helpers may enter a result object: host
time is observability input only.  The three helpers mirror the three
reasons the stack looks at the host:

- :func:`wall_s` — epoch seconds, comparable across processes (trace
  anchors, claim-file mtime staleness).
- :func:`monotonic_s` — monotonic seconds within one process (heartbeat
  pacing, span timestamps).
- :func:`perf_s` — the highest-resolution monotonic clock (reporting
  timers and benchmark legs).
"""

from __future__ import annotations

import time

__all__ = ["monotonic_s", "perf_s", "wall_s"]


def wall_s() -> float:
    """Epoch seconds; the only clock comparable across processes."""
    return time.time()


def monotonic_s() -> float:
    """Monotonic seconds; immune to wall-clock steps, per process."""
    return time.monotonic()


def perf_s() -> float:
    """Highest-resolution monotonic seconds, for reporting-only timers."""
    return time.perf_counter()
