"""Counters, gauges, and histograms with mergeable snapshots.

A process-local registry in the spirit of the streaming aggregates in
:mod:`repro.sim.metrics` — and literally built on them: histograms pair
a :class:`~repro.sim.metrics.RunningMoments` with a
:class:`~repro.sim.metrics.QuantileSketch`, and snapshot merging folds
partial aggregates with the same Chan / add-the-counters semantics the
population report already trusts.  Counter merge is integer addition
and therefore exactly associative, which ``tests/obs`` asserts.

When tracing is disabled (the default) the module-level accessors
return shared null instruments whose methods are empty — no allocation,
no dict lookup, no branch in the caller — so instrumented hot paths are
genuinely free.  :func:`activate`/:func:`deactivate` are driven by
:mod:`repro.obs.trace`; instrumentation sites never toggle state.
"""

from __future__ import annotations

from typing import Iterable

from repro.sim.metrics import QuantileSketch, RunningMoments

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "activate",
    "counter",
    "deactivate",
    "enabled",
    "gauge",
    "histogram",
    "merge_snapshots",
    "registry",
]


class Counter:
    """A monotonically increasing integer; merge is exact addition."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A last-written float plus its update count (for merge tie-breaks)."""

    __slots__ = ("value", "updates")

    def __init__(self) -> None:
        self.value: float | None = None
        self.updates = 0

    def set(self, value: float) -> None:
        self.value = float(value)
        self.updates += 1


class Histogram:
    """Moments + log-binned sketch over one observation stream."""

    __slots__ = ("moments", "sketch")

    def __init__(self) -> None:
        self.moments = RunningMoments()
        self.sketch = QuantileSketch()

    def observe(self, value: float) -> None:
        self.moments.add(value)
        self.sketch.add(value)


class _NullCounter:
    __slots__ = ()

    def inc(self, n: int = 1) -> None:
        return None


class _NullGauge:
    __slots__ = ()

    def set(self, value: float) -> None:
        return None


class _NullHistogram:
    __slots__ = ()

    def observe(self, value: float) -> None:
        return None


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class MetricsRegistry:
    """Name -> instrument table for one process."""

    enabled = True

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter()
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge()
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram()
        return instrument

    def snapshot(self) -> dict:
        """A JSON-serializable, mergeable image of every instrument."""
        return {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: {"value": g.value, "updates": g.updates}
                for name, g in sorted(self._gauges.items())
            },
            "histograms": {
                name: _histogram_state(h)
                for name, h in sorted(self._histograms.items())
            },
        }


class _NullRegistry:
    """The disabled singleton: every accessor returns a shared no-op."""

    enabled = False

    def counter(self, name: str) -> _NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str) -> _NullGauge:
        return _NULL_GAUGE

    def histogram(self, name: str) -> _NullHistogram:
        return _NULL_HISTOGRAM

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}


_NULL_REGISTRY = _NullRegistry()
_active = _NULL_REGISTRY


def registry():
    """The process-active registry (the null singleton when disabled)."""
    return _active


def enabled() -> bool:
    return _active.enabled


def counter(name: str):
    return _active.counter(name)


def gauge(name: str):
    return _active.gauge(name)


def histogram(name: str):
    return _active.histogram(name)


def activate() -> MetricsRegistry:
    """Install (or return) a live registry for this process."""
    global _active
    if not _active.enabled:
        _active = MetricsRegistry()
    return _active


def deactivate() -> None:
    """Restore the null registry (instrumentation goes back to free)."""
    global _active
    _active = _NULL_REGISTRY


# ---------------------------------------------------------------------------
# Snapshot serialization + merge
# ---------------------------------------------------------------------------


def _histogram_state(h: Histogram) -> dict:
    m, s = h.moments, h.sketch
    return {
        "count": m.count,
        "mean": m.mean,
        "m2": m._m2,
        "min": m.min,
        "max": m.max,
        "sketch": {
            "lo": s.lo,
            "hi": s.hi,
            "bins_per_decade": s.bins_per_decade,
            "counts": {str(index): n for index, n in sorted(s._counts.items())},
        },
    }


def _histogram_from_state(state: dict) -> Histogram:
    h = Histogram()
    m = h.moments
    m.count = int(state["count"])
    m.mean = float(state["mean"])
    m._m2 = float(state["m2"])
    m.min = float(state["min"])
    m.max = float(state["max"])
    geometry = state["sketch"]
    h.sketch = QuantileSketch(
        min_value=geometry["lo"],
        max_value=geometry["hi"],
        bins_per_decade=geometry["bins_per_decade"],
    )
    h.sketch._counts = {
        int(index): int(n) for index, n in geometry["counts"].items()
    }
    h.sketch.count = sum(h.sketch._counts.values())
    return h


def merge_snapshots(snapshots: Iterable[dict]) -> dict:
    """Fold per-process snapshots into one (associative for counters).

    Counters add exactly; histograms merge through the underlying
    ``RunningMoments``/``QuantileSketch`` fold; a gauge keeps the value
    with the most updates (ties broken toward the larger value, so the
    fold is order-independent).
    """
    counters: dict[str, int] = {}
    gauges: dict[str, dict] = {}
    histograms: dict[str, Histogram] = {}
    for snapshot in snapshots:
        for name, value in snapshot.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + int(value)
        for name, state in snapshot.get("gauges", {}).items():
            held = gauges.get(name)
            if held is None or _gauge_wins(state, held):
                gauges[name] = dict(state)
        for name, state in snapshot.get("histograms", {}).items():
            incoming = _histogram_from_state(state)
            held_h = histograms.get(name)
            if held_h is None:
                histograms[name] = incoming
            else:
                held_h.moments.merge(incoming.moments)
                held_h.sketch.merge(incoming.sketch)
    return {
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "histograms": {
            name: _histogram_state(h) for name, h in sorted(histograms.items())
        },
    }


def _gauge_wins(incoming: dict, held: dict) -> bool:
    if incoming["updates"] != held["updates"]:
        return incoming["updates"] > held["updates"]
    lhs = incoming["value"] if incoming["value"] is not None else float("-inf")
    rhs = held["value"] if held["value"] is not None else float("-inf")
    return lhs > rhs
