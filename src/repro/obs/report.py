"""Aggregate a trace directory into human-readable breakdowns.

The analysis layer over :mod:`repro.obs.sinks`: merge the per-process
streams, pair spans, and report a stage-level latency breakdown (count,
total, mean, p50/p99 via the log-binned sketch), per-process
utilization (busy fraction under top-level spans), and the merged
counter/gauge snapshot.  ``repro obs report DIR`` prints these tables;
``--html`` additionally writes a standalone timeline page and
``--chrome-trace`` the Perfetto-loadable export.
"""

from __future__ import annotations

import html
import os

from repro.analysis.report import format_table
from repro.obs import metrics
from repro.obs.sinks import merge_trace_dir, write_chrome_trace
from repro.obs.trace import spans

__all__ = [
    "export_chrome_trace",
    "load_trace",
    "render_html",
    "render_report",
    "stage_rows",
    "utilization_rows",
]


def load_trace(trace_dir: str | os.PathLike) -> tuple[list[dict], dict]:
    """Merged (events, metrics-snapshot) for a trace directory."""
    events, snapshots = merge_trace_dir(trace_dir)
    return events, metrics.merge_snapshots(snapshots)


def _span_durations(events: list[dict]) -> list[tuple[dict, dict, float]]:
    return [
        (begin, end, max(0.0, end["ts_s"] - begin["ts_s"]))
        for begin, end in spans(events)
    ]


def stage_rows(events: list[dict]) -> list[list[object]]:
    """Per-stage latency rows: name, count, total s, mean/p50/p99/max ms."""
    stages: dict[str, metrics.Histogram] = {}
    for begin, _end, duration_s in _span_durations(events):
        histogram = stages.setdefault(begin["name"], metrics.Histogram())
        histogram.observe(duration_s * 1e3)
    rows: list[list[object]] = []
    for name, histogram in sorted(
        stages.items(),
        key=lambda item: (
            -(item[1].moments.mean * item[1].moments.count),
            item[0],
        ),
    ):
        moments = histogram.moments
        rows.append(
            [
                name,
                moments.count,
                moments.count * moments.mean / 1e3,
                moments.mean,
                histogram.sketch.quantile(0.5),
                histogram.sketch.quantile(0.99),
                moments.max,
            ]
        )
    return rows


def utilization_rows(events: list[dict]) -> list[list[object]]:
    """Per-process rows: events, extent s, busy s (top-level spans), util."""
    extent: dict[str, list[float]] = {}
    busy: dict[str, float] = {}
    counts: dict[str, int] = {}
    for event in events:
        proc = event["proc"]
        counts[proc] = counts.get(proc, 0) + 1
        window = extent.setdefault(proc, [event["ts_s"], event["ts_s"]])
        window[0] = min(window[0], event["ts_s"])
        window[1] = max(window[1], event["ts_s"])
    for begin, _end, duration_s in _span_durations(events):
        if "parent" not in begin:
            proc = begin["proc"]
            busy[proc] = busy.get(proc, 0.0) + duration_s
    rows = []
    for proc in sorted(extent):
        lo, hi = extent[proc]
        span_s = hi - lo
        busy_s = busy.get(proc, 0.0)
        rows.append(
            [
                proc,
                counts[proc],
                span_s,
                busy_s,
                (busy_s / span_s) if span_s > 0 else float("nan"),
            ]
        )
    return rows


def render_report(trace_dir: str | os.PathLike) -> str:
    """The full plain-text report for a trace directory."""
    events, merged = load_trace(trace_dir)
    sections = []
    stage = stage_rows(events)
    if stage:
        sections.append(
            format_table(
                ["stage", "count", "total_s", "mean_ms", "p50_ms", "p99_ms",
                 "max_ms"],
                stage,
                title="Stage latency breakdown",
            )
        )
    util = utilization_rows(events)
    if util:
        sections.append(
            format_table(
                ["process", "events", "extent_s", "busy_s", "utilization"],
                util,
                title="Process utilization",
            )
        )
    counters = merged.get("counters", {})
    if counters:
        sections.append(
            format_table(
                ["counter", "value"],
                [[name, value] for name, value in counters.items()],
                title="Counters (merged)",
            )
        )
    gauges = merged.get("gauges", {})
    if gauges:
        sections.append(
            format_table(
                ["gauge", "value"],
                [
                    [name, state["value"]]
                    for name, state in gauges.items()
                    if state["value"] is not None
                ],
                title="Gauges (merged)",
            )
        )
    if not sections:
        sections.append(f"no trace events found under {trace_dir}")
    return "\n\n".join(sections)


def export_chrome_trace(
    trace_dir: str | os.PathLike, out_path: str | os.PathLike
) -> int:
    """Write the Perfetto-loadable export; returns the event count."""
    events, merged = load_trace(trace_dir)
    write_chrome_trace(events, out_path, counters=merged.get("counters"))
    return len(events)


# ---------------------------------------------------------------------------
# Standalone HTML timeline
# ---------------------------------------------------------------------------

_HTML_HEAD = """<!doctype html>
<html><head><meta charset="utf-8"><title>obs trace timeline</title>
<style>
body { font: 13px/1.4 monospace; margin: 1.5em; background: #fafafa; }
h1, h2 { font-size: 15px; }
.lane { position: relative; height: 22px; margin: 2px 0;
        background: #eee; border-radius: 3px; }
.lane .label { position: absolute; left: 4px; top: 3px; color: #666;
               z-index: 0; }
.span { position: absolute; top: 2px; height: 18px; border-radius: 2px;
        overflow: hidden; white-space: nowrap; color: #fff;
        font-size: 10px; padding-left: 2px; box-sizing: border-box; }
.instant { position: absolute; top: 0; width: 2px; height: 22px;
           background: #d33; }
table { border-collapse: collapse; margin: 1em 0; }
td, th { border: 1px solid #ccc; padding: 2px 8px; text-align: right; }
td:first-child, th:first-child { text-align: left; }
</style></head><body>
<h1>obs trace timeline</h1>
"""


def _color(name: str) -> str:
    hue = sum(ord(c) for c in name) * 47 % 360
    return f"hsl({hue}, 55%, 45%)"


def render_html(trace_dir: str | os.PathLike) -> str:
    """A dependency-free HTML page: one lane per process + stage table."""
    events, _merged = load_trace(trace_dir)
    parts = [_HTML_HEAD]
    if not events:
        parts.append(f"<p>no trace events found under {html.escape(str(trace_dir))}</p>")
        parts.append("</body></html>\n")
        return "".join(parts)
    t0 = min(event["ts_s"] for event in events)
    t1 = max(event["ts_s"] for event in events)
    width = max(t1 - t0, 1e-9)
    durations = _span_durations(events)
    procs = sorted({event["proc"] for event in events})
    parts.append(f"<p>{len(events)} events, {width:.3f}s extent, "
                 f"{len(procs)} process(es)</p>")
    for proc in procs:
        parts.append(f'<div class="lane"><span class="label">'
                     f"{html.escape(proc)}</span>")
        for begin, _end, duration_s in durations:
            if begin["proc"] != proc:
                continue
            left = (begin["ts_s"] - t0) / width * 100.0
            span_width = max(duration_s / width * 100.0, 0.15)
            name = begin["name"]
            title = f"{name} ({duration_s * 1e3:.2f} ms)"
            parts.append(
                f'<div class="span" style="left:{left:.3f}%;'
                f"width:{span_width:.3f}%;"
                f'background:{_color(name)}" title="{html.escape(title)}">'
                f"{html.escape(name)}</div>"
            )
        for event in events:
            if event["proc"] != proc or event["kind"] != "instant":
                continue
            left = (event["ts_s"] - t0) / width * 100.0
            parts.append(
                f'<div class="instant" style="left:{left:.3f}%" '
                f'title="{html.escape(event["name"])}"></div>'
            )
        parts.append("</div>")
    stage = stage_rows(events)
    if stage:
        parts.append("<h2>Stage latency breakdown</h2><table><tr>")
        for header in ("stage", "count", "total_s", "mean_ms", "p50_ms",
                       "p99_ms", "max_ms"):
            parts.append(f"<th>{header}</th>")
        parts.append("</tr>")
        for row in stage:
            parts.append("<tr>")
            for value in row:
                cell = f"{value:.2f}" if isinstance(value, float) else str(value)
                parts.append(f"<td>{html.escape(cell)}</td>")
            parts.append("</tr>")
        parts.append("</table>")
    parts.append("</body></html>\n")
    return "".join(parts)
