"""Deterministic observability plane: spans, counters, trace export.

The obs package is the one part of the tree that is allowed to look at
the host — and only through :mod:`repro.obs.clock`, the single
sanctioned wall/monotonic-clock site.  Everything else here is plumbing
around that exception:

- :mod:`repro.obs.trace` — process-local spans and instant events with
  deterministic IDs, written as append-only JSONL; a no-op singleton
  when tracing is disabled, so instrumented hot paths cost nothing.
- :mod:`repro.obs.metrics` — counters/gauges/histograms with mergeable
  snapshots, reusing the streaming-merge semantics of
  :mod:`repro.sim.metrics`.
- :mod:`repro.obs.sinks` — the JSONL event stream, torn-tail salvage,
  cross-process merge (clock-offset reconciliation), and Chrome
  trace-event export loadable in Perfetto.
- :mod:`repro.obs.report` — stage-level latency/utilization breakdown
  tables and a standalone HTML timeline for a trace directory.

Instrumentation only ever *reads* simulation state: results are
bit-identical with tracing on or off at any shard/worker count (the
parity suite in ``tests/obs`` asserts this), and the disabled-mode
overhead of the no-op path is gated in CI by the ``obs-overhead``
benchmark leg.  See ``docs/observability.md``.
"""

from repro.obs import clock, metrics, trace

__all__ = ["clock", "metrics", "trace"]
