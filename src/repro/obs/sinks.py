"""Trace event streams: JSONL per process, merge, Chrome export.

Each traced process appends newline-delimited JSON records to its own
file in the trace directory (``<process>.jsonl``), flushed per record
so a SIGKILL can tear at most the final line.  Readers keep the valid
prefix and drop a torn tail — the same salvage contract the sharded
executor's spill files honor — so a dead worker's trace merges cleanly.

Every file opens with a ``process`` anchor record carrying a paired
(wall, monotonic) clock sample.  Event timestamps are monotonic within
their process; :func:`merge_trace_dir` maps them onto one shared wall
axis via each anchor's ``wall - monotonic`` offset, which is how
per-worker clock skew is reconciled without any cross-process
coordination at runtime.

:func:`write_chrome_trace` renders the merged stream in the Chrome
trace-event JSON format, loadable directly in Perfetto
(https://ui.perfetto.dev) — spans become B/E duration events (a span
torn open by a crash renders as unfinished, which is exactly what
happened), instants become ``i`` events, and merged counters ride along
in process metadata.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

__all__ = [
    "JsonlSink",
    "merge_trace_dir",
    "read_events",
    "trace_files",
    "write_chrome_trace",
]


class JsonlSink:
    """Append-only newline-delimited JSON writer, flushed per record."""

    __slots__ = ("path", "_fh")

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "a", encoding="utf-8")

    def emit(self, record: dict) -> None:
        self._fh.write(json.dumps(record, separators=(",", ":")) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()


def read_events(path: str | os.PathLike) -> list[dict]:
    """Read one JSONL trace file, salvaging a torn tail.

    A record is kept only if its line is newline-terminated and decodes
    as JSON; the first violation ends the read (everything after a torn
    frame is unreachable by the append-only writer's contract).
    """
    events: list[dict] = []
    try:
        fh = open(path, encoding="utf-8")
    except OSError:
        return events
    with fh:
        for line in fh:
            if not line.endswith("\n"):
                break
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                break
            if isinstance(record, dict):
                events.append(record)
    return events


def trace_files(trace_dir: str | os.PathLike) -> list[Path]:
    """The per-process event files of a trace directory, sorted by name."""
    root = Path(trace_dir)
    if not root.is_dir():
        return []
    return sorted(p for p in root.glob("*.jsonl") if p.is_file())


def merge_trace_dir(trace_dir: str | os.PathLike) -> tuple[list[dict], list[dict]]:
    """Merge every per-process stream onto one wall-clock axis.

    Returns ``(events, snapshots)``: timeline events (``span_begin`` /
    ``span_end`` / ``instant``) with a reconciled ``ts_s`` wall
    timestamp and their ``proc`` name attached, sorted by
    ``(ts_s, proc, file order)``; and the list of per-process metrics
    snapshots found in the streams.  Events recorded before a clock
    anchor (possible only in a hand-damaged file) are dropped.
    """
    merged: list[tuple[float, str, int, dict]] = []
    snapshots: list[dict] = []
    for path in trace_files(trace_dir):
        proc = path.stem
        offset = None
        for seq, record in enumerate(read_events(path)):
            kind = record.get("kind")
            if kind == "process":
                offset = float(record["wall_s"]) - float(record["mono_s"])
            elif kind == "metrics":
                snapshots.append(record.get("snapshot", {}))
            elif kind in ("span_begin", "span_end", "instant"):
                if offset is None:
                    continue
                event = dict(record)
                event["proc"] = proc
                event["ts_s"] = float(record["mono_s"]) + offset
                merged.append((event["ts_s"], proc, seq, event))
    merged.sort(key=lambda item: item[:3])
    return [event for _, _, _, event in merged], snapshots


def write_chrome_trace(
    events: list[dict],
    path: str | os.PathLike,
    counters: dict | None = None,
) -> None:
    """Write merged events as Chrome trace-event JSON (Perfetto-loadable)."""
    procs = sorted({event["proc"] for event in events})
    pids = {proc: index + 1 for index, proc in enumerate(procs)}
    t0 = min((event["ts_s"] for event in events), default=0.0)
    trace_events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": proc},
        }
        for proc, pid in pids.items()
    ]
    for event in events:
        ts_us = (event["ts_s"] - t0) * 1e6
        entry = {
            "name": event.get("name", "?"),
            "cat": "obs",
            "ts": ts_us,
            "pid": pids[event["proc"]],
            "tid": 1,
            "args": event.get("attrs", {}),
        }
        kind = event["kind"]
        if kind == "span_begin":
            entry["ph"] = "B"
            entry["args"] = {**entry["args"], "id": event.get("id")}
        elif kind == "span_end":
            entry["ph"] = "E"
        else:
            entry["ph"] = "i"
            entry["s"] = "t"
        trace_events.append(entry)
    payload: dict = {"traceEvents": trace_events, "displayTimeUnit": "ms"}
    if counters:
        payload["metadata"] = {"obs.counters": counters}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, separators=(",", ":"))
        fh.write("\n")
