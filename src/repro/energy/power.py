"""Component power models for the mobile VR system (paper Sec. 6.3).

The energy study normalises Q-VR's *system* energy (mobile GPU + network
module + video decoder + LIWC + UCA) to the traditional local-rendering
design.  Power numbers follow the sources the paper cites:

* **GPU** — a mobile-class GPU with DVFS: dynamic power scales roughly
  with ``f * V^2`` and voltage tracks frequency on the mobile DVFS curve,
  giving the familiar superlinear ``(f/f0)^2.4`` dynamic scaling plus a
  static leakage floor (Jin et al., "Towards accurate GPU power modeling
  for smartphones" — the paper's ref [25]).
* **Network radios** — Wi-Fi / LTE / 5G active receive powers and idle
  tails from Huang et al.'s LTE measurement study (the paper's ref [23]).
* **LIWC / UCA** — the McPAT-derived 25 mW and 94 mW of Sec. 4.3.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import constants
from repro.errors import ConfigurationError

__all__ = ["GPUPowerModel", "RadioPowerModel", "RADIO_POWER", "AcceleratorPower"]

#: Reference frequency the GPU power numbers are specified at.
_REFERENCE_FREQ_MHZ = constants.DEFAULT_GPU_FREQ_MHZ

#: DVFS exponent of dynamic power versus frequency (f * V(f)^2).
_DVFS_EXPONENT = 2.4


@dataclass(frozen=True)
class GPUPowerModel:
    """Mobile GPU power: leakage floor plus DVFS-scaled dynamic power.

    Attributes
    ----------
    dynamic_w_at_reference:
        Dynamic power when fully busy at the 500 MHz reference clock.
    static_w:
        Leakage + always-on power while the GPU domain is powered.
    """

    dynamic_w_at_reference: float = 3.2
    static_w: float = 0.35

    def __post_init__(self) -> None:
        if self.dynamic_w_at_reference <= 0 or self.static_w < 0:
            raise ConfigurationError("GPU power parameters must be positive")

    def dynamic_w(self, frequency_mhz: float) -> float:
        """Dynamic power when busy at a given clock."""
        if frequency_mhz <= 0:
            raise ConfigurationError(f"frequency must be > 0, got {frequency_mhz}")
        return self.dynamic_w_at_reference * (frequency_mhz / _REFERENCE_FREQ_MHZ) ** _DVFS_EXPONENT

    def energy_mj(self, busy_ms: float, frame_span_ms: float, frequency_mhz: float) -> float:
        """Energy over one frame: dynamic while busy, static for the span."""
        if busy_ms < 0 or frame_span_ms < 0:
            raise ConfigurationError("durations must be >= 0")
        busy = min(busy_ms, frame_span_ms) if frame_span_ms > 0 else busy_ms
        return self.dynamic_w(frequency_mhz) * busy + self.static_w * frame_span_ms


@dataclass(frozen=True)
class RadioPowerModel:
    """Wireless modem power: active receive power plus a post-transfer tail.

    Attributes
    ----------
    active_w:
        Power while actively receiving.
    tail_w:
        Power in the high-energy tail state after a transfer.
    tail_ms:
        Tail duration per transfer burst.
    idle_w:
        Baseline connected-idle power.
    """

    active_w: float
    tail_w: float
    tail_ms: float
    idle_w: float

    def energy_mj(self, active_ms: float, frame_span_ms: float) -> float:
        """Radio energy for one frame with ``active_ms`` of receive time."""
        if active_ms < 0 or frame_span_ms < 0:
            raise ConfigurationError("durations must be >= 0")
        active = min(active_ms, frame_span_ms) if frame_span_ms > 0 else active_ms
        tail = min(self.tail_ms, max(frame_span_ms - active, 0.0)) if active > 0 else 0.0
        idle = max(frame_span_ms - active - tail, 0.0)
        return self.active_w * active + self.tail_w * tail + self.idle_w * idle


#: Radio power profiles per network technology (Huang et al. for LTE;
#: Wi-Fi numbers from the same measurement literature).  The Early 5G
#: profile follows the paper's Sec. 6.3 premise that "the power
#: consumption of the network module is typically less critical than that
#: of the local GPU" and that higher throughput improves energy
#: efficiency: its active power sits near LTE's while its transfers are
#: far shorter.
RADIO_POWER: dict[str, RadioPowerModel] = {
    "Wi-Fi": RadioPowerModel(active_w=0.9, tail_w=0.25, tail_ms=8.0, idle_w=0.08),
    "4G LTE": RadioPowerModel(active_w=2.1, tail_w=1.1, tail_ms=10.0, idle_w=0.12),
    "Early 5G": RadioPowerModel(active_w=1.9, tail_w=0.8, tail_ms=7.0, idle_w=0.12),
}


@dataclass(frozen=True)
class AcceleratorPower:
    """Fixed-function block powers (Sec. 4.3 McPAT results)."""

    liwc_w: float = 0.025
    uca_w: float = 0.094
    video_decoder_w: float = 0.45

    def liwc_energy_mj(self, frame_span_ms: float) -> float:
        """LIWC energy: always on while the system runs (worst case)."""
        return self.liwc_w * frame_span_ms

    def uca_energy_mj(self, busy_ms: float) -> float:
        """UCA energy while processing tiles (both units)."""
        return self.uca_w * busy_ms

    def decoder_energy_mj(self, busy_ms: float) -> float:
        """Hardware video decoder energy while decoding."""
        return self.video_decoder_w * busy_ms
