"""McPAT-style area/power estimation for LIWC and UCA (paper Sec. 4.3).

The paper uses McPAT at 45 nm / 500 MHz to size its new blocks:

* LIWC's SRAM mapping table: depth 2^15, 16-bit entries (64 KB) ->
  ~0.66 mm^2 and <= 25 mW;
* one UCA instance (4 MULs for lens distortion + 8 SIMD4 FPUs for
  coordinate mapping/filtering plus control) -> 1.6 mm^2, 94 mW at
  500 MHz.

Full McPAT is a large C++ tool; what its SRAM and FPU estimates reduce to
at a fixed technology node are per-bit and per-lane area/power constants.
This module encodes those constants (fitted to the paper's reported
outputs at 45 nm) so the same *methodology* — block composition times
technology constants — reproduces the Sec. 4.3 numbers and extrapolates
to other table/unit configurations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import constants
from repro.errors import ConfigurationError

__all__ = ["SRAMEstimate", "FPUEstimate", "estimate_liwc", "estimate_uca", "OverheadReport"]

# 45 nm SRAM constants (McPAT-class): mm^2 per KB and mW per KB at 500 MHz,
# including decoders/sense amps amortised over a 64 KB-scale macro.
_SRAM_MM2_PER_KB = 0.0103
_SRAM_MW_PER_KB = 0.39

# 45 nm arithmetic-lane constants at 500 MHz: one 32-bit multiplier and one
# SIMD4 FPU lane group, including pipeline registers and control share.
_MUL_MM2 = 0.055
_MUL_MW = 3.4
_SIMD4_FPU_MM2 = 0.165
_SIMD4_FPU_MW = 9.6

# Fixed control/interface overhead of a standalone accelerator block.
_BLOCK_MM2 = 0.06
_BLOCK_MW = 3.0


@dataclass(frozen=True)
class SRAMEstimate:
    """Area/power estimate for an SRAM macro."""

    size_kb: float
    area_mm2: float
    power_mw: float


@dataclass(frozen=True)
class FPUEstimate:
    """Area/power estimate for an arithmetic block."""

    area_mm2: float
    power_mw: float


@dataclass(frozen=True)
class OverheadReport:
    """Sec. 4.3 overhead summary for one hardware block."""

    name: str
    area_mm2: float
    power_mw: float

    def __str__(self) -> str:
        return f"{self.name}: {self.area_mm2:.2f} mm^2, {self.power_mw:.0f} mW"


def estimate_sram(size_kb: float, frequency_mhz: float = constants.DEFAULT_GPU_FREQ_MHZ) -> SRAMEstimate:
    """Estimate an SRAM macro at 45 nm."""
    if size_kb <= 0:
        raise ConfigurationError(f"size_kb must be > 0, got {size_kb}")
    scale = frequency_mhz / constants.DEFAULT_GPU_FREQ_MHZ
    return SRAMEstimate(
        size_kb=size_kb,
        area_mm2=size_kb * _SRAM_MM2_PER_KB,
        power_mw=size_kb * _SRAM_MW_PER_KB * scale,
    )


def estimate_liwc(
    table_depth: int = 1 << 15,
    entry_bits: int = 16,
    frequency_mhz: float = constants.DEFAULT_GPU_FREQ_MHZ,
) -> OverheadReport:
    """Reproduce the paper's LIWC overhead estimate.

    Default configuration: 2^15 entries x 16-bit half floats = 64 KB,
    giving ~0.66 mm^2 and <= 25 mW at 500 MHz / 45 nm.
    """
    if table_depth < 1 or entry_bits < 1:
        raise ConfigurationError("table dimensions must be positive")
    size_kb = table_depth * entry_bits / constants.BITS_PER_BYTE / 1024.0
    sram = estimate_sram(size_kb, frequency_mhz)
    return OverheadReport(
        name="LIWC",
        area_mm2=sram.area_mm2,
        power_mw=sram.power_mw,
    )


def estimate_uca(
    multipliers: int = 4,
    simd4_fpus: int = 8,
    frequency_mhz: float = constants.DEFAULT_GPU_FREQ_MHZ,
) -> OverheadReport:
    """Reproduce the paper's UCA overhead estimate.

    Default configuration (Sec. 4.2): 4 MULs for lens distortion plus
    8 SIMD4 FPUs for coordinate mapping and filtering, giving ~1.6 mm^2
    and ~94 mW at 500 MHz / 45 nm.
    """
    if multipliers < 0 or simd4_fpus < 0:
        raise ConfigurationError("unit counts must be >= 0")
    scale = frequency_mhz / constants.DEFAULT_GPU_FREQ_MHZ
    area = multipliers * _MUL_MM2 + simd4_fpus * _SIMD4_FPU_MM2 + _BLOCK_MM2
    power = (multipliers * _MUL_MW + simd4_fpus * _SIMD4_FPU_MW + _BLOCK_MW) * scale
    return OverheadReport(name="UCA", area_mm2=area, power_mw=power)
