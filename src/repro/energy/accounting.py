"""System-energy accounting over simulation results (paper Fig. 15).

Converts a :class:`~repro.sim.metrics.SimulationResult` into per-frame and
normalised system energy: mobile GPU + radio + video decoder + LIWC + UCA.
The remote server's energy is excluded, as in the paper (it evaluates the
*mobile* system's energy efficiency).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.energy.power import AcceleratorPower, GPUPowerModel, RADIO_POWER
from repro.errors import ConfigurationError
from repro.sim.metrics import SimulationResult

__all__ = ["EnergyBreakdown", "EnergyAccountant"]


@dataclass(frozen=True)
class EnergyBreakdown:
    """Mean per-frame energy split for one simulation (millijoules)."""

    gpu_mj: float
    radio_mj: float
    decoder_mj: float
    liwc_mj: float
    uca_mj: float

    @property
    def total_mj(self) -> float:
        """Total mobile system energy per frame."""
        return self.gpu_mj + self.radio_mj + self.decoder_mj + self.liwc_mj + self.uca_mj


class EnergyAccountant:
    """Computes Fig. 15-style energy numbers from simulation results.

    Parameters
    ----------
    gpu_power:
        GPU power model (DVFS-scaled).
    radio_power:
        Radio profile; when omitted it is looked up from the network name
        recorded in the run's platform.
    accelerators:
        LIWC/UCA/decoder powers.
    """

    def __init__(
        self,
        gpu_power: GPUPowerModel | None = None,
        accelerators: AcceleratorPower | None = None,
    ) -> None:
        self.gpu_power = gpu_power if gpu_power is not None else GPUPowerModel()
        self.accelerators = accelerators if accelerators is not None else AcceleratorPower()

    def breakdown(
        self,
        result: SimulationResult,
        gpu_frequency_mhz: float,
        network_name: str,
        has_liwc: bool = False,
        has_uca: bool = False,
    ) -> EnergyBreakdown:
        """Mean per-frame energy for one completed run."""
        if network_name not in RADIO_POWER:
            raise ConfigurationError(
                f"unknown network {network_name!r}; known: {sorted(RADIO_POWER)}"
            )
        radio_model = RADIO_POWER[network_name]
        records = result.records[result.warmup_frames :] or result.records
        if not records:
            raise ConfigurationError("result has no frames to account")

        # Frame span: steady-state inter-display interval.
        if len(records) >= 2:
            span_ms = (records[-1].display_ms - records[0].display_ms) / (len(records) - 1)
        else:
            span_ms = records[0].pipeline_latency_ms
        span_ms = max(span_ms, 1e-6)

        gpu = radio = decoder = liwc = uca = 0.0
        uses_radio = any(r.net_busy_ms > 0 for r in records)
        for r in records:
            gpu += self.gpu_power.energy_mj(r.gpu_busy_ms, span_ms, gpu_frequency_mhz)
            if uses_radio:
                radio += radio_model.energy_mj(r.net_busy_ms, span_ms)
            decoder += self.accelerators.decoder_energy_mj(r.vd_busy_ms)
            if has_liwc:
                liwc += self.accelerators.liwc_energy_mj(span_ms)
            if has_uca:
                uca += self.accelerators.uca_energy_mj(r.uca_busy_ms)
        n = float(len(records))
        return EnergyBreakdown(
            gpu_mj=gpu / n,
            radio_mj=radio / n,
            decoder_mj=decoder / n,
            liwc_mj=liwc / n,
            uca_mj=uca / n,
        )

    def normalized_energy(
        self,
        system_result: SimulationResult,
        baseline_result: SimulationResult,
        gpu_frequency_mhz: float,
        network_name: str,
        has_liwc: bool = False,
        has_uca: bool = False,
    ) -> float:
        """System energy normalised to the local-rendering baseline.

        Both runs are accounted at the same GPU frequency; the baseline
        uses no radio/accelerators (traditional local rendering).
        """
        system = self.breakdown(
            system_result, gpu_frequency_mhz, network_name, has_liwc, has_uca
        )
        baseline = self.breakdown(
            baseline_result, gpu_frequency_mhz, network_name, False, False
        )
        if baseline.total_mj <= 0:
            raise ConfigurationError("baseline energy must be positive")
        return system.total_mj / baseline.total_mj
