"""Energy substrate: component power models, McPAT overheads, accounting."""

from repro.energy.accounting import EnergyAccountant, EnergyBreakdown
from repro.energy.mcpat import (
    OverheadReport,
    estimate_liwc,
    estimate_sram,
    estimate_uca,
)
from repro.energy.power import (
    AcceleratorPower,
    GPUPowerModel,
    RADIO_POWER,
    RadioPowerModel,
)

__all__ = [
    "EnergyAccountant",
    "EnergyBreakdown",
    "OverheadReport",
    "estimate_liwc",
    "estimate_sram",
    "estimate_uca",
    "AcceleratorPower",
    "GPUPowerModel",
    "RadioPowerModel",
    "RADIO_POWER",
]
