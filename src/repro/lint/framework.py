"""Rule framework: findings, suppressions, the walker, and the runner.

The framework runs two kinds of rules:

* :class:`SyntaxRule` — per-file AST rules.  A rule declares interest by
  defining ``visit_<NodeType>`` methods; the framework merges every
  active rule's handlers into **one** AST pass per file (the walker
  maintains an ancestor stack rules can consult for scope questions).
* :class:`ProjectRule` — cross-file rules that run once over the whole
  linted tree (e.g. the spec-hash coverage check, which cross-references
  dataclass definitions against the strip tables in another module).

Findings are suppressed line-by-line with a machine-checked comment::

    hazard()  # repro-lint: disable=DET002 -- wall-clock is reporting-only here

A suppression on its own line covers the next code line.  Suppressions
are themselves enforced: one that matches no finding is reported as
``LINT001`` (unused suppression), so a "load-bearing" comment cannot
silently outlive the constraint it documents.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path
from typing import Iterable

from repro.errors import ConfigurationError
from repro.lint.config import LintConfig

__all__ = [
    "Finding",
    "LintResult",
    "LintRunner",
    "ProjectRule",
    "SourceFile",
    "Suppression",
    "SyntaxRule",
    "all_rule_codes",
    "register",
    "registered_rules",
]

#: Framework-reserved finding codes (not suppressible, not configurable).
UNUSED_SUPPRESSION = "LINT001"
PARSE_ERROR = "LINT002"


@dataclass(frozen=True)
class Finding:
    """One lint finding, anchored to a file position."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    suppressed: bool = False
    justification: str | None = None

    def sort_key(self) -> tuple:
        """Deterministic output ordering: by file, position, then rule."""
        return (self.path, self.line, self.col, self.rule)

    def __str__(self) -> str:
        tag = " [suppressed]" if self.suppressed else ""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}{tag}"


@dataclass
class Suppression:
    """A parsed ``# repro-lint: disable=...`` comment."""

    rules: tuple[str, ...]
    line: int
    covers: int
    justification: str | None = None
    used: bool = False

    def matches(self, finding: Finding) -> bool:
        """Whether this suppression covers the finding's line and rule."""
        return finding.line == self.covers and finding.rule in self.rules


_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
    r"(?:\s*--\s*(?P<why>.*\S))?\s*$"
)
_MARKER_RE = re.compile(r"#\s*repro-lint:")


class SourceFile:
    """A parsed Python source file plus its suppression comments."""

    def __init__(self, path: Path, rel: str, text: str) -> None:
        self.path = path
        self.rel = rel
        self.text = text
        self.tree = ast.parse(text)  # caller handles SyntaxError
        self.suppressions, self.malformed = _parse_suppressions(text)

    @classmethod
    def read(cls, path: Path, rel: str) -> "SourceFile":
        """Load and parse a file from disk."""
        return cls(path, rel, path.read_text(encoding="utf-8"))


def _parse_suppressions(text: str) -> tuple[list[Suppression], list[int]]:
    """Extract suppression comments; returns (suppressions, malformed lines).

    A trailing comment covers its own line; a comment alone on a line
    covers the next line bearing any code token.
    """
    comments: list[tokenize.TokenInfo] = []
    code_lines: set[int] = set()
    skip = (
        tokenize.COMMENT,
        tokenize.NL,
        tokenize.NEWLINE,
        tokenize.INDENT,
        tokenize.DEDENT,
        tokenize.ENCODING,
        tokenize.ENDMARKER,
    )
    try:
        for tok in tokenize.generate_tokens(io.StringIO(text).readline):
            if tok.type == tokenize.COMMENT:
                comments.append(tok)
            elif tok.type not in skip:
                code_lines.add(tok.start[0])
    except tokenize.TokenError:  # unterminated constructs: ast.parse reports
        pass
    suppressions: list[Suppression] = []
    malformed: list[int] = []
    ordered_code = sorted(code_lines)
    for tok in comments:
        if not _MARKER_RE.search(tok.string):
            continue
        match = _SUPPRESS_RE.search(tok.string)
        if match is None:
            malformed.append(tok.start[0])
            continue
        rules = tuple(part.strip() for part in match.group(1).split(","))
        line = tok.start[0]
        covers = line
        if line not in code_lines:  # standalone: cover the next code line
            covers = next((c for c in ordered_code if c > line), line)
        suppressions.append(
            Suppression(rules=rules, line=line, covers=covers,
                        justification=match.group("why"))
        )
    return suppressions, malformed


# ---------------------------------------------------------------------------
# Rules and the registry
# ---------------------------------------------------------------------------


class Rule:
    """Base class: one named, configurable check."""

    code: str = ""
    description: str = ""
    #: Rules whose scope is inherently project-specific (hot-path module
    #: lists, spec-hash baselines) stay off until the TOML names them.
    default_enabled: bool = True

    def __init__(self, options: dict) -> None:
        self.options = options

    def applies_to(self, rel: str) -> bool:
        """Whether this rule is in scope for a repo-relative path."""
        paths = self.options.get("paths")
        if paths and not any(fnmatch(rel, pattern) for pattern in paths):
            return False
        return not any(
            fnmatch(rel, pattern) for pattern in self.options.get("exclude", ())
        )


class SyntaxRule(Rule):
    """A per-file AST rule; define ``visit_<NodeType>`` handler methods."""

    def start_file(self, src: SourceFile, ctx: "FileContext") -> None:
        """Optional per-file prepass (import tables, scope maps)."""


class ProjectRule(Rule):
    """A cross-file rule; runs once over the whole linted tree."""

    def check(self, project: "Project") -> None:
        """Inspect the project and report findings via ``project.report``."""
        raise NotImplementedError


_REGISTRY: dict[str, type[Rule]] = {}


def register(rule_class: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not rule_class.code:
        raise ConfigurationError(f"rule {rule_class.__name__} has no code")
    if rule_class.code in _REGISTRY:
        raise ConfigurationError(f"duplicate rule code {rule_class.code!r}")
    _REGISTRY[rule_class.code] = rule_class
    return rule_class


def registered_rules() -> dict[str, type[Rule]]:
    """The registry (code -> rule class), as a copy."""
    return dict(_REGISTRY)


def all_rule_codes() -> tuple[str, ...]:
    """Every registered rule code, sorted."""
    return tuple(sorted(_REGISTRY))


# ---------------------------------------------------------------------------
# The single-pass walker
# ---------------------------------------------------------------------------


class FileContext:
    """Per-file state handed to every rule handler."""

    def __init__(self, src: SourceFile, sink: list[Finding]) -> None:
        self.src = src
        self.ancestors: list[ast.AST] = []
        self._sink = sink
        self._cache: dict[str, object] = {}

    def report(self, rule: str, node: ast.AST, message: str) -> None:
        """Record a finding anchored at ``node``."""
        self._sink.append(
            Finding(
                rule=rule,
                path=self.src.rel,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                message=message,
            )
        )

    def shared(self, key: str, build):
        """Memoize per-file analysis shared between rules (import tables)."""
        if key not in self._cache:
            self._cache[key] = build()
        return self._cache[key]

    def enclosing(self, *types: type) -> ast.AST | None:
        """The nearest ancestor of one of the given node types, if any."""
        for node in reversed(self.ancestors):
            if isinstance(node, types):
                return node
        return None

    def in_loop(self) -> bool:
        """Whether the current node sits inside a for/while body."""
        for node in reversed(self.ancestors):
            if isinstance(node, (ast.For, ast.While)):
                return True
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                return False
        return False

    @property
    def parent(self) -> ast.AST | None:
        """The immediate parent of the node under visitation."""
        return self.ancestors[-1] if self.ancestors else None


class _Walker(ast.NodeVisitor):
    """One AST pass dispatching each node to every interested rule."""

    def __init__(
        self, handlers: dict[str, list], ctx: FileContext
    ) -> None:
        self.handlers = handlers
        self.ctx = ctx

    def visit(self, node: ast.AST) -> None:
        for handler in self.handlers.get(type(node).__name__, ()):
            handler(node, self.ctx)
        self.ctx.ancestors.append(node)
        self.generic_visit(node)
        self.ctx.ancestors.pop()


def _handler_table(rules: Iterable[SyntaxRule]) -> dict[str, list]:
    handlers: dict[str, list] = {}
    for rule in rules:
        for name in dir(rule):
            if name.startswith("visit_"):
                handlers.setdefault(name[len("visit_"):], []).append(
                    getattr(rule, name)
                )
    return handlers


# ---------------------------------------------------------------------------
# Project view for cross-file rules
# ---------------------------------------------------------------------------


class Project:
    """What a :class:`ProjectRule` sees: the linted files plus the repo root.

    ``get_file`` loads modules *by repo-relative path* even when they are
    outside the lint targets (HASH001 must read the strip tables no
    matter which subtree is being linted); loaded files contribute their
    suppression comments exactly like linted ones.
    """

    def __init__(self, root: Path, files: dict[str, SourceFile],
                 sink: list[Finding]) -> None:
        self.root = root
        self._files = files
        self._sink = sink

    def get_file(self, rel: str) -> SourceFile:
        """The parsed source at a repo-relative path (loaded on demand)."""
        rel = str(Path(rel).as_posix())
        if rel not in self._files:
            path = self.root / rel
            try:
                self._files[rel] = SourceFile.read(path, rel)
            except OSError as error:
                raise ConfigurationError(
                    f"lint rule needs {rel!r} but it cannot be read: {error}"
                ) from None
            except SyntaxError as error:
                raise ConfigurationError(
                    f"lint rule needs {rel!r} but it does not parse: {error}"
                ) from None
        return self._files[rel]

    def report(self, rule: str, rel: str, line: int, message: str,
               col: int = 1) -> None:
        """Record a finding at an explicit position."""
        self._sink.append(
            Finding(rule=rule, path=rel, line=line, col=col, message=message)
        )


# ---------------------------------------------------------------------------
# The runner
# ---------------------------------------------------------------------------


@dataclass
class LintResult:
    """All findings of one lint run, deterministically ordered."""

    findings: list[Finding] = field(default_factory=list)
    files: int = 0

    @property
    def unsuppressed(self) -> list[Finding]:
        """Findings that gate the exit code."""
        return [f for f in self.findings if not f.suppressed]

    @property
    def suppressed(self) -> list[Finding]:
        """Findings silenced by a justified suppression comment."""
        return [f for f in self.findings if f.suppressed]

    @property
    def ok(self) -> bool:
        """True when nothing unsuppressed was found."""
        return not self.unsuppressed


class LintRunner:
    """Collects files, runs every enabled rule, applies suppressions."""

    def __init__(self, config: LintConfig) -> None:
        self.config = config
        self.rules: list[Rule] = []
        for code in sorted(_REGISTRY):
            rule_class = _REGISTRY[code]
            options = config.rules.get(code)
            if options is None:
                if not rule_class.default_enabled:
                    continue
                options = {}
            if not options.get("enabled", True):
                continue
            self.rules.append(rule_class(dict(options)))
        unknown = sorted(set(config.rules) - set(_REGISTRY))
        if unknown:
            raise ConfigurationError(
                f"repro-lint config names unknown rules {unknown}; "
                f"known: {sorted(_REGISTRY)}"
            )

    # -- file collection -----------------------------------------------------

    def _collect(self, targets: list[Path]) -> list[Path]:
        files: list[Path] = []
        for target in targets:
            if target.is_dir():
                files.extend(sorted(target.rglob("*.py")))
            elif target.exists():
                files.append(target)
            else:
                raise ConfigurationError(f"lint target {str(target)!r} does not exist")
        root = self.config.root.resolve()
        out: list[Path] = []
        seen: set[Path] = set()
        for path in files:
            resolved = path.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            rel = self._rel(resolved, root)
            if any(fnmatch(rel, pattern) for pattern in self.config.exclude):
                continue
            out.append(resolved)
        return out

    def _rel(self, path: Path, root: Path) -> str:
        try:
            return path.relative_to(root).as_posix()
        except ValueError:
            return path.as_posix()

    # -- execution -------------------------------------------------------------

    def run(self, targets: list[Path]) -> LintResult:
        """Lint the targets; returns deterministic, suppression-applied findings."""
        root = self.config.root.resolve()
        sink: list[Finding] = []
        files: dict[str, SourceFile] = {}
        for path in self._collect(targets):
            rel = self._rel(path, root)
            try:
                src = SourceFile.read(path, rel)
            except SyntaxError as error:
                sink.append(
                    Finding(
                        rule=PARSE_ERROR, path=rel,
                        line=error.lineno or 1, col=(error.offset or 0) + 1,
                        message=f"file does not parse: {error.msg}",
                    )
                )
                continue
            files[rel] = src
            active = [
                rule for rule in self.rules
                if isinstance(rule, SyntaxRule) and rule.applies_to(rel)
            ]
            if not active:
                continue
            ctx = FileContext(src, sink)
            for rule in active:
                rule.start_file(src, ctx)
            _Walker(_handler_table(active), ctx).visit(src.tree)

        project = Project(root, files, sink)
        for rule in self.rules:
            if isinstance(rule, ProjectRule):
                rule.check(project)

        findings = self._apply_suppressions(sink, files)
        findings.sort(key=Finding.sort_key)
        return LintResult(findings=findings, files=len(files))

    def _apply_suppressions(
        self, sink: list[Finding], files: dict[str, SourceFile]
    ) -> list[Finding]:
        out: list[Finding] = []
        for finding in sink:
            src = files.get(finding.path)
            matched = None
            if src is not None and finding.rule != UNUSED_SUPPRESSION:
                for sup in src.suppressions:
                    if sup.matches(finding):
                        matched = sup
                        sup.used = True
                        break
            if matched is None:
                out.append(finding)
            else:
                out.append(
                    Finding(
                        rule=finding.rule, path=finding.path,
                        line=finding.line, col=finding.col,
                        message=finding.message, suppressed=True,
                        justification=matched.justification,
                    )
                )
        for rel in sorted(files):
            src = files[rel]
            for sup in src.suppressions:
                if not sup.used:
                    out.append(
                        Finding(
                            rule=UNUSED_SUPPRESSION, path=rel,
                            line=sup.line, col=1,
                            message=(
                                "unused suppression "
                                f"(disable={','.join(sup.rules)}): no such "
                                "finding on the covered line — remove the "
                                "comment or restore the constraint it documents"
                            ),
                        )
                    )
            for line in src.malformed:
                out.append(
                    Finding(
                        rule=UNUSED_SUPPRESSION, path=rel, line=line, col=1,
                        message=(
                            "malformed repro-lint comment; expected "
                            "'# repro-lint: disable=RULE[,RULE...] -- justification'"
                        ),
                    )
                )
        return out
