"""The per-file determinism rules (DET001–DET005, MP001).

Each rule encodes one invariant this reproduction has already paid for
dynamically (see ``docs/determinism.md`` for the war stories):

* DET001 — unseeded / process-global RNG.  Every run derives all
  randomness from ``spec.seed``; module-level RNG state breaks
  shard/worker/completion-order invariance.
* DET002 — wall-clock reads.  ``time.time`` & friends in result-affecting
  paths make runs unreproducible; timing belongs in ``benchmarks/`` or
  behind an explicit suppression justifying a reporting-only use.
* DET003 — iteration over sets feeding order-sensitive consumers.
  Set iteration order is hash-seed dependent; anything folded, joined,
  hashed or spawned from it must go through ``sorted(...)``.
* DET004 — bitwise-hazard numpy ops in bit-parity hot paths.  The PR 6
  lesson: ``np.clip`` drifts bitwise from branchy clamps; hot-path
  modules must stay on the branchy forms, and every existing exception
  carries a machine-checked justification.
* DET005 — bare float accumulation in aggregator modules.  Streaming
  reports are bit-identical at any shard count only because sums route
  through ``ExactMoments`` / ``RunningMoments``; a bare ``sum()`` or
  loop-carried ``+=`` silently reintroduces order sensitivity.
* MP001 — fork-unsafety around worker entry points: mutable default
  arguments, and module-global mutable state reachable from functions
  that run inside pool/subprocess workers.

All rules are syntactic: they see names and call shapes, not types.
They deliberately over-approximate inside their configured scopes and
rely on justified ``# repro-lint: disable=...`` suppressions for the
sanctioned exceptions — that is the point: every exception becomes
grep-able, justified, and enforced (unused suppressions are themselves
findings).
"""

from __future__ import annotations

import ast
from fnmatch import fnmatch

from repro.lint.framework import FileContext, SourceFile, SyntaxRule, register

__all__ = [
    "UnseededGlobalRNG",
    "WallClockRead",
    "UnorderedSetIteration",
    "BitwiseHazardOp",
    "BareFloatAccumulation",
    "ForkUnsafeState",
]


# ---------------------------------------------------------------------------
# Shared per-file import table
# ---------------------------------------------------------------------------


class _Imports:
    """Which local names refer to the modules the rules care about."""

    def __init__(self, tree: ast.Module) -> None:
        self.numpy: set[str] = set()
        self.np_random: set[str] = set()      # import numpy.random as npr
        self.random: set[str] = set()         # import random [as r]
        self.time: set[str] = set()           # import time [as t]
        self.datetime_mod: set[str] = set()   # import datetime [as dt]
        self.datetime_cls: set[str] = set()   # from datetime import datetime
        self.from_random: set[str] = set()    # from random import shuffle
        self.from_np_random: dict[str, str] = {}  # from numpy.random import X
        self.from_time: set[str] = set()      # from time import perf_counter
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    if alias.name == "numpy":
                        self.numpy.add(bound)
                    elif alias.name == "numpy.random":
                        if alias.asname:
                            self.np_random.add(alias.asname)
                        else:
                            self.numpy.add("numpy")
                    elif alias.name == "random":
                        self.random.add(bound)
                    elif alias.name == "time":
                        self.time.add(bound)
                    elif alias.name == "datetime":
                        self.datetime_mod.add(bound)
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                for alias in node.names:
                    bound = alias.asname or alias.name
                    if node.module == "random":
                        self.from_random.add(bound)
                    elif node.module == "numpy.random":
                        self.from_np_random[bound] = alias.name
                    elif node.module == "numpy" and alias.name == "random":
                        self.np_random.add(bound)
                    elif node.module == "time":
                        self.from_time.add(bound)
                    elif node.module == "datetime" and alias.name == "datetime":
                        self.datetime_cls.add(bound)


def _imports(ctx: FileContext) -> _Imports:
    return ctx.shared("imports", lambda: _Imports(ctx.src.tree))


def _np_random_base(node: ast.expr, imports: _Imports) -> bool:
    """Whether ``node`` denotes the ``numpy.random`` module."""
    if isinstance(node, ast.Name) and node.id in imports.np_random:
        return True
    return (
        isinstance(node, ast.Attribute)
        and node.attr == "random"
        and isinstance(node.value, ast.Name)
        and node.value.id in imports.numpy
    )


# ---------------------------------------------------------------------------
# DET001 — unseeded / process-global RNG
# ---------------------------------------------------------------------------


#: ``numpy.random`` constructors that are deterministic *when seeded*.
_SEEDABLE_CTORS = frozenset(
    {"default_rng", "Generator", "RandomState", "SeedSequence",
     "PCG64", "PCG64DXSM", "MT19937", "Philox", "SFC64"}
)


@register
class UnseededGlobalRNG(SyntaxRule):
    """DET001: randomness not derived from an explicit seed."""

    code = "DET001"
    description = (
        "unseeded or process-global RNG: every run must derive all "
        "randomness from spec.seed"
    )

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> None:
        """Flag random.*, numpy.random.* state, and unseeded constructors."""
        imports = _imports(ctx)
        func = node.func
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            base = func.value.id
            if base in imports.random:
                if func.attr == "Random" and node.args:
                    return  # seeded private instance
                ctx.report(
                    self.code, node,
                    f"random.{func.attr} uses the process-global RNG "
                    "(or OS entropy); derive randomness from the spec seed "
                    "via a private seeded generator",
                )
                return
        if isinstance(func, ast.Attribute) and _np_random_base(func.value, imports):
            self._np_random(node, func.attr, ctx)
            return
        if isinstance(func, ast.Name):
            if func.id in imports.from_random:
                if func.id == "Random" and node.args:
                    return
                ctx.report(
                    self.code, node,
                    f"{func.id}() was imported from random and uses the "
                    "process-global RNG; derive randomness from the spec seed",
                )
            elif func.id in imports.from_np_random:
                self._np_random(node, imports.from_np_random[func.id], ctx)

    def _np_random(self, node: ast.Call, attr: str, ctx: FileContext) -> None:
        if attr in _SEEDABLE_CTORS:
            if not node.args and not node.keywords:
                ctx.report(
                    self.code, node,
                    f"numpy.random.{attr}() without a seed draws OS entropy; "
                    "pass the spec-derived seed explicitly",
                )
            return
        ctx.report(
            self.code, node,
            f"numpy.random.{attr} mutates/reads numpy's module-level RNG "
            "state, which is shared per process; use "
            "numpy.random.default_rng(seed) instead",
        )


# ---------------------------------------------------------------------------
# DET002 — wall-clock reads
# ---------------------------------------------------------------------------


_CLOCK_ATTRS = frozenset(
    {"time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
     "perf_counter_ns", "process_time", "process_time_ns", "clock_gettime"}
)
_DATETIME_CLS_ATTRS = frozenset({"now", "utcnow", "today"})


@register
class WallClockRead(SyntaxRule):
    """DET002: wall-clock reads in result-affecting paths.

    Two config options refine the scope without weakening it:

    * ``sanctioned_paths`` — fnmatch patterns for the files that ARE the
      sanctioned clock site (``repro.obs.clock``); reads there are not
      findings, so the module needs no per-line suppressions.
    * ``hint`` — appended to every finding message outside the
      sanctioned paths, steering authors to the sanctioned site instead
      of a fresh suppression.
    """

    code = "DET002"
    description = (
        "wall-clock read: results must be a function of the spec alone; "
        "timing belongs in benchmarks/ or behind a justified suppression"
    )

    def _report(self, ctx: FileContext, node: ast.AST, message: str) -> None:
        """Report unless the file is a sanctioned clock site; add the hint."""
        rel = ctx.src.rel
        if any(
            fnmatch(rel, pattern)
            for pattern in self.options.get("sanctioned_paths", ())
        ):
            return
        hint = self.options.get("hint")
        if hint:
            message = f"{message} ({hint})"
        ctx.report(self.code, node, message)

    def visit_Attribute(self, node: ast.Attribute, ctx: FileContext) -> None:
        """Flag ``time.<clock>`` and ``datetime[.datetime].now``-style reads."""
        if not isinstance(node.ctx, ast.Load):
            return
        imports = _imports(ctx)
        if isinstance(node.value, ast.Name):
            base = node.value.id
            if base in imports.time and node.attr in _CLOCK_ATTRS:
                self._report(
                    ctx, node,
                    f"time.{node.attr} reads the wall clock; simulated time "
                    "must advance from the spec, not the host",
                )
            elif base in imports.datetime_cls and node.attr in _DATETIME_CLS_ATTRS:
                self._report(
                    ctx, node,
                    f"datetime.{node.attr} reads the wall clock",
                )
        elif (
            isinstance(node.value, ast.Attribute)
            and isinstance(node.value.value, ast.Name)
            and node.value.value.id in imports.datetime_mod
            and node.value.attr in ("datetime", "date")
            and node.attr in _DATETIME_CLS_ATTRS
        ):
            self._report(
                ctx, node,
                f"datetime.{node.value.attr}.{node.attr} reads the wall clock",
            )

    def visit_Name(self, node: ast.Name, ctx: FileContext) -> None:
        """Flag clocks imported directly (``from time import perf_counter``)."""
        if not isinstance(node.ctx, ast.Load):
            return
        imports = _imports(ctx)
        if node.id in imports.from_time and node.id in _CLOCK_ATTRS:
            self._report(
                ctx, node,
                f"{node.id} (imported from time) reads the wall clock",
            )


# ---------------------------------------------------------------------------
# DET003 — set iteration feeding order-sensitive consumers
# ---------------------------------------------------------------------------


#: Builtins whose result does not depend on iteration order.
_ORDER_NEUTRAL = frozenset(
    {"sorted", "len", "min", "max", "any", "all", "set", "frozenset", "bool"}
)


@register
class UnorderedSetIteration(SyntaxRule):
    """DET003: hash-ordered set iteration reaching an ordered consumer."""

    code = "DET003"
    description = (
        "iteration over a set feeds an order-sensitive consumer; wrap the "
        "set in sorted(...) so downstream hashing/aggregation/spawn order "
        "is deterministic"
    )

    def start_file(self, src: SourceFile, ctx: FileContext) -> None:
        """Prepass: names assigned (or annotated as) sets anywhere in the file."""
        known: set[str] = set()
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Assign) and self._is_set_expr(node.value, ()):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        known.add(target.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                if self._is_set_annotation(node.annotation) or (
                    node.value is not None and self._is_set_expr(node.value, ())
                ):
                    known.add(node.target.id)
        ctx.shared("det003_set_names", lambda: known)

    @staticmethod
    def _is_set_annotation(node: ast.expr) -> bool:
        if isinstance(node, ast.Subscript):
            node = node.value
        return isinstance(node, ast.Name) and node.id in ("set", "frozenset")

    @staticmethod
    def _is_set_expr(node: ast.expr, known: tuple | set) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in ("set", "frozenset")
        if isinstance(node, ast.Name):
            return node.id in known
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            # union/intersection/difference of sets stays a set
            return UnorderedSetIteration._is_set_expr(
                node.left, known
            ) and UnorderedSetIteration._is_set_expr(node.right, known)
        return False

    def _known(self, ctx: FileContext) -> set:
        return ctx.shared("det003_set_names", set)

    def visit_For(self, node: ast.For, ctx: FileContext) -> None:
        """Flag ``for ... in <set>`` statement loops."""
        if self._is_set_expr(node.iter, self._known(ctx)):
            ctx.report(
                self.code, node.iter,
                "for-loop over a set iterates in hash order; "
                "iterate sorted(...) instead",
            )

    def visit_comprehension(self, node: ast.comprehension, ctx: FileContext) -> None:
        """Flag comprehensions drawing from a set, unless the result is a set."""
        if not self._is_set_expr(node.iter, self._known(ctx)):
            return
        owner = ctx.parent  # the ListComp/SetComp/DictComp/GeneratorExp
        if isinstance(owner, ast.SetComp):
            return  # set -> set: order cannot escape
        if isinstance(owner, ast.GeneratorExp):
            consumer = self._consumer_of(owner, ctx)
            if consumer in _ORDER_NEUTRAL:
                return
        ctx.report(
            self.code, node.iter,
            "comprehension over a set materializes hash order; "
            "draw from sorted(...) instead",
        )

    @staticmethod
    def _consumer_of(gen: ast.GeneratorExp, ctx: FileContext) -> str | None:
        for ancestor in reversed(ctx.ancestors):
            if ancestor is gen:
                continue
            if isinstance(ancestor, ast.Call) and isinstance(
                ancestor.func, ast.Name
            ):
                return ancestor.func.id
            return None
        return None

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> None:
        """Flag order-sensitive calls consuming a set directly."""
        known = self._known(ctx)
        consumers: tuple[str, ...]
        if isinstance(node.func, ast.Name):
            if node.func.id in _ORDER_NEUTRAL:
                return
            consumers = ("list", "tuple", "enumerate", "iter", "sum", "map",
                         "filter", "zip", "reversed", "dict")
            if node.func.id not in consumers:
                return
        elif isinstance(node.func, ast.Attribute) and node.func.attr in (
            "join", "extend", "fromkeys"
        ):
            pass
        else:
            return
        for arg in node.args:
            if self._is_set_expr(arg, known):
                ctx.report(
                    self.code, arg,
                    "set consumed in hash order by an order-sensitive "
                    "callable; pass sorted(...) instead",
                )


# ---------------------------------------------------------------------------
# DET004 — bitwise-hazard numpy ops in bit-parity hot paths
# ---------------------------------------------------------------------------


@register
class BitwiseHazardOp(SyntaxRule):
    """DET004: numpy ops with known bitwise-drift hazards in hot paths."""

    code = "DET004"
    description = (
        "bitwise-hazard numpy op in a bit-parity hot path (the PR 6 "
        "lesson: np.clip drifts from branchy clamps); use the branchy "
        "form, or suppress with the justification that makes the site "
        "load-bearing"
    )
    #: Only meaningful with a configured hot-path module list.
    default_enabled = False

    _DEFAULT_OPS = ("clip", "where")

    def visit_Attribute(self, node: ast.Attribute, ctx: FileContext) -> None:
        """Flag ``np.<op>`` references for the configured op set."""
        if not isinstance(node.ctx, ast.Load):
            return
        ops = tuple(self.options.get("ops", self._DEFAULT_OPS))
        imports = _imports(ctx)
        if (
            isinstance(node.value, ast.Name)
            and node.value.id in imports.numpy
            and node.attr in ops
        ):
            ctx.report(
                self.code, node,
                f"np.{node.attr} in a bit-parity hot path: its bit "
                "behaviour is load-bearing here (branchy clamps replaced "
                "np.clip in PR 6; candidate lattices must come from "
                "np.arange's incremental accumulation since PR 7) — "
                "rewrite, or suppress with the constraint spelled out",
            )


# ---------------------------------------------------------------------------
# DET005 — bare float accumulation in aggregator modules
# ---------------------------------------------------------------------------


@register
class BareFloatAccumulation(SyntaxRule):
    """DET005: order-sensitive accumulation outside the sanctioned types."""

    code = "DET005"
    description = (
        "bare sum()/loop += accumulation in an aggregator module; route "
        "through ExactMoments/RunningMoments (or math.fsum) so results "
        "stay bit-identical at any shard/worker/completion order"
    )
    #: Only meaningful with a configured aggregator-module list.
    default_enabled = False

    def _exempt(self, ctx: FileContext) -> bool:
        owner = ctx.enclosing(ast.ClassDef)
        exempt = self.options.get("exempt_classes", ())
        return owner is not None and owner.name in exempt

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> None:
        """Flag builtin ``sum(...)`` outside the sanctioned classes."""
        if not (isinstance(node.func, ast.Name) and node.func.id == "sum"):
            return
        if self._exempt(ctx):
            return
        ctx.report(
            self.code, node,
            "bare sum() accumulates left-to-right in iteration order; use "
            "math.fsum or fold through ExactMoments/RunningMoments",
        )

    def visit_AugAssign(self, node: ast.AugAssign, ctx: FileContext) -> None:
        """Flag loop-carried ``+=`` accumulation (int counters excluded)."""
        if not isinstance(node.op, ast.Add):
            return
        if not ctx.in_loop():
            return
        if self._exempt(ctx):
            return
        value = node.value
        if isinstance(value, ast.Constant) and isinstance(value.value, int):
            return  # integer counter
        if isinstance(value, ast.Call) and isinstance(value.func, ast.Name) and (
            value.func.id in ("len", "int")
        ):
            return  # integer-valued accumulation
        ctx.report(
            self.code, node,
            "loop-carried += accumulation is order-sensitive for floats; "
            "fold through ExactMoments/RunningMoments (int counters: "
            "use an integer literal step or len(...))",
        )


# ---------------------------------------------------------------------------
# MP001 — fork-unsafety around worker entry points
# ---------------------------------------------------------------------------


_MUTABLE_CTORS = frozenset(
    {"list", "dict", "set", "OrderedDict", "defaultdict", "deque", "Counter"}
)


def _is_mutable_value(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name):
            return func.id in _MUTABLE_CTORS
        if isinstance(func, ast.Attribute):
            return func.attr in _MUTABLE_CTORS
    return False


@register
class ForkUnsafeState(SyntaxRule):
    """MP001: mutable defaults and worker-reachable module-global state."""

    code = "MP001"
    description = (
        "fork-unsafe state: mutable default arguments, and module-global "
        "mutable containers reachable from worker entry points (state "
        "mutated pre-fork leaks into workers; state mutated in workers "
        "silently diverges from the parent)"
    )

    def start_file(self, src: SourceFile, ctx: FileContext) -> None:
        """Prepass: module-global mutables + the worker-reachable call closure."""
        tree = src.tree
        mutable_globals: dict[str, int] = {}
        functions: dict[str, ast.AST] = {}
        for node in tree.body:
            if isinstance(node, ast.Assign) and _is_mutable_value(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        mutable_globals[target.id] = node.lineno
            elif (
                isinstance(node, ast.AnnAssign)
                and isinstance(node.target, ast.Name)
                and node.value is not None
                and _is_mutable_value(node.value)
            ):
                mutable_globals[node.target.id] = node.lineno
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                functions[node.name] = node

        entries = [
            name for name in self.options.get("worker_entry_points", ())
            if name in functions
        ]
        reachable: list[str] = []
        pending = list(entries)
        while pending:
            name = pending.pop()
            if name in reachable:
                continue
            reachable.append(name)
            for called in ast.walk(functions[name]):
                if (
                    isinstance(called, ast.Call)
                    and isinstance(called.func, ast.Name)
                    and called.func.id in functions
                    and called.func.id not in reachable
                ):
                    pending.append(called.func.id)

        for name in sorted(reachable):
            func = functions[name]
            reported: set[str] = set()
            for node in ast.walk(func):
                if (
                    isinstance(node, ast.Name)
                    and isinstance(node.ctx, ast.Load)
                    and node.id in mutable_globals
                    and node.id not in reported
                ):
                    reported.add(node.id)
                    ctx.report(
                        self.code, node,
                        f"worker-reachable function {name}() reads "
                        f"module-global mutable {node.id} (defined at line "
                        f"{mutable_globals[node.id]}); per-process state "
                        "diverges across fork/spawn boundaries — pass it "
                        "through the spec, or suppress with the argument "
                        "why divergence cannot change results",
                    )
                elif isinstance(node, ast.Global):
                    for gname in node.names:
                        if gname in mutable_globals and gname not in reported:
                            reported.add(gname)
                            ctx.report(
                                self.code, node,
                                f"worker-reachable function {name}() declares "
                                f"'global {gname}' over a mutable binding",
                            )

    def visit_FunctionDef(self, node: ast.FunctionDef, ctx: FileContext) -> None:
        """Flag mutable default argument values."""
        self._check_defaults(node, ctx)

    def visit_AsyncFunctionDef(
        self, node: ast.AsyncFunctionDef, ctx: FileContext
    ) -> None:
        """Flag mutable default argument values on async functions."""
        self._check_defaults(node, ctx)

    def _check_defaults(self, node, ctx: FileContext) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if _is_mutable_value(default):
                ctx.report(
                    self.code, default,
                    f"mutable default argument on {node.name}(): the object "
                    "is created once at import and shared by every call "
                    "(and every forked worker); default to None and build "
                    "inside the function",
                )
