"""HASH001 — spec-hash coverage: every dataclass field must be ledgered.

``spec_key`` (:mod:`repro.sim.runner`) canonicalises a :class:`RunSpec`
recursively.  Any field of the hashed dataclasses is therefore *part of
the cache key by default* — which means adding a field silently changes
every existing key (mass cache invalidation at best; at worst a golden
spec-key drift nobody noticed).  The repo's discipline since PR 3 is:
a new field is either

* **legacy-stripped** — listed in ``_NEUTRAL_FIELDS`` with the neutral
  value that keeps pre-existing specs hashing exactly as before, or
* **execution-only** — listed in ``_EXECUTION_FIELDS`` and excluded from
  the key unconditionally (engine selection), or
* **deliberately hashed** — added to the rule's ``baseline`` ledger in
  ``repro-lint.toml`` alongside a golden spec-key regeneration.

HASH001 makes that discipline a lint error instead of a code-review
hope: it parses the strip tables out of the spec module's AST, parses
each configured dataclass's field list, and reports any field that is in
none of the three ledgers — plus stale ledger entries naming fields that
no longer exist.
"""

from __future__ import annotations

import ast

from repro.errors import ConfigurationError
from repro.lint.framework import Project, ProjectRule, SourceFile, register

__all__ = ["SpecHashCoverage"]


def _table_keys(src: SourceFile, table_name: str) -> tuple[dict[str, set[str]], int]:
    """Extract ``{class name: {field, ...}}`` from a literal dict assignment.

    Accepts the two shapes the spec module uses: values that are dict
    literals (neutral values, keys taken) and values that are
    ``frozenset({...})`` calls over string constants.
    """
    for node in src.tree.body:
        target = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            target, value = node.target, node.value
        if not (isinstance(target, ast.Name) and target.id == table_name):
            continue
        if not isinstance(value, ast.Dict):
            raise ConfigurationError(
                f"{src.rel}: {table_name} must be a literal dict for the "
                "spec-hash coverage check to read it"
            )
        table: dict[str, set[str]] = {}
        for key_node, value_node in zip(value.keys, value.values):
            if not (isinstance(key_node, ast.Constant)
                    and isinstance(key_node.value, str)):
                raise ConfigurationError(
                    f"{src.rel}:{key_node.lineno if key_node else node.lineno}: "
                    f"{table_name} keys must be string literals"
                )
            table[key_node.value] = _field_names(src, table_name, value_node)
        return table, node.lineno
    raise ConfigurationError(
        f"{src.rel}: spec-hash coverage check cannot find {table_name!r}"
    )


def _field_names(src: SourceFile, table_name: str, node: ast.expr) -> set[str]:
    """Field names from a dict literal or a ``frozenset({...})`` call."""
    if isinstance(node, ast.Dict):
        elements = node.keys
    elif (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("frozenset", "set")
        and len(node.args) == 1
        and isinstance(node.args[0], (ast.Set, ast.List, ast.Tuple))
    ):
        elements = node.args[0].elts
    elif isinstance(node, (ast.Set, ast.List, ast.Tuple)):
        elements = node.elts
    else:
        raise ConfigurationError(
            f"{src.rel}:{node.lineno}: {table_name} values must be literal "
            "dicts or frozenset({{...}}) calls"
        )
    names: set[str] = set()
    for element in elements:
        if not (isinstance(element, ast.Constant)
                and isinstance(element.value, str)):
            raise ConfigurationError(
                f"{src.rel}:{node.lineno}: {table_name} field names must be "
                "string literals"
            )
        names.add(element.value)
    return names


def _dataclass_fields(src: SourceFile, class_name: str) -> tuple[
    dict[str, int], int
] | None:
    """``{field: line}`` of a dataclass body, plus the class line."""
    for node in ast.walk(src.tree):
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            fields: dict[str, int] = {}
            for stmt in node.body:
                if isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name
                ):
                    annotation = stmt.annotation
                    if (
                        isinstance(annotation, ast.Subscript)
                        and isinstance(annotation.value, ast.Name)
                        and annotation.value.id == "ClassVar"
                    ):
                        continue
                    fields[stmt.target.id] = stmt.lineno
            return fields, node.lineno
    return None


@register
class SpecHashCoverage(ProjectRule):
    """HASH001: cross-reference dataclass fields against the hash ledgers."""

    code = "HASH001"
    description = (
        "spec-hash coverage: every field of the hashed dataclasses must "
        "be legacy-stripped (_NEUTRAL_FIELDS), execution-only "
        "(_EXECUTION_FIELDS), or deliberately listed in the hashed "
        "baseline ledger of repro-lint.toml"
    )
    default_enabled = False

    def check(self, project: Project) -> None:
        """Run the coverage cross-reference over the configured dataclasses."""
        module = self.options.get("module")
        dataclasses = self.options.get("dataclasses", {})
        if not module or not dataclasses:
            raise ConfigurationError(
                "HASH001 needs 'module' (the spec module holding the strip "
                "tables) and a [lint.rules.HASH001.dataclasses.<Name>] table "
                "per hashed dataclass"
            )
        spec_src = project.get_file(module)
        neutral_name = self.options.get("neutral_table", "_NEUTRAL_FIELDS")
        execution_name = self.options.get("execution_table", "_EXECUTION_FIELDS")
        neutral, neutral_line = _table_keys(spec_src, neutral_name)
        execution, execution_line = _table_keys(spec_src, execution_name)

        for class_name in sorted(dataclasses):
            entry = dataclasses[class_name]
            baseline = set(entry.get("baseline", ()))
            class_src = project.get_file(entry["module"])
            located = _dataclass_fields(class_src, class_name)
            if located is None:
                project.report(
                    self.code, class_src.rel, 1,
                    f"configured hashed dataclass {class_name!r} not found "
                    f"in {class_src.rel}; fix the repro-lint.toml entry",
                )
                continue
            fields, class_line = located
            covered = baseline | set(neutral.get(class_name, ())) | set(
                execution.get(class_name, ())
            )
            for name in sorted(set(fields) - covered):
                project.report(
                    self.code, class_src.rel, fields[name],
                    f"{class_name}.{name} enters spec_key implicitly: a new "
                    "field changes every published cache key unless it is "
                    f"legacy-stripped — add a neutral entry to {neutral_name} "
                    f"(or {execution_name}) in {spec_src.rel}, or, if it must "
                    "be hashed, add it to the HASH001 baseline ledger in "
                    "repro-lint.toml and regenerate the golden spec keys",
                )
            for name in sorted(baseline - set(fields)):
                project.report(
                    self.code, class_src.rel, class_line,
                    f"stale HASH001 baseline entry: {class_name}.{name} no "
                    "longer exists; prune the ledger in repro-lint.toml",
                )
            for name in sorted(set(neutral.get(class_name, ())) - set(fields)):
                project.report(
                    self.code, spec_src.rel, neutral_line,
                    f"stale {neutral_name} entry: {class_name}.{name} no "
                    "longer exists on the dataclass",
                )
            for name in sorted(set(execution.get(class_name, ())) - set(fields)):
                project.report(
                    self.code, spec_src.rel, execution_line,
                    f"stale {execution_name} entry: {class_name}.{name} no "
                    "longer exists on the dataclass",
                )
