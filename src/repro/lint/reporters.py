"""Text and JSON rendering of a :class:`~repro.lint.framework.LintResult`.

The text form is for humans (one ``path:line:col: CODE message`` line
per unsuppressed finding plus a summary); the JSON form is for CI — it
carries *every* finding, including suppressed ones with their
justifications, so a pipeline can audit what the tree has opted out of.
"""

from __future__ import annotations

import json

from repro.lint.framework import LintResult

__all__ = ["render_json", "render_text"]


def render_text(result: LintResult, verbose: bool = False) -> str:
    """Human-readable report; suppressed findings shown only when verbose."""
    lines = []
    for finding in result.findings:
        if finding.suppressed and not verbose:
            continue
        lines.append(str(finding))
    summary = (
        f"{len(result.unsuppressed)} finding(s), "
        f"{len(result.suppressed)} suppressed, "
        f"{result.files} file(s) checked"
    )
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Machine-readable report (stable key order, trailing newline)."""
    payload = {
        "version": 1,
        "files": result.files,
        "summary": {
            "total": len(result.findings),
            "unsuppressed": len(result.unsuppressed),
            "suppressed": len(result.suppressed),
        },
        "findings": [
            {
                "rule": finding.rule,
                "path": finding.path,
                "line": finding.line,
                "col": finding.col,
                "message": finding.message,
                "suppressed": finding.suppressed,
                "justification": finding.justification,
            }
            for finding in result.findings
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
