"""``repro lint`` — static determinism & hash-integrity analysis.

Every layer of this reproduction stakes its correctness on bit-identical
determinism: vector/scalar engine parity, shard/worker/completion-order
invariance, and legacy-stable ``spec_key`` cache hashing.  Those
invariants are enforced *dynamically* by the test suite — after a hazard
has already been written.  This package moves the checks left: an
AST-based linter whose opening ruleset encodes the repo's hard-won
invariants (see ``docs/determinism.md`` for the catalogue and the war
stories behind each rule).

Layout:

* :mod:`repro.lint.framework` — findings, the single-pass AST walker,
  rule registry, ``# repro-lint: disable=RULE`` suppressions, and the
  :class:`LintRunner` orchestrator;
* :mod:`repro.lint.config` — ``repro-lint.toml`` discovery and parsing;
* :mod:`repro.lint.rules` — the per-file syntax rules (DET001–DET005,
  MP001);
* :mod:`repro.lint.hashrules` — the cross-file spec-hash coverage rule
  (HASH001);
* :mod:`repro.lint.reporters` — text and JSON output.

Quick start::

    from repro.lint import lint_paths

    result = lint_paths(["src"])          # discovers repro-lint.toml
    for finding in result.unsuppressed:
        print(finding)
"""

from repro.lint.config import DEFAULT_CONFIG_NAME, LintConfig, load_config
from repro.lint.framework import (
    Finding,
    LintResult,
    LintRunner,
    all_rule_codes,
    registered_rules,
)
from repro.lint.reporters import render_json, render_text

# Importing the rule modules registers their rules with the framework.
from repro.lint import hashrules as _hashrules  # noqa: F401
from repro.lint import rules as _rules  # noqa: F401

__all__ = [
    "DEFAULT_CONFIG_NAME",
    "Finding",
    "LintConfig",
    "LintResult",
    "LintRunner",
    "all_rule_codes",
    "registered_rules",
    "lint_paths",
    "load_config",
    "render_json",
    "render_text",
]


def lint_paths(paths, config=None):
    """Lint files or directories; returns a :class:`LintResult`.

    ``config`` may be a :class:`LintConfig`, a path to a TOML file, or
    None to discover ``repro-lint.toml`` upward from the first target.
    """
    from pathlib import Path

    targets = [Path(p) for p in paths]
    if isinstance(config, LintConfig):
        resolved = config
    else:
        start = targets[0] if targets else Path.cwd()
        resolved = load_config(start, explicit=config)
    return LintRunner(resolved).run(targets)
