"""``repro-lint.toml`` discovery and parsing.

The config scopes each rule to the paths where its invariant actually
holds (bit-parity hot paths, aggregator modules, worker entry points)
and carries the HASH001 spec-key field ledger.  Layout::

    [lint]
    exclude = ["**/__pycache__/**"]

    [lint.rules.DET001]
    paths = ["src/repro/sim/**", "src/repro/network/**"]

    [lint.rules.HASH001]
    module = "src/repro/sim/runner.py"

    [lint.rules.HASH001.dataclasses.RunSpec]
    module = "src/repro/sim/runner.py"
    baseline = ["system", "app"]

Paths are fnmatch globs relative to the directory holding the config
file (the *lint root*); findings are reported relative to it too.  With
no config file, path-agnostic rules run everywhere and project-specific
rules (DET004, DET005, HASH001) stay off.
"""

from __future__ import annotations

import tomllib
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ConfigurationError

__all__ = ["DEFAULT_CONFIG_NAME", "LintConfig", "load_config"]

DEFAULT_CONFIG_NAME = "repro-lint.toml"

#: Directories never worth linting, config or not.
_DEFAULT_EXCLUDE = ("**/__pycache__/**", "**/.git/**")


@dataclass
class LintConfig:
    """Resolved lint configuration.

    ``root`` anchors every relative path (rule scopes, HASH001 modules,
    reported finding paths); ``source`` is the TOML file it came from,
    or None for the built-in defaults.
    """

    root: Path
    source: Path | None = None
    rules: dict[str, dict] = field(default_factory=dict)
    exclude: tuple[str, ...] = _DEFAULT_EXCLUDE


def load_config(start: Path | str, explicit: Path | str | None = None) -> LintConfig:
    """Load the lint config.

    ``explicit`` names a TOML file directly; otherwise the directories
    from ``start`` upward are searched for ``repro-lint.toml``.  No file
    found yields the built-in defaults rooted at ``start``.
    """
    if explicit is not None:
        path = Path(explicit)
        if not path.is_file():
            raise ConfigurationError(f"lint config {str(path)!r} does not exist")
        return _parse(path)
    probe = Path(start).resolve()
    if probe.is_file():
        probe = probe.parent
    for directory in (probe, *probe.parents):
        candidate = directory / DEFAULT_CONFIG_NAME
        if candidate.is_file():
            return _parse(candidate)
    return LintConfig(root=probe)


def _parse(path: Path) -> LintConfig:
    try:
        payload = tomllib.loads(path.read_text(encoding="utf-8"))
    except tomllib.TOMLDecodeError as error:
        raise ConfigurationError(f"invalid TOML in {str(path)!r}: {error}") from None
    section = payload.get("lint", payload)
    if not isinstance(section, dict):
        raise ConfigurationError(f"{str(path)!r}: [lint] must be a table")
    rules = section.get("rules", {})
    if not isinstance(rules, dict) or not all(
        isinstance(options, dict) for options in rules.values()
    ):
        raise ConfigurationError(
            f"{str(path)!r}: [lint.rules.<CODE>] entries must be tables"
        )
    exclude = section.get("exclude", [])
    if not isinstance(exclude, list):
        raise ConfigurationError(f"{str(path)!r}: lint.exclude must be a list")
    return LintConfig(
        root=path.resolve().parent,
        source=path,
        rules={code: dict(options) for code, options in rules.items()},
        exclude=_DEFAULT_EXCLUDE + tuple(str(pattern) for pattern in exclude),
    )
