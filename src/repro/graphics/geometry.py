"""Draw-batch level scene geometry.

A scene is a list of :class:`DrawBatch` records — the granularity at which
the static collaborative design partitions work ("we first identify the
draw batch comments for every object", Sec. 2.3) and at which the paper's
simulator identifies the interactive object ("comparing the depths of all
rendering batches and find the closest one to viewports", Sec. 6.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import WorkloadError
from repro.gpu.perf_model import RenderWorkload

__all__ = ["DrawBatch", "SceneGeometry"]


@dataclass(frozen=True)
class DrawBatch:
    """One draw call: a mesh at a depth with a material cost.

    Attributes
    ----------
    name:
        Identifier (object/mesh name).
    triangles:
        Triangles in the batch.
    depth:
        View-space depth of the batch centroid (smaller = closer).
    screen_coverage:
        Fraction of the frame the batch covers.
    material_cycles:
        Shader cycles per fragment of the batch's material.
    interactive:
        Developer-tagged interactivity flag (the static design's input).
    """

    name: str
    triangles: float
    depth: float
    screen_coverage: float
    material_cycles: float
    interactive: bool = False

    def __post_init__(self) -> None:
        if self.triangles < 0 or self.depth < 0:
            raise WorkloadError(f"batch {self.name}: negative geometry values")
        if not 0 <= self.screen_coverage <= 1:
            raise WorkloadError(f"batch {self.name}: coverage must be in [0, 1]")


@dataclass
class SceneGeometry:
    """A frame's draw list with partition helpers.

    Parameters
    ----------
    batches:
        The frame's draw calls.
    frame_pixels:
        Native output pixels of the frame (both eyes).
    """

    batches: list[DrawBatch] = field(default_factory=list)
    frame_pixels: float = 0.0

    @property
    def total_triangles(self) -> float:
        """Sum of triangles over all batches."""
        return sum(batch.triangles for batch in self.batches)

    def closest_batch(self) -> DrawBatch:
        """The nearest batch — the paper's interactive-object heuristic."""
        if not self.batches:
            raise WorkloadError("scene has no batches")
        return min(self.batches, key=lambda b: b.depth)

    def interactive_batches(self) -> list[DrawBatch]:
        """Developer-tagged interactive batches; falls back to the closest."""
        tagged = [batch for batch in self.batches if batch.interactive]
        return tagged if tagged else [self.closest_batch()]

    def split_static(self) -> tuple[list[DrawBatch], list[DrawBatch]]:
        """(foreground, background) split of the static design."""
        foreground = self.interactive_batches()
        names = {batch.name for batch in foreground}
        background = [batch for batch in self.batches if batch.name not in names]
        return foreground, background

    def workload(self, batches: list[DrawBatch] | None = None, overdraw: float = 1.5) -> RenderWorkload:
        """Build a :class:`RenderWorkload` from a batch subset."""
        chosen = self.batches if batches is None else batches
        if overdraw <= 0:
            raise WorkloadError(f"overdraw must be > 0, got {overdraw}")
        triangles = sum(batch.triangles for batch in chosen)
        coverage = min(sum(batch.screen_coverage for batch in chosen), 1.0)
        fragments = self.frame_pixels * coverage * overdraw
        if chosen:
            weights = np.array([batch.screen_coverage for batch in chosen])
            cycles = np.array([batch.material_cycles for batch in chosen])
            total_weight = float(weights.sum())
            mean_cycles = float((weights * cycles).sum() / total_weight) if total_weight > 0 else float(cycles.mean())
        else:
            mean_cycles = 0.0
        return RenderWorkload(
            vertices=triangles,
            fragments=fragments,
            fragment_cycles=mean_cycles,
            draw_batches=float(len(chosen)),
        )
