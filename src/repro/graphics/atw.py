"""Asynchronous TimeWarp: reprojection with bilinear resampling (Eq. 3 right).

ATW resamples the finished 2-D frame at coordinates shifted by the latest
head motion (and optionally through the lens distortion map):
``Y(x) = sum_i w_i * X(x_i)`` — a bilinear filter, i.e. a *linear* operator
on pixel values.  That linearity is the algebraic property UCA exploits.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.graphics.lens import LensModel

__all__ = ["bilinear_sample", "reproject"]


def bilinear_sample(image: np.ndarray, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
    """Bilinearly sample ``image`` at float coordinates (clamped borders).

    Parameters
    ----------
    image:
        (H, W) or (H, W, C) float array.
    xs, ys:
        Arrays of identical shape with sample coordinates in pixel units
        (x = column, y = row).

    Returns
    -------
    numpy.ndarray
        Samples with shape ``xs.shape`` (plus the channel axis if any).
        The operation is linear: ``sample(aA + bB) == a*sample(A) +
        b*sample(B)`` exactly (up to float rounding).
    """
    if image.ndim not in (2, 3):
        raise ConfigurationError(f"image must be 2-D or 3-D, got ndim={image.ndim}")
    height, width = image.shape[:2]
    xs = np.clip(xs, 0.0, width - 1.0)
    ys = np.clip(ys, 0.0, height - 1.0)
    x0 = np.floor(xs).astype(int)
    y0 = np.floor(ys).astype(int)
    x1 = np.minimum(x0 + 1, width - 1)
    y1 = np.minimum(y0 + 1, height - 1)
    fx = xs - x0
    fy = ys - y0
    if image.ndim == 3:
        fx = fx[..., None]
        fy = fy[..., None]
    top = image[y0, x0] * (1.0 - fx) + image[y0, x1] * fx
    bottom = image[y1, x0] * (1.0 - fx) + image[y1, x1] * fx
    return top * (1.0 - fy) + bottom * fy


def reproject(
    image: np.ndarray,
    shift_x_px: float,
    shift_y_px: float,
    lens: LensModel | None = None,
) -> np.ndarray:
    """ATW: resample a frame at head-motion-shifted coordinates.

    ``output(x, y) = image(x + shift_x, y + shift_y)`` with bilinear
    filtering, optionally routed through the lens distortion map (the
    full Fig. 11 path: lens distortion translate -> coordinate mapping ->
    bilinear filtering).
    """
    height, width = image.shape[:2]
    grid_y, grid_x = np.meshgrid(
        np.arange(height, dtype=float), np.arange(width, dtype=float), indexing="ij"
    )
    xs = grid_x + shift_x_px
    ys = grid_y + shift_y_px
    if lens is not None:
        xs, ys = lens.distort(
            xs, ys, center_x=width / 2.0, center_y=height / 2.0,
            norm_radius=max(width, height) / 2.0,
        )
    return bilinear_sample(image, xs, ys)
