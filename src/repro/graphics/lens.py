"""HMD lens distortion model.

VR optics introduce barrel distortion that the compositor must invert
before scan-out; ATW folds this inverse mapping into its resampling pass
("lens distortion translation", Fig. 11).  The standard radial polynomial
model is used: a point at normalised radius ``r`` from the lens centre is
displaced to ``r * (1 + k1*r^2 + k2*r^4)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["LensModel"]


@dataclass(frozen=True)
class LensModel:
    """Radial barrel-distortion polynomial.

    Attributes
    ----------
    k1, k2:
        Radial distortion coefficients (typical HMD optics have small
        positive values).
    """

    k1: float = 0.12
    k2: float = 0.035

    def distortion_factor(self, r2: np.ndarray | float) -> np.ndarray | float:
        """Multiplicative radial displacement for squared radius ``r2``."""
        return 1.0 + self.k1 * r2 + self.k2 * r2 * r2

    def distort(
        self, xs: np.ndarray, ys: np.ndarray, center_x: float, center_y: float, norm_radius: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """Map undistorted panel coordinates to lens-distorted ones.

        Parameters
        ----------
        xs, ys:
            Pixel coordinates to map.
        center_x, center_y:
            Lens centre in pixels.
        norm_radius:
            Pixel radius that normalises to r = 1.
        """
        if norm_radius <= 0:
            raise ConfigurationError(f"norm_radius must be > 0, got {norm_radius}")
        dx = (xs - center_x) / norm_radius
        dy = (ys - center_y) / norm_radius
        r2 = dx * dx + dy * dy
        factor = self.distortion_factor(r2)
        return (center_x + dx * factor * norm_radius, center_y + dy * factor * norm_radius)
