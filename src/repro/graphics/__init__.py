"""Functional graphics pipeline: layers, lens, ATW, composition, fusion."""

from repro.graphics.atw import bilinear_sample, reproject
from repro.graphics.composition import compose, layer_weights
from repro.graphics.frame import FrameLayers, LayerImage
from repro.graphics.geometry import DrawBatch, SceneGeometry
from repro.graphics.lens import LensModel
from repro.graphics.unified_filter import classify_tiles_functional, unified_filter

__all__ = [
    "bilinear_sample",
    "reproject",
    "compose",
    "layer_weights",
    "FrameLayers",
    "LayerImage",
    "DrawBatch",
    "SceneGeometry",
    "LensModel",
    "classify_tiles_functional",
    "unified_filter",
]
