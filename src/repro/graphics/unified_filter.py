"""Unified composition + ATW (Eq. 4): the fused trilinear filter.

Sequential execution computes ``ATW(compose(layers))``; UCA reorders the
two linear filters (Eq. (4)) and processes them as one pass that samples
each input layer exactly once::

    Y(x) = sum_i w_i(x+s) * bilinear(L_i, x+s)
         = bilinear(sum_i w_i .* L_i, x+s)           (linearity)
         = ATW(compose(layers))(x)

The fused form starts from the *weighted* upsampled layers, so border
("bound") tiles blend two layers — a trilinear lookup — while
non-overlapping tiles reduce to a single bilinear lookup, exactly the
Fig. 11 datapath.  :func:`unified_filter` implements the fused pass;
its bit-level agreement with the sequential pipeline is the correctness
property UCA's design rests on, and is enforced by the test suite.
"""

from __future__ import annotations

import numpy as np

from repro import constants
from repro.graphics.atw import bilinear_sample
from repro.graphics.composition import layer_weights
from repro.graphics.frame import FrameLayers
from repro.graphics.lens import LensModel

__all__ = ["unified_filter", "classify_tiles_functional"]


def unified_filter(
    frame: FrameLayers,
    shift_x_px: float,
    shift_y_px: float,
    blend_px: float = 4.0,
    lens: LensModel | None = None,
) -> np.ndarray:
    """Fused composition+ATW output for one eye (Eq. 4).

    Equivalent to ``reproject(compose(frame), shift, lens)`` but with a
    single sampling stage over pre-weighted layers.
    """
    height, width = frame.native_height, frame.native_width
    weights = layer_weights(
        height, width, frame.gaze_x, frame.gaze_y, frame.r1, frame.r2, blend_px
    )
    grid_y, grid_x = np.meshgrid(
        np.arange(height, dtype=float), np.arange(width, dtype=float), indexing="ij"
    )
    xs = grid_x + shift_x_px
    ys = grid_y + shift_y_px
    if lens is not None:
        xs, ys = lens.distort(
            xs, ys, center_x=width / 2.0, center_y=height / 2.0,
            norm_radius=max(width, height) / 2.0,
        )
    output: np.ndarray | None = None
    for weight, layer in zip(weights, frame.layers):
        upsampled = layer.upsampled(height, width)
        w = weight[..., None] if upsampled.ndim == 3 else weight
        weighted = w * upsampled
        sampled = bilinear_sample(weighted, xs, ys)
        output = sampled if output is None else output + sampled
    assert output is not None
    return output


def classify_tiles_functional(
    frame: FrameLayers,
    tile_px: int = constants.UCA_TILE_PX,
    blend_px: float = 4.0,
) -> np.ndarray:
    """Boolean tile map: True where a tile needs the trilinear (bound) path.

    A tile is *bound* when more than one layer has non-zero weight inside
    it — i.e. it straddles a layer border.  This is the functional ground
    truth for the hardware tile classifier in
    :meth:`repro.core.uca.UCAUnit.classify_tiles`.
    """
    weights = layer_weights(
        frame.native_height,
        frame.native_width,
        frame.gaze_x,
        frame.gaze_y,
        frame.r1,
        frame.r2,
        blend_px,
    )
    active = weights > 1e-9
    tiles_y = -(-frame.native_height // tile_px)
    tiles_x = -(-frame.native_width // tile_px)
    bound = np.zeros((tiles_y, tiles_x), dtype=bool)
    for ty in range(tiles_y):
        for tx in range(tiles_x):
            window = active[
                :, ty * tile_px : (ty + 1) * tile_px, tx * tile_px : (tx + 1) * tile_px
            ]
            layers_present = int(window.any(axis=(1, 2)).sum())
            bound[ty, tx] = layers_present > 1
    return bound
