"""Frame and layer-image containers for the functional graphics pipeline.

The functional pipeline operates on small NumPy images so that the
algebraic identities the UCA hardware exploits (Eq. (3) vs Eq. (4)) can be
verified on real pixels.  A :class:`LayerImage` is one foveated layer: a
pixel array plus the down-sampling scale that relates it to native panel
coordinates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["LayerImage", "FrameLayers"]


@dataclass(frozen=True)
class LayerImage:
    """One foveated layer: image data plus its native-space scale.

    Attributes
    ----------
    data:
        Float32 array of shape (H, W) or (H, W, C).
    scale:
        Linear down-sampling factor relative to native panel resolution
        (1.0 = native).  A native region of ``scale * H x scale * W``
        pixels is represented by this layer.
    """

    data: np.ndarray
    scale: float = 1.0

    def __post_init__(self) -> None:
        if self.data.ndim not in (2, 3):
            raise ConfigurationError(
                f"layer data must be 2-D or 3-D, got ndim={self.data.ndim}"
            )
        if self.scale < 1.0:
            raise ConfigurationError(f"scale must be >= 1, got {self.scale}")

    @property
    def height(self) -> int:
        """Stored pixel rows."""
        return self.data.shape[0]

    @property
    def width(self) -> int:
        """Stored pixel columns."""
        return self.data.shape[1]

    def upsampled(self, native_height: int, native_width: int) -> np.ndarray:
        """Resample this layer onto the native grid with bilinear filtering.

        The operation is linear in the pixel values — the property that
        makes composition and ATW commute.
        """
        from repro.graphics.atw import bilinear_sample

        ys = (np.arange(native_height) + 0.5) * (self.height / native_height) - 0.5
        xs = (np.arange(native_width) + 0.5) * (self.width / native_width) - 0.5
        grid_y, grid_x = np.meshgrid(ys, xs, indexing="ij")
        return bilinear_sample(self.data, grid_x, grid_y)


@dataclass(frozen=True)
class FrameLayers:
    """The three foveated layers of one eye's frame.

    Attributes
    ----------
    fovea, middle, outer:
        The layer images (fovea at native scale).
    native_height, native_width:
        Panel dimensions in native pixels.
    gaze_x, gaze_y:
        Fovea centre in native pixel coordinates.
    r1, r2:
        Layer border radii (native pixels) corresponding to e1 and e2.
    """

    fovea: LayerImage
    middle: LayerImage
    outer: LayerImage
    native_height: int
    native_width: int
    gaze_x: float
    gaze_y: float
    r1: float
    r2: float

    def __post_init__(self) -> None:
        if self.native_height <= 0 or self.native_width <= 0:
            raise ConfigurationError("native dimensions must be positive")
        if not 0 <= self.r1 <= self.r2:
            raise ConfigurationError(f"need 0 <= r1 <= r2, got {self.r1}, {self.r2}")

    @property
    def layers(self) -> tuple[LayerImage, LayerImage, LayerImage]:
        """(fovea, middle, outer) in acuity order."""
        return (self.fovea, self.middle, self.outer)
