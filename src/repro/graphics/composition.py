"""Foveated composition (Eq. 3 left): blend the three layers into a frame.

Composition overlays the fovea/middle/outer layers and smooths the
resolution gradient between them with MSAA-style averaging along the layer
borders: within a blend band around each border radius, the output is a
convex combination of the adjacent layers' pixels — ``X = (1/M) sum_i S_i``
in the paper's notation.  The per-pixel layer weights are a function of
geometry only (gaze centre, radii, band width), which makes the whole
operator linear in the layer pixel values.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.graphics.frame import FrameLayers

__all__ = ["layer_weights", "compose"]


def layer_weights(
    height: int,
    width: int,
    gaze_x: float,
    gaze_y: float,
    r1: float,
    r2: float,
    blend_px: float = 4.0,
) -> np.ndarray:
    """Per-pixel convex weights of the three layers.

    Returns an array of shape (3, H, W) with non-negative entries that sum
    to 1 at every pixel: weight 0 is the fovea layer share, 1 the middle,
    2 the outer.  Inside a blend band of ``blend_px`` native pixels around
    each border radius, the adjacent layers are linearly cross-faded (the
    MSAA averaging of Eq. (3)).
    """
    if height <= 0 or width <= 0:
        raise ConfigurationError("frame dimensions must be positive")
    if blend_px < 0:
        raise ConfigurationError(f"blend_px must be >= 0, got {blend_px}")
    if not 0 <= r1 <= r2:
        raise ConfigurationError(f"need 0 <= r1 <= r2, got r1={r1}, r2={r2}")
    grid_y, grid_x = np.meshgrid(
        np.arange(height, dtype=float), np.arange(width, dtype=float), indexing="ij"
    )
    radius = np.hypot(grid_x - gaze_x, grid_y - gaze_y)

    def _ramp(r: np.ndarray, border: float) -> np.ndarray:
        """0 well inside the border, 1 well outside, linear in the band."""
        if blend_px == 0:
            return (r >= border).astype(float)
        return np.clip((r - (border - blend_px / 2.0)) / blend_px, 0.0, 1.0)

    outside_r1 = _ramp(radius, r1)
    outside_r2 = _ramp(radius, r2)
    w_fovea = 1.0 - outside_r1
    w_outer = outside_r2
    w_middle = np.clip(outside_r1 - outside_r2, 0.0, 1.0)
    return np.stack([w_fovea, w_middle, w_outer])


def compose(frame: FrameLayers, blend_px: float = 4.0) -> np.ndarray:
    """Foveated composition of one eye's layers onto the native grid.

    Each layer is bilinearly upsampled to native resolution and blended by
    :func:`layer_weights` — linear in every layer's pixels.
    """
    weights = layer_weights(
        frame.native_height,
        frame.native_width,
        frame.gaze_x,
        frame.gaze_y,
        frame.r1,
        frame.r2,
        blend_px,
    )
    output: np.ndarray | None = None
    for weight, layer in zip(weights, frame.layers):
        upsampled = layer.upsampled(frame.native_height, frame.native_width)
        w = weight[..., None] if upsampled.ndim == 3 else weight
        contribution = w * upsampled
        output = contribution if output is None else output + contribution
    assert output is not None
    return output
