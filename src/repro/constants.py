"""Shared physical, display and timing constants for the Q-VR reproduction.

The values collected here are the cross-module anchors of the paper:

* commercial VR realtime requirements (Sec. 2.1): motion-to-photon latency
  below 25 ms and a frame rate above 90 Hz;
* fixed sensor/display latencies counted into the end-to-end path (Sec. 5):
  2 ms sensor-data transmission and 5 ms display scan-out;
* the human visual-system parameters of the MAR (minimum angle of
  resolution) model used by foveated rendering (Sec. 3.1, after
  Guenter et al. 2012);
* the classic fovea size (5 degrees) and the upper eccentricity bound at
  which the whole frame is rendered locally.

Everything is expressed in base SI-ish units used consistently across the
library: milliseconds for latency, degrees for visual angle, bytes for data
sizes, Hz for rates.
"""

from __future__ import annotations

# --------------------------------------------------------------------------
# Realtime requirements (Sec. 2.1)
# --------------------------------------------------------------------------

#: Maximum acceptable motion-to-photon latency for commercial VR, in ms.
MTP_LATENCY_REQUIREMENT_MS: float = 25.0

#: Minimum acceptable frame rate for high-quality VR, in Hz.
TARGET_FPS: float = 90.0

#: Per-frame time budget implied by :data:`TARGET_FPS`, in ms (~11 ms).
FRAME_BUDGET_MS: float = 1000.0 / TARGET_FPS

# --------------------------------------------------------------------------
# Fixed pipeline latencies counted by the paper (Sec. 5 / Sec. 7)
# --------------------------------------------------------------------------

#: Latency to transport sensor data to the rendering engine, in ms.
SENSOR_TRANSPORT_MS: float = 2.0

#: Latency to scan a finished frame out onto the HMD, in ms.
DISPLAY_SCANOUT_MS: float = 5.0

#: Refresh rate of the state-of-the-art eye tracker (Sec. 7), in Hz.
EYE_TRACKER_RATE_HZ: float = 120.0

#: Refresh rate of the head-tracking IMU, in Hz (typical 1 kHz-class IMU).
HEAD_TRACKER_RATE_HZ: float = 1000.0

# --------------------------------------------------------------------------
# Human visual system / MAR model (Sec. 3.1)
# --------------------------------------------------------------------------

#: MAR slope ``m`` in degrees of resolvable angle per degree of eccentricity.
#: Value from the user studies the paper adopts (Guenter et al. 2012).
MAR_SLOPE_DEG_PER_DEG: float = 0.022

#: Fovea MAR ``omega_0`` in degrees: finest resolvable angle at the fovea
#: (about 1/48 degree, i.e. 1.25 arcmin, per Guenter et al. 2012).
FOVEA_MAR_DEG: float = 1.0 / 48.0

#: The classic central fovea radius requiring full detail, in degrees.
CLASSIC_FOVEA_ECCENTRICITY_DEG: float = 5.0

#: Horizontal field of view of one HMD eye, in degrees.
HMD_HFOV_DEG: float = 110.0

#: Vertical field of view of one HMD eye, in degrees.
HMD_VFOV_DEG: float = 110.0

#: Human binocular field of view (Sec. 3): 160 deg horizontal, 135 vertical.
HUMAN_HFOV_DEG: float = 160.0
HUMAN_VFOV_DEG: float = 135.0

#: Smallest eccentricity the adaptive controllers may select, in degrees.
MIN_ECCENTRICITY_DEG: float = 5.0

#: Largest eccentricity: everything rendered locally (Table 4 saturates at 90).
MAX_ECCENTRICITY_DEG: float = 90.0

# --------------------------------------------------------------------------
# Default hardware clocks (Table 2)
# --------------------------------------------------------------------------

#: Default mobile GPU / UCA core frequency, in MHz.
DEFAULT_GPU_FREQ_MHZ: float = 500.0

#: UCA tile dimensions in pixels (Sec. 4.2: frames are cut into 32x32 tiles).
UCA_TILE_PX: int = 32

#: Measured UCA latency to process one 32x32 tile, in cycles (Sec. 4.3).
UCA_CYCLES_PER_TILE: int = 532

#: Number of UCA units on the SoC (Table 2).
UCA_UNIT_COUNT: int = 2

#: Raster tile size of the mobile GPU (Table 2: 16x16 tiled rasterization).
RASTER_TILE_PX: int = 16

# --------------------------------------------------------------------------
# Display / colour
# --------------------------------------------------------------------------

#: Bytes per uncompressed pixel (RGB, 8 bit per channel).
BYTES_PER_PIXEL: int = 3

#: Number of eyes; VR renders a stereo pair.
EYES: int = 2

#: Bits in a byte, named to keep unit conversions self-documenting.
BITS_PER_BYTE: int = 8
