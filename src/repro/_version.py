"""Single source of the package version.

Lives in its own leaf module so layers that key persistent artifacts on
the release (the on-disk result cache) can import it without pulling in
the whole :mod:`repro` package surface.
"""

__version__ = "1.1.0"
