"""GPU timing substrate: mobile SoC GPU and remote multi-GPU server models."""

from repro.gpu.config import (
    GPUConfig,
    MOBILE_BASELINE,
    REMOTE_BASELINE,
    RemoteServerConfig,
)
from repro.gpu.mobile_gpu import MobileGPU, PostPassCost
from repro.gpu.perf_model import FrameTiming, GPUPerfModel, RenderWorkload
from repro.gpu.remote_gpu import RemoteRenderer

__all__ = [
    "GPUConfig",
    "RemoteServerConfig",
    "MOBILE_BASELINE",
    "REMOTE_BASELINE",
    "MobileGPU",
    "PostPassCost",
    "GPUPerfModel",
    "FrameTiming",
    "RenderWorkload",
    "RemoteRenderer",
]
