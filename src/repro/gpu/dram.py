"""DRAM interface timing model.

Converts byte traffic into milliseconds for the Table 2 memory interface
(16 bytes/cycle, 8 channels).  Streaming accesses (framebuffer scan, video
surfaces) achieve near-peak efficiency; scattered texture misses see a
lower effective bandwidth because of row-activate overheads — the
``efficiency`` knob captures that distinction without simulating banks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.gpu.config import GPUConfig

__all__ = ["DRAMModel", "STREAMING_EFFICIENCY", "SCATTERED_EFFICIENCY"]

#: Effective fraction of peak bandwidth for long sequential bursts.
STREAMING_EFFICIENCY = 0.90

#: Effective fraction of peak bandwidth for scattered cache-miss traffic.
SCATTERED_EFFICIENCY = 0.65


@dataclass(frozen=True)
class DRAMModel:
    """Bandwidth/latency model for the SoC DRAM interface."""

    config: GPUConfig

    @property
    def peak_bytes_per_ms(self) -> float:
        """Peak interface bandwidth in bytes per millisecond."""
        return self.config.dram_bandwidth_bytes_per_ms

    def transfer_ms(self, traffic_bytes: float, efficiency: float = STREAMING_EFFICIENCY) -> float:
        """Time to move ``traffic_bytes`` at the given access efficiency."""
        if traffic_bytes < 0:
            raise ConfigurationError(f"traffic must be >= 0, got {traffic_bytes}")
        if not 0 < efficiency <= 1:
            raise ConfigurationError(f"efficiency must be in (0, 1], got {efficiency}")
        return traffic_bytes / (self.peak_bytes_per_ms * efficiency)
