"""Per-frame GPU timing model: the reproduction's ATTILA-sim stand-in.

The model decomposes a frame into the stages of a modern tile-based mobile
GPU and combines them the way the paper's evaluation consumes them — as a
single frame render time with the right sensitivities:

* **geometry**: vertex shading on the unified shaders;
* **raster front end**: triangle setup / binning / traversal
  (fixed-function, overlapped with shading);
* **fragment shading**: the dominant cost, ``fragments x cycles-per-
  fragment`` on the unified shader lanes;
* **texture/DRAM**: memory time from the cache model, overlapped with
  compute (a frame is memory-bound when DRAM time exceeds shading time);
* **draw-call overhead**: per-batch command-processor cost, which is what
  makes batch-heavy titles (GRID: 3680 batches) disproportionately slow.

Frame time = max(compute path, memory path) + serial front-end overheads.
All stage outputs are exposed for tests and the energy model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError, WorkloadError
from repro.gpu.cache import CacheModel
from repro.gpu.config import GPUConfig
from repro.gpu.raster import (
    _BIN_INSERT_CYCLES,
    _TILE_WALK_CYCLES,
    _TRIANGLE_SETUP_CYCLES,
    RasterModel,
)

__all__ = ["RenderWorkload", "FrameTiming", "GPUPerfModel"]

#: Shader cycles to transform and light one vertex (typical VR vertex
#: shaders are position + normal + a couple of varyings).
_VERTEX_CYCLES = 16.0

#: Command-processor cycles to launch one draw batch.
_BATCH_LAUNCH_CYCLES = 500.0

#: Fixed per-frame front-end cost (state validation, fences), in cycles.
_FRAME_FIXED_CYCLES = 150_000.0

#: Framebuffer write traffic per fragment (colour + depth), in bytes.
_ROP_BYTES_PER_FRAGMENT = 8.0


@dataclass(frozen=True)
class RenderWorkload:
    """A frame's rendering workload in hardware-visible units.

    This is the object the paper's LIWC can observe during render setup
    ("bypass the CPU to directly monitor the number of triangles").

    Attributes
    ----------
    vertices:
        Vertices shaded (~= triangles for indexed meshes; we use triangle
        count directly as the paper does).
    fragments:
        Fragments shaded, i.e. covered pixels times overdraw.
    fragment_cycles:
        Average shader cycles per fragment (material complexity).
    draw_batches:
        Draw calls issued.
    texture_bytes_per_fragment:
        Average texel bytes requested per fragment.
    texture_working_set_bytes:
        Unique texture footprint of the frame.
    """

    vertices: float
    fragments: float
    fragment_cycles: float
    draw_batches: float
    texture_bytes_per_fragment: float = 4.0
    texture_working_set_bytes: float = 32e6

    def __post_init__(self) -> None:
        if min(self.vertices, self.fragments, self.draw_batches) < 0:
            raise WorkloadError("workload quantities must be >= 0")
        if self.fragment_cycles < 0 or self.texture_bytes_per_fragment < 0:
            raise WorkloadError("per-item costs must be >= 0")

    def scaled(
        self,
        fragment_scale: float = 1.0,
        vertex_scale: float = 1.0,
        batch_scale: float | None = None,
    ) -> "RenderWorkload":
        """Return a proportionally scaled workload (used for partial frames).

        ``batch_scale`` defaults to ``vertex_scale`` — culling removes draw
        calls roughly in proportion to geometry.
        """
        if batch_scale is None:
            batch_scale = vertex_scale
        return RenderWorkload(
            vertices=self.vertices * vertex_scale,
            fragments=self.fragments * fragment_scale,
            fragment_cycles=self.fragment_cycles,
            draw_batches=self.draw_batches * batch_scale,
            texture_bytes_per_fragment=self.texture_bytes_per_fragment,
            texture_working_set_bytes=self.texture_working_set_bytes
            * max(fragment_scale, 0.05),
        )


@dataclass(frozen=True)
class FrameTiming:
    """Per-stage timing breakdown for one rendered frame (milliseconds)."""

    geometry_ms: float
    raster_ms: float
    fragment_ms: float
    dram_ms: float
    batch_overhead_ms: float
    fixed_ms: float

    @property
    def compute_ms(self) -> float:
        """Unified-shader occupancy (geometry + fragment shading)."""
        return self.geometry_ms + self.fragment_ms

    @property
    def total_ms(self) -> float:
        """Frame render time.

        Compute and memory overlap in a pipelined GPU, so the frame takes
        the slower of the two, plus the serial front-end costs.
        """
        parallel = max(self.compute_ms, self.dram_ms, self.raster_ms)
        return parallel + self.batch_overhead_ms + self.fixed_ms

    @property
    def memory_bound(self) -> bool:
        """True when DRAM time dominates shading time."""
        return self.dram_ms > self.compute_ms


class GPUPerfModel:
    """Analytic per-frame timing model for a :class:`GPUConfig`."""

    def __init__(self, config: GPUConfig) -> None:
        self.config = config
        self.cache = CacheModel(config)
        self.raster = RasterModel(config)
        # Precomputed config scalars for the hot :meth:`render_time_ms`
        # fast path.  Each equals the corresponding per-call property value
        # exactly, so the fast path is bit-identical to the full breakdown.
        self._shade_rate = config.shading_rate_per_ms
        self._cycles_per_ms = config.frequency_hz / 1000.0
        self._l1_capacity = config.l1_kb * 1024 * config.num_shaders
        self._l2_capacity = config.l2_kb * 1024
        self._dram_bw = config.dram_bandwidth_bytes_per_ms
        self._fixed_ms = _FRAME_FIXED_CYCLES / self._cycles_per_ms

    def frame_timing(self, workload: RenderWorkload) -> FrameTiming:
        """Compute the stage breakdown for one frame."""
        cfg = self.config
        shade_rate = cfg.shading_rate_per_ms

        geometry_ms = workload.vertices * _VERTEX_CYCLES / shade_rate
        fragment_ms = workload.fragments * workload.fragment_cycles / shade_rate

        raster = self.raster.estimate(workload.vertices, workload.fragments)
        raster_ms = raster.total_cycles / (cfg.frequency_hz / 1000.0)

        traffic = self.cache.frame_traffic(
            fragments=workload.fragments,
            texture_bytes_per_fragment=workload.texture_bytes_per_fragment
            * cfg.anisotropic_taps
            / 4.0,
            texture_working_set_bytes=workload.texture_working_set_bytes,
        )
        total_dram_bytes = traffic.dram_bytes + workload.fragments * _ROP_BYTES_PER_FRAGMENT
        dram_ms = total_dram_bytes / cfg.dram_bandwidth_bytes_per_ms

        cycles_per_ms = cfg.frequency_hz / 1000.0
        batch_overhead_ms = workload.draw_batches * _BATCH_LAUNCH_CYCLES / cycles_per_ms
        fixed_ms = _FRAME_FIXED_CYCLES / cycles_per_ms
        return FrameTiming(
            geometry_ms=geometry_ms,
            raster_ms=raster_ms,
            fragment_ms=fragment_ms,
            dram_ms=dram_ms,
            batch_overhead_ms=batch_overhead_ms,
            fixed_ms=fixed_ms,
        )

    def render_time_ms(self, workload: RenderWorkload) -> float:
        """Frame render time in milliseconds.

        Inline replica of ``frame_timing(workload).total_ms`` — the same
        arithmetic in the same order, without materialising the three
        per-stage breakdown objects.  This runs once per rendered frame on
        every simulated system, so the constant-factor savings matter;
        ``tests/gpu`` pin its equality with the full breakdown.
        """
        cfg = self.config
        shade_rate = self._shade_rate
        vertices = workload.vertices
        fragments = workload.fragments

        geometry_ms = vertices * _VERTEX_CYCLES / shade_rate
        fragment_ms = fragments * workload.fragment_cycles / shade_rate

        # RasterModel.estimate / RasterEstimate.total_cycles
        if vertices < 0:
            raise ConfigurationError(f"triangles must be >= 0, got {vertices}")
        if vertices <= 0:
            tiles = 0.0
        else:
            if fragments < 0:
                raise ConfigurationError(
                    f"fragments must be >= 0, got {fragments}"
                )
            side = math.sqrt(max(fragments / vertices, 0.0))
            tiles = (side / cfg.raster_tile_px + 1.0) ** 2
        raster_cycles = (
            vertices * _TRIANGLE_SETUP_CYCLES
            + vertices * tiles * _BIN_INSERT_CYCLES
            + vertices * tiles * _TILE_WALK_CYCLES
        )
        raster_ms = raster_cycles / self._cycles_per_ms

        # CacheModel.frame_traffic
        tex_per_fragment = (
            workload.texture_bytes_per_fragment * cfg.anisotropic_taps / 4.0
        )
        if fragments < 0 or tex_per_fragment < 0:
            raise ConfigurationError(
                "fragment counts and request sizes must be >= 0"
            )
        requests = fragments * tex_per_fragment
        working_set = workload.texture_working_set_bytes
        if working_set <= 0:
            l1_hit = 1.0
        elif self._l1_capacity <= 0:
            raise ConfigurationError("cache capacity must be positive")
        else:
            l1_hit = min(1.0, math.sqrt(self._l1_capacity / working_set))
        l1_miss = requests * (1.0 - l1_hit)
        residual_ws = working_set * (1.0 - l1_hit)
        if residual_ws <= 0:
            l2_hit = 1.0
        elif self._l2_capacity <= 0:
            raise ConfigurationError("cache capacity must be positive")
        else:
            l2_hit = min(1.0, math.sqrt(self._l2_capacity / residual_ws))
        dram_bytes = l1_miss * (1.0 - l2_hit)

        total_dram_bytes = dram_bytes + fragments * _ROP_BYTES_PER_FRAGMENT
        dram_ms = total_dram_bytes / self._dram_bw

        batch_overhead_ms = (
            workload.draw_batches * _BATCH_LAUNCH_CYCLES / self._cycles_per_ms
        )
        parallel = max(geometry_ms + fragment_ms, dram_ms, raster_ms)
        return parallel + batch_overhead_ms + self._fixed_ms

    def throughput_triangles_per_ms(self, workload: RenderWorkload) -> float:
        """Observed triangle throughput ``P(GPU_m)`` of paper Eq. (2).

        LIWC's latency predictor divides the monitored triangle count by
        this quantity; the runtime updater refines it online from measured
        render times.
        """
        total = self.render_time_ms(workload)
        if total <= 0:
            raise WorkloadError("render time must be positive")
        return workload.vertices / total if workload.vertices > 0 else 0.0
