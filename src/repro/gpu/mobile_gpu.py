"""Mobile GPU facade: rendering plus the GPU-executed post passes.

Bundles the per-frame timing model with the costs of the passes that the
*baseline* designs execute on the GPU itself — composition and ATW — which
is precisely the contention Q-VR's UCA removes (Sec. 2.3, Fig. 4-3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.gpu.config import GPUConfig
from repro.gpu.dram import DRAMModel, STREAMING_EFFICIENCY
from repro.gpu.perf_model import FrameTiming, GPUPerfModel, RenderWorkload

__all__ = ["MobileGPU", "PostPassCost"]

#: Shader cycles per pixel for ATW (lens distortion + reprojection +
#: bilinear filter) when executed as a GPU compute pass.
_ATW_CYCLES_PER_PIXEL = 24.0

#: Shader cycles per pixel for foveated layer composition on the GPU
#: (3-layer blend + MSAA along layer borders).
_FOVEATED_COMPOSITION_CYCLES_PER_PIXEL = 30.0

#: Shader cycles per pixel for the *static* design's composition, which is
#: heavier: depth-based embedding of local objects into the streamed
#: background plus collision detection (Sec. 1 challenge 4).
_STATIC_COMPOSITION_CYCLES_PER_PIXEL = 45.0

#: Pipeline drain/refill penalty each time composition or ATW preempts the
#: rendering stream on the GPU, in milliseconds.
PREEMPTION_PENALTY_MS = 0.35

#: Bytes read+written per composed pixel (source layers + destination).
_COMPOSITION_BYTES_PER_PIXEL = 20.0

#: Bytes read+written per ATW output pixel (texture fetch + store).
_ATW_BYTES_PER_PIXEL = 16.0


@dataclass(frozen=True)
class PostPassCost:
    """Cost of one GPU-executed post pass (composition or ATW)."""

    compute_ms: float
    memory_ms: float
    preemption_ms: float

    @property
    def total_ms(self) -> float:
        """Wall time the pass occupies the GPU."""
        return max(self.compute_ms, self.memory_ms) + self.preemption_ms


class MobileGPU:
    """The local SoC GPU: rendering, and post passes when no UCA exists."""

    def __init__(self, config: GPUConfig | None = None) -> None:
        self.config = config if config is not None else GPUConfig()
        self.perf = GPUPerfModel(self.config)
        self.dram = DRAMModel(self.config)

    # -- rendering -----------------------------------------------------------

    def frame_timing(self, workload: RenderWorkload) -> FrameTiming:
        """Stage breakdown for rendering one frame."""
        return self.perf.frame_timing(workload)

    def render_time_ms(self, workload: RenderWorkload) -> float:
        """Render time for one frame in milliseconds."""
        return self.perf.render_time_ms(workload)

    # -- GPU-executed post passes (baseline designs) --------------------------

    def _post_pass(self, pixels: float, cycles_per_pixel: float, bytes_per_pixel: float) -> PostPassCost:
        if pixels < 0:
            raise WorkloadError(f"pixels must be >= 0, got {pixels}")
        compute_ms = pixels * cycles_per_pixel / self.config.shading_rate_per_ms
        memory_ms = self.dram.transfer_ms(pixels * bytes_per_pixel, STREAMING_EFFICIENCY)
        return PostPassCost(
            compute_ms=compute_ms,
            memory_ms=memory_ms,
            preemption_ms=PREEMPTION_PENALTY_MS,
        )

    def atw_cost(self, pixels: float) -> PostPassCost:
        """ATW executed on the GPU (all non-UCA designs)."""
        return self._post_pass(pixels, _ATW_CYCLES_PER_PIXEL, _ATW_BYTES_PER_PIXEL)

    def foveated_composition_cost(self, pixels: float) -> PostPassCost:
        """Three-layer foveated composition on the GPU (FFR/DFR designs)."""
        return self._post_pass(
            pixels, _FOVEATED_COMPOSITION_CYCLES_PER_PIXEL, _COMPOSITION_BYTES_PER_PIXEL
        )

    def static_composition_cost(self, pixels: float) -> PostPassCost:
        """Static collaborative composition: depth embedding + collision."""
        return self._post_pass(
            pixels, _STATIC_COMPOSITION_CYCLES_PER_PIXEL, _COMPOSITION_BYTES_PER_PIXEL
        )
