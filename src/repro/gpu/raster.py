"""Tiled rasteriser model (Table 2: 16x16 tiled rasterization).

Estimates the geometry front-end costs of a tile-based mobile GPU: triangle
setup, tile binning (how many tiles each triangle touches) and the raster
traversal work.  Outputs are *cycles*, converted to time by the perf model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.gpu.config import GPUConfig

__all__ = ["RasterEstimate", "RasterModel"]

#: Effective cycles to set up one triangle.  The raster engine is a parallel
#: fixed-function block processing multiple primitives per clock, so these
#: are *amortised* cycles per item, not serial latencies.
_TRIANGLE_SETUP_CYCLES = 0.5

#: Amortised cycles to append one (triangle, tile) pair to a bin list.
_BIN_INSERT_CYCLES = 0.25

#: Amortised cycles for the traversal engine to walk one tile of a triangle.
_TILE_WALK_CYCLES = 1.0


@dataclass(frozen=True)
class RasterEstimate:
    """Raster front-end cost estimate for one frame."""

    triangles: float
    tiles_per_triangle: float
    setup_cycles: float
    binning_cycles: float
    traversal_cycles: float

    @property
    def total_cycles(self) -> float:
        """Total raster front-end cycles."""
        return self.setup_cycles + self.binning_cycles + self.traversal_cycles


class RasterModel:
    """Analytic model of the tiled raster front end."""

    def __init__(self, config: GPUConfig) -> None:
        self.config = config

    def tiles_per_triangle(self, fragments: float, triangles: float) -> float:
        """Mean tiles touched per triangle.

        A triangle covering ``a`` pixels touches roughly
        ``(sqrt(a)/T + 1)^2`` tiles of side ``T`` (a square-footprint
        approximation that is exact for axis-aligned squares and within a
        small constant for realistic triangle shapes).
        """
        if triangles <= 0:
            return 0.0
        if fragments < 0:
            raise ConfigurationError(f"fragments must be >= 0, got {fragments}")
        mean_area = fragments / triangles
        side = math.sqrt(max(mean_area, 0.0))
        tile = self.config.raster_tile_px
        return (side / tile + 1.0) ** 2

    def estimate(self, triangles: float, fragments: float) -> RasterEstimate:
        """Estimate raster cycles for ``triangles`` covering ``fragments``."""
        if triangles < 0:
            raise ConfigurationError(f"triangles must be >= 0, got {triangles}")
        tiles = self.tiles_per_triangle(fragments, triangles)
        return RasterEstimate(
            triangles=triangles,
            tiles_per_triangle=tiles,
            setup_cycles=triangles * _TRIANGLE_SETUP_CYCLES,
            binning_cycles=triangles * tiles * _BIN_INSERT_CYCLES,
            traversal_cycles=triangles * tiles * _TILE_WALK_CYCLES,
        )
