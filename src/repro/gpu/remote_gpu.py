"""Remote rendering server model (Sec. 5: chiplet-based 8x MCM multi-GPU).

The remote side contributes render time and encode time, both of which the
evaluation pipelines overlap with network streaming; the model therefore
exposes per-stage latencies rather than a single lump.
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.gpu.config import GPUConfig, RemoteServerConfig
from repro.gpu.perf_model import GPUPerfModel, RenderWorkload

__all__ = ["RemoteRenderer"]


class RemoteRenderer:
    """A multi-GPU rendering server driven in mobile-GPU-equivalent units.

    Render time is estimated as the mobile-baseline render time of the same
    workload divided by the server's effective aggregate speedup; this keeps
    a single calibrated workload model for both ends, exactly as the paper's
    methodology does (one ATTILA config for the client, one scaled multi-GPU
    config for the server).
    """

    def __init__(
        self,
        server: RemoteServerConfig | None = None,
        reference_gpu: GPUConfig | None = None,
    ) -> None:
        self.server = server if server is not None else RemoteServerConfig()
        self.reference = GPUPerfModel(reference_gpu if reference_gpu is not None else GPUConfig())
        # The aggregate speedup is a pure function of the (frozen) server
        # config; evaluate the log/pow chain once instead of per frame.
        self._effective_speedup = self.server.effective_speedup

    def render_time_ms(self, workload: RenderWorkload) -> float:
        """Server-side render time for a workload, in milliseconds."""
        mobile_equivalent = self.reference.render_time_ms(workload)
        return mobile_equivalent / self._effective_speedup

    def encode_time_ms(self, pixels: float) -> float:
        """Hardware video-encode time for ``pixels`` output pixels."""
        if pixels < 0:
            raise WorkloadError(f"pixels must be >= 0, got {pixels}")
        return pixels / self.server.encode_rate_px_per_ms
