"""GPU hardware configuration (paper Table 2).

The baseline mobile GPU reproduces the paper's ATTILA-sim reconfiguration
referencing an ARM Mali-G76-class part: 8 unified shaders, each with 8
SIMD4-scale ALU groups (modelled as SIMD4 lanes), a 16 KB unified L1 per
shader, one texture unit per shader with 4x anisotropic filtering, a 16x16
tiled rasteriser, a shared 256 KB 8-way L2 and an 8-channel DRAM interface
moving 16 bytes per cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro import constants
from repro.errors import ConfigurationError

__all__ = ["GPUConfig", "RemoteServerConfig", "MOBILE_BASELINE", "REMOTE_BASELINE"]


@dataclass(frozen=True)
class GPUConfig:
    """Mobile GPU configuration (Table 2 baseline by default).

    Attributes
    ----------
    frequency_mhz:
        Core clock; the sensitivity study sweeps {300, 400, 500}.
    num_shaders:
        Unified shader cores.
    simd_width:
        Lanes per shader issue (SIMD4-scale ALUs).
    alu_groups_per_shader:
        SIMD groups issuing per cycle in each shader.
    l1_kb, l2_kb, l2_ways:
        Cache hierarchy sizes.
    texture_units_per_shader, anisotropic_taps:
        Texture sampling resources.
    raster_tile_px:
        Tiled rasterisation granularity (16x16).
    dram_bytes_per_cycle, dram_channels:
        Memory interface width.
    """

    frequency_mhz: float = constants.DEFAULT_GPU_FREQ_MHZ
    num_shaders: int = 8
    simd_width: int = 4
    alu_groups_per_shader: int = 8
    l1_kb: int = 16
    l2_kb: int = 256
    l2_ways: int = 8
    texture_units_per_shader: int = 1
    anisotropic_taps: int = 4
    raster_tile_px: int = constants.RASTER_TILE_PX
    dram_bytes_per_cycle: int = 16
    dram_channels: int = 8

    def __post_init__(self) -> None:
        if self.frequency_mhz <= 0:
            raise ConfigurationError(f"frequency must be > 0, got {self.frequency_mhz}")
        for field_name in (
            "num_shaders",
            "simd_width",
            "alu_groups_per_shader",
            "l1_kb",
            "l2_kb",
            "l2_ways",
            "texture_units_per_shader",
            "anisotropic_taps",
            "raster_tile_px",
            "dram_bytes_per_cycle",
            "dram_channels",
        ):
            if getattr(self, field_name) <= 0:
                raise ConfigurationError(
                    f"{field_name} must be positive, got {getattr(self, field_name)}"
                )

    @property
    def frequency_hz(self) -> float:
        """Core clock in Hz."""
        return self.frequency_mhz * 1e6

    @property
    def shading_lanes(self) -> int:
        """Total scalar shading lanes issuing per cycle."""
        return self.num_shaders * self.simd_width * self.alu_groups_per_shader

    @property
    def shading_rate_per_ms(self) -> float:
        """Scalar shader cycles retired per millisecond (all lanes)."""
        return self.shading_lanes * self.frequency_hz / 1000.0

    @property
    def dram_bandwidth_bytes_per_ms(self) -> float:
        """DRAM bandwidth in bytes per millisecond.

        The memory interface is clocked with the core in ATTILA's model:
        ``bytes/cycle * channels * core clock``.
        """
        return self.dram_bytes_per_cycle * self.dram_channels * self.frequency_hz / 1000.0

    def at_frequency(self, frequency_mhz: float) -> "GPUConfig":
        """Return a copy of this configuration at another core clock."""
        return replace(self, frequency_mhz=frequency_mhz)


@dataclass(frozen=True)
class RemoteServerConfig:
    """Chiplet-based multi-GPU rendering server (Sec. 5, after OO-VR).

    Attributes
    ----------
    num_gpus:
        MCM GPU count (the paper scales to 8).
    per_gpu_speedup:
        Single remote GPU throughput relative to the mobile baseline.
    scaling_efficiency:
        Parallel-rendering efficiency per doubling (NUMA penalty); OO-VR
        reports near-linear scaling with locality optimisations, so the
        default is mildly sub-linear.
    encode_rate_px_per_ms:
        Hardware video-encoder throughput (NVENC-class, per-eye streams
        encoded in parallel): ~2.5 Mpixel per millisecond.
    """

    num_gpus: int = 8
    per_gpu_speedup: float = 6.0
    scaling_efficiency: float = 0.92
    encode_rate_px_per_ms: float = 2.5e6

    def __post_init__(self) -> None:
        if self.num_gpus < 1:
            raise ConfigurationError(f"num_gpus must be >= 1, got {self.num_gpus}")
        if self.per_gpu_speedup <= 0:
            raise ConfigurationError(
                f"per_gpu_speedup must be > 0, got {self.per_gpu_speedup}"
            )
        if not 0 < self.scaling_efficiency <= 1:
            raise ConfigurationError(
                f"scaling_efficiency must be in (0, 1], got {self.scaling_efficiency}"
            )
        if self.encode_rate_px_per_ms <= 0:
            raise ConfigurationError("encode_rate_px_per_ms must be > 0")

    @property
    def effective_speedup(self) -> float:
        """Aggregate speedup over the mobile GPU across all chiplets."""
        import math

        doublings = math.log2(self.num_gpus) if self.num_gpus > 1 else 0.0
        return self.per_gpu_speedup * self.num_gpus * self.scaling_efficiency**doublings


#: The Table 2 mobile baseline at 500 MHz.
MOBILE_BASELINE = GPUConfig()

#: The default 8-GPU MCM remote server.
REMOTE_BASELINE = RemoteServerConfig()
