"""Exception hierarchy for the Q-VR reproduction library.

All library-raised errors derive from :class:`ReproError` so callers can
catch the library's failures without masking programming errors such as
``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """A configuration object is internally inconsistent or out of range."""


class SchedulingError(ReproError):
    """The discrete-event scheduler was given an invalid task graph."""


class FoveationError(ReproError):
    """Foveation parameters violate the MAR/geometry constraints."""


class WorkloadError(ReproError):
    """A workload definition or trace request is invalid."""


class NetworkError(ReproError):
    """A network channel was configured or used incorrectly."""


class CodecError(ReproError):
    """Video codec model received invalid frame parameters."""


class ControllerError(ReproError):
    """An eccentricity controller was driven with inconsistent state."""
