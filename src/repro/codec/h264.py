"""H.264-class video codec rate and latency model.

The paper compresses remote-rendered frames with ffmpeg's H.264 before
streaming (Sec. 5) and reports the resulting background sizes in Table 1
(~480-650 KB for a 1920x2160-per-eye stereo background).  That corresponds
to roughly 0.5 bits per pixel — intra-refresh low-latency encoding of game
content — and the sizes vary with content complexity.

The model therefore maps ``(pixels, content complexity)`` to compressed
bytes via a bits-per-pixel curve, and provides encode/decode latency in
terms of hardware codec throughput.  Depth maps (which the *static*
collaborative design must also transmit for composition) compress far
better than colour and get their own rate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import constants
from repro.errors import CodecError

__all__ = ["H264Model", "EncodedFrame"]


@dataclass(frozen=True)
class EncodedFrame:
    """A compressed frame (or frame layer) ready for streaming."""

    pixels: float
    payload_bytes: float
    bits_per_pixel: float

    def __post_init__(self) -> None:
        if self.pixels < 0 or self.payload_bytes < 0:
            raise CodecError("encoded frame quantities must be >= 0")

    @property
    def compression_ratio(self) -> float:
        """Raw RGB bytes divided by compressed bytes."""
        raw = self.pixels * constants.BYTES_PER_PIXEL
        if self.payload_bytes == 0:
            return float("inf") if raw > 0 else 1.0
        return raw / self.payload_bytes


@dataclass(frozen=True)
class H264Model:
    """Rate/latency model for a low-latency hardware H.264 codec.

    Attributes
    ----------
    base_bits_per_pixel:
        Bits per pixel for a scene of zero content complexity.
    complexity_bits_per_pixel:
        Additional bits per pixel at content complexity 1.0.
    depth_bits_per_pixel:
        Rate for depth-map auxiliary streams (static design only).
    decode_rate_px_per_ms:
        Mobile hardware decoder throughput.
    """

    base_bits_per_pixel: float = 0.35
    complexity_bits_per_pixel: float = 0.40
    depth_bits_per_pixel: float = 0.18
    decode_rate_px_per_ms: float = 2.0e6

    def __post_init__(self) -> None:
        if self.base_bits_per_pixel <= 0 or self.complexity_bits_per_pixel < 0:
            raise CodecError("bits-per-pixel parameters must be positive")
        if self.decode_rate_px_per_ms <= 0:
            raise CodecError("decode rate must be positive")

    # -- rate ------------------------------------------------------------------

    def bits_per_pixel(self, content_complexity: float) -> float:
        """Colour-stream rate for a content complexity in [0, 1]."""
        if not 0.0 <= content_complexity <= 1.5:
            raise CodecError(
                f"content_complexity must be in [0, 1.5], got {content_complexity}"
            )
        return self.base_bits_per_pixel + self.complexity_bits_per_pixel * content_complexity

    def encode(self, pixels: float, content_complexity: float) -> EncodedFrame:
        """Compress a colour image of ``pixels`` pixels."""
        if pixels < 0:
            raise CodecError(f"pixels must be >= 0, got {pixels}")
        bpp = self.bits_per_pixel(content_complexity)
        return EncodedFrame(
            pixels=pixels,
            payload_bytes=pixels * bpp / constants.BITS_PER_BYTE,
            bits_per_pixel=bpp,
        )

    def encode_layer(
        self, pixels: float, content_complexity: float, downsample_scale: float
    ) -> EncodedFrame:
        """Compress a down-sampled periphery layer.

        Down-sampling removes the spatial redundancy the codec exploits, so
        the achievable bits per pixel *rise* with the down-sampling factor;
        a sub-linear ``scale**0.35`` penalty reproduces measured H.264
        behaviour on rescaled game footage (compressed size falls slower
        than pixel count).
        """
        if downsample_scale < 1.0:
            raise CodecError(f"downsample_scale must be >= 1, got {downsample_scale}")
        base = self.encode(pixels, content_complexity)
        bpp = base.bits_per_pixel * downsample_scale**0.35
        return EncodedFrame(
            pixels=pixels,
            payload_bytes=pixels * bpp / constants.BITS_PER_BYTE,
            bits_per_pixel=bpp,
        )

    def encode_depth(self, pixels: float) -> EncodedFrame:
        """Compress a depth map (static collaborative design)."""
        if pixels < 0:
            raise CodecError(f"pixels must be >= 0, got {pixels}")
        return EncodedFrame(
            pixels=pixels,
            payload_bytes=pixels * self.depth_bits_per_pixel / constants.BITS_PER_BYTE,
            bits_per_pixel=self.depth_bits_per_pixel,
        )

    # -- latency ---------------------------------------------------------------

    def decode_time_ms(self, pixels: float) -> float:
        """Mobile-side hardware decode latency for ``pixels`` pixels."""
        if pixels < 0:
            raise CodecError(f"pixels must be >= 0, got {pixels}")
        return pixels / self.decode_rate_px_per_ms
