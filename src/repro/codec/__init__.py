"""Video codec substrate: H.264 rate/latency model and streaming pipeline."""

from repro.codec.h264 import EncodedFrame, H264Model
from repro.codec.stream import DEFAULT_CHUNKS, StreamPlan, pipelined_latency_ms

__all__ = [
    "EncodedFrame",
    "H264Model",
    "StreamPlan",
    "pipelined_latency_ms",
    "DEFAULT_CHUNKS",
]
