"""Chunked streaming pipeline latency (render || encode || transmit || decode).

Sec. 2.3 of the paper notes that remote rendering, network transmission and
video codec work "can be streamed in parallel", and Q-VR's software layer
adds *parallel streaming* of the per-eye middle/outer layers (Sec. 3.2,
Fig. 7) to overlap rendering with data transmission.

For a job cut into ``k`` equal chunks flowing through stages with total
per-stage times ``s_1..s_n``, the classic pipeline completion time is::

    T(k) = sum_i(s_i) / k  +  (k - 1) / k * max_i(s_i)

which approaches ``max_i(s_i)`` as ``k`` grows — exactly the paper's
"we only count the highest latency portion from the remote side".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CodecError

__all__ = ["StreamPlan", "pipelined_latency_ms"]

#: Default number of slices a layer stream is cut into.
DEFAULT_CHUNKS = 8


def pipelined_latency_ms(stage_times_ms: list[float] | tuple[float, ...], chunks: int = DEFAULT_CHUNKS) -> float:
    """Completion time of a chunked multi-stage pipeline.

    Parameters
    ----------
    stage_times_ms:
        Total (un-chunked) time each stage would take alone.
    chunks:
        Number of equal slices the payload is divided into.
    """
    if chunks < 1:
        raise CodecError(f"chunks must be >= 1, got {chunks}")
    times = [float(t) for t in stage_times_ms]
    if not times:
        return 0.0
    if any(t < 0 for t in times):
        raise CodecError(f"stage times must be >= 0, got {times}")
    total = sum(times)
    bottleneck = max(times)
    return total / chunks + (chunks - 1) / chunks * bottleneck


@dataclass(frozen=True)
class StreamPlan:
    """A remote-path streaming schedule and its effective latency.

    Attributes
    ----------
    render_ms, encode_ms, transmit_ms, decode_ms:
        Stage totals for the remote path of one frame.
    propagation_ms:
        One-way path latency, paid once.
    chunks:
        Pipeline slicing factor.
    """

    render_ms: float
    encode_ms: float
    transmit_ms: float
    decode_ms: float
    propagation_ms: float
    chunks: int = DEFAULT_CHUNKS

    @property
    def stage_times(self) -> tuple[float, float, float, float]:
        """The four overlappable stage totals."""
        return (self.render_ms, self.encode_ms, self.transmit_ms, self.decode_ms)

    @property
    def bottleneck_ms(self) -> float:
        """The slowest stage (the paper's 'highest latency portion')."""
        return max(self.stage_times)

    @property
    def latency_ms(self) -> float:
        """End-to-end remote path latency with chunked overlap."""
        return self.propagation_ms + pipelined_latency_ms(self.stage_times, self.chunks)

    @property
    def serial_latency_ms(self) -> float:
        """Latency without any streaming overlap (the naive design)."""
        return self.propagation_ms + sum(self.stage_times)
