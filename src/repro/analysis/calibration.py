"""Paper anchors and acceptance bands for the reproduction.

The paper's headline results are targets for the *shape* of our measured
numbers, not bit-exact values (the substrate is a calibrated analytical
simulator, not the authors' modified ATTILA-sim + physical testbed).  This
module records, for every headline quantity:

* the paper's reported value, and
* the acceptance band the test suite enforces on our measurements.

Bands are deliberately generous where the paper's own accounting is
under-specified (e.g. the exact composition of "normalized performance"),
and tight where the quantity is structural (ordering of designs, balance
ratio convergence, bounds of the eccentricity range).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Anchor", "ANCHORS", "within_band"]


@dataclass(frozen=True)
class Anchor:
    """One paper-reported quantity with its acceptance band.

    Attributes
    ----------
    name:
        Identifier used by tests and EXPERIMENTS.md.
    paper_value:
        The value as reported in the paper.
    low, high:
        Acceptance band for our measured value.
    source:
        Paper location of the claim.
    """

    name: str
    paper_value: float
    low: float
    high: float
    source: str

    def check(self, measured: float) -> bool:
        """True when the measured value lies in the acceptance band."""
        return self.low <= measured <= self.high


ANCHORS: dict[str, Anchor] = {
    anchor.name: anchor
    for anchor in (
        Anchor("qvr_avg_speedup", 3.4, 2.6, 4.3, "Abstract / Sec. 6.1"),
        Anchor("qvr_max_speedup", 6.7, 5.0, 7.6, "Abstract / Sec. 6.1"),
        Anchor("ffr_avg_speedup", 1.75, 1.3, 3.2, "Sec. 6.1"),
        Anchor("ffr_max_speedup", 5.6, 4.0, 6.5, "Sec. 6.1"),
        Anchor("static_avg_speedup", 1.15, 0.8, 1.9, "Sec. 6.1 (Fig. 12)"),
        Anchor("dfr_over_ffr", 1.1, 1.0, 1.35, "Sec. 6.1"),
        Anchor("qvr_fps_over_static", 4.1, 2.6, 5.5, "Sec. 6.1"),
        Anchor("qvr_fps_over_sw", 2.8, 1.5, 3.3, "Sec. 6.1"),
        Anchor("qvr_data_reduction", 0.85, 0.70, 0.97, "Sec. 6.1 (Fig. 13)"),
        Anchor("qvr_resolution_reduction", 0.41, 0.30, 0.90, "Sec. 6.1 (Fig. 13)"),
        # Our balanced controller settles Doom3-L at a smaller fovea than
        # the paper's (whose remote path floor was ~30 ms); the *shape* —
        # Doom3-L achieving the largest data reduction with the smallest
        # resolution reduction — is asserted separately in the benchmark.
        Anchor("doom3l_data_reduction", 0.96, 0.70, 1.0, "Sec. 6.1"),
        Anchor("qvr_energy_reduction", 0.73, 0.45, 0.90, "Sec. 6.3 (Fig. 15)"),
        Anchor("remote_transmit_share", 0.63, 0.45, 0.80, "Sec. 2.2 (Fig. 3b)"),
        Anchor("liwc_area_mm2", 0.66, 0.55, 0.80, "Sec. 4.3"),
        Anchor("liwc_power_mw", 25.0, 18.0, 27.0, "Sec. 4.3"),
        Anchor("uca_area_mm2", 1.6, 1.4, 1.8, "Sec. 4.3"),
        Anchor("uca_power_mw", 94.0, 80.0, 105.0, "Sec. 4.3"),
        Anchor("uca_tile_cycles", 532.0, 532.0, 532.0, "Sec. 4.3"),
    )
}


def within_band(name: str, measured: float) -> bool:
    """Check a measured value against its named anchor band."""
    if name not in ANCHORS:
        raise KeyError(f"unknown anchor {name!r}; known: {sorted(ANCHORS)}")
    return ANCHORS[name].check(measured)
