"""Plain-text table rendering for experiment outputs.

Every benchmark prints its reproduction of a paper table/figure through
these helpers, so the console output reads like the paper's artifacts.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.errors import ConfigurationError

__all__ = ["format_table", "format_series"]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an ASCII table with right-padded columns.

    Floats are shown with two decimals; other values via ``str``.
    """
    rendered_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(label: str, values: Sequence[float], per_line: int = 10) -> str:
    """Render a numeric series compactly (for Fig. 14-style traces)."""
    lines = [f"{label}:"]
    for start in range(0, len(values), per_line):
        chunk = values[start : start + per_line]
        lines.append("  " + " ".join(f"{v:7.2f}" for v in chunk))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
