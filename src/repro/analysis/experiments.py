"""Canned experiments: one function per paper table/figure.

Every function is deterministic for a given seed and returns structured
rows; the benchmark harness wraps these and prints them via
:mod:`repro.analysis.report`.  Frame counts default to the paper's 300
(Fig. 14) but are parameters so tests can run shorter.

Simulation-backed experiments (Fig. 12/13/14, Table 4, Fig. 15) declare
their parameter grids as :class:`~repro.sim.runner.Sweep` values and
consume batch results from a :class:`~repro.sim.runner.BatchEngine`, so
one engine (with its process pool and on-disk cache) can serve every
figure; the remaining experiments are closed-form analytic models with
no simulation runs.  :data:`SIM_EXPERIMENTS` registers the sweep-backed
functions for the ``repro batch`` CLI and the benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, TYPE_CHECKING

if TYPE_CHECKING:  # runtime imports stay lazy at the call sites
    from repro.sim.session import Session

import numpy as np

from repro import constants
from repro.codec.h264 import H264Model
from repro.core.foveation import DisplayGeometry, FoveationModel
from repro.energy.accounting import EnergyAccountant
from repro.energy.mcpat import OverheadReport, estimate_liwc, estimate_uca
from repro.gpu.config import GPUConfig
from repro.gpu.perf_model import GPUPerfModel, RenderWorkload
from repro.network.channel import NetworkChannel
from repro.network.conditions import ALL_CONDITIONS, NetworkConditions, WIFI
from repro.network.profile import PiecewiseProfile, TraceProfile
from repro.sim.metrics import window_stats
from repro.sim.runner import (
    BatchEngine,
    Sweep,
    default_engine,
    speedup_over,
)
from repro.sim.systems import PlatformConfig
from repro.workloads.apps import TABLE3_ORDER
from repro.workloads.scene_model import InteractionModel
from repro.workloads.tethered import TABLE1_ORDER, TETHERED_APPS, TetheredApp

__all__ = [
    "Fig3Row",
    "fig3_motivation",
    "Table1Row",
    "table1_static_characterization",
    "fig5_interaction_latency",
    "Fig6Row",
    "fig6_foveal_sizing",
    "Fig12Row",
    "fig12_performance",
    "Fig13Row",
    "fig13_transmission",
    "Fig14Series",
    "fig14_balancing",
    "Table4Cell",
    "table4_eccentricity",
    "Fig15Cell",
    "fig15_energy",
    "NetDropRow",
    "NETDROP_APPS",
    "default_netdrop_profile",
    "netdrop_adaptation",
    "AdmissionRow",
    "ADMISSION_APPS",
    "ADMISSION_POLICIES",
    "default_admission_trace",
    "admission_scheduling",
    "ChurnRow",
    "CHURN_POLICIES",
    "default_churn_session",
    "session_churn",
    "FailoverRow",
    "FAILOVER_MODES",
    "default_failover_session",
    "failover_recovery",
    "overhead_analysis",
    "GPU_FREQUENCIES_MHZ",
    "SIM_EXPERIMENTS",
]

#: GPU frequency sweep of the sensitivity study (Table 4 / Fig. 15).
GPU_FREQUENCIES_MHZ: tuple[float, ...] = (500.0, 400.0, 300.0)

#: ATW cost on the Gen 9 physical test platform of Sec. 2.3, in ms.
_TETHERED_ATW_MS = 3.0

#: Input-send CPU cost for remote rendering on the test platform, in ms.
_TETHERED_SEND_MS = 1.0


# ---------------------------------------------------------------------------
# Fig. 3: motivation — local-only and remote-only latency breakdowns
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Fig3Row:
    """One app's latency breakdown under a single-site rendering design."""

    app: str
    tracking_ms: float
    sending_ms: float
    rendering_ms: float
    transmit_ms: float
    atw_ms: float
    display_ms: float
    fps: float

    @property
    def total_ms(self) -> float:
        """End-to-end system latency (the stacked bar height)."""
        return (
            self.tracking_ms
            + self.sending_ms
            + self.rendering_ms
            + self.transmit_ms
            + self.atw_ms
            + self.display_ms
        )

    @property
    def transmit_share(self) -> float:
        """Fraction of the total spent in network transmission."""
        return self.transmit_ms / self.total_ms if self.total_ms > 0 else 0.0


def fig3_motivation(
    conditions: NetworkConditions = WIFI, seed: int = 0
) -> tuple[list[Fig3Row], list[Fig3Row]]:
    """Reproduce Fig. 3: (local-only rows, remote-only rows).

    Runs the Table 1 tethered apps on the Sec. 2.3 physical-platform
    model: local-only renders the full frame on the mobile processor;
    remote-only streams full frames from the server.
    """
    codec = H264Model()
    channel = NetworkChannel(conditions, seed=seed)
    local_rows: list[Fig3Row] = []
    remote_rows: list[Fig3Row] = []
    for name in TABLE1_ORDER:
        app = TETHERED_APPS[name]
        local_rows.append(
            Fig3Row(
                app=name,
                tracking_ms=constants.SENSOR_TRANSPORT_MS,
                sending_ms=0.0,
                rendering_ms=app.full_frame_ms,
                transmit_ms=0.0,
                atw_ms=_TETHERED_ATW_MS,
                display_ms=constants.DISPLAY_SCANOUT_MS,
                fps=1000.0 / (app.full_frame_ms + _TETHERED_ATW_MS),
            )
        )
        payload = codec.encode(app.pixels_per_frame, app.content_complexity).payload_bytes
        transmit = channel.expected_transfer_time_ms(payload)
        server_render = app.full_frame_ms / 30.0  # high-end multi-GPU server
        remote_rows.append(
            Fig3Row(
                app=name,
                tracking_ms=constants.SENSOR_TRANSPORT_MS,
                sending_ms=_TETHERED_SEND_MS + channel.one_way_ms,
                rendering_ms=server_render,
                transmit_ms=transmit,
                atw_ms=_TETHERED_ATW_MS + codec.decode_time_ms(app.pixels_per_frame),
                display_ms=constants.DISPLAY_SCANOUT_MS,
                fps=1000.0 / transmit,
            )
        )
    return local_rows, remote_rows


# ---------------------------------------------------------------------------
# Table 1: static collaborative characterisation
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Table1Row:
    """Static-collaboration characterisation of one tethered app."""

    app: str
    resolution: str
    triangles: float
    interactive_objects: str
    f_min: float
    f_max: float
    avg_local_ms: float
    min_local_ms: float
    max_local_ms: float
    back_size_kb: float
    remote_ms: float


def table1_static_characterization(
    n_frames: int = 600, seed: int = 0
) -> list[Table1Row]:
    """Reproduce Table 1 by replaying interaction traces per app."""
    codec = H264Model()
    channel = NetworkChannel(WIFI, seed=seed)
    rows: list[Table1Row] = []
    for index, name in enumerate(TABLE1_ORDER):
        app = TETHERED_APPS[name]
        interaction = InteractionModel(seed=seed + index)
        locals_ms = [
            app.interactive_latency_ms(interaction.step()) for _ in range(n_frames)
        ]
        payload = codec.encode(app.pixels_per_frame, app.content_complexity).payload_bytes
        remote_ms = (
            channel.expected_transfer_time_ms(payload)
            + channel.one_way_ms
            + codec.decode_time_ms(app.pixels_per_frame)
        )
        rows.append(
            Table1Row(
                app=name,
                resolution=f"{app.width_px}x{app.height_px}",
                triangles=app.triangles,
                interactive_objects=app.interactive_objects,
                f_min=app.f_range[0],
                f_max=app.f_range[1],
                avg_local_ms=float(np.mean(locals_ms)),
                min_local_ms=float(np.min(locals_ms)),
                max_local_ms=float(np.max(locals_ms)),
                back_size_kb=payload / 1e3,
                remote_ms=remote_ms,
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Fig. 5: interaction-dependent latency of a single object (Nature tree)
# ---------------------------------------------------------------------------


def fig5_interaction_latency(
    app_name: str = "Nature", closeness_values: tuple[float, ...] = (0.3, 0.45, 1.0)
) -> list[tuple[float, float]]:
    """Reproduce Fig. 5: (closeness, interactive render latency) points.

    The paper's three snapshots of the Nature tree land at 12, 15 and
    26 ms; closeness sweeps reproduce that span through the LOD model.
    """
    app = TETHERED_APPS[app_name] if app_name in TETHERED_APPS else _require_tethered(app_name)
    return [(c, app.interactive_latency_ms(c)) for c in closeness_values]


def _require_tethered(name: str) -> TetheredApp:
    raise KeyError(f"unknown tethered app {name!r}; known: {sorted(TETHERED_APPS)}")


# ---------------------------------------------------------------------------
# Fig. 6: foveal rendering latency and frame size vs eccentricity
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Fig6Row:
    """One (scene, eccentricity) sample of the foveal-sizing study."""

    scene: str
    e1_deg: float
    local_latency_ms: float
    relative_frame_size: float


#: Synthetic Foveated3D-like scene configurations of Fig. 6.
_FIG6_SCENES: tuple[tuple[str, float, float, float, float], ...] = (
    # (label, objects, triangles/object, overdraw, fragment cycles)
    ("400 objects 4k triangles/object", 400, 4000, 1.6, 400.0),
    ("800 objects 4k triangles/object", 800, 4000, 2.2, 450.0),
    ("400 objects 8k triangles/object", 400, 8000, 1.9, 900.0),
)


def fig6_foveal_sizing(
    e1_values_deg: tuple[float, ...] = (5, 10, 15, 20, 25, 30, 35),
    gpu: GPUConfig | None = None,
) -> list[Fig6Row]:
    """Reproduce Fig. 6 on synthetic Foveated3D-style scenes."""
    gpu_cfg = gpu if gpu is not None else GPUConfig()
    perf = GPUPerfModel(gpu_cfg)
    display = DisplayGeometry(1920, 2160)
    foveation = FoveationModel(display)
    rows: list[Fig6Row] = []
    pixels = display.total_pixels * constants.EYES
    for label, objects, tris_per_obj, overdraw, cycles in _FIG6_SCENES:
        full = RenderWorkload(
            vertices=objects * tris_per_obj,
            fragments=pixels * overdraw,
            fragment_cycles=cycles,
            draw_batches=objects,
        )
        for e1 in e1_values_deg:
            plan = foveation.plan(float(e1))
            area = plan.fovea_fraction
            fovea_workload = full.scaled(
                fragment_scale=area, vertex_scale=0.12 + 0.88 * area
            )
            rows.append(
                Fig6Row(
                    scene=label,
                    e1_deg=float(e1),
                    local_latency_ms=perf.render_time_ms(fovea_workload),
                    relative_frame_size=plan.effective_pixels / plan.native_pixels,
                )
            )
    return rows


# ---------------------------------------------------------------------------
# Fig. 12: overall performance of the design spectrum
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Fig12Row:
    """Normalized performance of every design on one app."""

    app: str
    static_speedup: float
    ffr_speedup: float
    dfr_speedup: float
    qvr_speedup: float
    sw_fps: float
    qvr_fps: float
    static_fps: float


#: The design spectrum compared in Fig. 12.
_FIG12_SYSTEMS: tuple[str, ...] = ("local", "static", "ffr", "dfr", "sw-qvr", "qvr")


def fig12_performance(
    n_frames: int = 300,
    seed: int = 0,
    platform: PlatformConfig | None = None,
    engine: BatchEngine | None = None,
) -> list[Fig12Row]:
    """Reproduce Fig. 12 under the default hardware and network."""
    platform = platform if platform is not None else PlatformConfig()
    sweep = Sweep(
        systems=_FIG12_SYSTEMS,
        apps=TABLE3_ORDER,
        platforms=(platform,),
        seeds=(seed,),
        n_frames=n_frames,
    )
    batch = (engine if engine is not None else default_engine()).run_sweep(sweep)
    rows: list[Fig12Row] = []
    for app in TABLE3_ORDER:
        results = {
            system: batch[sweep.spec(system, app, platform, seed)]
            for system in _FIG12_SYSTEMS
        }
        rows.append(
            Fig12Row(
                app=app,
                static_speedup=speedup_over(results, "static"),
                ffr_speedup=speedup_over(results, "ffr"),
                dfr_speedup=speedup_over(results, "dfr"),
                qvr_speedup=speedup_over(results, "qvr"),
                sw_fps=results["sw-qvr"].measured_fps,
                qvr_fps=results["qvr"].measured_fps,
                static_fps=results["static"].measured_fps,
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Fig. 13: transmitted data and resolution reduction
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Fig13Row:
    """Transmission metrics of one app, normalised to remote-only."""

    app: str
    static_normalized: float
    ffr_normalized: float
    qvr_normalized: float
    resolution_reduction: float


#: The designs whose downlink traffic Fig. 13 compares.
_FIG13_SYSTEMS: tuple[str, ...] = ("remote", "static", "ffr", "qvr")


def fig13_transmission(
    n_frames: int = 300,
    seed: int = 0,
    platform: PlatformConfig | None = None,
    engine: BatchEngine | None = None,
) -> list[Fig13Row]:
    """Reproduce Fig. 13 under the default hardware and network."""
    platform = platform if platform is not None else PlatformConfig()
    sweep = Sweep(
        systems=_FIG13_SYSTEMS,
        apps=TABLE3_ORDER,
        platforms=(platform,),
        seeds=(seed,),
        n_frames=n_frames,
    )
    batch = (engine if engine is not None else default_engine()).run_sweep(sweep)
    rows: list[Fig13Row] = []
    for app in TABLE3_ORDER:
        results = {
            system: batch[sweep.spec(system, app, platform, seed)]
            for system in _FIG13_SYSTEMS
        }
        reference = results["remote"].mean_transmitted_bytes
        rows.append(
            Fig13Row(
                app=app,
                static_normalized=results["static"].mean_transmitted_bytes / reference,
                ffr_normalized=results["ffr"].mean_transmitted_bytes / reference,
                qvr_normalized=results["qvr"].mean_transmitted_bytes / reference,
                resolution_reduction=results["qvr"].mean_resolution_reduction,
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Fig. 14: latency-ratio balancing and FPS over 300 frames
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Fig14Series:
    """Per-frame balance and FPS trace of one app under Q-VR."""

    app: str
    latency_ratios: list[float] = field(default_factory=list)
    fps: list[float] = field(default_factory=list)
    e1_deg: list[float] = field(default_factory=list)


#: The five high-resolution titles plotted in Fig. 14.
FIG14_APPS: tuple[str, ...] = ("Doom3-H", "HL2-H", "GRID", "UT3", "Wolf")


def fig14_balancing(
    n_frames: int = 300,
    seed: int = 0,
    platform: PlatformConfig | None = None,
    engine: BatchEngine | None = None,
) -> list[Fig14Series]:
    """Reproduce Fig. 14: Q-VR initialised at e1 = 5 degrees."""
    platform = platform if platform is not None else PlatformConfig()
    sweep = Sweep(
        systems=("qvr",),
        apps=FIG14_APPS,
        platforms=(platform,),
        seeds=(seed,),
        n_frames=n_frames,
        warmup_frames=0,
    )
    batch = (engine if engine is not None else default_engine()).run_sweep(sweep)
    series: list[Fig14Series] = []
    for app in FIG14_APPS:
        result = batch[sweep.spec("qvr", app, platform, seed)]
        fps = [
            min(
                1000.0 / r.gpu_busy_ms if r.gpu_busy_ms > 0 else float("inf"),
                1000.0 / r.net_busy_ms if r.net_busy_ms > 0 else float("inf"),
            )
            for r in result.records
        ]
        series.append(
            Fig14Series(
                app=app,
                latency_ratios=result.latency_ratios(),
                fps=fps,
                e1_deg=[r.e1_deg for r in result.records],
            )
        )
    return series


# ---------------------------------------------------------------------------
# Table 4: best eccentricity across hardware/network configurations
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Table4Cell:
    """Steady-state eccentricity for one (frequency, network, app) cell."""

    frequency_mhz: float
    network: str
    app: str
    mean_e1_deg: float
    meets_fps: bool


def _condition_platforms(
    frequencies: tuple[float, ...], networks: tuple[NetworkConditions, ...]
) -> list[tuple[float, NetworkConditions, PlatformConfig]]:
    """The (frequency, network, platform) grid behind Table 4 / Fig. 15."""
    return [
        (freq, network, PlatformConfig(network=network).with_gpu_frequency(freq))
        for freq in frequencies
        for network in networks
    ]


def table4_eccentricity(
    n_frames: int = 240,
    seed: int = 0,
    frequencies: tuple[float, ...] = GPU_FREQUENCIES_MHZ,
    networks: tuple[NetworkConditions, ...] = ALL_CONDITIONS,
    apps: tuple[str, ...] = TABLE3_ORDER,
    engine: BatchEngine | None = None,
) -> list[Table4Cell]:
    """Reproduce Table 4 (and provide the runs behind Fig. 15)."""
    grid = _condition_platforms(frequencies, networks)
    sweep = Sweep(
        systems=("qvr",),
        apps=apps,
        platforms=tuple(platform for _, _, platform in grid),
        seeds=(seed,),
        n_frames=n_frames,
    )
    batch = (engine if engine is not None else default_engine()).run_sweep(sweep)
    cells: list[Table4Cell] = []
    for freq, network, platform in grid:
        for app in apps:
            result = batch[sweep.spec("qvr", app, platform, seed)]
            cells.append(
                Table4Cell(
                    frequency_mhz=freq,
                    network=network.name,
                    app=app,
                    mean_e1_deg=result.mean_e1_deg,
                    meets_fps=result.meets_target_fps,
                )
            )
    return cells


# ---------------------------------------------------------------------------
# Fig. 15: normalized system energy
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Fig15Cell:
    """Normalized Q-VR energy for one (frequency, network, app) cell."""

    frequency_mhz: float
    network: str
    app: str
    normalized_energy: float


def fig15_energy(
    n_frames: int = 240,
    seed: int = 0,
    frequencies: tuple[float, ...] = GPU_FREQUENCIES_MHZ,
    networks: tuple[NetworkConditions, ...] = ALL_CONDITIONS,
    apps: tuple[str, ...] = TABLE3_ORDER,
    engine: BatchEngine | None = None,
) -> list[Fig15Cell]:
    """Reproduce Fig. 15: Q-VR energy normalised to local rendering.

    Two sweeps share one batch: local-rendering baselines per GPU
    frequency, and the Q-VR cells across every (frequency, network)
    condition — the latter are spec-identical to Table 4's runs, so a
    caching engine computes them only once across both experiments.
    """
    accountant = EnergyAccountant()
    baseline_sweep = Sweep(
        systems=("local",),
        apps=apps,
        platforms=tuple(
            PlatformConfig().with_gpu_frequency(freq) for freq in frequencies
        ),
        seeds=(seed,),
        n_frames=n_frames,
    )
    grid = _condition_platforms(frequencies, networks)
    qvr_sweep = Sweep(
        systems=("qvr",),
        apps=apps,
        platforms=tuple(platform for _, _, platform in grid),
        seeds=(seed,),
        n_frames=n_frames,
    )
    chosen = engine if engine is not None else default_engine()
    batch = chosen.run_specs(baseline_sweep.specs() + qvr_sweep.specs())
    cells: list[Fig15Cell] = []
    for freq, network, platform in grid:
        base_platform = PlatformConfig().with_gpu_frequency(freq)
        for app in apps:
            result = batch[qvr_sweep.spec("qvr", app, platform, seed)]
            baseline = batch[baseline_sweep.spec("local", app, base_platform, seed)]
            cells.append(
                Fig15Cell(
                    frequency_mhz=freq,
                    network=network.name,
                    app=app,
                    normalized_energy=accountant.normalized_energy(
                        result,
                        baseline,
                        gpu_frequency_mhz=freq,
                        network_name=network.name,
                        has_liwc=True,
                        has_uca=True,
                    ),
                )
            )
    return cells


# ---------------------------------------------------------------------------
# Dynamic environments: adaptation under a mid-run bandwidth drop
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class NetDropRow:
    """Q-VR steady-state behaviour inside one window of a drop profile.

    The paper's prediction for a degraded link (Table 4 reasoning applied
    mid-run): eccentricity grows (more rendering moves onto the local
    GPU) and the remote share — downlink bytes per frame — shrinks, then
    both recover when the bandwidth returns.
    """

    app: str
    window: str
    frames: int
    mean_e1_deg: float
    measured_fps: float
    mean_kb_per_frame: float


#: Titles of the bandwidth-drop adaptation study (one heavy, one light).
NETDROP_APPS: tuple[str, ...] = ("Doom3-H", "GRID")

#: Window labels when the profile is the canonical before/drop/after shape.
_NETDROP_WINDOWS = ("before", "drop", "after")


def default_netdrop_profile(n_frames: int) -> PiecewiseProfile:
    """The canonical drop profile scaled to a run of ``n_frames``.

    The window is placed in wall-clock terms assuming the 90 Hz target
    frame period: nominal Wi-Fi for the first ~30% of the run, a deep
    (x0.15) bandwidth drop for the middle ~40%, then recovery.
    """
    frame_ms = 1000.0 / constants.TARGET_FPS
    return PiecewiseProfile.bandwidth_drop(
        WIFI,
        start_ms=0.3 * n_frames * frame_ms,
        duration_ms=0.4 * n_frames * frame_ms,
        factor=0.15,
        label="netdrop",
    )


def netdrop_adaptation(
    n_frames: int = 240,
    seed: int = 0,
    apps: tuple[str, ...] = NETDROP_APPS,
    profile: PiecewiseProfile | None = None,
    engine: BatchEngine | None = None,
) -> list[NetDropRow]:
    """Q-VR FPS/eccentricity adaptation under a bandwidth-drop trace.

    Runs Q-VR under a piecewise drop profile and reports per-window
    steady-state metrics, classifying each frame by its display instant
    against the profile's segment boundaries.
    """
    profile = profile if profile is not None else default_netdrop_profile(n_frames)
    boundaries = profile.boundaries_ms
    names = (
        _NETDROP_WINDOWS
        if len(profile.segments) == 3
        else tuple(f"seg{i}" for i in range(len(profile.segments)))
    )
    platform = PlatformConfig(network=profile)
    sweep = Sweep(
        systems=("qvr",),
        apps=apps,
        platforms=(platform,),
        seeds=(seed,),
        n_frames=n_frames,
        warmup_frames=0,
    )
    batch = (engine if engine is not None else default_engine()).run_sweep(sweep)
    rows: list[NetDropRow] = []
    for app in apps:
        result = batch[sweep.spec("qvr", app, platform, seed)]
        windows: list[list] = [[] for _ in names]
        for record in result.records:
            index = sum(1 for b in boundaries if record.display_ms >= b)
            windows[index].append(record)
        for name, records in zip(names, windows):
            if len(records) >= 2:
                span_ms = records[-1].display_ms - records[0].display_ms
                fps = 1000.0 * (len(records) - 1) / span_ms if span_ms > 0 else float("inf")
            else:
                fps = float("nan")
            rows.append(
                NetDropRow(
                    app=app,
                    window=name,
                    frames=len(records),
                    mean_e1_deg=(
                        float(np.mean([r.e1_deg for r in records]))
                        if records
                        else float("nan")
                    ),
                    measured_fps=fps,
                    mean_kb_per_frame=(
                        float(np.mean([r.transmitted_bytes for r in records])) / 1e3
                        if records
                        else float("nan")
                    ),
                )
            )
    return rows


# ---------------------------------------------------------------------------
# Admission & scheduling: policy comparison on a shared session
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AdmissionRow:
    """One client of a shared session under one scheduling policy.

    The testable prediction (Firefly/Coterie reasoning applied to the
    Q-VR server): under ``deadline`` scheduling the heavy client's tail
    frame rate inside a trace-driven bandwidth drop improves over
    ``fair-share`` — the server boosts the client closest to missing its
    frame deadline — while the session's mean FPS stays within noise
    (shares are conserved, not conjured).
    """

    policy: str
    app: str
    mean_fps: float
    drop_fps: float
    drop_p99_fps: float
    mean_e1_deg: float
    mean_kb_per_frame: float


#: The admission study roster: one heavy title, one light title, sharing
#: a server and one trace-driven link.
ADMISSION_APPS: tuple[str, ...] = ("GRID", "Doom3-L")

#: Scheduling policies the admission experiment compares by default.
#: ``weighted`` is omitted: on a roster sharing one link every client has
#: the same instantaneous bandwidth, so its weights provably collapse to
#: the uniform fair share — pass ``policies=(..., "weighted")`` when the
#: roster mixes links and the comparison is informative.
ADMISSION_POLICIES: tuple[str, ...] = ("fair-share", "deadline")


def default_admission_trace(n_frames: int) -> "TraceProfile":
    """A trace-driven bandwidth drop scaled to a run of ``n_frames``.

    Step-trace replay semantics (the format of 4G/5G drive traces):
    nominal Wi-Fi, a deep drop to 30 Mbps for the middle ~40% of the
    nominal session, then recovery.
    """
    frame_ms = 1000.0 / constants.TARGET_FPS
    return TraceProfile(
        base=WIFI,
        times_ms=(0.0, 0.3 * n_frames * frame_ms, 0.7 * n_frames * frame_ms),
        throughput_mbps=(WIFI.throughput_mbps, 30.0, WIFI.throughput_mbps),
        label="admission-drop",
    )


def _window_fps(records, start_ms: float, end_ms: float) -> tuple[float, float]:
    """(mean FPS, p99 tail FPS) over frames displayed inside a window."""
    stats = window_stats(records, start_ms, end_ms)
    return stats.mean_fps, stats.p99_fps


def admission_scheduling(
    n_frames: int = 240,
    seed: int = 0,
    apps: tuple[str, ...] = ADMISSION_APPS,
    policies: tuple[str, ...] = ADMISSION_POLICIES,
    trace: TraceProfile | None = None,
    engine: BatchEngine | None = None,
) -> list[AdmissionRow]:
    """Compare server scheduling policies on one heterogeneous session.

    Runs the same roster (one client per entry of ``apps``, all sharing
    the server and one trace-driven link) under each policy, and reports
    per-client whole-run and drop-window frame rates.  All sessions'
    specs execute through one batch (so a parallel or caching engine
    accelerates the grid), and fair-share expands to the exact legacy
    specs — its rows double as the regression baseline.
    """
    from repro.sim.multiuser import ClientSpec, MultiUserScenario

    trace = trace if trace is not None else default_admission_trace(n_frames)
    if len(trace.times_ms) != 3:
        raise ValueError(
            "admission experiment needs a before/drop/after step trace "
            f"(3 samples), got {len(trace.times_ms)}"
        )
    drop_start, drop_end = trace.times_ms[1], trace.times_ms[2]
    platform = PlatformConfig(network=trace)
    plans = {
        policy: MultiUserScenario.heterogeneous(
            tuple(ClientSpec(app) for app in apps),
            platform=platform,
            policy=policy,
        ).plan(n_frames=n_frames, seed=seed)
        for policy in policies
    }
    chosen = engine if engine is not None else default_engine()
    batch = chosen.run_specs(
        [spec for plan in plans.values() for spec in plan.specs]
    )
    rows: list[AdmissionRow] = []
    for policy, plan in plans.items():
        for spec in plan.specs:
            result = batch[spec]
            drop_fps, drop_p99 = _window_fps(result.records, drop_start, drop_end)
            rows.append(
                AdmissionRow(
                    policy=policy,
                    app=spec.app,
                    mean_fps=result.measured_fps,
                    drop_fps=drop_fps,
                    drop_p99_fps=drop_p99,
                    mean_e1_deg=result.mean_e1_deg,
                    mean_kb_per_frame=result.mean_transmitted_bytes / 1e3,
                )
            )
    return rows


# ---------------------------------------------------------------------------
# Session churn: online re-admission and late-start queue promotion
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ChurnRow:
    """One client of an event-driven session under one scheduling policy.

    The testable prediction (the collaborative-VR survey literature's
    churn workload applied to the Q-VR server): a client that arrives
    mid-session while the server is full **queues, then genuinely starts
    late** — promoted into the capacity a departing client frees, with a
    nonzero ``start_ms`` and nonzero rendered frames — and under
    ``deadline`` scheduling the re-admission does less tail-FPS damage
    to the remaining incumbent inside the contention/drop window than
    under ``fair-share`` (the server boosts the client closest to
    missing its frame deadline instead of splitting evenly).
    """

    policy: str
    client: int
    app: str
    role: str
    joined_ms: float
    start_ms: float
    frames: int
    mean_fps: float
    window_p99_fps: float


#: Scheduling policies the churn experiment compares by default.
CHURN_POLICIES: tuple[str, ...] = ("fair-share", "deadline")

#: Session-relative instants of the canonical churn script: a third
#: client joins (and queues) at 20% of the nominal session, the light
#: incumbent leaves at 40% (freeing the capacity the joiner takes), and
#: the trace-driven link drop spans [30%, 70%).
_CHURN_JOIN_FRACTION = 0.2
_CHURN_LEAVE_FRACTION = 0.4


def default_churn_session(
    n_frames: int,
    policy: str = "fair-share",
    trace: TraceProfile | None = None,
) -> "Session":
    """The canonical churn session scaled to a run of ``n_frames``.

    Two incumbents (heavy GRID + light Doom3-L) fill a two-client-
    equivalent server in queue mode; a third client joins mid-session
    and must wait until the light incumbent departs.
    """
    from repro.sim.multiuser import ClientSpec
    from repro.sim.server import RenderServer
    from repro.sim.session import Join, Leave, Session

    trace = trace if trace is not None else default_admission_trace(n_frames)
    duration_ms = n_frames * constants.FRAME_BUDGET_MS
    return Session(
        clients=(ClientSpec("GRID"), ClientSpec("Doom3-L")),
        events=(
            Join(_CHURN_JOIN_FRACTION * duration_ms, ClientSpec("Doom3-L")),
            Leave(_CHURN_LEAVE_FRACTION * duration_ms, client=1),
        ),
        platform=PlatformConfig(network=trace),
        policy=policy,
        server=RenderServer(capacity_clients=2.0, overflow="queue"),
    )


def session_churn(
    n_frames: int = 240,
    seed: int = 0,
    policies: tuple[str, ...] = CHURN_POLICIES,
    trace: TraceProfile | None = None,
    engine: BatchEngine | None = None,
) -> list[ChurnRow]:
    """Compare scheduling policies on one churning session.

    Plans the same event timeline (join → queue → promote-on-leave)
    under each policy, executes every timeline's specs through one batch
    (so parallel/caching engines accelerate the grid), and reports each
    client's whole-run FPS plus its tail FPS inside the churn window —
    from the joiner's promotion instant to the end of the link drop,
    when the promoted client and the surviving incumbent contend on the
    degraded link.
    """
    from repro.sim.session import SessionResult

    trace = trace if trace is not None else default_admission_trace(n_frames)
    if len(trace.times_ms) != 3:
        raise ValueError(
            "churn experiment needs a before/drop/after step trace "
            f"(3 samples), got {len(trace.times_ms)}"
        )
    duration_ms = n_frames * constants.FRAME_BUDGET_MS
    window_start = _CHURN_LEAVE_FRACTION * duration_ms
    window_end = trace.times_ms[2]
    timelines = {
        policy: default_churn_session(n_frames, policy, trace).timeline(
            n_frames=n_frames, seed=seed
        )
        for policy in policies
    }
    chosen = engine if engine is not None else default_engine()
    batch = chosen.run_specs(
        [spec for tl in timelines.values() for spec in tl.specs]
    )
    roles = {0: "incumbent", 1: "leaver", 2: "joiner"}
    rows: list[ChurnRow] = []
    for policy, timeline in timelines.items():
        result = SessionResult(
            timeline=timeline,
            per_client=tuple(batch[spec] for spec in timeline.specs),
        )
        for client in timeline.clients:
            run = result.result_for(client.index)
            if run is None or client.start_ms is None:
                continue
            window = result.client_window(client.index, window_start, window_end)
            rows.append(
                ChurnRow(
                    policy=policy,
                    client=client.index,
                    app=client.spec.app,
                    role=roles.get(client.index, "client"),
                    joined_ms=client.joined_ms,
                    start_ms=client.start_ms,
                    frames=len(run.records),
                    mean_fps=run.measured_fps,
                    window_p99_fps=(
                        window.p99_fps if window is not None else float("nan")
                    ),
                )
            )
    return rows


# ---------------------------------------------------------------------------
# Failover: server failure, migration vs naive re-queue on a render fleet
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FailoverRow:
    """One client of a fleet session under one failover mode.

    The testable prediction (elastic-infrastructure reasoning applied to
    the Q-VR server tier): when a fleet server **fails mid-session**,
    re-seating the displaced client on a surviving server via
    least-loaded migration — even paying the state-transfer penalty —
    keeps its tail frame rate inside the failure window far above the
    naive baseline that re-queues it FCFS behind the incumbents (where
    it renders at the starvation share until a later re-planning event,
    which never comes).
    """

    mode: str
    client: int
    app: str
    role: str
    servers: str
    migrations: int
    mean_fps: float
    window_p99_fps: float


#: Failover modes compared by default: least-loaded migration vs the
#: naive re-queue baseline (same fleet, migration disabled).
FAILOVER_MODES: tuple[str, ...] = ("least-loaded", "requeue")

#: Session-relative instants of the canonical failover script: server
#: ``b`` fails at 40% of the nominal session; the drop window over which
#: tails are compared spans the following 40%.
_FAILOVER_FAIL_FRACTION = 0.4
_FAILOVER_WINDOW_FRACTION = 0.4


def default_failover_session(n_frames: int, mode: str = "least-loaded"):
    """The canonical failover session scaled to a run of ``n_frames``.

    A light incumbent (Doom3-L) and a heavy client (GRID) spread across
    a two-server fleet (a: 2.0, b: 1.0 client-equivalents) under
    least-loaded placement, so the heavy client lands alone on ``b`` —
    which fails mid-session.  ``mode`` selects what happens next:
    ``"least-loaded"`` migrates the displaced client onto ``a``;
    ``"requeue"`` parks it at the starvation share behind the incumbent.
    """
    from repro.sim.fleet import RenderFleet, ServerFail
    from repro.sim.multiuser import ClientSpec
    from repro.sim.session import Session

    if mode not in FAILOVER_MODES:
        raise ValueError(
            f"unknown failover mode {mode!r}; known: {FAILOVER_MODES}"
        )
    fleet = RenderFleet.from_capacities(
        {"a": 2.0, "b": 1.0},
        placement="least-loaded",
        migration="migrate" if mode == "least-loaded" else "requeue",
    )
    duration_ms = n_frames * constants.FRAME_BUDGET_MS
    return Session(
        clients=(ClientSpec("Doom3-L"), ClientSpec("GRID")),
        events=(ServerFail(_FAILOVER_FAIL_FRACTION * duration_ms, "b"),),
        fleet=fleet,
    )


def failover_recovery(
    n_frames: int = 240,
    seed: int = 0,
    modes: tuple[str, ...] = FAILOVER_MODES,
    engine: BatchEngine | None = None,
) -> list[FailoverRow]:
    """Compare failover modes on one fleet session with a mid-run failure.

    Plans the same capacity timeline (``ServerFail`` on the heavy
    client's server) under each mode, executes every timeline's specs
    through one batch, and reports each client's whole-run FPS plus its
    p99 tail inside the failure window — displaced clients are the rows
    whose placement history moved (or parked).  Windows too starved to
    measure a tail report 0 (the re-queue baseline's signature).
    """
    from repro.sim.session import SessionResult

    duration_ms = n_frames * constants.FRAME_BUDGET_MS
    window_start = _FAILOVER_FAIL_FRACTION * duration_ms
    window_end = window_start + _FAILOVER_WINDOW_FRACTION * duration_ms
    timelines = {
        mode: default_failover_session(n_frames, mode).timeline(
            n_frames=n_frames, seed=seed
        )
        for mode in modes
    }
    chosen = engine if engine is not None else default_engine()
    batch = chosen.run_specs(
        [spec for tl in timelines.values() for spec in tl.specs]
    )
    rows: list[FailoverRow] = []
    for mode, timeline in timelines.items():
        result = SessionResult(
            timeline=timeline,
            per_client=tuple(batch[spec] for spec in timeline.specs),
        )
        for client in timeline.clients:
            run = result.result_for(client.index)
            if run is None:
                continue
            window = result.client_window(client.index, window_start, window_end)
            p99 = window.p99_fps if window is not None else float("nan")
            rows.append(
                FailoverRow(
                    mode=mode,
                    client=client.index,
                    app=client.spec.app,
                    role="displaced" if len(client.servers) > 1 else "incumbent",
                    servers="->".join(
                        name if name is not None else "~"
                        for _, name in client.servers
                    ),
                    migrations=client.migrations,
                    mean_fps=run.measured_fps,
                    window_p99_fps=0.0 if np.isnan(p99) else p99,
                )
            )
    return rows


# ---------------------------------------------------------------------------
# Sec. 4.3: design overhead analysis
# ---------------------------------------------------------------------------


def overhead_analysis() -> dict[str, OverheadReport]:
    """Reproduce the Sec. 4.3 McPAT overhead numbers."""
    return {"LIWC": estimate_liwc(), "UCA": estimate_uca()}


# ---------------------------------------------------------------------------
# Registry of simulation-backed experiments (the batch-engine consumers)
# ---------------------------------------------------------------------------

#: Figure/table functions that execute ``RunSpec`` sweeps.  Each entry is
#: callable as ``func(n_frames=..., seed=..., engine=...)``; the remaining
#: experiments (Fig. 3/5/6, Table 1, overheads) are analytic and run no
#: simulations.
SIM_EXPERIMENTS: dict[str, Callable[..., object]] = {
    "fig12": fig12_performance,
    "fig13": fig13_transmission,
    "fig14": fig14_balancing,
    "table4": table4_eccentricity,
    "fig15": fig15_energy,
    "netdrop": netdrop_adaptation,
    "admission": admission_scheduling,
    "churn": session_churn,
    "failover": failover_recovery,
}
