"""Pipeline simulation: DES scheduler, system designs, metrics, runner."""

from repro.sim.metrics import FrameRecord, SimulationResult, paper_fps
from repro.sim.runner import RunSpec, run, run_comparison, speedup_over
from repro.sim.scheduler import Task, TaskGraphScheduler
from repro.sim.systems import (
    CollaborativeFoveatedSystem,
    LocalOnlySystem,
    PlatformConfig,
    RemoteOnlySystem,
    SYSTEM_NAMES,
    StaticCollaborativeSystem,
    VRSystem,
    make_system,
)

__all__ = [
    "FrameRecord",
    "SimulationResult",
    "paper_fps",
    "RunSpec",
    "run",
    "run_comparison",
    "speedup_over",
    "Task",
    "TaskGraphScheduler",
    "PlatformConfig",
    "VRSystem",
    "LocalOnlySystem",
    "RemoteOnlySystem",
    "StaticCollaborativeSystem",
    "CollaborativeFoveatedSystem",
    "SYSTEM_NAMES",
    "make_system",
]
