"""Pipeline simulation: DES scheduler, system designs, metrics, batch runner."""

from repro.sim.metrics import FrameRecord, SimulationResult, paper_fps
from repro.sim.multiuser import (
    ClientSpec,
    MultiUserResult,
    MultiUserScenario,
    simulate_shared_infrastructure,
)
from repro.sim.runner import (
    BatchEngine,
    BatchStats,
    ResultCache,
    RunSpec,
    Sweep,
    run,
    run_batch,
    run_comparison,
    spec_key,
    speedup_over,
)
from repro.sim.scheduler import Task, TaskGraphScheduler
from repro.sim.systems import (
    CollaborativeFoveatedSystem,
    LocalOnlySystem,
    PlatformConfig,
    RemoteOnlySystem,
    SYSTEM_NAMES,
    StaticCollaborativeSystem,
    VRSystem,
    make_system,
)

__all__ = [
    "FrameRecord",
    "SimulationResult",
    "paper_fps",
    "RunSpec",
    "Sweep",
    "BatchEngine",
    "BatchStats",
    "ResultCache",
    "run",
    "run_batch",
    "run_comparison",
    "spec_key",
    "speedup_over",
    "Task",
    "TaskGraphScheduler",
    "PlatformConfig",
    "VRSystem",
    "LocalOnlySystem",
    "RemoteOnlySystem",
    "StaticCollaborativeSystem",
    "CollaborativeFoveatedSystem",
    "SYSTEM_NAMES",
    "make_system",
    "ClientSpec",
    "MultiUserScenario",
    "MultiUserResult",
    "simulate_shared_infrastructure",
]
