"""Event-driven collaborative sessions: join, leave, re-admit, promote.

The paper's planet-scale framing ("users around the world, regardless of
their hardware and network conditions") implies sessions that *churn*:
clients join mid-session, leave early, and roam between links.  Surveys
of synchronous VR/AR collaboration treat exactly this dynamism as the
defining workload of multi-party systems, yet a frozen
:class:`~repro.sim.multiuser.SessionPlan` can only describe a roster
decided once at admission time.

This module is the dynamic surface.  A :class:`Session` composes
:class:`~repro.sim.multiuser.ClientSpec` values with a typed event
timeline —

* :class:`Join` — a new client arrives mid-session;
* :class:`Leave` — a client departs (freeing its server capacity);
* :class:`ProfileSwitch` — a client's link changes (Wi-Fi to 4G roam);
* the :class:`CapacityEvent` family (:mod:`repro.sim.fleet`) —
  ``ServerUp`` / ``ServerDown`` / ``ServerFail`` grow and shrink a
  *fleet* of named rendering servers mid-session;

and :meth:`Session.timeline` re-plans the session at every event: the
:class:`~repro.sim.server.RenderServer` re-runs admission over the
present roster (incumbents keep their slots — re-admission never
evicts), **promotes queued clients into freed capacity** so they
genuinely start late instead of sitting out, and re-allocates every
policy's share schedules over each epoch.  The result is one frozen
:class:`~repro.sim.runner.RunSpec` per serviced client — carrying its
session start offset and the concatenated per-epoch ``(start_ms,
share)`` schedules in client-local time — which the ordinary
:class:`~repro.sim.runner.BatchEngine` executes deterministically, in
parallel, and cacheably like any other spec.

A session without events is planned exactly as
:class:`~repro.sim.multiuser.MultiUserScenario` always planned it (that
class is now a thin shim over a single-epoch session): same specs, same
cache keys, bit-identical results.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, ClassVar, Iterable

import numpy as np

from repro import constants
from repro.errors import ConfigurationError
from repro.obs import trace as obs_trace
from repro.network.conditions import NetworkConditions
from repro.network.profile import (
    AllocatedProfile,
    NetworkProfile,
    SwitchedProfile,
    as_profile,
)
from repro.sim.metrics import (
    ServerWindow,
    SimulationResult,
    StreamSummary,
    WindowStats,
    aggregate_server_stats,
    window_stats,
)
from repro.sim.runner import (
    BatchEngine,
    CLIENT_SEED_STRIDE,
    RunSpec,
    default_engine,
    effective_warmup,
    spec_key,
)
from repro.sim.server import (
    AdmissionDecision,
    ClientDemand,
    POLICY_NAMES,
    RenderServer,
)
from repro.sim.systems import PlatformConfig

if TYPE_CHECKING:  # imported lazily at runtime (fleet imports session)
    from repro.sim.fleet import RenderFleet

__all__ = [
    "SessionEvent",
    "CapacityEvent",
    "Join",
    "Leave",
    "ProfileSwitch",
    "Session",
    "Epoch",
    "ClientTimeline",
    "SessionTimeline",
    "SessionResult",
    "events_from_motion",
    "simulate_session",
]

#: Planning horizon slack over the nominal 90 Hz session duration, so
#: allocation schedules keep re-evaluating even when degraded clients run
#: well behind the target frame rate.
_HORIZON_SLACK = 3.0


def _client_spec(value):
    """Promote a bare app name to a ClientSpec (late import: shim cycle)."""
    from repro.sim.multiuser import ClientSpec

    return value if isinstance(value, ClientSpec) else ClientSpec(app=value)


# ---------------------------------------------------------------------------
# The event vocabulary
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SessionEvent:
    """Something that happens to the session at instant ``t_ms``.

    Events must fall strictly inside the session: after its start (a
    client present at t = 0 is simply an initial client) and before its
    nominal end (checked against the frame count when the timeline is
    planned).  ``Leave`` and ``ProfileSwitch`` name clients by *session
    index*: initial clients count 0..n-1 in declaration order, and every
    ``Join`` appends the next index in event order.

    Events sharing one timestamp apply in a **deterministic total
    order**, not declaration order: first the events that free resources
    (``Leave``, ``ServerDown``, ``ServerFail`` — rank 0), then link
    switches (``ProfileSwitch`` — rank 1), then the events that claim
    resources (``Join``, ``ServerUp`` — rank 2); declaration order only
    breaks ties *within* a rank.  Capacity freed at an instant is thus
    always visible to arrivals at the same instant, however the events
    were listed — and a client cannot join and leave at the same
    instant (the leave would order first and name a client that does
    not exist yet).
    """

    #: Same-timestamp application rank (see the class docstring); lower
    #: ranks apply first.  Free resources (0) < switch links (1) < claim
    #: resources (2).
    rank: ClassVar[int] = 1

    t_ms: float

    def __post_init__(self) -> None:
        if not np.isfinite(self.t_ms) or self.t_ms <= 0:
            raise ConfigurationError(
                f"event time must be finite and > 0 ms, got {self.t_ms}"
            )
        object.__setattr__(self, "t_ms", float(self.t_ms))


@dataclass(frozen=True)
class CapacityEvent(SessionEvent):
    """Base of the render-fleet capacity events (:mod:`repro.sim.fleet`).

    Capacity events name a fleet server rather than a client, and —
    unlike client events — may fire at t = 0: a ``ServerFail(0, ...)``
    models a server that was supposed to be there and is not.  Sessions
    carrying capacity events must declare a
    :class:`~repro.sim.fleet.RenderFleet`.
    """

    server: str = ""

    def __post_init__(self) -> None:
        if not np.isfinite(self.t_ms) or self.t_ms < 0:
            raise ConfigurationError(
                f"capacity-event time must be finite and >= 0 ms, got {self.t_ms}"
            )
        object.__setattr__(self, "t_ms", float(self.t_ms))
        if not self.server:
            raise ConfigurationError(
                f"{type(self).__name__} needs a fleet server name"
            )


@dataclass(frozen=True)
class Join(SessionEvent):
    """A new client arrives mid-session (admitted, degraded, or queued)."""

    rank: ClassVar[int] = 2

    spec: "object" = None  # ClientSpec or app-name string

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.spec is None:
            raise ConfigurationError("Join needs a ClientSpec (or app name)")
        object.__setattr__(self, "spec", _client_spec(self.spec))


@dataclass(frozen=True)
class Leave(SessionEvent):
    """A client departs; its capacity frees for queued clients."""

    rank: ClassVar[int] = 0

    client: int = -1

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.client < 0:
            raise ConfigurationError(
                f"Leave needs a session client index >= 0, got {self.client}"
            )


@dataclass(frozen=True)
class ProfileSwitch(SessionEvent):
    """A client's link profile changes mid-session (onto a private link)."""

    client: int = -1
    profile: "NetworkProfile | NetworkConditions | str | None" = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.client < 0:
            raise ConfigurationError(
                f"ProfileSwitch needs a session client index >= 0, got {self.client}"
            )
        if self.profile is None:
            raise ConfigurationError("ProfileSwitch needs a target profile")
        object.__setattr__(self, "profile", as_profile(self.profile))


# ---------------------------------------------------------------------------
# The session builder
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Session:
    """A declarative collaborative session: initial roster plus events.

    Attributes
    ----------
    clients:
        Clients present at t = 0 (bare app-name strings are promoted to
        :class:`~repro.sim.multiuser.ClientSpec`).
    events:
        The churn timeline; events are applied in time order (ties keep
        declaration order).  Without events the session is *static* and
        plans exactly as :class:`~repro.sim.multiuser.MultiUserScenario`
        always planned — same specs, same cache keys.
    platform:
        The default single-user platform being shared.
    sharing_efficiency:
        Fraction of ideal 1/N scaling the infrastructure achieves.
    policy:
        Server scheduling policy (:data:`~repro.sim.server.POLICY_NAMES`),
        re-applied at every epoch.
    server:
        The rendering server.  ``None`` keeps the legacy behaviour for
        static fair-share sessions (everyone admitted, no schedules) and
        a default :class:`~repro.sim.server.RenderServer` otherwise; a
        session *with events* always runs the full admission pipeline,
        since even fair shares change when the roster does.
    fleet:
        A :class:`~repro.sim.fleet.RenderFleet` replacing the single
        ``server`` with a roster of named servers whose capacity changes
        through :class:`CapacityEvent`s; mutually exclusive with
        ``server``.  A fleet session always runs the full placement
        pipeline (the fleet *is* the admission controller).
    """

    clients: tuple = ()
    events: tuple[SessionEvent, ...] = ()
    platform: PlatformConfig | None = None
    sharing_efficiency: float = 0.9
    policy: str = "fair-share"
    server: RenderServer | None = None
    fleet: "RenderFleet | None" = None

    def __post_init__(self) -> None:
        if self.policy not in POLICY_NAMES:
            raise ConfigurationError(
                f"unknown scheduling policy {self.policy!r}; known: {POLICY_NAMES}"
            )
        if not 0 < self.sharing_efficiency <= 1:
            raise ConfigurationError("sharing_efficiency must be in (0, 1]")
        if self.platform is None:
            object.__setattr__(self, "platform", PlatformConfig())
        object.__setattr__(
            self, "clients", tuple(_client_spec(c) for c in self.clients)
        )
        object.__setattr__(self, "events", tuple(self.events))
        for event in self.events:
            if not isinstance(event, SessionEvent):
                raise ConfigurationError(
                    f"events must be SessionEvent values, got "
                    f"{type(event).__name__}"
                )
        if self.fleet is not None and self.server is not None:
            raise ConfigurationError(
                "a session takes either a server or a fleet, not both "
                "(the fleet owns the servers)"
            )
        capacity_events = tuple(
            e for e in self.events if isinstance(e, CapacityEvent)
        )
        if capacity_events and self.fleet is None:
            raise ConfigurationError(
                "capacity events (ServerUp/ServerDown/ServerFail) require "
                "a RenderFleet on the session"
            )
        if self.fleet is not None:
            self.fleet.validate_events(capacity_events)
        self._validate_event_references()
        if not self.clients and not any(
            isinstance(e, Join) for e in self.events
        ):
            raise ConfigurationError(
                "session needs at least one client (initial or joining)"
            )

    def _validate_event_references(self) -> None:
        """Statically replay membership so bad indices fail at build time."""
        known = len(self.clients)
        left: set[int] = set()
        for event in self.ordered_events():
            if isinstance(event, CapacityEvent):
                continue  # server references validated by the fleet
            if isinstance(event, Join):
                known += 1
                continue
            index = event.client  # type: ignore[attr-defined]
            if index >= known:
                raise ConfigurationError(
                    f"{type(event).__name__} at {event.t_ms:g} ms names client "
                    f"{index}, but only {known} clients exist by then"
                )
            if index in left:
                raise ConfigurationError(
                    f"{type(event).__name__} at {event.t_ms:g} ms names client "
                    f"{index}, which already left the session"
                )
            if isinstance(event, Leave):
                left.add(index)

    def ordered_events(self) -> tuple[SessionEvent, ...]:
        """Events in application order: by time, then rank, then declaration.

        The enforced total order at one instant is Leave/ServerDown/
        ServerFail (free resources) before ProfileSwitch before
        Join/ServerUp (claim resources) — see
        :attr:`SessionEvent.rank` — with declaration order breaking ties
        only within a rank, so two sessions listing the same events in a
        different order plan identically.
        """
        return tuple(sorted(self.events, key=lambda e: (e.t_ms, e.rank)))

    @property
    def n_clients(self) -> int:
        """Total clients that ever participate (initial + joiners)."""
        return len(self.clients) + sum(
            1 for e in self.events if isinstance(e, Join)
        )

    def with_policy(self, policy: str) -> "Session":
        """This session under another scheduling policy.

        Roster, events, platform, and fleet are shared (all frozen); only
        the policy differs — the hook the population demand generator
        uses to re-plan one sampled city under every candidate policy.
        """
        if policy == self.policy:
            return self
        return replace(self, policy=policy)

    # -- planning ----------------------------------------------------------------

    def timeline(
        self,
        system: str = "qvr",
        n_frames: int = 200,
        seed: int = 0,
        warmup_frames: int | None = None,
    ) -> "SessionTimeline":
        """Re-plan the session at every event and freeze it into run specs.

        Static sessions (no events) take the exact legacy path of
        ``MultiUserScenario.plan()``.  Event sessions walk the epoch list
        chronologically: at each boundary the pending events apply, the
        server re-admits the present roster **in arrival order** (so
        incumbents keep their slots and freed capacity promotes queued
        clients first-fit in arrival order — the oldest queued client
        that *fits* goes first; a lighter late-comer may slip past a
        heavy queued client rather than head-of-line block, matching the
        server's greedy admission), and the policy re-allocates share
        schedules over the epoch.  Every serviced
        client freezes to one :class:`~repro.sim.runner.RunSpec` whose
        ``start_ms`` is its promotion instant and whose frame count
        covers its active window.

        A session with a :attr:`fleet` plans through the fleet's
        placement pipeline (:func:`repro.sim.fleet.plan_fleet_timeline`)
        instead — per-server placement, migration and parking on top of
        the same epoch walk.
        """
        tracer = obs_trace.active()
        if self.fleet is not None:
            from repro.sim.fleet import plan_fleet_timeline

            with tracer.span("session.plan", mode="fleet", clients=len(self.clients)):
                return plan_fleet_timeline(
                    self,
                    system=system,
                    n_frames=n_frames,
                    seed=seed,
                    warmup_frames=warmup_frames,
                )
        if not self.events:
            with tracer.span("session.plan", mode="static", clients=len(self.clients)):
                return self._static_timeline(system, n_frames, seed, warmup_frames)
        with tracer.span("session.plan", mode="dynamic", clients=len(self.clients)):
            return self._dynamic_timeline(system, n_frames, seed, warmup_frames)

    # -- the static (legacy, bit-identical) path ---------------------------------

    def _static_timeline(
        self,
        system: str,
        n_frames: int,
        seed: int,
        warmup_frames: int | None,
    ) -> "SessionTimeline":
        """The frozen-roster plan, byte-identical to earlier releases."""
        warmup = (
            effective_warmup(n_frames) if warmup_frames is None else warmup_frames
        )
        assert self.platform is not None
        duration_ms = n_frames * constants.FRAME_BUDGET_MS
        horizon_ms = duration_ms * _HORIZON_SLACK
        default_network = self.platform.network
        resolved = [
            client.resolved_platform(self.platform) for client in self.clients
        ]
        seeds = [
            seed + CLIENT_SEED_STRIDE * index for index in range(len(self.clients))
        ]

        def base_spec(index: int, **overrides) -> RunSpec:
            """Spec template for one client window of this plan."""
            client = self.clients[index]
            kwargs = dict(
                system=client.system if client.system is not None else system,
                app=client.app,
                platform=resolved[index],
                n_frames=n_frames,
                seed=seeds[index],
                warmup_frames=warmup,
                shared_clients=len(self.clients),
                sharing_efficiency=self.sharing_efficiency,
                # A client on its own link shares the server but not
                # the session downlink.
                shared_downlink=resolved[index].network == default_network,
            )
            kwargs.update(overrides)
            return RunSpec(**kwargs)

        if self.policy == "fair-share" and self.server is None:
            specs = tuple(base_spec(index) for index in range(len(self.clients)))
            decisions = tuple(
                AdmissionDecision(index, "admit")
                for index in range(len(self.clients))
            )
        else:
            server = self.server if self.server is not None else RenderServer()
            demands = tuple(
                ClientDemand.estimate(
                    app=client.app,
                    profile=resolved[index].network,
                    # The allocation planner samples the profile with the
                    # channel's seed, so Markov links replay the same
                    # state sequence the run will observe.
                    seed=seeds[index] + 7,
                    weight=client.weight,
                    server=server.config,
                )
                for index, client in enumerate(self.clients)
            )
            decisions = server.admit(demands)
            serviced = [d.client_index for d in decisions if d.serviced]
            allocations = server.allocate(
                tuple(demands[i] for i in serviced),
                self.policy,
                horizon_ms=horizon_ms,
                sharing_efficiency=self.sharing_efficiency,
                service_levels=tuple(
                    d.service_level for d in decisions if d.serviced
                ),
            )
            specs = tuple(
                base_spec(
                    index,
                    policy=self.policy,
                    # Rejected/queued clients transmit nothing: only the
                    # serviced roster contends (shares, jitter growth).
                    shared_clients=max(len(serviced), 1),
                    server_allocation=allocation.server.segments,
                    downlink_allocation=(
                        allocation.downlink.segments
                        if resolved[index].network == default_network
                        else None
                    ),
                )
                for index, allocation in zip(serviced, allocations)
            )
        serviced_indices = tuple(d.client_index for d in decisions if d.serviced)
        runs = dict(zip(serviced_indices, specs))
        client_rows = tuple(
            ClientTimeline(
                index=index,
                spec=client,
                joined_ms=0.0,
                start_ms=0.0 if index in runs else None,
                end_ms=None,
                run=runs.get(index),
            )
            for index, client in enumerate(self.clients)
        )
        epoch = Epoch(
            start_ms=0.0,
            end_ms=duration_ms,
            decisions=decisions,
            serviced=serviced_indices,
        )
        return SessionTimeline(
            session=self,
            n_frames=n_frames,
            duration_ms=duration_ms,
            epochs=(epoch,),
            clients=client_rows,
        )

    # -- the dynamic (event-driven) path ------------------------------------------

    def _dynamic_timeline(
        self,
        system: str,
        n_frames: int,
        seed: int,
        warmup_frames: int | None,
    ) -> "SessionTimeline":
        """Epoch-by-epoch re-admission, promotion, and re-allocation."""
        assert self.platform is not None
        duration_ms = n_frames * constants.FRAME_BUDGET_MS
        horizon_ms = duration_ms * _HORIZON_SLACK
        ordered = self.ordered_events()
        for event in ordered:
            if event.t_ms >= duration_ms:
                raise ConfigurationError(
                    f"event at {event.t_ms:g} ms falls outside the nominal "
                    f"session ({n_frames} frames = {duration_ms:g} ms)"
                )
        server = self.server if self.server is not None else RenderServer()
        default_network = self.platform.network

        states = [
            _ClientState(index, spec, 0.0, spec.resolved_platform(self.platform))
            for index, spec in enumerate(self.clients)
        ]

        events_at: dict[float, list[SessionEvent]] = {}
        for event in ordered:
            events_at.setdefault(event.t_ms, []).append(event)
        boundaries = [0.0] + sorted(events_at)

        tracer = obs_trace.active()
        epochs: list[Epoch] = []
        for k, t0 in enumerate(boundaries):
            t1 = boundaries[k + 1] if k + 1 < len(boundaries) else duration_ms
            for event in events_at.get(t0, ()):
                if isinstance(event, Join):
                    spec = _client_spec(event.spec)
                    states.append(
                        _ClientState(
                            len(states),
                            spec,
                            t0,
                            spec.resolved_platform(self.platform),
                        )
                    )
                elif isinstance(event, Leave):
                    states[event.client].leave(t0)
                else:  # ProfileSwitch
                    states[event.client].switch(t0, event.profile)

            # Admission priority: clients already being serviced first
            # (by service start — the greedy admit() packs them before
            # any newcomer, so re-admission can never evict or demote a
            # running client: incumbents fit by construction and weights
            # never change), then waiting clients by arrival.  Freed
            # capacity goes to the oldest waiting client that fits
            # (greedy first-fit, so a light late-comer may pass a heavy
            # queued client instead of head-of-line blocking).
            roster = sorted(
                (s for s in states if s.present_at(t0)),
                key=lambda s: (
                    s.service_start is None,
                    s.service_start if s.service_start is not None else s.joined_ms,
                    s.joined_ms,
                    s.index,
                ),
            )
            demands = tuple(
                ClientDemand.estimate(
                    app=s.spec.app,
                    profile=s.profile(),
                    seed=seed + CLIENT_SEED_STRIDE * s.index + 7,
                    weight=s.spec.weight,
                    server=server.config,
                )
                for s in roster
            )
            raw = server.admit(demands)
            decisions = tuple(
                replace(d, client_index=roster[d.client_index].index) for d in raw
            )
            # A rejection is final: the client is turned away, not parked
            # in the queue — only queue-mode clients are re-tried (and
            # promoted) at later boundaries.
            for state, decision in zip(roster, decisions):
                if decision.action == "reject":
                    state.rejected = True
            serviced_pos = [i for i, d in enumerate(decisions) if d.serviced]
            serviced = [roster[i] for i in serviced_pos]
            window_end = horizon_ms if k + 1 == len(boundaries) else t1
            allocations = server.allocate(
                tuple(demands[i] for i in serviced_pos),
                self.policy,
                horizon_ms=window_end - t0,
                sharing_efficiency=self.sharing_efficiency,
                service_levels=tuple(
                    d.service_level for d in decisions if d.serviced
                ),
                start_ms=t0,
            )
            for state, allocation in zip(serviced, allocations):
                state.record_service(t0, allocation, len(serviced))
            epochs.append(
                Epoch(
                    start_ms=t0,
                    end_ms=t1,
                    decisions=decisions,
                    serviced=tuple(s.index for s in serviced),
                )
            )
            tracer.instant(
                "session.epoch", epoch=k, t0_ms=t0,
                roster=len(roster), serviced=len(serviced),
            )

        client_rows = tuple(
            state.freeze(
                session=self,
                system=system,
                n_frames=n_frames,
                seed=seed,
                warmup_frames=warmup_frames,
                duration_ms=duration_ms,
                default_network=default_network,
            )
            for state in states
        )
        return SessionTimeline(
            session=self,
            n_frames=n_frames,
            duration_ms=duration_ms,
            epochs=tuple(epochs),
            clients=client_rows,
        )


class _ClientState:
    """Mutable per-client bookkeeping while the planner walks the epochs."""

    def __init__(
        self,
        index: int,
        spec,
        joined_ms: float,
        resolved: PlatformConfig,
    ) -> None:
        self.index = index
        self.spec = spec
        self.joined_ms = joined_ms
        self.resolved = resolved
        self.left_ms: float | None = None
        self.rejected = False
        self.profile_history: list[tuple[float, NetworkProfile]] = [
            (0.0, as_profile(resolved.network))
        ]
        self.service_start: float | None = None
        self.service_end: float | None = None
        self.server_segments: list[tuple[float, float]] = []
        self.downlink_segments: list[tuple[float, float]] = []
        self.peak_roster = 0

    def present_at(self, t_ms: float) -> bool:
        """True when the client is in the session at ``t_ms``."""
        return (
            self.joined_ms <= t_ms and self.left_ms is None and not self.rejected
        )

    def leave(self, t_ms: float) -> None:
        """Mark the client gone at ``t_ms``, ending any open service."""
        self.left_ms = t_ms
        if self.service_start is not None and self.service_end is None:
            self.service_end = t_ms

    def switch(self, t_ms: float, profile: NetworkProfile) -> None:
        """Record a network-profile switch taking effect at ``t_ms``."""
        self.profile_history.append((t_ms, profile))

    def profile(self) -> NetworkProfile:
        """The client's link history so far, as one sampleable profile."""
        if len(self.profile_history) == 1:
            return self.profile_history[0][1]
        return SwitchedProfile(
            segments=tuple(self.profile_history),
            label=f"{self.profile_history[0][1].name}:switched",
        )

    def _switched_network(
        self, session: Session, default_network, shared_start: bool
    ) -> SwitchedProfile:
        """The executable composite link of a client that roamed mid-run.

        A client that began on the shared session link was contending on
        the session downlink until its first switch, so that span must
        sample the *allocated* view of the default link (the client's
        scheduled downlink share, with the session's jitter growth) —
        not the raw full-capacity link.  Splicing the allocation into
        the profile here keeps the pre-switch epochs bit-identical to
        the same session without the roam; the post-switch segments are
        the client's private links, sampled at full capacity.
        """
        segments = list(self.profile_history)
        if shared_start and self.downlink_segments:
            # Session-time shares; the first segment starts at the
            # client's service start, normalised to the 0-origin the
            # schedule requires (instants before it are never sampled).
            shares = tuple(self.downlink_segments)
            shares = ((0.0, shares[0][1]),) + shares[1:]
            segments[0] = (
                0.0,
                AllocatedProfile(
                    base=as_profile(default_network),
                    segments=shares,
                    n_clients=max(self.peak_roster, 1),
                    label=session.policy,
                ),
            )
        return SwitchedProfile(
            segments=tuple(segments),
            label=f"{self.profile_history[0][1].name}:switched",
        )

    @property
    def switched(self) -> bool:
        """True once the client has changed network profile."""
        return len(self.profile_history) > 1

    def record_service(self, t0: float, allocation, roster_size: int) -> None:
        """Record one service interval from a solved allocation."""
        self.record_segments(
            t0, allocation.server.segments, allocation.downlink.segments,
            roster_size,
        )

    def record_segments(
        self,
        t0: float,
        server_segments,
        downlink_segments,
        roster_size: int,
    ) -> None:
        """Append one epoch's window-local share schedules at offset ``t0``.

        The hook the fleet planner uses directly: it records migration-
        penalised and parked (starvation-share) epochs, which have no
        single :class:`~repro.sim.server.SessionAllocation` behind them.
        """
        if self.service_start is None:
            self.service_start = t0
        self.peak_roster = max(self.peak_roster, roster_size)
        for start, share in server_segments:
            _append_merged(self.server_segments, t0 + start, share)
        for start, share in downlink_segments:
            _append_merged(self.downlink_segments, t0 + start, share)

    def freeze(
        self,
        session: Session,
        system: str,
        n_frames: int,
        seed: int,
        warmup_frames: int | None,
        duration_ms: float,
        default_network,
    ) -> "ClientTimeline":
        """Close the books: one RunSpec if the client was ever serviced."""
        if self.service_start is None:
            return ClientTimeline(
                index=self.index,
                spec=self.spec,
                joined_ms=self.joined_ms,
                start_ms=None,
                end_ms=self.left_ms,
                run=None,
            )
        start = self.service_start
        end = self.service_end
        active_ms = (end if end is not None else duration_ms) - start
        frames = max(1, int(round(n_frames * active_ms / duration_ms)))
        warmup = effective_warmup(
            frames, effective_warmup(n_frames) if warmup_frames is None else warmup_frames
        )
        # A client is on the shared session downlink only while it holds
        # the default link: an override privatises it from the start; a
        # mid-session switch privatises it *from the switch on* (the
        # pre-switch span keeps its allocated share of the session link
        # — see _switched_network — so a later roam cannot retroactively
        # rewrite epochs the client spent contending on the downlink).
        shared_start = self.resolved.network == default_network
        shared_link = shared_start and not self.switched
        platform = (
            replace(
                self.resolved,
                network=self._switched_network(session, default_network, shared_start),
            )
            if self.switched
            else self.resolved
        )
        run = RunSpec(
            system=self.spec.system if self.spec.system is not None else system,
            app=self.spec.app,
            platform=platform,
            n_frames=frames,
            seed=seed + CLIENT_SEED_STRIDE * self.index,
            warmup_frames=warmup,
            shared_clients=max(self.peak_roster, 1),
            sharing_efficiency=session.sharing_efficiency,
            shared_downlink=shared_link,
            policy=session.policy,
            server_allocation=tuple(
                (s - start, share) for s, share in self.server_segments
            ),
            downlink_allocation=(
                tuple((s - start, share) for s, share in self.downlink_segments)
                if shared_link
                else None
            ),
            start_ms=start,
        )
        return ClientTimeline(
            index=self.index,
            spec=self.spec,
            joined_ms=self.joined_ms,
            start_ms=start,
            end_ms=end,
            run=run,
        )


def _append_merged(
    segments: list[tuple[float, float]], start_ms: float, share: float
) -> None:
    """Append a segment, merging runs of identical shares across epochs."""
    if segments and segments[-1][1] == share:
        return
    segments.append((start_ms, share))


# ---------------------------------------------------------------------------
# Timeline output
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Epoch:
    """One planning window between consecutive session events.

    ``decisions`` covers the roster present during the epoch, in
    admission-priority order (clients already being serviced first, by
    service start, then waiters by arrival), with ``client_index``
    naming session indices; ``serviced`` lists the indices that actually
    render during the epoch.

    Fleet sessions additionally fill ``placements`` (which named server
    each serviced client renders on this epoch) and ``servers`` (one
    :class:`~repro.sim.metrics.ServerWindow` of occupancy per up
    server); both stay empty for single-server sessions.
    """

    start_ms: float
    end_ms: float
    decisions: tuple[AdmissionDecision, ...]
    serviced: tuple[int, ...]
    placements: tuple[tuple[int, str], ...] = ()
    servers: tuple[ServerWindow, ...] = ()

    @property
    def queued(self) -> tuple[int, ...]:
        """Session indices waiting in the admission queue this epoch."""
        return tuple(
            d.client_index for d in self.decisions if d.action == "queue"
        )

    def server_of(self, client: int) -> str | None:
        """The fleet server a client renders on this epoch (None: none)."""
        for index, name in self.placements:
            if index == client:
                return name
        return None


@dataclass(frozen=True)
class ClientTimeline:
    """One client's fate across the whole session.

    ``start_ms``/``end_ms`` bound the client's *service* window on the
    session clock (``None`` start: never serviced; ``None`` end: ran to
    the session's end).  ``run`` is the frozen executable spec, absent
    for clients that were rejected, or left while still queued.

    Fleet sessions additionally fill ``servers`` — the client's
    placement history as ``(t_ms, server)`` steps, where ``None`` marks
    a parked span (displaced with nowhere to go, rendering at the
    starvation share) — and ``migrations``, how many times the client
    moved between servers.
    """

    index: int
    spec: "object"
    joined_ms: float
    start_ms: float | None
    end_ms: float | None
    run: RunSpec | None
    servers: tuple[tuple[float, str | None], ...] = ()
    migrations: int = 0

    @property
    def serviced(self) -> bool:
        """True when the client rendered at least one epoch."""
        return self.run is not None

    @property
    def queued_ms(self) -> float:
        """Time spent waiting in the admission queue before service."""
        if self.start_ms is None:
            return float("nan")
        return self.start_ms - self.joined_ms


@dataclass(frozen=True)
class SessionTimeline:
    """The planner's full output: epochs plus per-client verdicts."""

    session: Session
    n_frames: int
    duration_ms: float
    epochs: tuple[Epoch, ...]
    clients: tuple[ClientTimeline, ...]

    @property
    def specs(self) -> tuple[RunSpec, ...]:
        """One frozen spec per serviced client, in session index order."""
        return tuple(c.run for c in self.clients if c.run is not None)

    @property
    def serviced_indices(self) -> tuple[int, ...]:
        """Session indices of the clients that actually run."""
        return tuple(c.index for c in self.clients if c.run is not None)

    def client(self, index: int) -> ClientTimeline:
        """The timeline of one session client."""
        if not 0 <= index < len(self.clients):
            raise ConfigurationError(
                f"no session client {index}; session has {len(self.clients)}"
            )
        return self.clients[index]

    @property
    def server_stats(self):
        """Per-server utilisation/migration aggregates of a fleet session.

        One :class:`~repro.sim.metrics.ServerStats` per fleet server that
        was ever up, folded from the epochs'
        :class:`~repro.sim.metrics.ServerWindow` rows; empty for
        single-server sessions.
        """
        return aggregate_server_stats(
            [window for epoch in self.epochs for window in epoch.servers]
        )

    def stream_stats(
        self, results: "dict[RunSpec, SimulationResult] | Iterable"
    ) -> tuple[StreamSummary, StreamSummary]:
        """Session-wide streaming latency / FPS summaries of executed runs.

        Folds each serviced client's steady-state per-frame series into
        one mergeable ``(latency, fps)`` :class:`StreamSummary` pair —
        the bounded-memory aggregation population-scale paths use
        instead of keeping per-client timelines around.  ``results`` may
        be the batch engine's spec-keyed dict or any iterable of
        ``(spec, result)`` pairs (e.g. a spill-to-disk result stream);
        pairs for specs outside this session are ignored, so one shared
        stream can feed many sessions' stats.
        """
        latency, fps = StreamSummary(), StreamSummary()
        wanted = {spec_key(spec) for spec in self.specs}
        pairs = results.items() if hasattr(results, "items") else results
        for spec, result in pairs:
            if spec_key(spec) in wanted:
                result.fold_into(latency=latency, fps=fps)
        return latency, fps

    def plan(self):
        """The legacy single-epoch view (``MultiUserScenario.plan()``)."""
        from repro.sim.multiuser import SessionPlan

        if len(self.epochs) != 1:
            raise ConfigurationError(
                "SessionPlan is the static single-epoch view; this session "
                f"re-planned {len(self.epochs)} epochs — consume the "
                "timeline instead"
            )
        return SessionPlan(decisions=self.epochs[0].decisions, specs=self.specs)


# ---------------------------------------------------------------------------
# Motion-coupled event generation
# ---------------------------------------------------------------------------


def events_from_motion(
    trace,
    degraded: "NetworkProfile | NetworkConditions | str",
    recovered: "NetworkProfile | NetworkConditions | str",
    client: int = 0,
    threshold: float = 0.5,
    min_dwell_ms: float = 200.0,
) -> tuple[ProfileSwitch, ...]:
    """Synthesize degraded-link ``ProfileSwitch`` events from head motion.

    The paper's controller exploits the motion/workload correlation
    (Sec. 4.1, Fig. 8); on mmWave-class links the same bursts also break
    the radio — fast head sweeps defeat beam alignment, so high
    head-velocity windows coincide with throughput collapses.  This
    helper scans a :class:`~repro.motion.traces.MotionTrace` for
    sustained high-activity windows (``activity >= threshold`` for at
    least ``min_dwell_ms``) and couples them to the link: the client
    roams onto ``degraded`` (typically a checked-in ``data/`` 4G/5G
    trace) at each window start and back onto ``recovered`` at each
    window end.  Determinism is inherited from the trace: the same
    (trace seed, thresholds) pair always emits the same events.

    Windows still open at the trace's end emit only their opening
    switch; a window starting at the very first sample starts at the
    second sample instead (session events must fall strictly after
    t = 0).  The returned events plug straight into
    :attr:`Session.events` alongside any hand-written timeline.
    """
    degraded_profile = as_profile(degraded)
    recovered_profile = as_profile(recovered)
    if not 0 < threshold <= 1:
        raise ConfigurationError(
            f"activity threshold must be in (0, 1], got {threshold}"
        )
    if min_dwell_ms <= 0:
        raise ConfigurationError(
            f"min_dwell_ms must be > 0, got {min_dwell_ms}"
        )
    if client < 0:
        raise ConfigurationError(f"client index must be >= 0, got {client}")
    samples = list(trace)
    events: list[ProfileSwitch] = []
    window_start: float | None = None
    for position, sample in enumerate(samples):
        active = sample.activity >= threshold
        if active and window_start is None:
            window_start = sample.time_ms
            if window_start <= 0 and position + 1 < len(samples):
                window_start = samples[position + 1].time_ms
        elif not active and window_start is not None:
            if sample.time_ms - window_start >= min_dwell_ms:
                events.append(
                    ProfileSwitch(window_start, client, degraded_profile)
                )
                events.append(
                    ProfileSwitch(sample.time_ms, client, recovered_profile)
                )
            window_start = None
    if window_start is not None and samples:
        closing = samples[-1].time_ms
        if closing - window_start >= min_dwell_ms and window_start > 0:
            events.append(ProfileSwitch(window_start, client, degraded_profile))
    return tuple(events)


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SessionResult:
    """Per-client simulation results plus the timeline they executed.

    ``per_client`` aligns with :attr:`SessionTimeline.serviced_indices`.
    Per-epoch aggregation maps each session epoch onto every client's
    local clock (records start at the client's own t = 0) via
    :func:`~repro.sim.metrics.window_stats`.
    """

    timeline: SessionTimeline
    per_client: tuple[SimulationResult, ...]

    def result_for(self, index: int) -> SimulationResult | None:
        """The run result of one session client (None if never serviced)."""
        for serviced, result in zip(
            self.timeline.serviced_indices, self.per_client
        ):
            if serviced == index:
                return result
        return None

    def client_window(
        self, index: int, start_ms: float, end_ms: float
    ) -> WindowStats | None:
        """Aggregate one client's frames inside a *session-clock* window.

        The window translates onto the client's local clock (local 0 is
        its service start); returns None when the window ends before the
        client ever started.
        """
        client = self.timeline.client(index)
        result = self.result_for(index)
        if result is None or client.start_ms is None:
            return None
        local_start = max(start_ms - client.start_ms, 0.0)
        local_end = end_ms - client.start_ms
        if local_end <= local_start:
            return None
        return window_stats(result.records, local_start, local_end)

    def epoch_stats(self, index: int) -> tuple[WindowStats | None, ...]:
        """One :class:`~repro.sim.metrics.WindowStats` per session epoch."""
        return tuple(
            self.client_window(index, epoch.start_ms, epoch.end_ms)
            for epoch in self.timeline.epochs
        )

    @property
    def mean_fps(self) -> float:
        """Average per-client frame rate across serviced clients."""
        if not self.per_client:
            return float("nan")
        return float(np.mean([r.measured_fps for r in self.per_client]))

    @property
    def clients_meeting_fps(self) -> int:
        """How many serviced clients hold the 90 Hz requirement."""
        return sum(1 for r in self.per_client if r.meets_target_fps)


def simulate_session(
    session: Session,
    n_frames: int = 200,
    seed: int = 0,
    system: str = "qvr",
    engine: BatchEngine | None = None,
    warmup_frames: int | None = None,
) -> SessionResult:
    """Plan and execute an event-driven session end to end.

    The timeline's frozen specs run through the batch engine (the
    caller's, or the default serial one), so parallel and caching
    engines accelerate churn studies exactly as they accelerate figure
    sweeps; clients the admission controller never serviced contribute
    no result but keep their verdicts on the timeline.
    """
    timeline = session.timeline(
        system=system, n_frames=n_frames, seed=seed, warmup_frames=warmup_frames
    )
    chosen = engine if engine is not None else default_engine()
    batch = chosen.run_specs(timeline.specs)
    return SessionResult(
        timeline=timeline,
        per_client=tuple(batch[spec] for spec in timeline.specs),
    )
