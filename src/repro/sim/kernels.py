"""Array-programmed frame kernels: the vectorized simulation engine.

The scalar systems (:mod:`repro.sim.systems`) build one task graph per
frame on the DES scheduler.  Every resource in the graph has capacity 1,
so each timeline is a FIFO: a task's start time is
``max(ready, unit_free)`` and assignment order equals program order.  The
kernels exploit this to replace the scheduler with O(1) float recurrences
per frame, and replace the per-frame foveation geometry (the Eq. (1)
``*e2`` grid search and the disc/panel intersection integrals) with
batched, workspace-reused numpy passes that are **bit-identical** to the
scalar code path.

Parity strategy
---------------
Stateful or numerically intricate model objects are *called verbatim* in
the exact order the scalar pipeline calls them — the network channel
(jitter draws, ACK EWMA, profile advance), the codec, the GPU performance
models, the eccentricity controllers and the share schedule.  Only three
things are replicated as array kernels, each validated bit-for-bit
against the original (see ``tests/sim/test_kernels.py``):

* the capacity-1 DES recurrences (``start = max(ready, free)``),
* the 256-sample disc/rectangle area integral of
  :meth:`~repro.core.foveation.DisplayGeometry.region_area_px`,
* the Eq. (1) ``*e2`` grid search of
  :meth:`~repro.core.foveation.FoveationModel.optimize_e2`, evaluated on
  a per-resolution master eccentricity lattice whose per-frame area sweep
  and outer-layer cost are computed once and shared by every foveated
  system and same-resolution app in the process.

Workload streams and foveation geometry are memoized across runs (both
are deterministic in ``(app, seed, n_frames)`` / resolution), which is
where most of the cross-spec batch speedup comes from.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro import constants
from repro.codec.stream import pipelined_latency_ms
from repro.core.controllers import (
    ControlContext,
    ControlFeedback,
    EccentricityController,
    FixedEccentricityController,
    LIWCController,
    SoftwareAdaptiveController,
)
from repro.core.foveation import DisplayGeometry, FoveationModel, PartitionPlan
from repro.core.partition import split_local_workload, split_remote_workload
from repro.core.uca import UCAUnit
from repro.errors import ConfigurationError
from repro.gpu.mobile_gpu import MobileGPU
from repro.gpu.remote_gpu import RemoteRenderer
from repro.motion.dof import GazeDelta, PoseDelta
from repro.motion.traces import generate_trace
from repro.network.channel import NetworkChannel
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.sim.metrics import (
    DEFAULT_WARMUP,
    SimulationResult,
    effective_warmup,
    records_from_arrays,
)
from repro.sim.server import ShareSchedule
from repro.sim.systems import (
    CL_MS,
    LIWC_SELECT_MS,
    LS_MS,
    POSE_UPLOAD_BYTES,
    _PACING_WINDOW,
    PlatformConfig,
    StaticCollaborativeSystem,
    SYSTEM_NAMES,
)
from repro.workloads.apps import VRApp
from repro.workloads.generator import WorkloadGenerator

__all__ = ["run_vectorized"]

_CPU_BUSY_MS = CL_MS + LS_MS


# --------------------------------------------------------------------------
# memoized deterministic inputs
# --------------------------------------------------------------------------

_WORKLOAD_CACHE: OrderedDict = OrderedDict()
_WORKLOAD_CACHE_MAX = 32

_GEOMETRY_CACHE: OrderedDict = OrderedDict()
_GEOMETRY_CACHE_MAX = 8

#: Per-(GPU, server) memo of the pure foveated render times, keyed by the
#: (full workload, partition plan) pair.  ``GPUPerfModel``/``RemoteRenderer``
#: render timings carry no cross-frame state, so systems that reach the
#: same partition decision on the same frame (e.g. DFR and QVR early in a
#: run) share one evaluation.  The time-varying ``server_share`` divisor is
#: applied outside the memo.
_RENDER_CACHES: OrderedDict = OrderedDict()
_RENDER_CACHES_MAX = 8
_RENDER_CACHE_ENTRIES_MAX = 200_000


def _render_cache(config_key: tuple) -> dict:
    """Memo dict for one (mobile GPU, remote server) hardware config."""
    # repro-lint: disable=MP001 -- per-process memo of pure functions of the key: a fork-inherited or rebuilt cache yields bit-identical values and never flows back to the parent
    cache = _RENDER_CACHES.get(config_key)
    if cache is None:
        obs_metrics.counter("kernels.render_cache.miss").inc()
        cache = {}
        _RENDER_CACHES[config_key] = cache
        if len(_RENDER_CACHES) > _RENDER_CACHES_MAX:
            _RENDER_CACHES.popitem(last=False)
            obs_metrics.counter("kernels.render_cache.evict").inc()
    else:
        obs_metrics.counter("kernels.render_cache.hit").inc()
        _RENDER_CACHES.move_to_end(config_key)
    return cache


def _workloads(app: VRApp, seed: int, n_frames: int):
    """Memoized workload stream — deterministic in (app, seed, n_frames)."""
    key = (app, seed, n_frames)
    # repro-lint: disable=MP001 -- per-process memo of pure functions of the key: fork-inherited and rebuilt entries are bit-identical
    stream = _WORKLOAD_CACHE.get(key)
    if stream is None:
        obs_metrics.counter("kernels.workloads.miss").inc()
        stream = WorkloadGenerator(app, seed=seed).generate(n_frames)
        _WORKLOAD_CACHE[key] = stream
        if len(_WORKLOAD_CACHE) > _WORKLOAD_CACHE_MAX:
            _WORKLOAD_CACHE.popitem(last=False)
            obs_metrics.counter("kernels.workloads.evict").inc()
    else:
        obs_metrics.counter("kernels.workloads.hit").inc()
        _WORKLOAD_CACHE.move_to_end(key)
    return stream


def _foveation_kernel(app: VRApp, seed: int, n_frames: int) -> "_FoveationKernel":
    """Memoized geometry kernel — the gaze trace depends only on resolution."""
    key = (app.width_px, app.height_px, seed, n_frames)
    # repro-lint: disable=MP001 -- per-process memo of pure functions of the key: fork-inherited and rebuilt entries are bit-identical
    kern = _GEOMETRY_CACHE.get(key)
    if kern is None:
        obs_metrics.counter("kernels.fov.miss").inc()
        kern = _FoveationKernel(app.width_px, app.height_px, seed, n_frames)
        _GEOMETRY_CACHE[key] = kern
        if len(_GEOMETRY_CACHE) > _GEOMETRY_CACHE_MAX:
            _GEOMETRY_CACHE.popitem(last=False)
            obs_metrics.counter("kernels.fov.evict").inc()
    else:
        obs_metrics.counter("kernels.fov.hit").inc()
        _GEOMETRY_CACHE.move_to_end(key)
    return kern


# --------------------------------------------------------------------------
# foveation geometry kernel (bit-identical replicas)
# --------------------------------------------------------------------------

_SAMPLES_1D = 256
_SAMPLES_2D = 129
_STEP_DEG = 0.5


class _FoveationKernel:
    """Per-(resolution, seed, n_frames) replica of ``FoveationModel.plan``.

    Holds the master eccentricity lattice, per-frame gaze positions and
    lazily-built per-frame area sweeps / area integrals / plans, shared by
    every foveated system (and every same-resolution app) in the process.
    """

    def __init__(self, width_px: int, height_px: int, seed: int, n_frames: int) -> None:
        display = DisplayGeometry(width_px, height_px)
        model = FoveationModel(display)
        self.model = model
        self.mar = model.mar
        self.eyes = model.eyes
        self.cap = model.scale_cap
        self.ppd = display.pixels_per_degree
        self.omega_star = display.native_mar_deg
        self.corner = display.corner_eccentricity_deg
        self.width = float(width_px)
        self.height = float(height_px)
        self.total = float(display.total_pixels)
        self.native = float(model.eyes * display.total_pixels)

        # Gaze per frame: the motion trace depends only on the panel
        # resolution, the frame budget and the seed — identical for every
        # app at this resolution, so the per-frame sweeps are shared.
        trace = generate_trace(
            n_frames=n_frames,
            frame_dt_ms=constants.FRAME_BUDGET_MS,
            panel_width_px=width_px,
            panel_height_px=height_px,
            seed=seed,
        )
        self.gx = [s.gaze.x_px for s in trace]
        self.gy = [s.gaze.y_px for s in trace]

        # Master candidate lattice of optimize_e2 starting at the minimum
        # eccentricity; a call at e1 == master[k] evaluates exactly the
        # suffix master[k:], so the per-frame area sweep over the master
        # serves every lattice e1.  Offsets are only registered after the
        # suffix equality is verified element-for-element — any e1 that
        # fails (or is off-lattice, e.g. SW-QVR's float states) falls back
        # to a direct evaluation that is still bit-identical.
        e_max = self.corner
        # repro-lint: disable=DET004 -- load-bearing: the master lattice must come from arange's incremental accumulation (PR 7); start+k*step drifts the argmin tie-breaks
        master = np.arange(constants.MIN_ECCENTRICITY_DEG, e_max + _STEP_DEG, _STEP_DEG)
        master = np.minimum(master, e_max)
        self.master = master
        s_out = (self.mar.omega_0 + self.mar.slope * master) / self.omega_star
        s_out = np.minimum(s_out, self.cap)
        s_out = np.maximum(s_out, 1.0)
        self._s_out_sq = s_out * s_out
        self.lattice_offsets: dict[float, int] = {}
        for k in range(len(master)):
            v = float(master[k])
            if v >= e_max:
                break
            # repro-lint: disable=DET004 -- load-bearing: candidate lattices replicate the oracle's arange bits exactly; offsets register only after element-for-element equality below
            cand = np.minimum(np.arange(v, e_max + _STEP_DEG, _STEP_DEG), e_max)
            if len(cand) == len(master) - k and np.array_equal(cand, master[k:]):
                self.lattice_offsets[v] = k

        # Lazy per-frame caches (shared across systems and runs).
        self._sweeps: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self._areas: dict[tuple[int, float], float] = {}
        self._plans: dict[tuple[int, float], PartitionPlan] = {}
        # Miss counts per eccentricity: once a value keeps recurring
        # (fixed-e1 controllers, lattice e2 picks), its area is batch
        # integrated for every frame at once instead of one gaze at a time.
        self._e_misses: dict[float, int] = {}
        self._gaze_arrays: tuple[np.ndarray, np.ndarray] | None = None
        self._batch1d: tuple[np.ndarray, ...] | None = None

        # Reusable workspaces for the integration kernels.
        m = len(master) + 2
        self._t2d = np.linspace(0.0, 1.0, _SAMPLES_2D)
        self._ws_ys = np.empty((m, _SAMPLES_2D))
        self._ws_a = np.empty((m, _SAMPLES_2D))
        self._ws_b = np.empty((m, _SAMPLES_2D))
        self._ws_r2 = np.empty((m, 1))
        self._ws_dflat = np.empty(m * _SAMPLES_2D)
        self._ws_eflat = np.empty(m * _SAMPLES_2D)
        self._master_radii = master * self.ppd
        # Direct-search workspaces (see :meth:`_optimize_direct`).
        self._ws_radii = np.empty(m)
        self._ws_sout = np.empty(m)
        self._ws_mid = np.empty(m)
        self._ws_cost = np.empty(m)
        self._idx1d = np.arange(_SAMPLES_1D, dtype=float)  # repro-lint: disable=DET004 -- integer lattice 0..N-1: exact in float64, no accumulation hazard
        self._ys1d = np.empty(_SAMPLES_1D)
        self._a1d = np.empty(_SAMPLES_1D)
        self._b1d = np.empty(_SAMPLES_1D)
        self._d1d = np.empty(_SAMPLES_1D - 1)
        self._e1d = np.empty(_SAMPLES_1D - 1)

    # -- integration kernels (replicas of foveation._disc_rect_area*) ------

    def _disc_area_256(self, cx: float, cy: float, r: float) -> float:
        """Bit-identical replica of ``_disc_rect_area(..., samples=256)``."""
        y_lo = max(0.0, cy - r)
        y_hi = min(self.height, cy + r)
        if y_hi <= y_lo:
            return 0.0
        # np.linspace(y_lo, y_hi, 256) decomposes into exactly these ops.
        step = (y_hi - y_lo) / (_SAMPLES_1D - 1)
        ys = self._ys1d
        np.multiply(self._idx1d, step, out=ys)
        ys += y_lo
        ys[-1] = y_hi
        a = self._a1d
        np.subtract(ys, cy, out=a)
        a *= a
        np.subtract(r * r, a, out=a)
        np.maximum(a, 0.0, out=a)
        np.sqrt(a, out=a)  # half chord
        b = self._b1d
        np.subtract(cx, a, out=b)
        np.maximum(0.0, b, out=b)  # x_lo
        np.add(cx, a, out=a)
        np.minimum(self.width, a, out=a)  # x_hi
        np.subtract(a, b, out=a)
        np.maximum(a, 0.0, out=a)  # widths
        d = self._d1d
        e = self._e1d
        np.subtract(ys[1:], ys[:-1], out=d)
        np.add(a[1:], a[:-1], out=e)
        e *= d
        e *= 0.5  # bitwise ``/ 2.0`` (exact power-of-two scaling)
        return float(np.add.reduce(e))

    def _disc_areas(self, cx: float, cy: float, radii: np.ndarray) -> np.ndarray:
        """Bit-identical replica of ``_disc_rect_areas`` (samples=129).

        The trapezoid stage runs over the *flattened* row-contiguous
        buffers: one collapsed first-difference / pairwise-sum pass over
        ``m * 129`` elements instead of a strided per-row pass.  The
        ``m - 1`` row-boundary positions hold cross-row junk that the
        final strided row view skips, and every used element sees the
        exact scalar op chain, so the per-row sums are unchanged bitwise
        (the pairwise ``add.reduce`` tree depends only on the 128-element
        row length, not the memory layout).
        """
        m = len(radii)
        y_lo = np.maximum(0.0, cy - radii)
        y_hi = np.minimum(self.height, cy + radii)
        span = np.maximum(y_hi - y_lo, 0.0)
        ys = self._ws_ys[:m]
        np.einsum("i,j->ij", span, self._t2d, out=ys)  # == np.outer(span, t)
        ys += y_lo[:, None]
        a = self._ws_a[:m]
        np.subtract(ys, cy, out=a)
        a *= a
        r2 = self._ws_r2[:m]
        np.multiply(radii, radii, out=r2[:, 0])
        np.subtract(r2, a, out=a)
        np.maximum(a, 0.0, out=a)
        np.sqrt(a, out=a)  # half chord
        b = self._ws_b[:m]
        np.subtract(cx, a, out=b)
        np.maximum(0.0, b, out=b)  # x_lo
        np.add(cx, a, out=a)
        np.minimum(self.width, a, out=a)  # x_hi
        np.subtract(a, b, out=a)
        np.maximum(a, 0.0, out=a)  # widths
        n = m * _SAMPLES_2D
        ys_flat = ys.reshape(n)
        a_flat = a.reshape(n)
        d = self._ws_dflat[: n - 1]
        e = self._ws_eflat[: n - 1]
        np.subtract(ys_flat[1:], ys_flat[:-1], out=d)
        np.add(a_flat[1:], a_flat[:-1], out=e)
        e *= d
        e *= 0.5  # bitwise ``/ 2.0`` (exact power-of-two scaling)
        stride = e.itemsize
        rows = np.lib.stride_tricks.as_strided(
            e, shape=(m, _SAMPLES_2D - 1), strides=(_SAMPLES_2D * stride, stride)
        )
        return np.add.reduce(rows, axis=1)

    def _area256_all_frames(self, e_deg: float) -> None:
        """Fill the ``_areas`` cache with frame ``0..n-1`` at one radius.

        Row ``f`` applies exactly the scalar op chain of
        :meth:`_disc_area_256` at frame ``f``'s gaze centre — element-wise
        ufuncs over independent rows are bit-identical to the per-frame
        scalar calls (multiplication commutes bitwise, and the trailing
        ``add.reduce`` over the contiguous last axis uses the same pairwise
        summation as the 1-D reduction).
        """
        areas = self._areas
        r = e_deg * self.ppd
        if self._gaze_arrays is None:
            self._gaze_arrays = (np.asarray(self.gx), np.asarray(self.gy))
        gx, gy = self._gaze_arrays
        n = len(gx)
        if r == 0.0:
            for f in range(n):
                areas[(f, e_deg)] = 0.0
            return
        if self._batch1d is None:
            rows = min(n, 1024)
            self._batch1d = (
                np.empty((rows, _SAMPLES_1D)),
                np.empty((rows, _SAMPLES_1D)),
                np.empty((rows, _SAMPLES_1D)),
                np.empty((rows, _SAMPLES_1D - 1)),
                np.empty((rows, _SAMPLES_1D - 1)),
            )
        chunk = self._batch1d[0].shape[0]
        r_sq = r * r
        for start in range(0, n, chunk):
            cx = gx[start : start + chunk]
            cy = gy[start : start + chunk]
            m = len(cx)
            y_lo = np.maximum(0.0, cy - r)
            y_hi = np.minimum(self.height, cy + r)
            step = (y_hi - y_lo) / (_SAMPLES_1D - 1)
            ys = self._batch1d[0][:m]
            np.multiply(self._idx1d, step[:, None], out=ys)
            ys += y_lo[:, None]
            ys[:, -1] = y_hi
            a = self._batch1d[1][:m]
            np.subtract(ys, cy[:, None], out=a)
            a *= a
            np.subtract(r_sq, a, out=a)
            np.maximum(a, 0.0, out=a)
            np.sqrt(a, out=a)  # half chord
            b = self._batch1d[2][:m]
            np.subtract(cx[:, None], a, out=b)
            np.maximum(0.0, b, out=b)  # x_lo
            np.add(cx[:, None], a, out=a)
            np.minimum(self.width, a, out=a)  # x_hi
            np.subtract(a, b, out=a)
            np.maximum(a, 0.0, out=a)  # widths
            d = self._batch1d[3][:m]
            e = self._batch1d[4][:m]
            np.subtract(ys[:, 1:], ys[:, :-1], out=d)
            np.add(a[:, 1:], a[:, :-1], out=e)
            e *= d
            e *= 0.5
            sums = np.add.reduce(e, axis=1)
            # repro-lint: disable=DET004 -- pure lane select between already-computed arrays (no arithmetic): bit-exact, unlike the clamp-shaped np.clip/np.where PR 6 removed
            sums = np.where(y_hi > y_lo, sums, 0.0)
            setdefault = areas.setdefault
            for f, area in enumerate(sums.tolist(), start):
                setdefault((f, e_deg), area)

    # -- per-frame cached quantities ----------------------------------------

    def _sweep(self, f: int) -> tuple[np.ndarray, np.ndarray]:
        """Master-lattice areas and outer-layer cost for frame ``f``."""
        cached = self._sweeps.get(f)
        if cached is None:
            areas = self._disc_areas(self.gx[f], self.gy[f], self._master_radii)
            outer = np.maximum(self.total - areas, 0.0) / self._s_out_sq
            cached = (areas, outer)
            self._sweeps[f] = cached
        return cached

    #: Cache misses at one eccentricity before its area integral is batch
    #: evaluated across every frame (breakeven is ~9 scalar calls; a value
    #: seen this often — a fixed e1 or a recurring lattice e2 — keeps
    #: recurring, while SW-QVR's one-off float states never trigger it).
    _BATCH_AFTER = 4

    def _area256(self, f: int, e_deg: float) -> float:
        """Cached ``region_area_px(e_deg, gaze)`` for frame ``f``."""
        key = (f, e_deg)
        area = self._areas.get(key)
        if area is None:
            misses = self._e_misses.get(e_deg, 0) + 1
            if misses >= self._BATCH_AFTER:
                self._area256_all_frames(e_deg)
                return self._areas[key]
            self._e_misses[e_deg] = misses
            radius = e_deg * self.ppd
            area = 0.0 if radius == 0.0 else self._disc_area_256(
                self.gx[f], self.gy[f], radius
            )
            self._areas[key] = area
        return area

    def _optimize_e2(self, f: int, e1: float) -> float:
        """Replica of ``FoveationModel.optimize_e2`` at frame ``f``'s gaze."""
        if e1 >= self.corner:
            return e1
        k = self.lattice_offsets.get(e1)
        if k is None:
            return self._optimize_direct(f, e1)
        areas, outer = self._sweep(f)
        av = areas[k:]
        s_mid = min(self.mar.sampling_factor(e1, self.omega_star), self.cap)
        middle = np.maximum(av - av[0], 0.0) / (s_mid * s_mid)
        cost = middle + outer[k:]
        return float(self.master[k + int(np.argmin(cost))])

    def _optimize_direct(self, f: int, e1: float) -> float:
        """Off-lattice fallback: the full grid search from ``e1``.

        SW-QVR's controller emits a fresh float ``e1`` every frame (each a
        strict function of the previous frame's measured imbalance), so
        this path cannot amortise across calls; instead every step runs
        in preallocated workspaces with no temporaries.  The candidate
        lattice itself must come from ``np.arange`` — arange accumulates
        ``+= step`` incrementally, so its bits drift from
        ``e1 + k * step`` for some ``e1`` and the oracle's argmin can tie
        against that drift.  The reassociations below
        (``slope * cand + omega_0``, ``outer + middle``) only commute
        IEEE adds, which is bitwise neutral.
        """
        e_max = self.corner
        # repro-lint: disable=DET004 -- load-bearing: this lattice MUST come from arange (incremental += step accumulation); e1 + k*step drifts bitwise and the oracle's argmin can tie against that drift (PR 7)
        cand = np.arange(e1, e_max + _STEP_DEG, _STEP_DEG)
        np.minimum(cand, e_max, out=cand)
        n = len(cand)
        radii = self._ws_radii[:n]
        np.multiply(cand, self.ppd, out=radii)
        areas = self._disc_areas(self.gx[f], self.gy[f], radii)
        s_mid = min(self.mar.sampling_factor(e1, self.omega_star), self.cap)
        s_out = self._ws_sout[:n]
        np.multiply(self.mar.slope, cand, out=s_out)
        s_out += self.mar.omega_0
        s_out /= self.omega_star
        np.minimum(s_out, self.cap, out=s_out)
        np.maximum(s_out, 1.0, out=s_out)
        middle = self._ws_mid[:n]
        first = areas[0]
        np.subtract(areas, first, out=middle)
        np.maximum(middle, 0.0, out=middle)
        middle /= s_mid * s_mid
        cost = self._ws_cost[:n]
        np.subtract(self.total, areas, out=cost)
        np.maximum(cost, 0.0, out=cost)
        s_out *= s_out
        cost /= s_out
        cost += middle
        return float(cand[int(np.argmin(cost))])

    def plan(self, f: int, e1_deg: float) -> PartitionPlan:
        """Replica of ``FoveationModel.plan(e1, None, gaze_x, gaze_y)``.

        Plans are cached per (frame, e1): the controller's probe plan and
        the frame's partition plan coincide whenever ``e1`` is unchanged,
        and different systems revisit the same decisions.
        """
        key = (f, e1_deg)
        plan = self._plans.get(key)
        if plan is not None:
            return plan
        e1 = min(e1_deg, self.corner)
        e2 = self._optimize_e2(f, e1)
        e2 = min(e2, self.corner)
        area_e1 = self._area256(f, e1)
        area_e2 = self._area256(f, e2)
        middle_area = max(area_e2 - area_e1, 0.0)
        outer_area = max(self.total - area_e2, 0.0)
        s_mid = min(self.mar.sampling_factor(e1, self.omega_star), self.cap)
        s_out = min(self.mar.sampling_factor(e2, self.omega_star), self.cap)
        plan = PartitionPlan(
            e1_deg=e1,
            e2_deg=e2,
            middle_scale=s_mid,
            outer_scale=s_out,
            fovea_pixels=self.eyes * area_e1,
            middle_pixels=self.eyes * middle_area / (s_mid * s_mid),
            outer_pixels=self.eyes * outer_area / (s_out * s_out),
            native_pixels=self.native,
        )
        self._plans[key] = plan
        return plan


# --------------------------------------------------------------------------
# DES recurrences (capacity-1 FIFO timelines as floats)
# --------------------------------------------------------------------------


class _RemoteChain:
    """Float recurrence of ``VRSystem._remote_chain`` (uplink -> RR -> ENC ->
    chunk-led NET -> VD), carrying the four remote-side timelines."""

    __slots__ = ("rgpu", "enc", "net", "vd")

    def __init__(self) -> None:
        self.rgpu = 0.0
        self.enc = 0.0
        self.net = 0.0
        self.vd = 0.0

    def fetch(
        self,
        issue_fin: float,
        up_ms: float,
        render_ms: float,
        encode_ms: float,
        transmit_ms: float,
        decode_ms: float,
        chunks: int,
    ) -> tuple[float, float]:
        """Advance the chain one frame; return (net, decode) finish times."""
        up_fin = issue_fin + up_ms
        rr_fin = max(up_fin, self.rgpu) + render_ms
        self.rgpu = rr_fin
        self.enc = max(rr_fin, self.enc) + encode_ms
        earliest = up_fin + (render_ms + encode_ms) / chunks
        net_fin = max(earliest, self.net) + transmit_ms
        self.net = net_fin
        vd_fin = max(net_fin, self.vd) + decode_ms / chunks
        self.vd = vd_fin
        return net_fin, vd_fin


def _path_ms(*segments_ms: float) -> float:
    """Replica of ``VRSystem._path_latency_ms`` (same summation order)."""
    return (
        constants.SENSOR_TRANSPORT_MS
        + CL_MS
        + LS_MS
        + sum(segments_ms)
        + constants.DISPLAY_SCANOUT_MS
    )


class _Env:
    """Per-run model objects, mirroring ``VRSystem.__init__`` exactly."""

    def __init__(self, app: VRApp, platform: PlatformConfig | None, seed: int) -> None:
        self.app = app
        self.platform = platform if platform is not None else PlatformConfig()
        self.seed = seed
        self.mobile = MobileGPU(self.platform.gpu)
        self.remote = RemoteRenderer(self.platform.server, self.platform.gpu)
        self.channel = NetworkChannel(self.platform.network, seed=seed + 7)
        self.codec = self.platform.codec
        self.server_schedule = (
            ShareSchedule(self.platform.server_schedule)
            if self.platform.server_schedule is not None
            else None
        )
        self.chunks = self.platform.stream_chunks

    def server_share(self) -> float:
        """GPU share granted by the server schedule at the current time."""
        if self.server_schedule is None:
            return 1.0
        return self.server_schedule.share_at(self.channel.now_ms)

    def remote_render_ms(self, workload) -> float:
        """Remote render time scaled by the current server share."""
        return self.remote.render_time_ms(workload) / self.server_share()

    def serial_remote_ms(
        self, render_ms: float, encode_ms: float, transmit_ms: float, decode_ms: float
    ) -> float:
        """Serial (non-overlapped) latency of the full remote path."""
        return self.channel.uplink_time_ms(POSE_UPLOAD_BYTES) + pipelined_latency_ms(
            [render_ms, encode_ms, transmit_ms, decode_ms], self.chunks
        )


def _frontend(ready: float, cpu_free: float) -> tuple[float, float, float]:
    """CL then LS on the CPU timeline; returns (cl_fin, ls_fin, cpu_free)."""
    cl_fin = max(ready, cpu_free) + CL_MS
    ls_fin = cl_fin + LS_MS
    return cl_fin, ls_fin, ls_fin


def _pace_ready(ls_prev: float | None, merges: list[float], extra: float | None) -> float:
    """Ready time of the next frame's CL from the pacing dependencies."""
    if ls_prev is None:
        return 0.0
    if extra is not None:
        return max(ls_prev, extra)
    if len(merges) >= _PACING_WINDOW:
        return max(ls_prev, merges[-_PACING_WINDOW])
    return ls_prev


# --------------------------------------------------------------------------
# system kernels
# --------------------------------------------------------------------------


def _run_local(env: _Env, workloads) -> dict:
    mobile, channel = env.mobile, env.channel
    atw_ms = mobile.atw_cost(env.app.pixels_per_frame).total_ms
    cpu = gpu = 0.0
    ls_prev: float | None = None
    merges: list[float] = []
    index, tracking, display, path, local, gpu_busy = [], [], [], [], [], []
    for wl in workloads:
        ready = _pace_ready(ls_prev, merges, None)
        cl_fin, ls_fin, cpu = _frontend(ready, cpu)
        render_ms = mobile.render_time_ms(wl.full)
        lr_start = max(ls_fin, gpu)
        atw_fin = lr_start + render_ms + atw_ms
        gpu = atw_fin
        disp_fin = atw_fin + constants.DISPLAY_SCANOUT_MS
        channel.advance_to(disp_fin)
        merges.append(atw_fin)
        ls_prev = ls_fin
        index.append(wl.index)
        tracking.append(lr_start - constants.SENSOR_TRANSPORT_MS)
        display.append(disp_fin)
        path.append(_path_ms(render_ms, atw_ms))
        local.append(render_ms)
        gpu_busy.append(render_ms + atw_ms)
    n = len(index)
    return dict(
        index=index,
        tracking_ms=tracking,
        display_ms=display,
        path_latency_ms=path,
        local_ms=local,
        gpu_busy_ms=gpu_busy,
        cpu_busy_ms=[_CPU_BUSY_MS] * n,
    )


def _run_remote(env: _Env, workloads) -> dict:
    mobile, channel, codec = env.mobile, env.channel, env.codec
    pixels = env.app.pixels_per_frame
    atw_ms = mobile.atw_cost(pixels).total_ms
    encode_ms = env.remote.encode_time_ms(pixels)
    decode_ms = codec.decode_time_ms(pixels)
    payload = (
        codec.encode(pixels, workloads[0].content_complexity).payload_bytes
        if workloads
        else 0.0
    )
    chain = _RemoteChain()
    cpu = gpu = 0.0
    ls_prev: float | None = None
    merges: list[float] = []
    cols: dict[str, list] = {
        name: []
        for name in (
            "index", "tracking_ms", "display_ms", "path_latency_ms",
            "remote_path_ms", "transmitted_bytes", "gpu_busy_ms",
            "net_busy_ms", "vd_busy_ms", "dropped",
        )
    }
    for wl in workloads:
        ready = _pace_ready(ls_prev, merges, None)
        cl_fin, ls_fin, cpu = _frontend(ready, cpu)
        render_ms = env.remote_render_ms(wl.full)
        transmit_ms = channel.transfer_time_ms(payload)
        up_ms = channel.uplink_time_ms(POSE_UPLOAD_BYTES)
        _, vd_fin = chain.fetch(
            ls_fin, up_ms, render_ms, encode_ms, transmit_ms, decode_ms, env.chunks
        )
        atw_fin = max(vd_fin, gpu) + atw_ms
        gpu = atw_fin
        disp_fin = atw_fin + constants.DISPLAY_SCANOUT_MS
        merges.append(atw_fin)
        ls_prev = ls_fin
        channel.advance_to(disp_fin)
        remote_path = vd_fin - ls_fin
        serial_remote = env.serial_remote_ms(render_ms, encode_ms, transmit_ms, decode_ms)
        cols["index"].append(wl.index)
        cols["tracking_ms"].append(ls_fin - constants.SENSOR_TRANSPORT_MS)
        cols["display_ms"].append(disp_fin)
        cols["path_latency_ms"].append(_path_ms(serial_remote, atw_ms))
        cols["remote_path_ms"].append(remote_path)
        cols["transmitted_bytes"].append(payload)
        cols["gpu_busy_ms"].append(atw_ms)
        cols["net_busy_ms"].append(transmit_ms)
        cols["vd_busy_ms"].append(decode_ms)
        cols["dropped"].append(remote_path > constants.MTP_LATENCY_REQUIREMENT_MS)
    cols["cpu_busy_ms"] = [_CPU_BUSY_MS] * len(cols["index"])
    return cols


def _run_static(env: _Env, workloads) -> dict:
    mobile, channel, codec = env.mobile, env.channel, env.codec
    pixels = env.app.pixels_per_frame
    comp_ms = mobile.static_composition_cost(pixels).total_ms
    atw_ms = mobile.atw_cost(pixels).total_ms
    encode_ms = env.remote.encode_time_ms(pixels)
    decode_ms = codec.decode_time_ms(pixels)
    if workloads:
        colour = codec.encode(pixels, workloads[0].content_complexity).payload_bytes
        depth = codec.encode_depth(pixels / 2.0).payload_bytes
        payload = colour + depth
    else:
        payload = 0.0
    base_miss = StaticCollaborativeSystem.base_miss_rate
    miss_gain = StaticCollaborativeSystem.activity_miss_gain
    # One uniform draw per frame, in frame order — an array draw is
    # bit-identical to the scalar loop's sequential draws.
    draws = np.random.default_rng(env.seed + 31).random(len(workloads))
    chain = _RemoteChain()
    chunks = env.chunks
    cpu = gpu = 0.0
    ls_prev: float | None = None
    merges: list[float] = []
    prefetched_fin: float | None = None
    prefetched_payload = 0.0
    prefetched_serial = 0.0
    cols: dict[str, list] = {
        name: []
        for name in (
            "index", "tracking_ms", "display_ms", "path_latency_ms", "local_ms",
            "remote_path_ms", "transmitted_bytes", "gpu_busy_ms", "net_busy_ms",
            "vd_busy_ms", "mispredicted", "dropped",
        )
    }
    # Hoist per-frame lookups out of the hot loop (pure name binding).
    render_time = mobile.render_time_ms
    remote_render = env.remote_render_ms
    transfer_time = channel.transfer_time_ms
    uplink_time = channel.uplink_time_ms
    chain_fetch = chain.fetch

    def fetch(wl, ls_fin) -> tuple[float, float]:
        """Split-render fetch: remote background layer for this frame."""
        bg_fraction = 1.0 - wl.interactive_fraction
        bg_wl = wl.full.scaled(
            fragment_scale=bg_fraction,
            vertex_scale=bg_fraction,
            batch_scale=bg_fraction,
        )
        render_ms = remote_render(bg_wl)
        transmit_ms = transfer_time(payload)
        up_ms = uplink_time(POSE_UPLOAD_BYTES)
        _, vd_fin = chain_fetch(
            ls_fin, up_ms, render_ms, encode_ms, transmit_ms, decode_ms, chunks
        )
        serial = up_ms + pipelined_latency_ms(
            [render_ms, encode_ms, transmit_ms, decode_ms], chunks
        )
        return vd_fin, serial

    for i, wl in enumerate(workloads):
        ready = _pace_ready(ls_prev, merges, None)
        cl_fin, ls_fin, cpu = _frontend(ready, cpu)

        f = wl.interactive_fraction
        local_wl = wl.full.scaled(fragment_scale=f, vertex_scale=f, batch_scale=f)
        local_ms = render_time(local_wl)
        lr_start = max(ls_fin, gpu)
        lr_fin = lr_start + local_ms
        gpu = lr_fin

        miss_p = min(base_miss + miss_gain * wl.motion.activity, 0.6)
        mispredicted = bool(draws[i] < miss_p)

        if prefetched_fin is None or mispredicted:
            bg_fin, serial_fetch = fetch(wl, ls_fin)
            issued_payload = payload
        else:
            bg_fin = prefetched_fin
            issued_payload = prefetched_payload
            serial_fetch = prefetched_serial

        c_start = max(max(lr_fin, bg_fin), gpu)
        atw_fin = c_start + comp_ms + atw_ms
        gpu = atw_fin
        disp_fin = atw_fin + constants.DISPLAY_SCANOUT_MS

        if mispredicted:
            prefetched_fin, prefetched_payload, prefetched_serial = (
                bg_fin, issued_payload, serial_fetch,
            )
        else:
            prefetched_fin, prefetched_serial = fetch(wl, ls_fin)
            prefetched_payload = payload
        merges.append(atw_fin)
        ls_prev = ls_fin
        channel.advance_to(disp_fin)

        remote_path = bg_fin - ls_fin
        cols["index"].append(wl.index)
        cols["tracking_ms"].append(min(lr_start, ls_fin) - constants.SENSOR_TRANSPORT_MS)
        cols["display_ms"].append(disp_fin)
        cols["path_latency_ms"].append(
            _path_ms(max(local_ms, serial_fetch), comp_ms, atw_ms)
        )
        cols["local_ms"].append(local_ms)
        cols["remote_path_ms"].append(max(remote_path, 0.0))
        cols["transmitted_bytes"].append(issued_payload)
        cols["gpu_busy_ms"].append(local_ms + comp_ms + atw_ms)
        cols["net_busy_ms"].append(issued_payload / channel.mean_effective_bytes_per_ms)
        cols["vd_busy_ms"].append(decode_ms)
        cols["mispredicted"].append(mispredicted)
        cols["dropped"].append(mispredicted)
    cols["cpu_busy_ms"] = [_CPU_BUSY_MS] * len(cols["index"])
    return cols


def _run_foveated(
    env: _Env,
    workloads,
    controller: EccentricityController,
    uses_uca: bool,
    fove: _FoveationKernel,
) -> dict:
    mobile, channel, codec = env.mobile, env.channel, env.codec
    app = env.app
    pixels = app.pixels_per_frame
    controller.reset()
    requires_completed = controller.requires_completed_frame
    is_fixed = isinstance(controller, FixedEccentricityController)
    is_software = isinstance(controller, SoftwareAdaptiveController)
    needs_context = not (is_fixed or is_software)
    # SoftwareAdaptiveController ignores every context field; one reusable
    # placeholder keeps the verbatim select_e1 call (its state transition)
    # without paying for the probe plan it never reads.
    placeholder_context = (
        ControlContext(
            pose_delta=PoseDelta(),
            gaze_delta=GazeDelta(),
            triangles=0.0,
            fovea_fraction=0.0,
            periphery_pixels=0.0,
            ack_throughput_bytes_per_ms=0.0,
        )
        if is_software
        else None
    )
    if uses_uca:
        uca = UCAUnit(env.platform.uca)
        tail_ms = uca.critical_tail_ms(app.width_px, app.height_px)
        occupancy_ms = uca.occupancy_ms(app.width_px, app.height_px)
        comp_ms = atw_ms = 0.0
    else:
        tail_ms = occupancy_ms = 0.0
        comp_ms = mobile.foveated_composition_cost(pixels).total_ms
        atw_ms = mobile.atw_cost(pixels).total_ms
    chain = _RemoteChain()
    chunks = env.chunks
    cpu = gpu = liwc_free = uca_free = 0.0
    ls_prev: float | None = None
    merges: list[float] = []
    sw_extra: float | None = None
    prev_motion = None
    current_e1 = getattr(controller, "e1_deg", constants.MIN_ECCENTRICITY_DEG)
    cols: dict[str, list] = {
        name: []
        for name in (
            "index", "tracking_ms", "display_ms", "path_latency_ms", "e1_deg",
            "e2_deg", "local_ms", "remote_path_ms", "transmitted_bytes",
            "gpu_busy_ms", "net_busy_ms", "vd_busy_ms", "uca_busy_ms",
            "resolution_reduction", "dropped",
        )
    }
    # Hoist per-frame lookups out of the hot loop (pure name binding).
    select_e1 = controller.select_e1
    observe = controller.observe
    fove_plan = fove.plan
    encode_layer = codec.encode_layer
    decode_time = codec.decode_time_ms
    render_time = mobile.render_time_ms
    remote_pure_render = env.remote.render_time_ms
    server_share = env.server_share
    render_memo = _render_cache((env.platform.gpu, env.platform.server))
    remote_encode = env.remote.encode_time_ms
    transfer_time = channel.transfer_time_ms
    uplink_time = channel.uplink_time_ms
    advance_to = channel.advance_to
    chain_fetch = chain.fetch
    serial_remote_fn = env.serial_remote_ms
    merges_append = merges.append
    sensor_ms = constants.SENSOR_TRANSPORT_MS
    scanout_ms = constants.DISPLAY_SCANOUT_MS
    mtp_ms = constants.MTP_LATENCY_REQUIREMENT_MS
    app_index = cols["index"].append
    app_tracking = cols["tracking_ms"].append
    app_display = cols["display_ms"].append
    app_path = cols["path_latency_ms"].append
    app_e1 = cols["e1_deg"].append
    app_e2 = cols["e2_deg"].append
    app_local = cols["local_ms"].append
    app_remote = cols["remote_path_ms"].append
    app_bytes = cols["transmitted_bytes"].append
    app_gpu = cols["gpu_busy_ms"].append
    app_net = cols["net_busy_ms"].append
    app_vd = cols["vd_busy_ms"].append
    app_uca = cols["uca_busy_ms"].append
    app_res = cols["resolution_reduction"].append
    app_dropped = cols["dropped"].append
    for wl in workloads:
        ready = _pace_ready(ls_prev, merges, sw_extra)
        cl_fin, ls_fin, cpu = _frontend(ready, cpu)

        # --- controller: choose e1 -------------------------------------
        if is_fixed:
            e1 = controller.e1_deg
        elif is_software:
            e1 = select_e1(placeholder_context)
        else:
            pose_delta = (
                wl.motion.pose.delta_from(prev_motion.pose)
                if prev_motion is not None
                else PoseDelta()
            )
            gaze_delta = (
                wl.motion.gaze.delta_from(prev_motion.gaze)
                if prev_motion is not None
                else GazeDelta()
            )
            probe = fove_plan(wl.index, current_e1)
            e1 = select_e1(
                ControlContext(
                    pose_delta=pose_delta,
                    gaze_delta=gaze_delta,
                    triangles=wl.full.vertices,
                    fovea_fraction=probe.fovea_fraction,
                    periphery_pixels=probe.periphery_pixels,
                    ack_throughput_bytes_per_ms=channel.ack_throughput_bytes_per_ms,
                )
            )
        prev_motion = wl.motion
        current_e1 = e1
        liwc_fin = max(cl_fin, liwc_free) + LIWC_SELECT_MS
        liwc_free = liwc_fin

        # --- partition and per-portion timings -------------------------
        plan = fove_plan(wl.index, e1)
        middle_bytes = encode_layer(
            plan.middle_pixels, wl.content_complexity, plan.middle_scale
        ).payload_bytes
        outer_bytes = encode_layer(
            plan.outer_pixels, wl.content_complexity, plan.outer_scale
        ).payload_bytes
        transmitted = middle_bytes + outer_bytes
        full = wl.full
        render_key = (full, plan)
        pair = render_memo.get(render_key)
        if pair is None:
            pair = (
                render_time(split_local_workload(full, plan)),
                remote_pure_render(split_remote_workload(full, plan)),
            )
            if len(render_memo) < _RENDER_CACHE_ENTRIES_MAX:
                render_memo[render_key] = pair
        local_ms, rr_pure = pair
        rr_ms = rr_pure / server_share()
        enc_ms = remote_encode(plan.periphery_pixels)
        transmit_ms = transfer_time(transmitted)
        decode_ms = decode_time(plan.periphery_pixels)

        lr_start = max(max(ls_fin, liwc_fin), gpu)
        lr_fin = lr_start + local_ms
        gpu = lr_fin
        covers = plan.covers_full_frame
        if covers:
            remote_fin = ls_fin
            has_remote = False
            transmit_ms = 0.0
            net_busy = 0.0
        else:
            up_ms = uplink_time(POSE_UPLOAD_BYTES)
            _, remote_fin = chain_fetch(
                ls_fin, up_ms, rr_ms, enc_ms, transmit_ms, decode_ms, chunks
            )
            has_remote = True
            net_busy = transmit_ms

        # --- composition + ATW (or UCA merge) --------------------------
        merge_ready = max(lr_fin, remote_fin)
        if uses_uca:
            merge_fin = max(merge_ready, uca_free) + tail_ms
            uca_free = merge_fin
            gpu_busy = local_ms
            uca_busy = occupancy_ms
            merge_path_ms = tail_ms
        else:
            merge_fin = max(merge_ready, gpu) + comp_ms + atw_ms
            gpu = merge_fin
            gpu_busy = local_ms + comp_ms + atw_ms
            uca_busy = 0.0
            merge_path_ms = comp_ms + atw_ms
        disp_fin = merge_fin + scanout_ms

        advance_to(disp_fin)
        merges_append(merge_fin)
        ls_prev = ls_fin
        sw_extra = merge_fin if requires_completed else None

        des_remote_ms = remote_fin - ls_fin if has_remote else 0.0
        serial_remote = (
            0.0
            if covers
            else serial_remote_fn(rr_ms, enc_ms, transmit_ms, decode_ms)
        )
        if not is_fixed:
            observe(
                ControlFeedback(
                    measured_local_ms=local_ms,
                    measured_remote_ms=serial_remote,
                    triangles=wl.full.vertices,
                    fovea_fraction=plan.fovea_fraction,
                    periphery_pixels=plan.periphery_pixels,
                    payload_bytes=transmitted,
                    ack_throughput_bytes_per_ms=channel.ack_throughput_bytes_per_ms,
                )
            )
        app_index(wl.index)
        app_tracking(min(lr_start, ls_fin) - sensor_ms)
        app_display(disp_fin)
        app_path(_path_ms(max(local_ms, serial_remote), merge_path_ms))
        app_e1(plan.e1_deg)
        app_e2(plan.e2_deg)
        app_local(local_ms)
        app_remote(serial_remote)
        app_bytes(transmitted)
        app_gpu(gpu_busy)
        app_net(net_busy)
        app_vd(decode_ms if has_remote else 0.0)
        app_uca(uca_busy)
        app_res(plan.resolution_reduction)
        app_dropped(des_remote_ms > mtp_ms)
    cols["cpu_busy_ms"] = [_CPU_BUSY_MS] * len(cols["index"])
    return cols


# --------------------------------------------------------------------------
# entry point
# --------------------------------------------------------------------------

_FOVEATED_CONTROLLERS = {
    "ffr": (FixedEccentricityController, False),
    "dfr": (LIWCController, False),
    "sw-qvr": (SoftwareAdaptiveController, False),
    "qvr": (LIWCController, True),
}


def run_vectorized(
    system: str,
    app: VRApp,
    platform: PlatformConfig | None = None,
    seed: int = 0,
    n_frames: int = 300,
    warmup_frames: int = DEFAULT_WARMUP,
) -> SimulationResult:
    """Simulate one (system, app, platform, seed) spec on the array kernels.

    Produces results bit-identical to
    ``make_system(system, app, platform, seed).run(n_frames, warmup_frames)``
    for every design in :data:`~repro.sim.systems.SYSTEM_NAMES`.
    """
    key = system.lower()
    if key not in SYSTEM_NAMES:
        raise ConfigurationError(f"unknown system {system!r}; known: {SYSTEM_NAMES}")
    tracer = obs_trace.active()
    with tracer.span(
        "kernels.run",
        key=("kernels.run", key, app.name, seed, n_frames) if tracer.enabled else None,
        system=key, app=app.name,
    ):
        env = _Env(app, platform, seed)
        with tracer.span("kernels.workloads"):
            workloads = _workloads(app, seed, n_frames)
        if key == "local":
            with tracer.span("kernels.frame_pass", system=key):
                cols = _run_local(env, workloads)
        elif key == "remote":
            with tracer.span("kernels.frame_pass", system=key):
                cols = _run_remote(env, workloads)
        elif key == "static":
            with tracer.span("kernels.frame_pass", system=key):
                cols = _run_static(env, workloads)
        else:
            # repro-lint: disable=MP001 -- read-only registry constant: populated once at import, never mutated
            controller_cls, uses_uca = _FOVEATED_CONTROLLERS[key]
            kern = _foveation_kernel(app, seed, n_frames)
            # LRU hit rates for the kernel's lazy per-frame caches are
            # sampled as size deltas around the pass — the per-frame
            # accessors stay untouched, so the disabled path costs
            # nothing and the traced path adds no per-frame work.
            if tracer.enabled:
                plans_before = len(kern._plans)
                sweeps_before = len(kern._sweeps)
                areas_before = len(kern._areas)
            with tracer.span("kernels.frame_pass", system=key):
                cols = _run_foveated(env, workloads, controller_cls(), uses_uca, kern)
            if tracer.enabled:
                obs_metrics.counter("kernels.fov.plan.calls").inc(n_frames)
                obs_metrics.counter("kernels.fov.plan.new").inc(
                    len(kern._plans) - plans_before
                )
                obs_metrics.counter("kernels.fov.sweep.new").inc(
                    len(kern._sweeps) - sweeps_before
                )
                obs_metrics.counter("kernels.fov.area.new").inc(
                    len(kern._areas) - areas_before
                )
        with tracer.span("kernels.records"):
            records = records_from_arrays(**cols)
        return SimulationResult(
            system=key,
            app=app.name,
            records=records,
            warmup_frames=effective_warmup(n_frames, warmup_frames),
        )
