"""Profile-aware rendering-server admission and scheduling.

The paper's planet-scale framing assumes one rendering server serving
many heterogeneous clients, and the multi-user systems it compares
against argue the server must *allocate* its resources, not merely split
them: Firefly plans per-client quality offline from each client's
capability, and Coterie schedules shared infrastructure explicitly.
This module is that server-side layer for the reproduction:

* :class:`RenderServer` — capacity accounting (in *client-equivalents*
  of rendering demand) plus an admission controller that rejects, queues
  or degrades clients when a session oversubscribes the MCM GPU array;
* :class:`SchedulingPolicy` — pluggable allocation of the server's
  rendering throughput and of the session's shared downlink across the
  admitted clients:

  - :class:`FairSharePolicy` (``"fair-share"``) — uniform division, the
    pre-existing :func:`~repro.network.profile.shared_conditions` model
    and still the default (bit-compatible: a fair-share session expands
    to exactly the specs, results and cache keys of earlier releases);
  - :class:`WeightedPolicy` (``"weighted"``) — share proportional to
    each client's *current* profile bandwidth (a well-provisioned client
    can consume frames faster, so the server renders for it first);
  - :class:`DeadlinePolicy` (``"deadline"``) — share proportional to
    deadline pressure: clients whose estimated frame time is closest to
    (or beyond) the 90 Hz budget get more of the server, so a client
    inside a trace-driven bandwidth drop is boosted while its neighbours
    coast on their headroom.

Allocation is computed *at admission time* from the clients' declared
network profiles (Firefly-style offline planning): the server samples
every client's profile on a fixed tick grid over the session horizon and
emits one share **schedule** per client — frozen ``(start_ms, share)``
segments that travel inside :class:`~repro.sim.runner.RunSpec` (so runs
stay deterministic, cacheable and bit-identical at any job count) and
are sampled by the frame loop as simulation time advances.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro import constants
from repro.codec.h264 import H264Model
from repro.errors import ConfigurationError
from repro.gpu.config import GPUConfig, RemoteServerConfig
from repro.gpu.remote_gpu import RemoteRenderer
from repro.network.channel import snr_efficiency
from repro.network.conditions import NetworkConditions
from repro.network.profile import NetworkProfile, ShareSchedule, as_profile
from repro.workloads.apps import get_app

__all__ = [
    "ClientDemand",
    "ShareSchedule",
    "SessionAllocation",
    "AdmissionDecision",
    "SchedulingPolicy",
    "FairSharePolicy",
    "WeightedPolicy",
    "DeadlinePolicy",
    "RenderServer",
    "POLICIES",
    "POLICY_NAMES",
    "OVERFLOW_MODES",
    "policy_by_name",
]

#: Admission actions a client of an oversubscribed session can receive.
ADMISSION_ACTIONS = ("admit", "degrade", "reject", "queue")

#: Overflow modes of the admission controller.
OVERFLOW_MODES = ("degrade", "reject", "queue")

#: Floor on per-tick weights so one starving client cannot zero out the rest.
_MIN_WEIGHT = 1e-6


def _bytes_per_ms(throughput_mbps: float, snr_db: float) -> float:
    """Effective link rate in bytes/ms after SNR derating."""
    return (
        throughput_mbps * 1e6 / constants.BITS_PER_BYTE / 1000.0
        * snr_efficiency(snr_db)
    )


@dataclass(frozen=True)
class ClientDemand:
    """What one session client asks of the shared infrastructure.

    ``weight`` is the client's demand in client-equivalents (the
    admission currency); ``render_demand_ms`` and ``payload_bytes`` are
    per-frame estimates at full service used by the deadline policy's
    pressure model.  :meth:`estimate` derives all three from the app's
    Table 3 workload model, so admission planning needs no simulation.
    """

    app: str
    profile: NetworkProfile
    seed: int = 0
    weight: float = 1.0
    render_demand_ms: float = 0.0
    payload_bytes: float = 0.0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ConfigurationError(f"demand weight must be > 0, got {self.weight}")

    @classmethod
    def estimate(
        cls,
        app: str,
        profile: "NetworkProfile | NetworkConditions | str",
        seed: int = 0,
        weight: float = 1.0,
        server: RemoteServerConfig | None = None,
    ) -> "ClientDemand":
        """Estimate a client's demand from its title and link profile."""
        vr_app = get_app(app)
        renderer = RemoteRenderer(
            server if server is not None else RemoteServerConfig(), GPUConfig()
        )
        return cls(
            app=app,
            profile=as_profile(profile),
            seed=seed,
            weight=weight,
            render_demand_ms=renderer.render_time_ms(vr_app.full_workload()),
            payload_bytes=H264Model()
            .encode(vr_app.pixels_per_frame, vr_app.content_complexity)
            .payload_bytes,
        )

    def estimated_frame_ms(self, conditions: NetworkConditions) -> float:
        """Estimated per-frame time under the given instantaneous link."""
        transmit_ms = self.payload_bytes / _bytes_per_ms(
            conditions.throughput_mbps, conditions.snr_db
        )
        return (
            self.render_demand_ms + transmit_ms + 2.0 * conditions.propagation_ms
        )


@dataclass(frozen=True)
class SessionAllocation:
    """One admitted client's scheduled shares of server and downlink."""

    server: ShareSchedule
    downlink: ShareSchedule


@dataclass(frozen=True)
class AdmissionDecision:
    """The admission controller's verdict for one session client.

    ``service_level`` is the fraction of the client's full demand the
    server promises (1.0 for a plain admit; < 1 when the ``degrade``
    overflow mode shrinks everyone to fit capacity; 0 for rejected or
    queued clients, which receive no allocation this session).
    """

    client_index: int
    action: str
    service_level: float = 1.0

    def __post_init__(self) -> None:
        if self.action not in ADMISSION_ACTIONS:
            raise ConfigurationError(
                f"unknown admission action {self.action!r}; "
                f"known: {ADMISSION_ACTIONS}"
            )
        if not 0 <= self.service_level <= 1:
            raise ConfigurationError(
                f"service_level must be in [0, 1], got {self.service_level}"
            )

    @property
    def serviced(self) -> bool:
        """True when the client runs this session (admitted or degraded)."""
        return self.action in ("admit", "degrade")


class SchedulingPolicy(ABC):
    """Allocates instantaneous weights across a session's clients."""

    name: str = "abstract"

    @abstractmethod
    def weight_at(
        self, demand: ClientDemand, conditions: NetworkConditions, t_ms: float
    ) -> float:
        """This client's (unnormalised) allocation weight at ``t_ms``."""

    @property
    def uniform(self) -> bool:
        """True when weights never depend on client state (fair share)."""
        return False


class FairSharePolicy(SchedulingPolicy):
    """Uniform division — the legacy shared-infrastructure model."""

    name = "fair-share"

    def weight_at(self, demand, conditions, t_ms):
        """Equal weight for every client."""
        return 1.0

    @property
    def uniform(self) -> bool:
        """Always True: fair share ignores client state."""
        return True


class WeightedPolicy(SchedulingPolicy):
    """Share proportional to the client's current profile bandwidth."""

    name = "weighted"

    def weight_at(self, demand, conditions, t_ms):
        """Weight proportional to the client's current throughput."""
        return max(conditions.throughput_mbps, _MIN_WEIGHT)


class DeadlinePolicy(SchedulingPolicy):
    """Share proportional to deadline pressure (est. frame time / budget).

    A client whose estimated frame time approaches or exceeds the 90 Hz
    frame budget — e.g. because its link just entered a trace-driven
    bandwidth drop — takes a larger share of the server and downlink.
    Clients with headroom (pressure below 1) weigh a flat 1.0 — EDF-style,
    a deadline that will be met earns no boost — which keeps the session
    close to fair sharing outside contention windows and so keeps the
    session's mean throughput roughly conserved.
    """

    name = "deadline"

    #: Pressure exponent; > 1 sharpens the boost for struggling clients
    #: at a growing cost to session-mean throughput (1.0 keeps the mean
    #: within noise of fair share while still lifting the tail).
    gamma: float = 1.0

    def weight_at(self, demand, conditions, t_ms):
        """Weight grows with deadline pressure (frame time vs budget)."""
        pressure = demand.estimated_frame_ms(conditions) / constants.FRAME_BUDGET_MS
        return max(pressure, 1.0) ** self.gamma


#: Registry of scheduling policies by CLI name.
POLICIES: dict[str, SchedulingPolicy] = {
    policy.name: policy
    for policy in (FairSharePolicy(), WeightedPolicy(), DeadlinePolicy())
}

#: Policy names, fair-share (the default) first.
POLICY_NAMES: tuple[str, ...] = tuple(POLICIES)


def policy_by_name(name: str) -> SchedulingPolicy:
    """Resolve a scheduling policy by its registry name."""
    key = name.strip().lower()
    if key not in POLICIES:
        raise ConfigurationError(
            f"unknown scheduling policy {name!r}; known: {POLICY_NAMES}"
        )
    return POLICIES[key]


@dataclass(frozen=True)
class RenderServer:
    """The shared rendering server: capacity, admission, scheduling.

    Attributes
    ----------
    config:
        The MCM GPU array being shared (Sec. 5 server model).
    capacity_clients:
        Sustainable demand in client-equivalents; ``None`` derives it
        from the GPU count (each MCM GPU sustains ~1 full-demand client).
        Fractional capacities are meaningful: ``capacity_clients=0.5``
        can only serve a lone client at half service.
    overflow:
        What happens to demand beyond capacity: ``"degrade"`` admits
        everyone at proportionally reduced service (the default, matching
        the legacy divide-everything behaviour), ``"reject"`` turns away
        the excess clients, ``"queue"`` defers them to the next session.
    tick_ms:
        Granularity of the allocation schedule (profile sampling grid).
    """

    config: RemoteServerConfig = field(default_factory=RemoteServerConfig)
    capacity_clients: float | None = None
    overflow: str = "degrade"
    tick_ms: float = 250.0

    def __post_init__(self) -> None:
        if self.capacity_clients is not None and self.capacity_clients <= 0:
            raise ConfigurationError(
                f"capacity_clients must be > 0, got {self.capacity_clients}"
            )
        if self.overflow not in OVERFLOW_MODES:
            raise ConfigurationError(
                f"unknown overflow mode {self.overflow!r}; known: {OVERFLOW_MODES}"
            )
        if self.tick_ms <= 0:
            raise ConfigurationError(f"tick_ms must be > 0, got {self.tick_ms}")

    @property
    def capacity(self) -> float:
        """Capacity in client-equivalents."""
        if self.capacity_clients is not None:
            return self.capacity_clients
        return float(self.config.num_gpus)

    def fits(self, weight: float, load: float = 0.0) -> bool:
        """True when a client of ``weight`` fits beside ``load`` already placed.

        The greedy capacity check shared by :meth:`admit` and the
        render-fleet placement layer (:mod:`repro.sim.fleet`), so a
        single-server fleet admits exactly the clients a bare server
        would.
        """
        return load + weight <= self.capacity

    # -- admission -------------------------------------------------------------

    def admit(self, demands: tuple[ClientDemand, ...]) -> tuple[AdmissionDecision, ...]:
        """Decide each client's fate, in arrival order.

        Within capacity every client is admitted at full service.  Over
        capacity, ``degrade`` shrinks everyone proportionally, while
        ``reject``/``queue`` service a prefix (greedy in arrival order,
        the deterministic first-come-first-served baseline) and turn the
        rest away.
        """
        if not demands:
            return ()
        total = sum(d.weight for d in demands)
        if total <= self.capacity:
            return tuple(
                AdmissionDecision(i, "admit") for i in range(len(demands))
            )
        if self.overflow == "degrade":
            service = self.capacity / total
            return tuple(
                AdmissionDecision(i, "degrade", service_level=service)
                for i in range(len(demands))
            )
        decisions = []
        admitted_weight = 0.0
        spill = "reject" if self.overflow == "reject" else "queue"
        for i, demand in enumerate(demands):
            if self.fits(demand.weight, admitted_weight):
                admitted_weight += demand.weight
                decisions.append(AdmissionDecision(i, "admit"))
            else:
                decisions.append(AdmissionDecision(i, spill, service_level=0.0))
        return tuple(decisions)

    # -- scheduling ------------------------------------------------------------

    def allocate(
        self,
        demands: tuple[ClientDemand, ...],
        policy: "SchedulingPolicy | str",
        horizon_ms: float,
        sharing_efficiency: float = 0.9,
        service_levels: tuple[float, ...] | None = None,
        start_ms: float = 0.0,
    ) -> tuple[SessionAllocation, ...]:
        """Plan per-client share schedules over one planning window.

        Samples every client's profile on the tick grid and normalises
        the policy's weights so that equal weights reproduce the legacy
        uniform share ``1 / (n * sharing_efficiency)`` exactly.  The
        server schedule additionally scales by each client's admission
        ``service_level``; the downlink schedule does not (link capacity
        is not the server's to withhold).  Shares cap at 1.0 — a lone
        boosted client can at most use the whole resource.

        ``start_ms`` offsets the window on the session clock: an
        event-driven session re-plans at every epoch boundary, so epoch
        allocations sample each profile at ``start_ms + tick`` (the
        conditions actually in force then) while the emitted segments
        stay window-local — ``horizon_ms`` is the window *duration* and
        the first segment starts at 0, exactly as in the whole-session
        call the static planner makes.
        """
        chosen = policy_by_name(policy) if isinstance(policy, str) else policy
        if not demands:
            return ()
        if horizon_ms <= 0:
            raise ConfigurationError(f"horizon_ms must be > 0, got {horizon_ms}")
        if start_ms < 0:
            raise ConfigurationError(f"start_ms must be >= 0, got {start_ms}")
        if not 0 < sharing_efficiency <= 1:
            raise ConfigurationError("sharing_efficiency must be in (0, 1]")
        services = (
            service_levels
            if service_levels is not None
            else (1.0,) * len(demands)
        )
        if len(services) != len(demands):
            raise ConfigurationError(
                f"{len(services)} service levels for {len(demands)} demands"
            )
        n = len(demands)
        budget = 1.0 / sharing_efficiency  # sum of legacy fair shares
        samplers = [d.profile.sampler(d.seed) for d in demands]
        ticks = [0.0]
        while ticks[-1] + self.tick_ms < horizon_ms:
            ticks.append(ticks[-1] + self.tick_ms)
        server_segments: list[list[tuple[float, float]]] = [[] for _ in demands]
        downlink_segments: list[list[tuple[float, float]]] = [[] for _ in demands]
        for t in ticks:
            conditions = [
                sampler.conditions_at(start_ms + t) for sampler in samplers
            ]
            weights = [
                max(chosen.weight_at(d, c, t), _MIN_WEIGHT)
                for d, c in zip(demands, conditions)
            ]
            total = sum(weights)
            for i, weight in enumerate(weights):
                fraction = weight / total
                downlink = min(fraction * budget, 1.0)
                server = min(downlink * services[i], 1.0)
                _append_segment(server_segments[i], t, server)
                _append_segment(downlink_segments[i], t, downlink)
        return tuple(
            SessionAllocation(
                server=ShareSchedule(tuple(server_segments[i])),
                downlink=ShareSchedule(tuple(downlink_segments[i])),
            )
            for i in range(n)
        )


def _append_segment(
    segments: list[tuple[float, float]], start_ms: float, share: float
) -> None:
    """Append a segment, merging runs of identical shares."""
    if segments and segments[-1][1] == share:
        return
    segments.append((start_ms, share))
