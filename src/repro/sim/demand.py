"""Population-scale demand: sample a city of sessions, stream it end to end.

The paper frames Q-VR as infrastructure for "future mobile collaborative
VR" serving users around the world; the surveys of synchronous VR/AR
collaboration in PAPERS.md describe what that traffic looks like — many
concurrent multi-party sessions, bursty arrivals, heterogeneous devices
and links.  Every session in this repo used to be a hand-written event
list; this module is the generator that writes them at city scale.

A :class:`DemandScenario` is a seeded statistical description of a
population:

* **arrivals** — a homogeneous (:class:`PoissonArrivals`) or diurnal
  (:class:`DiurnalArrivals`) Poisson process, optionally spiked by
  :class:`FlashCrowd` windows that multiply the instantaneous rate
  (sampled exactly via Lewis-Shedler thinning);
* **shape** — per-session party size, duration in frames, and a client
  mix of weighted :class:`ClientTemplate` app/weight entries;
* **links** — a share-weighted profile mix assigning each client a
  network profile, including trace profiles replayed from the checked-in
  4G/5G measurement corpus under ``data/``;
* **churn** — a :class:`ChurnModel` of per-client late-join, early-leave
  and mid-session link-switch probabilities, expanded into valid
  :class:`~repro.sim.session.Join` / :class:`~repro.sim.session.Leave` /
  :class:`~repro.sim.session.ProfileSwitch` events strictly inside each
  session's duration.

:meth:`DemandScenario.expand` turns the scenario plus one integer seed
into a deterministic tuple of :class:`PlannedSession`s — full
event-driven :class:`~repro.sim.session.Session`s placed on the
scenario's :class:`~repro.sim.fleet.RenderFleet` (each session plans
against a dedicated fleet of the declared shape; "fleet-wide" metrics
aggregate across sessions).  All randomness flows from one seeded
``numpy`` PCG64 generator, so the same seed always reproduces the same
city, bit for bit.

:func:`run_population` folds the expansion through the existing sharded
batch path: per-policy, every session re-plans via
:meth:`~repro.sim.session.Session.with_policy` and its frozen specs
stream through :meth:`~repro.sim.runner.BatchEngine.stream_specs`; each
``(spec, result)`` pair is folded into order-independent streaming
aggregates (:class:`~repro.sim.metrics.StreamSummary` in ``exact``
mode) and dropped, so 10k+ client-sessions execute in bounded memory —
no full result dict ever exists.  The headline metric is fleet-wide SLO
attainment: the fraction of measurable client-windows whose steady-state
p99 FPS meets the scenario's floor, reported per policy.  Because every
aggregate is order-independent (exact sums, integer sketch counters,
integer SLO tallies), the report is bit-identical at any shard count,
worker count, or completion order.
"""

from __future__ import annotations

import json
import math
import os
from collections.abc import Iterator
from dataclasses import dataclass

import numpy as np

from repro import constants
from repro.errors import ConfigurationError
from repro.network.profile import NetworkProfile, profile_by_name
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.sim.fleet import RenderFleet, fleet_from_payload
from repro.sim.metrics import StreamSummary
from repro.sim.multiuser import ClientSpec
from repro.sim.runner import BatchEngine, RunSpec
from repro.sim.server import POLICY_NAMES
from repro.sim.session import Join, Leave, ProfileSwitch, Session, SessionEvent
from repro.workloads.apps import APPS

__all__ = [
    "SESSION_SEED_STRIDE",
    "ArrivalProcess",
    "PoissonArrivals",
    "DiurnalArrivals",
    "FlashCrowd",
    "ClientTemplate",
    "ChurnModel",
    "DemandScenario",
    "PlannedSession",
    "run_population",
]

#: Seed stride between consecutive sampled sessions.  Within a session
#: the planner strides client seeds by
#: :data:`~repro.sim.runner.CLIENT_SEED_STRIDE` (97), so any stride
#: comfortably above ``97 * max_party_size`` keeps every client-session
#: on a distinct seed; a prime keeps the lattices from aliasing.
SESSION_SEED_STRIDE = 10_007

#: Fraction bounds keeping every sampled churn event strictly inside its
#: session: joins land in the first half, leaves in the last, switches
#: strictly between a client's join and leave.
_JOIN_WINDOW = (0.05, 0.45)
_LEAVE_WINDOW = (0.55, 0.95)
_SWITCH_MARGIN = 0.02


# ---------------------------------------------------------------------------
# Arrival processes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ArrivalProcess:
    """Base class of session arrival processes: a rate curve over time.

    Rates are configured in sessions per minute and evaluated in
    sessions per millisecond (the simulation clock).  Subclasses define
    the shape; sampling happens once, in
    :meth:`DemandScenario.expand`, via exact Lewis-Shedler thinning
    against :meth:`peak_rate`.
    """

    rate_per_min: float

    def __post_init__(self) -> None:
        if not np.isfinite(self.rate_per_min) or self.rate_per_min <= 0:
            raise ConfigurationError(
                f"arrival rate must be finite and > 0/min, got {self.rate_per_min}"
            )

    @property
    def _rate_per_ms(self) -> float:
        return self.rate_per_min / 60_000.0

    def rate_at(self, t_ms: float) -> float:
        """Instantaneous arrival intensity at ``t_ms``, sessions/ms."""
        raise NotImplementedError

    def peak_rate(self) -> float:
        """A tight upper bound of :meth:`rate_at` (the thinning envelope)."""
        raise NotImplementedError


@dataclass(frozen=True)
class PoissonArrivals(ArrivalProcess):
    """Homogeneous Poisson arrivals: one constant rate."""

    def rate_at(self, t_ms: float) -> float:
        """Constant intensity, independent of the clock."""
        return self._rate_per_ms

    def peak_rate(self) -> float:
        """The constant rate is its own envelope."""
        return self._rate_per_ms


@dataclass(frozen=True)
class DiurnalArrivals(ArrivalProcess):
    """Diurnal (sinusoidally modulated) Poisson arrivals.

    ``rate(t) = mean * (1 + amplitude * cos(2*pi * (t - peak_ms) / period_ms))``
    — a smooth day curve peaking at ``peak_ms`` with troughs at
    ``mean * (1 - amplitude)``.  ``rate_per_min`` is the *mean* rate, so
    the expected session count over one full period matches the
    homogeneous process at the same rate.
    """

    period_ms: float = 86_400_000.0
    amplitude: float = 0.8
    peak_ms: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not np.isfinite(self.period_ms) or self.period_ms <= 0:
            raise ConfigurationError(
                f"diurnal period must be finite and > 0 ms, got {self.period_ms}"
            )
        if not 0 <= self.amplitude < 1:
            raise ConfigurationError(
                f"diurnal amplitude must be in [0, 1), got {self.amplitude}"
            )

    def rate_at(self, t_ms: float) -> float:
        """The day-curve intensity at ``t_ms``."""
        phase = 2.0 * math.pi * (t_ms - self.peak_ms) / self.period_ms
        return self._rate_per_ms * (1.0 + self.amplitude * math.cos(phase))

    def peak_rate(self) -> float:
        """The crest of the day curve."""
        return self._rate_per_ms * (1.0 + self.amplitude)


@dataclass(frozen=True)
class FlashCrowd:
    """A burst window multiplying the arrival rate (a launch, an event).

    While ``start_ms <= t < start_ms + duration_ms`` the instantaneous
    arrival intensity is multiplied by ``multiplier``; overlapping
    crowds compound multiplicatively.
    """

    start_ms: float
    duration_ms: float
    multiplier: float

    def __post_init__(self) -> None:
        if not np.isfinite(self.start_ms) or self.start_ms < 0:
            raise ConfigurationError(
                f"flash-crowd start must be finite and >= 0 ms, got {self.start_ms}"
            )
        if not np.isfinite(self.duration_ms) or self.duration_ms <= 0:
            raise ConfigurationError(
                f"flash-crowd duration must be finite and > 0 ms, got "
                f"{self.duration_ms}"
            )
        if not np.isfinite(self.multiplier) or self.multiplier <= 0:
            raise ConfigurationError(
                f"flash-crowd multiplier must be finite and > 0, got "
                f"{self.multiplier}"
            )

    def active_at(self, t_ms: float) -> bool:
        """True while the crowd is in effect at ``t_ms``."""
        return self.start_ms <= t_ms < self.start_ms + self.duration_ms


# ---------------------------------------------------------------------------
# Mixes and churn
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ClientTemplate:
    """One entry of the client mix: an app plus its sampling share.

    ``share`` is the relative probability of drawing this template for a
    party member; ``weight`` is the admission currency the drawn client
    carries (:attr:`~repro.sim.multiuser.ClientSpec.weight`, what the
    weighted scheduling policy divides by).
    """

    app: str
    share: float = 1.0
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.app not in APPS:
            raise ConfigurationError(
                f"unknown app {self.app!r} in client mix; known: {sorted(APPS)}"
            )
        if not np.isfinite(self.share) or self.share <= 0:
            raise ConfigurationError(
                f"client-template share must be finite and > 0, got {self.share}"
            )
        if not np.isfinite(self.weight) or self.weight <= 0:
            raise ConfigurationError(
                f"client-template weight must be finite and > 0, got {self.weight}"
            )


@dataclass(frozen=True)
class ChurnModel:
    """Per-client churn probabilities expanded into session events.

    ``late_join`` is the probability a party member (beyond the first,
    which anchors the session) arrives mid-session instead of at t = 0;
    ``leave`` the probability a member departs early; ``switch`` the
    probability a member roams onto another sampled link profile
    mid-session.  Event instants are sampled as fractions of the session
    duration inside disjoint windows (join before switch before leave),
    so every expanded event timeline is valid by construction.
    """

    late_join: float = 0.0
    leave: float = 0.0
    switch: float = 0.0

    def __post_init__(self) -> None:
        for name in ("late_join", "leave", "switch"):
            value = getattr(self, name)
            if not np.isfinite(value) or not 0 <= value <= 1:
                raise ConfigurationError(
                    f"churn probability {name} must be in [0, 1], got {value}"
                )


@dataclass(frozen=True)
class PlannedSession:
    """One sampled session of the expansion, ready to plan and execute."""

    index: int
    arrival_ms: float
    n_frames: int
    seed: int
    session: Session


# ---------------------------------------------------------------------------
# The scenario
# ---------------------------------------------------------------------------


def _normalized_shares(entries, what: str):
    """Validate a ``(value, share)`` mix and return it as a tuple."""
    entries = tuple(entries)
    if not entries:
        raise ConfigurationError(f"{what} mix must not be empty")
    for _, share in entries:
        if not np.isfinite(share) or share <= 0:
            raise ConfigurationError(
                f"{what} shares must be finite and > 0, got {share}"
            )
    return entries


def _pick(rng, entries):
    """Draw one ``value`` from ``(value, share)`` pairs (inverse CDF).

    The left-to-right sums below are deterministic (``entries`` is an
    ordered tuple) and frozen: rerouting them through ``math.fsum`` /
    ``ExactMoments`` would move the CDF thresholds by ulps and redraw
    every published city.
    """
    # repro-lint: disable=DET005 -- deterministic tuple order; frozen sampling contract
    total = sum(share for _, share in entries)
    x = rng.random() * total
    acc = 0.0
    for value, share in entries:
        acc += share  # repro-lint: disable=DET005 -- inverse-CDF walk over an ordered tuple
        if x < acc:
            return value
    return entries[-1][0]


@dataclass(frozen=True)
class DemandScenario:
    """A seeded statistical description of a city's worth of sessions.

    Attributes
    ----------
    name:
        Scenario label, carried into reports.
    horizon_ms:
        The arrival window: sessions arrive in ``[0, horizon_ms)``.
    arrivals:
        The :class:`ArrivalProcess` (homogeneous or diurnal Poisson).
    flash_crowds:
        Burst windows multiplying the arrival rate.
    party_sizes:
        ``(size, share)`` pairs — the party-size distribution.
    frames_min, frames_max:
        Inclusive bounds of the per-session duration, in frames
        (sampled uniformly; the session duration in milliseconds is
        ``n_frames *`` the 90 Hz frame budget).
    clients:
        The weighted :class:`ClientTemplate` app mix.
    profiles:
        ``(profile, share)`` pairs assigning each sampled client a
        network profile; ``None`` means the platform's default link.
        Resolved once at construction (names, registry entries, or
        ``data/`` trace CSV paths via
        :func:`~repro.network.profile.profile_by_name`).
    churn:
        The :class:`ChurnModel` expanded into Join/Leave/ProfileSwitch
        events.
    fleet:
        The :class:`~repro.sim.fleet.RenderFleet` shape every session
        plans against.
    policies:
        Scheduling policies to evaluate; each gets an independent
        planning + execution pass over the same expanded city.
    system:
        System design executed per client (default the full Q-VR).
    sharing_efficiency:
        Infrastructure scaling efficiency passed to each session.
    slo_p99_fps_floor:
        The SLO: a client-window attains it when its steady-state p99
        FPS is at least this floor.
    """

    name: str
    horizon_ms: float
    arrivals: ArrivalProcess
    fleet: RenderFleet
    flash_crowds: tuple[FlashCrowd, ...] = ()
    party_sizes: tuple[tuple[int, float], ...] = ((2, 1.0),)
    frames_min: int = 8
    frames_max: int = 20
    clients: tuple[ClientTemplate, ...] = (ClientTemplate(app="GRID"),)
    profiles: tuple[tuple[NetworkProfile | None, float], ...] = ((None, 1.0),)
    churn: ChurnModel = ChurnModel()
    policies: tuple[str, ...] = ("fair-share",)
    system: str = "qvr"
    sharing_efficiency: float = 0.9
    slo_p99_fps_floor: float = 60.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("scenario needs a name")
        if not np.isfinite(self.horizon_ms) or self.horizon_ms <= 0:
            raise ConfigurationError(
                f"horizon must be finite and > 0 ms, got {self.horizon_ms}"
            )
        object.__setattr__(
            self, "flash_crowds", tuple(self.flash_crowds)
        )
        sizes = _normalized_shares(self.party_sizes, "party-size")
        for size, _ in sizes:
            if not isinstance(size, int) or size < 1:
                raise ConfigurationError(
                    f"party sizes must be integers >= 1, got {size!r}"
                )
        object.__setattr__(self, "party_sizes", sizes)
        if not 1 <= self.frames_min <= self.frames_max:
            raise ConfigurationError(
                f"need 1 <= frames_min <= frames_max, got "
                f"[{self.frames_min}, {self.frames_max}]"
            )
        object.__setattr__(self, "clients", tuple(self.clients))
        if not self.clients:
            raise ConfigurationError("scenario needs at least one client template")
        object.__setattr__(
            self,
            "profiles",
            _normalized_shares(self.profiles, "profile"),
        )
        object.__setattr__(self, "policies", tuple(self.policies))
        if not self.policies:
            raise ConfigurationError("scenario needs at least one policy")
        if len(set(self.policies)) != len(self.policies):
            raise ConfigurationError(
                f"duplicate policies in scenario: {self.policies}"
            )
        for policy in self.policies:
            if policy not in POLICY_NAMES:
                raise ConfigurationError(
                    f"unknown scheduling policy {policy!r}; known: {POLICY_NAMES}"
                )
        if not 0 < self.sharing_efficiency <= 1:
            raise ConfigurationError("sharing_efficiency must be in (0, 1]")
        if not np.isfinite(self.slo_p99_fps_floor) or self.slo_p99_fps_floor <= 0:
            raise ConfigurationError(
                f"SLO p99-FPS floor must be finite and > 0, got "
                f"{self.slo_p99_fps_floor}"
            )
        if self.churn.switch > 0 and not self._switch_targets():
            raise ConfigurationError(
                "churn.switch > 0 needs at least one non-default profile "
                "in the mix to switch onto"
            )

    def _switch_targets(self):
        return tuple(
            (profile, share)
            for profile, share in self.profiles
            if profile is not None
        )

    # -- construction from JSON ------------------------------------------------

    @classmethod
    def from_payload(cls, payload: object, source: str = "scenario") -> "DemandScenario":
        """Build a scenario from a decoded JSON description.

        The schema is documented in ``docs/demand_scenarios.md``; see
        ``examples/population.json`` for a complete example.  ``source``
        names the payload's origin in error messages.
        """
        if not isinstance(payload, dict):
            raise ConfigurationError(f"{source} must be a JSON object")
        known = {
            "name", "horizon_ms", "arrivals", "flash_crowds", "party_sizes",
            "duration_frames", "clients", "profiles", "churn", "fleet",
            "policies", "system", "sharing_efficiency", "slo",
        }
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown scenario keys {unknown} in {source}; "
                f"known: {sorted(known)}"
            )
        for key in ("name", "horizon_ms", "arrivals", "clients", "fleet"):
            if key not in payload:
                raise ConfigurationError(f'{source} is missing "{key}"')

        arrivals = cls._arrivals_from(payload["arrivals"], source)
        crowds = tuple(
            FlashCrowd(
                start_ms=float(entry.get("start_ms", 0.0)),
                duration_ms=float(entry.get("duration_ms", 0.0)),
                multiplier=float(entry.get("multiplier", 1.0)),
            )
            for entry in payload.get("flash_crowds", ())
        )
        party = payload.get("party_sizes", {"2": 1.0})
        if not isinstance(party, dict) or not party:
            raise ConfigurationError(
                f'"party_sizes" in {source} must be a non-empty '
                "{size: share} object"
            )
        party_sizes = tuple(
            (int(size), float(share)) for size, share in party.items()
        )
        duration = payload.get("duration_frames", {})
        if not isinstance(duration, dict):
            raise ConfigurationError(
                f'"duration_frames" in {source} must be a {{min, max}} object'
            )
        clients = tuple(
            ClientTemplate(
                app=str(entry["app"]),
                share=float(entry.get("share", 1.0)),
                weight=float(entry.get("weight", 1.0)),
            )
            for entry in payload["clients"]
        )
        profile_mix = payload.get("profiles", {"default": 1.0})
        if not isinstance(profile_mix, dict) or not profile_mix:
            raise ConfigurationError(
                f'"profiles" in {source} must be a non-empty '
                "{name: share} object"
            )
        profiles = tuple(
            (
                None if name == "default" else profile_by_name(name),
                float(share),
            )
            for name, share in profile_mix.items()
        )
        churn_payload = payload.get("churn", {})
        if not isinstance(churn_payload, dict):
            raise ConfigurationError(f'"churn" in {source} must be an object')
        churn = ChurnModel(
            late_join=float(churn_payload.get("late_join", 0.0)),
            leave=float(churn_payload.get("leave", 0.0)),
            switch=float(churn_payload.get("switch", 0.0)),
        )
        slo = payload.get("slo", {})
        if not isinstance(slo, dict):
            raise ConfigurationError(f'"slo" in {source} must be an object')
        return cls(
            name=str(payload["name"]),
            horizon_ms=float(payload["horizon_ms"]),
            arrivals=arrivals,
            flash_crowds=crowds,
            party_sizes=party_sizes,
            frames_min=int(duration.get("min", 8)),
            frames_max=int(duration.get("max", 20)),
            clients=clients,
            profiles=profiles,
            churn=churn,
            fleet=fleet_from_payload(payload["fleet"], source=f'"fleet" in {source}'),
            policies=tuple(str(p) for p in payload.get("policies", ("fair-share",))),
            system=str(payload.get("system", "qvr")),
            sharing_efficiency=float(payload.get("sharing_efficiency", 0.9)),
            slo_p99_fps_floor=float(slo.get("p99_fps_floor", 60.0)),
        )

    @staticmethod
    def _arrivals_from(payload: object, source: str) -> ArrivalProcess:
        """Decode the ``"arrivals"`` section into an :class:`ArrivalProcess`."""
        if not isinstance(payload, dict) or "rate_per_min" not in payload:
            raise ConfigurationError(
                f'"arrivals" in {source} must be an object with "rate_per_min"'
            )
        process = str(payload.get("process", "poisson"))
        rate = float(payload["rate_per_min"])
        if process == "poisson":
            extra = sorted(set(payload) - {"process", "rate_per_min"})
            if extra:
                raise ConfigurationError(
                    f"unknown poisson arrival keys {extra} in {source}"
                )
            return PoissonArrivals(rate_per_min=rate)
        if process == "diurnal":
            extra = sorted(
                set(payload)
                - {"process", "rate_per_min", "period_ms", "amplitude", "peak_ms"}
            )
            if extra:
                raise ConfigurationError(
                    f"unknown diurnal arrival keys {extra} in {source}"
                )
            return DiurnalArrivals(
                rate_per_min=rate,
                period_ms=float(payload.get("period_ms", 86_400_000.0)),
                amplitude=float(payload.get("amplitude", 0.8)),
                peak_ms=float(payload.get("peak_ms", 0.0)),
            )
        raise ConfigurationError(
            f"unknown arrival process {process!r} in {source}; "
            "known: poisson, diurnal"
        )

    @classmethod
    def from_json(cls, path: str) -> "DemandScenario":
        """Load a scenario from a JSON file (see ``docs/demand_scenarios.md``)."""
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except OSError as error:
            raise ConfigurationError(
                f"cannot read scenario file {path!r}: {error}"
            ) from None
        except json.JSONDecodeError as error:
            raise ConfigurationError(
                f"invalid JSON in {path!r}: {error}"
            ) from None
        return cls.from_payload(payload, source=repr(path))

    # -- sampling ----------------------------------------------------------------

    def _combined_rate(self, t_ms: float) -> float:
        rate = self.arrivals.rate_at(t_ms)
        for crowd in self.flash_crowds:
            if crowd.active_at(t_ms):
                rate *= crowd.multiplier
        return rate

    def sample_arrivals(self, rng) -> list[float]:
        """Arrival instants in ``[0, horizon_ms)`` via exact thinning.

        Lewis-Shedler: candidate arrivals are drawn from a homogeneous
        process at the rate envelope (process peak times every crowd
        multiplier above 1) and accepted with probability
        ``rate(t) / envelope`` — an exact sampler for any bounded
        intensity, fully deterministic in ``rng``.
        """
        envelope = self.arrivals.peak_rate()
        for crowd in self.flash_crowds:
            envelope *= max(1.0, crowd.multiplier)
        arrivals: list[float] = []
        t = 0.0
        while True:
            # repro-lint: disable=DET005 -- the Lewis-Shedler recurrence IS this serial accumulation
            t += rng.exponential(1.0 / envelope)
            if t >= self.horizon_ms:
                return arrivals
            if rng.random() * envelope <= self._combined_rate(t):
                arrivals.append(t)

    def _sample_member(self, rng, first: bool):
        """Draw one party member: template, profile, and churn fractions."""
        template = _pick(rng, tuple((c, c.share) for c in self.clients))
        profile = _pick(rng, self.profiles)
        late = (
            not first
            and self.churn.late_join > 0
            and rng.random() < self.churn.late_join
        )
        join_frac = rng.uniform(*_JOIN_WINDOW) if late else 0.0
        leaves = self.churn.leave > 0 and rng.random() < self.churn.leave
        leave_frac = rng.uniform(*_LEAVE_WINDOW) if leaves else None
        switch_to = None
        switch_frac = 0.0
        if self.churn.switch > 0 and rng.random() < self.churn.switch:
            lo = join_frac + _SWITCH_MARGIN
            hi = (leave_frac if leaves else 1.0 - _SWITCH_MARGIN) - _SWITCH_MARGIN
            switch_frac = rng.uniform(lo, hi)
            switch_to = _pick(rng, self._switch_targets())
        spec = ClientSpec(
            app=template.app, profile=profile, weight=template.weight
        )
        return spec, late, join_frac, leave_frac, switch_frac, switch_to

    def _sample_session(self, rng, index: int, arrival_ms: float, seed: int):
        """Expand one arrival into a churning :class:`Session`."""
        size = _pick(rng, self.party_sizes)
        n_frames = int(rng.integers(self.frames_min, self.frames_max + 1))
        duration_ms = n_frames * constants.FRAME_BUDGET_MS
        members = [self._sample_member(rng, first=(k == 0)) for k in range(size)]

        initial = [m for m in members if not m[1]]
        joiners = sorted(
            (m for m in members if m[1]), key=lambda m: m[2]
        )
        indices: dict[int, int] = {}
        for session_index, member in enumerate(initial + joiners):
            indices[id(member)] = session_index

        events: list[SessionEvent] = []
        for member in joiners:
            events.append(Join(member[2] * duration_ms, member[0]))
        for member in members:
            spec, _, _, leave_frac, switch_frac, switch_to = member
            session_index = indices[id(member)]
            if switch_to is not None:
                events.append(
                    ProfileSwitch(
                        switch_frac * duration_ms,
                        client=session_index,
                        profile=switch_to,
                    )
                )
            if leave_frac is not None:
                events.append(Leave(leave_frac * duration_ms, client=session_index))

        session = Session(
            clients=tuple(m[0] for m in initial),
            events=tuple(events),
            sharing_efficiency=self.sharing_efficiency,
            policy=self.policies[0],
            fleet=self.fleet,
        )
        return PlannedSession(
            index=index,
            arrival_ms=arrival_ms,
            n_frames=n_frames,
            seed=seed,
            session=session,
        )

    def expand(
        self, seed: int = 0, max_sessions: int | None = None
    ) -> tuple[PlannedSession, ...]:
        """Expand the scenario into a deterministic tuple of sessions.

        All randomness derives from one PCG64 generator seeded with
        ``seed``: the same ``(scenario, seed)`` pair always yields the
        same sessions, clients, events, and per-session run seeds
        (``seed + SESSION_SEED_STRIDE * (i + 1)``).  ``max_sessions``
        truncates the city after that many arrivals — a capped expansion
        is a strict prefix of the full one, which is what the CI smoke
        cells rely on.
        """
        if max_sessions is not None and max_sessions < 1:
            raise ConfigurationError(
                f"max_sessions must be >= 1, got {max_sessions}"
            )
        rng = np.random.Generator(np.random.PCG64(seed))
        arrivals = self.sample_arrivals(rng)
        if max_sessions is not None:
            arrivals = arrivals[:max_sessions]
        return tuple(
            self._sample_session(
                rng,
                index=i,
                arrival_ms=arrival_ms,
                seed=seed + SESSION_SEED_STRIDE * (i + 1),
            )
            for i, arrival_ms in enumerate(arrivals)
        )


# ---------------------------------------------------------------------------
# Streaming execution
# ---------------------------------------------------------------------------


class _PolicyAccumulator:
    """Order-independent streaming aggregates of one policy pass.

    Everything here is invariant under result completion order: integer
    counters, exact-sum :class:`~repro.sim.metrics.StreamSummary`
    aggregates, and sketch percentiles — so the report is bit-identical
    at any shard/worker count.
    """

    __slots__ = (
        "policy", "floor", "sessions", "clients", "client_sessions",
        "executed", "frames", "latency", "fps", "client_p99",
        "met", "measured", "unmeasured",
    )

    def __init__(self, policy: str, floor: float) -> None:
        self.policy = policy
        self.floor = floor
        self.sessions = 0
        self.clients = 0
        self.client_sessions = 0
        self.executed = 0
        self.frames = 0
        self.latency = StreamSummary(exact=True)
        self.fps = StreamSummary(exact=True)
        self.client_p99 = StreamSummary(exact=True)
        self.met = 0
        self.measured = 0
        self.unmeasured = 0

    def observe_plan(self, timeline) -> None:
        """Count one planned session (before execution)."""
        self.sessions += 1
        self.clients += len(timeline.clients)
        self.client_sessions += len(timeline.specs)

    def observe_result(self, result) -> None:
        """Fold one executed client-session and drop it."""
        self.executed += 1
        self.frames += len(result.records)
        result.fold_into(latency=self.latency, fps=self.fps)
        p99 = result.p99_fps
        if math.isnan(p99):
            self.unmeasured += 1
            return
        self.measured += 1
        self.client_p99.add(p99)
        if p99 >= self.floor:
            self.met += 1

    @property
    def attainment(self) -> float:
        """Fraction of measurable client-windows meeting the p99 floor."""
        if self.measured == 0:
            return float("nan")
        return self.met / self.measured

    def report(self) -> dict:
        """The policy pass as a deterministic, JSON-ready dict."""
        return {
            "sessions": self.sessions,
            "clients": self.clients,
            "client_sessions": self.client_sessions,
            "executed": self.executed,
            "queued_clients": self.clients - self.client_sessions,
            "frames": self.frames,
            "latency_ms": self.latency.row(),
            "fps": self.fps.row(),
            "client_p99_fps": self.client_p99.row(),
            "slo": {
                "floor_fps": self.floor,
                "met": self.met,
                "measured": self.measured,
                "unmeasured": self.unmeasured,
                "attainment": self.attainment,
            },
        }


def run_population(
    scenario: DemandScenario,
    seed: int = 0,
    engine: BatchEngine | None = None,
    policies: tuple[str, ...] | None = None,
    max_sessions: int | None = None,
    progress=None,
) -> dict:
    """Expand a demand scenario and stream it through the batch path.

    For each policy, every planned session re-plans under that policy
    (:meth:`~repro.sim.session.Session.with_policy`) and its frozen
    specs are fed — lazily, session by session — to
    :meth:`~repro.sim.runner.BatchEngine.stream_specs`; each completed
    ``(spec, result)`` pair folds into a :class:`_PolicyAccumulator` and
    is dropped, so memory stays bounded regardless of city size.  When
    the engine spills to a configured stream directory, each policy pass
    gets its own subdirectory (plans differ per policy, and spill
    resumption is plan-digest-guarded).

    Returns the deterministic population report: per-policy client-window
    counts, streamed latency / FPS / per-client-p99 summaries, and SLO
    attainment against the scenario's p99-FPS floor.  Bit-identical for
    the same ``(scenario, seed)`` at any shard, worker, or job count.
    ``progress(policy, done, total)`` is called as results fold, if
    given.
    """
    if engine is None:
        engine = BatchEngine()
    wanted = scenario.policies if policies is None else tuple(policies)
    for policy in wanted:
        if policy not in scenario.policies:
            raise ConfigurationError(
                f"policy {policy!r} is not in the scenario's policy list "
                f"{scenario.policies}"
            )
    planned = scenario.expand(seed, max_sessions=max_sessions)
    base_stream_dir = engine.stream_dir
    policy_reports: dict[str, dict] = {}
    tracer = obs_trace.active()
    try:
        for policy in wanted:
            if base_stream_dir is not None:
                policy_dir = os.path.join(str(base_stream_dir), policy)
                os.makedirs(policy_dir, exist_ok=True)
                engine.stream_dir = policy_dir
            acc = _PolicyAccumulator(policy, scenario.slo_p99_fps_floor)

            def spec_stream() -> "Iterator[RunSpec]":
                """Yield every planned client-session spec for this policy."""
                for item in planned:
                    timeline = item.session.with_policy(policy).timeline(
                        system=scenario.system,
                        n_frames=item.n_frames,
                        seed=item.seed,
                    )
                    acc.observe_plan(timeline)
                    yield from timeline.specs

            slo_gauge = obs_metrics.gauge(f"population.slo.{policy}")
            with tracer.span(
                "population.policy",
                key=("population.policy", scenario.name, seed, policy),
                policy=policy,
            ):
                for _, result in engine.stream_specs(spec_stream()):
                    acc.observe_result(result)
                    obs_metrics.counter(f"population.executed.{policy}").inc()
                    if acc.measured:
                        slo_gauge.set(acc.attainment)
                    if progress is not None:
                        progress(policy, acc.executed, acc.client_sessions)
            policy_reports[policy] = acc.report()
    finally:
        engine.stream_dir = base_stream_dir
    first = next(iter(policy_reports.values()), {})
    return {
        "scenario": scenario.name,
        "seed": seed,
        "system": scenario.system,
        "horizon_ms": scenario.horizon_ms,
        "slo_p99_fps_floor": scenario.slo_p99_fps_floor,
        "sessions": len(planned),
        "clients": first.get("clients", 0),
        # repro-lint: disable=DET005 -- integer session counts; sum is order-exact
        "client_sessions": sum(r["client_sessions"] for r in policy_reports.values()),
        # repro-lint: disable=DET005 -- integer session counts; sum is order-exact
        "executed": sum(r["executed"] for r in policy_reports.values()),
        "policies": policy_reports,
    }
