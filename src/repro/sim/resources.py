"""Canonical pipeline resource names and capacities.

Every system pipeline maps its tasks onto this resource set (the hardware
blocks of Fig. 1/Fig. 4).  Names are module-level constants so typos fail
loudly at submit time.
"""

from __future__ import annotations


__all__ = [
    "CPU",
    "GPU",
    "NET",
    "VIDEO_DECODER",
    "UCA",
    "LIWC",
    "REMOTE_GPU",
    "ENCODER",
    "DISPLAY",
    "default_capacities",
]

#: Mobile SoC CPU running the VR application logic (CL) and setup (LS).
CPU = "cpu"

#: Local mobile GPU (LR, and C/ATW in non-UCA designs).
GPU = "gpu"

#: Downlink radio (one transfer at a time; serialisation limits FPS).
NET = "net"

#: Mobile hardware video decoder (VD).
VIDEO_DECODER = "vd"

#: The Unified Composition and ATW unit (Q-VR only).
UCA = "uca"

#: The workload controller (Q-VR only; nanosecond-latency lookups).
LIWC = "liwc"

#: Remote rendering server (RR).
REMOTE_GPU = "remote_gpu"

#: Remote hardware video encoder.
ENCODER = "encoder"

#: HMD scan-out.
DISPLAY = "display"


def default_capacities() -> dict[str, int]:
    """Resource capacities for the Table 2 platform.

    The UCA *resource* has capacity 1 because the two hardware units
    cooperate on a single frame (the per-frame occupancy already divides
    by the unit count); the remote server's parallelism is likewise folded
    into its render-time model.
    """
    return {
        CPU: 1,
        GPU: 1,
        NET: 1,
        VIDEO_DECODER: 1,
        UCA: 1,
        LIWC: 1,
        REMOTE_GPU: 1,
        ENCODER: 1,
        DISPLAY: 1,
    }
