"""High-level experiment runner: one call from (system, app, platform) to results.

Wraps system construction and execution, and provides the comparative runs
(all systems on one app, one system across a condition sweep) that the
benchmark harness and examples are written against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.sim.metrics import SimulationResult
from repro.sim.systems import PlatformConfig, SYSTEM_NAMES, make_system
from repro.workloads.apps import VRApp, get_app

__all__ = ["RunSpec", "run", "run_comparison", "speedup_over"]

#: Default frame count for evaluation runs (matches Fig. 14's 300 frames).
DEFAULT_FRAMES = 300


@dataclass(frozen=True)
class RunSpec:
    """A fully specified simulation run."""

    system: str
    app: str
    platform: PlatformConfig = field(default_factory=PlatformConfig)
    n_frames: int = DEFAULT_FRAMES
    seed: int = 0
    warmup_frames: int = 30

    def __post_init__(self) -> None:
        if self.system.lower() not in SYSTEM_NAMES:
            raise ConfigurationError(
                f"unknown system {self.system!r}; known: {SYSTEM_NAMES}"
            )
        if self.n_frames < 1:
            raise ConfigurationError("n_frames must be >= 1")


def run(spec: RunSpec) -> SimulationResult:
    """Execute one run specification."""
    app = get_app(spec.app)
    system = make_system(spec.system, app, spec.platform, seed=spec.seed)
    return system.run(n_frames=spec.n_frames, warmup_frames=spec.warmup_frames)


def run_comparison(
    app: str | VRApp,
    systems: tuple[str, ...] = SYSTEM_NAMES,
    platform: PlatformConfig | None = None,
    n_frames: int = DEFAULT_FRAMES,
    seed: int = 0,
) -> dict[str, SimulationResult]:
    """Run several system designs on the same app and platform."""
    app_obj = get_app(app) if isinstance(app, str) else app
    platform = platform if platform is not None else PlatformConfig()
    results: dict[str, SimulationResult] = {}
    for name in systems:
        system = make_system(name, app_obj, platform, seed=seed)
        results[name] = system.run(n_frames=n_frames)
    return results


def speedup_over(
    results: dict[str, SimulationResult], system: str, baseline: str = "local"
) -> float:
    """End-to-end latency speedup of ``system`` over ``baseline``."""
    if system not in results or baseline not in results:
        raise ConfigurationError(
            f"need both {system!r} and {baseline!r} in results; have {sorted(results)}"
        )
    return results[baseline].mean_latency_ms / results[system].mean_latency_ms
