"""Batched experiment execution: one layer from ``RunSpec`` to results.

This module is the single execution surface above
:class:`~repro.sim.systems.VRSystem`.  Everything the reproduction runs —
single comparisons, full figure sweeps, multi-user shared-infrastructure
scenarios — is expressed as frozen :class:`RunSpec` values and executed
through one engine:

* :class:`RunSpec` fully describes a simulation run, including the
  shared-infrastructure degradation of a multi-user deployment
  (``shared_clients`` / ``sharing_efficiency``), so a multi-user client
  is just a spec variant rather than a parallel API;
* :class:`Sweep` declaratively expands a parameter grid
  (system x app x platform x seed) into frozen specs;
* :class:`BatchEngine` executes spec batches over an optional
  ``concurrent.futures`` process pool and memoizes results in an on-disk
  cache keyed by a stable content hash of the spec (:func:`spec_key`).

Population-scale sweeps route through the sharded, work-stealing
executor (:mod:`repro.sim.shard`): ``BatchEngine(shards=...)`` partitions
the miss list into spec shards, streams every completed run to an
append-only spill file, and — via :meth:`BatchEngine.stream_specs` —
yields ``(spec, result)`` pairs in bounded memory instead of
materializing the whole sweep's output.

Execution is deterministic per spec: every run derives all randomness
from ``spec.seed``, so the same spec produces bit-identical results at
any job count, any shard/worker count, and across cache round-trips.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import hashlib
import itertools
import json
import os
import pickle
import tempfile
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterable, Iterator

from repro._version import __version__
from repro.errors import ConfigurationError
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.network.conditions import NetworkConditions
from repro.network.profile import (
    AllocatedProfile,
    NetworkProfile,
    OffsetProfile,
    as_profile,
    shared_conditions,
)
from repro.sim.metrics import DEFAULT_WARMUP, SimulationResult, effective_warmup
from repro.sim.server import POLICY_NAMES, ShareSchedule
from repro.sim.systems import PlatformConfig, SYSTEM_NAMES, make_system
from repro.workloads.apps import VRApp, get_app

__all__ = [
    "RunSpec",
    "Sweep",
    "BatchStats",
    "BatchEngine",
    "ResultCache",
    "run",
    "run_batch",
    "run_comparison",
    "spec_key",
    "speedup_over",
    "effective_warmup",
    "DEFAULT_FRAMES",
    "DEFAULT_WARMUP",
    "ENGINE_NAMES",
]

#: Default frame count for evaluation runs (matches Fig. 14's 300 frames).
DEFAULT_FRAMES = 300

#: Seed stride between co-located clients of one shared scenario.
CLIENT_SEED_STRIDE = 97

#: Execution engines a spec may select.  ``"vector"`` runs the
#: array-programmed kernels (:mod:`repro.sim.kernels`); ``"scalar"`` runs
#: the original per-frame task-graph pipeline as a reference oracle.
#: Both produce bit-identical results, so the choice never enters the
#: cache key (see :data:`_EXECUTION_FIELDS`).
ENGINE_NAMES = ("vector", "scalar")

#: Bump when spec semantics change so stale cache entries never resurface.
#: (v2: network profiles inside PlatformConfig, package version in the key.)
_SPEC_SCHEMA_VERSION = 2


@dataclass(frozen=True)
class RunSpec:
    """A fully specified simulation run.

    ``shared_clients`` > 1 models a shared-infrastructure deployment: the
    platform's server throughput and downlink divide across that many
    co-located clients (with ``sharing_efficiency`` of ideal 1/N scaling)
    before the run executes, so multi-user scenarios flow through the
    same batch engine as every other experiment.  ``shared_downlink``
    scopes the network part of that degradation: a heterogeneous client
    that brings its own private link (a per-client profile) still shares
    the rendering server but keeps its full link capacity.

    ``policy`` names the server scheduling policy the session ran under
    (see :mod:`repro.sim.server`).  Under the default ``"fair-share"``
    the uniform division above applies; other policies attach explicit
    share *schedules*: ``server_allocation`` scales the rendering
    server's throughput over time and ``downlink_allocation`` scales the
    shared link, both as ``(start_ms, share)`` segments emitted by the
    admission planner.  Fleet sessions (:mod:`repro.sim.fleet`) reuse
    the same two fields to carry their whole capacity story — migration
    penalties and parked outage spans appear as starvation-share
    segments spliced into the schedule — so a client of a failing,
    autoscaling cluster still freezes to one ordinary, cacheable spec.
    The neutral values (fair-share, no schedules) hash exactly as specs
    did before these fields existed, so published cache entries keep
    hitting.

    ``start_ms`` is the client's service start on the *session* clock —
    nonzero for a client of an event-driven session
    (:mod:`repro.sim.session`) that joined or was promoted out of the
    admission queue mid-session.  The run itself still executes on a
    local clock from 0; the offset shifts how the client samples the
    session's network profile, so a late starter observes the link as it
    is at its start instant.  Allocation schedules are already emitted
    in client-local time by the session planner.  The neutral value 0.0
    hashes exactly as specs did before the field existed.

    ``engine`` selects the execution backend: ``"vector"`` (default) runs
    the array-programmed frame kernels, ``"scalar"`` the original
    per-frame task-graph pipeline kept as a reference oracle.  The two
    are bit-identical, so the field is pure execution detail: it is
    excluded from the cache key entirely and both engines' results hash
    to — and satisfy — the same cache entry.
    """

    system: str
    app: str
    platform: PlatformConfig = field(default_factory=PlatformConfig)
    n_frames: int = DEFAULT_FRAMES
    seed: int = 0
    warmup_frames: int = DEFAULT_WARMUP
    shared_clients: int = 1
    sharing_efficiency: float = 0.9
    shared_downlink: bool = True
    policy: str = "fair-share"
    server_allocation: tuple[tuple[float, float], ...] | None = None
    downlink_allocation: tuple[tuple[float, float], ...] | None = None
    start_ms: float = 0.0
    engine: str = "vector"

    def __post_init__(self) -> None:
        if self.engine not in ENGINE_NAMES:
            raise ConfigurationError(
                f"unknown engine {self.engine!r}; known: {ENGINE_NAMES}"
            )
        if self.system.lower() not in SYSTEM_NAMES:
            raise ConfigurationError(
                f"unknown system {self.system!r}; known: {SYSTEM_NAMES}"
            )
        if self.n_frames < 1:
            raise ConfigurationError("n_frames must be >= 1")
        if self.warmup_frames < 0:
            raise ConfigurationError("warmup_frames must be >= 0")
        if self.warmup_frames >= self.n_frames:
            raise ConfigurationError(
                f"warmup_frames ({self.warmup_frames}) must be < n_frames "
                f"({self.n_frames}); the warm-up prefix would discard every frame"
            )
        if self.shared_clients < 1:
            raise ConfigurationError("shared_clients must be >= 1")
        if self.start_ms < 0:
            raise ConfigurationError(f"start_ms must be >= 0, got {self.start_ms}")
        if not 0 < self.sharing_efficiency <= 1:
            raise ConfigurationError("sharing_efficiency must be in (0, 1]")
        if self.policy not in POLICY_NAMES:
            raise ConfigurationError(
                f"unknown scheduling policy {self.policy!r}; known: {POLICY_NAMES}"
            )
        for name in ("server_allocation", "downlink_allocation"):
            schedule = getattr(self, name)
            if schedule is not None:
                # ShareSchedule validates shape, ordering and positivity,
                # so malformed schedules fail here rather than mid-run.
                ShareSchedule(schedule)
        if self.downlink_allocation is not None and self.server_allocation is None:
            raise ConfigurationError(
                "downlink_allocation requires a server_allocation (schedules "
                "are emitted together by the admission planner)"
            )
        if (
            self.server_allocation is not None
            and self.shared_downlink
            and self.downlink_allocation is None
        ):
            raise ConfigurationError(
                "a scheduled spec on the shared downlink needs a "
                "downlink_allocation too (the planner emits both schedules "
                "together); use shared_downlink=False for a private link"
            )

    def effective_platform(self) -> PlatformConfig:
        """The platform this client actually observes.

        With one client this is the configured platform unchanged; with N
        co-located clients the server's rendering throughput and the
        downlink divide across clients (statistical-multiplexing losses
        modelled by ``sharing_efficiency``) and jitter grows with the
        number of interleaved transfers.

        A spec carrying explicit allocation schedules (a non-fair-share
        session plan) skips the uniform division: the downlink schedule
        wraps the network in an
        :class:`~repro.network.profile.AllocatedProfile` and the server
        schedule rides on the platform for the frame loop to sample.  A
        late starter (``start_ms`` > 0) additionally observes the session
        profile through an :class:`~repro.network.profile.OffsetProfile`,
        so its local clock 0 lands at its session start instant.
        """
        n = self.shared_clients
        base = self.platform
        network: NetworkConditions | NetworkProfile = base.network
        if self.start_ms > 0:
            network = OffsetProfile(as_profile(network), self.start_ms)
        if self.server_allocation is not None:
            if self.shared_downlink and self.downlink_allocation is not None:
                scheduled: NetworkConditions | NetworkProfile = AllocatedProfile(
                    base=as_profile(network),
                    segments=self.downlink_allocation,
                    n_clients=n,
                    label=self.policy,
                )
            else:
                scheduled = network
            return replace(
                base, network=scheduled, server_schedule=self.server_allocation
            )
        if n == 1:
            return base if network is base.network else replace(base, network=network)
        share = 1.0 / (n * self.sharing_efficiency)
        if not self.shared_downlink:
            shared_network: NetworkConditions | NetworkProfile = network
        elif isinstance(network, NetworkProfile):
            shared_network = network.shared(n, self.sharing_efficiency)
        else:
            shared_network = shared_conditions(network, n, self.sharing_efficiency)
        shared_server = replace(
            base.server,
            per_gpu_speedup=base.server.per_gpu_speedup * share,
        )
        return replace(base, network=shared_network, server=shared_server)


def run(spec: RunSpec) -> SimulationResult:
    """Execute one run specification (deterministic in ``spec``).

    The result is deterministic in the spec's *semantic* fields only:
    both engines produce bit-identical records, so ``spec.engine`` picks
    how the run executes, never what it computes.
    """
    app = get_app(spec.app)
    if spec.engine == "scalar":
        system = make_system(
            spec.system, app, spec.effective_platform(), seed=spec.seed
        )
        return system.run(n_frames=spec.n_frames, warmup_frames=spec.warmup_frames)
    from repro.sim.kernels import run_vectorized

    return run_vectorized(
        spec.system,
        app,
        spec.effective_platform(),
        seed=spec.seed,
        n_frames=spec.n_frames,
        warmup_frames=spec.warmup_frames,
    )


# ---------------------------------------------------------------------------
# Declarative sweeps
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Sweep:
    """A parameter grid that expands into frozen :class:`RunSpec` values.

    The grid is the cartesian product ``platforms x systems x apps x
    seeds`` (in that deterministic order); scalar fields are shared by
    every expanded spec.  ``warmup_frames=None`` selects the largest
    valid default warm-up for ``n_frames`` (see :func:`effective_warmup`).

    ``profiles`` adds a network-environment axis: each platform is
    crossed with each profile (conditions, profile objects, or registry
    names — see :func:`~repro.network.profile.as_profile`), replacing the
    platform's network, so one sweep covers the same hardware under many
    link dynamics.

    ``policies`` adds a scheduling-policy axis (see
    :mod:`repro.sim.server`): each grid point is stamped with each policy
    name.  A sweep describes a *uniform* roster (``shared_clients``
    identical clients), for which every policy allocates the same equal
    shares as fair-share — so the axis exercises policy plumbing and
    separates cache keys without changing uniform-roster results;
    heterogeneous rosters where policies truly diverge are expressed via
    :class:`~repro.sim.multiuser.MultiUserScenario`.
    """

    systems: tuple[str, ...]
    apps: tuple[str, ...]
    platforms: tuple[PlatformConfig, ...] = (PlatformConfig(),)
    seeds: tuple[int, ...] = (0,)
    n_frames: int = DEFAULT_FRAMES
    warmup_frames: int | None = None
    shared_clients: int = 1
    sharing_efficiency: float = 0.9
    profiles: tuple[NetworkProfile | NetworkConditions | str, ...] | None = None
    policies: tuple[str, ...] | None = None
    engine: str = "vector"

    def __post_init__(self) -> None:
        for name in ("systems", "apps", "platforms", "seeds"):
            if not getattr(self, name):
                raise ConfigurationError(f"sweep dimension {name!r} is empty")
        for name in ("profiles", "policies"):
            if getattr(self, name) is not None and not getattr(self, name):
                raise ConfigurationError(f"sweep dimension {name!r} is empty")

    def resolved_platforms(self) -> tuple[PlatformConfig, ...]:
        """The platform axis after crossing with the profile axis."""
        if self.profiles is None:
            return self.platforms
        return tuple(
            replace(platform, network=as_profile(profile))
            for platform in self.platforms
            for profile in self.profiles
        )

    def resolved_policies(self) -> tuple[str, ...]:
        """The policy axis (the fair-share default when not swept)."""
        return self.policies if self.policies is not None else ("fair-share",)

    def __len__(self) -> int:
        return (
            len(self.resolved_platforms())
            * len(self.systems)
            * len(self.apps)
            * len(self.seeds)
            * len(self.resolved_policies())
        )

    def spec(
        self,
        system: str,
        app: str,
        platform: PlatformConfig,
        seed: int = 0,
        policy: str = "fair-share",
    ) -> RunSpec:
        """The spec of one grid point (for indexing into batch results)."""
        warmup = (
            effective_warmup(self.n_frames)
            if self.warmup_frames is None
            else self.warmup_frames
        )
        return RunSpec(
            system=system,
            app=app,
            platform=platform,
            n_frames=self.n_frames,
            seed=seed,
            warmup_frames=warmup,
            shared_clients=self.shared_clients,
            sharing_efficiency=self.sharing_efficiency,
            policy=policy,
            engine=self.engine,
        )

    def specs(self) -> tuple[RunSpec, ...]:
        """Expand the full grid, in deterministic iteration order."""
        return tuple(
            self.spec(system, app, platform, seed, policy)
            for platform, system, app, seed, policy in itertools.product(
                self.resolved_platforms(),
                self.systems,
                self.apps,
                self.seeds,
                self.resolved_policies(),
            )
        )


# ---------------------------------------------------------------------------
# Stable spec hashing and the on-disk result cache
# ---------------------------------------------------------------------------


#: Fields added *after* a spec schema freeze, with the neutral value that
#: preserves pre-existing behaviour.  A field still holding its neutral
#: value is omitted from the canonical form, so specs that never touch
#: the new feature hash exactly as they did before the field existed —
#: old cache entries keep hitting without a schema-version bump.
#: (v2 additions: scheduling policy + allocation schedules on RunSpec,
#: the server schedule on PlatformConfig, the asymmetric uplink on
#: NetworkConditions.)
_NEUTRAL_FIELDS: dict[str, dict[str, object]] = {
    "RunSpec": {
        "policy": "fair-share",
        "server_allocation": None,
        "downlink_allocation": None,
        # v3 addition (event-driven sessions): session-clock start offset.
        "start_ms": 0.0,
    },
    "PlatformConfig": {"server_schedule": None},
    "NetworkConditions": {"uplink_mbps": None},
}

#: Fields that describe *how* a run executes, not *what* it computes.
#: Unlike :data:`_NEUTRAL_FIELDS` these are dropped from the canonical
#: form unconditionally — an engine override must hash to the same key
#: as the default, because both engines produce bit-identical results
#: and must share (and satisfy) the same cache entry.
_EXECUTION_FIELDS: dict[str, frozenset[str]] = {
    "RunSpec": frozenset({"engine"}),
}


def _canonical(value: object) -> object:
    """Recursively convert a spec value into a canonical JSON-able form.

    Floats are rendered with ``float.hex`` so the key captures the exact
    bit pattern; dataclasses carry their type name so two config classes
    with coincidentally equal fields cannot collide.  Post-freeze fields
    still holding their legacy-neutral value are omitted (see
    :data:`_NEUTRAL_FIELDS`), keeping published cache keys stable.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        out: dict[str, object] = {"__type__": type(value).__name__}
        neutral = _NEUTRAL_FIELDS.get(type(value).__name__, {})
        execution = _EXECUTION_FIELDS.get(type(value).__name__, frozenset())
        for f in dataclasses.fields(value):
            if f.name in execution:
                continue
            item = getattr(value, f.name)
            if f.name in neutral and item == neutral[f.name]:
                continue
            out[f.name] = _canonical(item)
        return out
    if isinstance(value, bool) or value is None or isinstance(value, (str, int)):
        return value
    if isinstance(value, float):
        return value.hex()
    if isinstance(value, (tuple, list)):
        return [_canonical(item) for item in value]
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    raise ConfigurationError(
        f"cannot canonicalise {type(value).__name__} inside a RunSpec"
    )


def spec_key(spec: RunSpec) -> str:
    """Stable content hash of a spec (cache key, identical across processes).

    The key mixes in the spec schema version and the package version, so
    cached results produced by an older spec layout or an older release
    (whose models may have changed) invalidate instead of being silently
    reused.
    """
    payload = json.dumps(
        {
            "version": _SPEC_SCHEMA_VERSION,
            "package": __version__,
            "spec": _canonical(spec),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ResultCache:
    """On-disk memoization of completed runs, one pickle per spec hash.

    Entries are written atomically (temp file + rename) so concurrent
    writers — parallel benchmark workers sharing one cache directory —
    can never expose a torn file; unreadable or mismatched entries are
    treated as misses and overwritten.
    """

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def path_for(self, spec: RunSpec) -> Path:
        """Cache file path of a spec."""
        return self.directory / f"{spec_key(spec)}.pkl"

    def get(self, spec: RunSpec) -> SimulationResult | None:
        """The memoized result, or None on a miss."""
        path = self.path_for(spec)
        try:
            with path.open("rb") as handle:
                payload = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            obs_metrics.counter("runner.cache.miss").inc()
            return None
        if not isinstance(payload, dict) or payload.get("key") != spec_key(spec):
            obs_metrics.counter("runner.cache.miss").inc()
            return None
        obs_metrics.counter("runner.cache.hit").inc()
        return payload.get("result")

    def put(self, spec: RunSpec, result: SimulationResult) -> None:
        """Memoize one completed run."""
        obs_metrics.counter("runner.cache.put").inc()
        payload = {"key": spec_key(spec), "result": result}
        fd, tmp_name = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(payload, handle)
            os.replace(tmp_name, self.path_for(spec))
        except BaseException:
            if os.path.exists(tmp_name):
                os.unlink(tmp_name)
            raise

    def clear(self) -> int:
        """Evict every cached entry; returns how many files were removed.

        Stale entries (older schema or package versions) are unreachable
        anyway — their keys no longer match — but they still occupy disk;
        this is the eviction helper behind ``repro batch --clear-cache``.
        """
        removed = 0
        for path in self.directory.glob("*.pkl"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        obs_metrics.counter("runner.cache.evict").inc(removed)
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.pkl"))


# ---------------------------------------------------------------------------
# The batch engine
# ---------------------------------------------------------------------------


@dataclass
class BatchStats:
    """Cumulative accounting of an engine's executions and cache traffic."""

    requested: int = 0
    unique: int = 0
    executed: int = 0
    cache_hits: int = 0

    @property
    def deduplicated(self) -> int:
        """Requested specs answered by another spec in the same batch."""
        return self.requested - self.unique


class BatchEngine:
    """Executes batches of :class:`RunSpec` with dedup, cache and a pool.

    Parameters
    ----------
    jobs:
        Worker processes for uncached specs; 1 executes in-process.
        Results are bit-identical at any job count because each run is
        deterministic in its spec.
    cache_dir:
        Optional directory for the on-disk :class:`ResultCache`; None
        keeps memoization in-memory only.
    engine:
        Optional execution-engine override (``"vector"`` / ``"scalar"``)
        applied to every spec this engine executes.  Results stay keyed
        by the *requested* specs, and cache keys ignore the engine field,
        so overriding changes how runs execute, never what callers see.
    shards:
        Route uncached specs through the sharded work-stealing executor
        (:mod:`repro.sim.shard`) with this target shard count instead of
        the flat per-spec pool.  ``jobs`` becomes the worker count.
        Results are bit-identical to the flat path — sharding only
        changes scheduling and spill behaviour, never computation — and
        :class:`ResultCache` keys are unchanged.
    shard_mode:
        Sharded-execution mode (see :data:`repro.sim.shard.SHARD_MODES`):
        ``"process"`` (default) runs shards on a process pool with
        parent-scheduled stealing; ``"subprocess"`` simulates a
        multi-machine fleet of claim-based workers with heartbeat and
        requeue; ``"inline"`` executes shards sequentially in-process.
    stream_dir:
        Directory for the sharded executor's spill-to-disk result
        stream.  Reusing the directory resumes an interrupted sweep:
        completed shards are skipped and partial shard files resume
        after their salvaged prefix.  None spills to a temporary
        directory that is removed when execution finishes.

    Completed runs are always memoized in-memory for the engine's
    lifetime, so overlapping batches (e.g. Table 4 and Fig. 15 sharing
    their Q-VR grid) execute each spec once even without a cache
    directory; ``cache_dir`` additionally persists results across
    engines and processes.  The bounded-memory entry points
    (:meth:`stream_specs` / :meth:`stream_sweep`) skip that memo —
    results flow straight from the spill files to the caller.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: str | os.PathLike | None = None,
        engine: str | None = None,
        shards: int | None = None,
        shard_mode: str = "process",
        stream_dir: str | os.PathLike | None = None,
    ) -> None:
        from repro.sim.shard import SHARD_MODES

        if jobs < 1:
            raise ConfigurationError("jobs must be >= 1")
        if engine is not None and engine not in ENGINE_NAMES:
            raise ConfigurationError(
                f"unknown engine {engine!r}; known: {ENGINE_NAMES}"
            )
        if shards is not None and shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {shards}")
        if shard_mode not in SHARD_MODES:
            raise ConfigurationError(
                f"unknown shard mode {shard_mode!r}; known: {SHARD_MODES}"
            )
        self.jobs = jobs
        self.engine = engine
        self.shards = shards
        self.shard_mode = shard_mode
        self.stream_dir = stream_dir
        self.cache = ResultCache(cache_dir) if cache_dir is not None else None
        self.stats = BatchStats()
        self.last_shard_stats = None
        self._memo: dict[RunSpec, SimulationResult] = {}

    # -- execution -------------------------------------------------------------

    def run_specs(
        self, specs: Iterable[RunSpec]
    ) -> dict[RunSpec, SimulationResult]:
        """Execute a batch; returns results keyed by spec, input-ordered.

        Duplicate specs are executed once; cached specs are loaded from
        disk; the remainder runs on the process pool (``jobs`` > 1) or
        in-process, and lands in the cache for the next batch.
        """
        requested = list(specs)
        unique = list(dict.fromkeys(requested))
        self.stats.requested += len(requested)
        self.stats.unique += len(unique)

        tracer = obs_trace.active()
        with tracer.span(
            "batch.run_specs", requested=len(requested), unique=len(unique)
        ):
            results: dict[RunSpec, SimulationResult] = {}
            misses: list[RunSpec] = []
            for spec in unique:
                cached = self._memo.get(spec)
                if cached is None and self.cache is not None:
                    cached = self.cache.get(spec)
                if cached is not None:
                    results[spec] = cached
                    self._memo[spec] = cached
                    self.stats.cache_hits += 1
                else:
                    misses.append(spec)

            for spec, result in self._execute(misses):
                results[spec] = result
                self._memo[spec] = result
                if self.cache is not None:
                    self.cache.put(spec, result)
                self.stats.executed += 1
            return {spec: results[spec] for spec in unique}

    def _execute(
        self, specs: list[RunSpec]
    ) -> Iterator[tuple[RunSpec, SimulationResult]]:
        """Yield (spec, result) as runs complete.

        Results stream back in completion order so each lands in the
        cache immediately — an interrupted or partially failed sweep
        keeps every run that finished.  Callers key by spec, so the
        non-deterministic completion order never reaches outputs.

        An engine override rewrites each spec's ``engine`` field just for
        execution; yielded keys are the requested specs, so callers (and
        the cache, whose keys ignore the field anyway) are unaffected.

        With ``shards`` configured the batch instead flows through the
        sharded work-stealing executor, which spills every completed run
        to disk and already handles the engine override itself.
        """
        if self.shards is not None:
            yield from self._execute_sharded(specs)
            return
        if self.engine is None:
            executed = list(specs)
        else:
            executed = [replace(spec, engine=self.engine) for spec in specs]
        if self.jobs > 1 and len(specs) > 1:
            workers = min(self.jobs, len(specs))
            with concurrent.futures.ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {
                    pool.submit(run, job): spec
                    for spec, job in zip(specs, executed)
                }
                for future in concurrent.futures.as_completed(futures):
                    yield futures[future], future.result()
        else:
            for spec, job in zip(specs, executed):
                yield spec, run(job)

    def _execute_sharded(
        self, specs: list[RunSpec]
    ) -> Iterator[tuple[RunSpec, SimulationResult]]:
        """Run the miss list through the sharded work-stealing executor.

        Frames are yielded lazily from the executor's spill files; a
        temporary stream directory (when none was configured) is removed
        once the batch finishes, while a configured ``stream_dir`` keeps
        its spill files for resumption and post-hoc reads.
        """
        from repro.sim.shard import ShardedExecutor

        if not specs:
            return
        executor = ShardedExecutor(
            shards=self.shards,
            workers=self.jobs,
            mode=self.shard_mode,
            stream_dir=self.stream_dir,
            engine=self.engine,
        )
        self.last_shard_stats = executor.stats
        try:
            yield from executor.execute(specs)
        finally:
            executor.cleanup()

    def run_sweep(self, sweep: Sweep) -> dict[RunSpec, SimulationResult]:
        """Expand and execute a declarative sweep."""
        return self.run_specs(sweep.specs())

    # -- bounded-memory streaming ----------------------------------------------

    def stream_specs(
        self, specs: Iterable[RunSpec]
    ) -> Iterator[tuple[RunSpec, SimulationResult]]:
        """Execute a batch lazily, yielding ``(spec, result)`` pairs.

        The bounded-memory counterpart of :meth:`run_specs`: results are
        never accumulated into a dict or the in-memory memo, so a
        10k-spec sweep peaks at one result plus whatever the consumer
        retains (feed the pairs to a
        :class:`~repro.sim.metrics.StreamSummary` for O(1) statistics).
        Duplicate specs are still yielded once, disk-cache hits are
        served without execution, and executed results land in the disk
        cache — only the engine-lifetime memo is skipped.

        Pairs are yielded as execution completes, so the order mixes
        cache hits (input order, first) with executed shards (completion
        order); consumers key by spec.

        ``specs`` may be any iterable, including a lazy generator — it
        is consumed incrementally (duplicates are dropped as they
        arrive, cache hits yielded as they are found), so a population
        planner can emit specs session by session without ever
        materializing the duplicate-bearing request list.
        """
        seen: set[RunSpec] = set()
        misses: list[RunSpec] = []
        for spec in specs:
            self.stats.requested += 1
            if spec in seen:
                continue
            seen.add(spec)
            self.stats.unique += 1
            cached = self._memo.get(spec)
            if cached is None and self.cache is not None:
                cached = self.cache.get(spec)
            if cached is not None:
                self.stats.cache_hits += 1
                yield spec, cached
            else:
                misses.append(spec)
        for spec, result in self._execute(misses):
            if self.cache is not None:
                self.cache.put(spec, result)
            self.stats.executed += 1
            yield spec, result

    def stream_sweep(
        self, sweep: Sweep
    ) -> Iterator[tuple[RunSpec, SimulationResult]]:
        """Expand and execute a sweep lazily (see :meth:`stream_specs`)."""
        return self.stream_specs(sweep.specs())

    # -- conveniences ----------------------------------------------------------

    def comparison(
        self,
        app: str,
        systems: tuple[str, ...] = SYSTEM_NAMES,
        platform: PlatformConfig | None = None,
        n_frames: int = DEFAULT_FRAMES,
        seed: int = 0,
    ) -> dict[str, SimulationResult]:
        """Run several system designs on the same app and platform."""
        sweep = Sweep(
            systems=tuple(systems),
            apps=(app,),
            platforms=(platform if platform is not None else PlatformConfig(),),
            seeds=(seed,),
            n_frames=n_frames,
        )
        batch = self.run_sweep(sweep)
        return {spec.system: result for spec, result in batch.items()}


_DEFAULT_ENGINE: BatchEngine | None = None


def default_engine() -> BatchEngine:
    """The shared in-process serial engine (no cache)."""
    global _DEFAULT_ENGINE
    if _DEFAULT_ENGINE is None:
        _DEFAULT_ENGINE = BatchEngine()
    return _DEFAULT_ENGINE


def run_batch(
    specs: Iterable[RunSpec],
    jobs: int = 1,
    cache_dir: str | os.PathLike | None = None,
) -> dict[RunSpec, SimulationResult]:
    """One-shot batch execution (constructs a throwaway engine)."""
    return BatchEngine(jobs=jobs, cache_dir=cache_dir).run_specs(specs)


def run_comparison(
    app: str | VRApp,
    systems: tuple[str, ...] = SYSTEM_NAMES,
    platform: PlatformConfig | None = None,
    n_frames: int = DEFAULT_FRAMES,
    seed: int = 0,
    engine: BatchEngine | None = None,
) -> dict[str, SimulationResult]:
    """Run several system designs on the same app and platform.

    Accepts an app name (routed through the batch engine, so results are
    cacheable) or a custom :class:`VRApp` object (executed directly,
    since ad-hoc apps have no stable registry name to key a cache on).
    """
    if isinstance(app, VRApp):
        platform = platform if platform is not None else PlatformConfig()
        warmup = effective_warmup(n_frames)
        return {
            name: make_system(name, app, platform, seed=seed).run(
                n_frames=n_frames, warmup_frames=warmup
            )
            for name in systems
        }
    chosen = engine if engine is not None else default_engine()
    return chosen.comparison(
        app, systems=tuple(systems), platform=platform, n_frames=n_frames, seed=seed
    )


def speedup_over(
    results: dict[str, SimulationResult], system: str, baseline: str = "local"
) -> float:
    """End-to-end latency speedup of ``system`` over ``baseline``."""
    if system not in results or baseline not in results:
        raise ConfigurationError(
            f"need both {system!r} and {baseline!r} in results; have {sorted(results)}"
        )
    return results[baseline].mean_latency_ms / results[system].mean_latency_ms
