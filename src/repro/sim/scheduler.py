"""Deterministic task-graph / resource scheduler (the pipeline DES core).

The execution pipelines of Fig. 4 are directed acyclic graphs of tasks
(CL, LS, LR, RR, network, VD, C, ATW, ...) mapped onto serially shared
hardware resources (CPU, GPU, network link, video decoder, LIWC, UCA).
This module provides the discrete-event machinery the per-system pipeline
builders are written against:

* a :class:`Task` is a named unit of work with a duration, an optional
  resource, dependencies and an optional earliest-start time;
* a :class:`ResourceTimeline` tracks when each unit of a (possibly
  multi-unit) resource becomes free;
* :class:`TaskGraphScheduler` assigns start/finish times by simulating a
  FIFO-by-ready-time dispatch: among all tasks whose dependencies have
  completed, the earliest-ready one is dispatched first (submission order
  breaks ties), and it begins at
  ``max(ready time, earliest unit free time)``.

The dispatch order is provably monotone in ready time (a newly enabled
task can never become ready earlier than the task being dispatched), so a
single pass over a ready-heap yields the exact FIFO schedule, fully
deterministically.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

from repro.errors import SchedulingError

__all__ = ["Task", "ResourceTimeline", "TaskGraphScheduler"]


@dataclass(eq=False)
class Task:
    """One schedulable unit of pipeline work.

    Attributes
    ----------
    name:
        Diagnostic label (e.g. ``"frame12:LR"``).
    duration_ms:
        Service time on the resource.
    resource:
        Resource name, or None for a pure delay (no contention).
    deps:
        Tasks that must finish before this one may start.
    earliest_start_ms:
        Additional absolute lower bound on the start time.
    """

    name: str
    duration_ms: float
    resource: str | None = None
    deps: tuple["Task", ...] = ()
    earliest_start_ms: float = 0.0
    start_ms: float | None = field(default=None, init=False)
    finish_ms: float | None = field(default=None, init=False)

    def __post_init__(self) -> None:
        if self.duration_ms < 0:
            raise SchedulingError(f"task {self.name}: negative duration")
        if self.earliest_start_ms < 0:
            raise SchedulingError(f"task {self.name}: negative earliest start")

    @property
    def scheduled(self) -> bool:
        """True once the scheduler has assigned start/finish times."""
        return self.finish_ms is not None

    def finish(self) -> float:
        """Finish time; raises if the task has not been scheduled."""
        if self.finish_ms is None:
            raise SchedulingError(f"task {self.name} is not scheduled yet")
        return self.finish_ms


class ResourceTimeline:
    """Free-time bookkeeping for one resource with ``capacity`` units."""

    def __init__(self, name: str, capacity: int = 1) -> None:
        if capacity < 1:
            raise SchedulingError(f"resource {name}: capacity must be >= 1")
        self.name = name
        self.capacity = capacity
        self._free_at: list[float] = [0.0] * capacity
        heapq.heapify(self._free_at)
        self.busy_ms: float = 0.0

    def assign(self, ready_ms: float, duration_ms: float) -> tuple[float, float]:
        """Dispatch a task that became ready at ``ready_ms``.

        Returns (start, finish) on the earliest-free unit and marks the
        unit busy until the finish time.
        """
        unit_free = heapq.heappop(self._free_at)
        start = max(ready_ms, unit_free)
        finish = start + duration_ms
        heapq.heappush(self._free_at, finish)
        self.busy_ms += duration_ms
        return start, finish

    @property
    def horizon_ms(self) -> float:
        """Latest scheduled finish over all units."""
        return max(self._free_at)


class TaskGraphScheduler:
    """FIFO-by-ready-time scheduler over a set of named resources.

    Parameters
    ----------
    capacities:
        Mapping of resource name to unit count; unknown resources named by
        tasks raise :class:`~repro.errors.SchedulingError` at submit time.
    """

    def __init__(self, capacities: dict[str, int]) -> None:
        self.resources: dict[str, ResourceTimeline] = {
            name: ResourceTimeline(name, capacity)
            for name, capacity in capacities.items()
        }
        self._counter = itertools.count()
        self._pending: list[Task] = []
        self._scheduled: list[Task] = []

    # -- graph construction ------------------------------------------------------

    def submit(
        self,
        name: str,
        duration_ms: float,
        resource: str | None = None,
        deps: tuple[Task, ...] | list[Task] = (),
        earliest_start_ms: float = 0.0,
    ) -> Task:
        """Create and register a task; returns it for use as a dependency."""
        if resource is not None and resource not in self.resources:
            raise SchedulingError(f"unknown resource {resource!r} for task {name!r}")
        task = Task(
            name=name,
            duration_ms=duration_ms,
            resource=resource,
            deps=tuple(deps),
            earliest_start_ms=earliest_start_ms,
        )
        self._pending.append(task)
        return task

    # -- execution -----------------------------------------------------------------

    def run(self) -> None:
        """Assign start/finish times to every pending task.

        May be called repeatedly; each call schedules the tasks submitted
        since the previous call (resource timelines persist, which is how
        cross-frame pipelining arises).
        """
        pending = self._pending
        self._pending = []
        remaining_deps: dict[int, int] = {}
        dependents: dict[int, list[Task]] = {}
        ready_heap: list[tuple[float, int, Task]] = []

        for task in pending:
            if task.scheduled:
                raise SchedulingError(f"task {task.name} already scheduled")
            unscheduled = [dep for dep in task.deps if not dep.scheduled]
            remaining_deps[id(task)] = len(unscheduled)
            for dep in unscheduled:
                dependents.setdefault(id(dep), []).append(task)
            if remaining_deps[id(task)] == 0:
                heapq.heappush(
                    ready_heap, (self._ready_time(task), next(self._counter), task)
                )

        scheduled_count = 0
        while ready_heap:
            ready_ms, _, task = heapq.heappop(ready_heap)
            self._dispatch(task, ready_ms)
            scheduled_count += 1
            for dependent in dependents.get(id(task), ()):  # newly enabled?
                remaining_deps[id(dependent)] -= 1
                if remaining_deps[id(dependent)] == 0:
                    heapq.heappush(
                        ready_heap,
                        (self._ready_time(dependent), next(self._counter), dependent),
                    )
        if scheduled_count != len(pending):
            unmet = [t.name for t in pending if not t.scheduled]
            raise SchedulingError(
                f"cyclic or dangling dependencies; unscheduled tasks: {unmet[:10]}"
            )
        self._scheduled.extend(pending)

    def _ready_time(self, task: Task) -> float:
        dep_finish = max((dep.finish() for dep in task.deps), default=0.0)
        return max(dep_finish, task.earliest_start_ms)

    def _dispatch(self, task: Task, ready_ms: float) -> None:
        if task.resource is None:
            task.start_ms = ready_ms
            task.finish_ms = ready_ms + task.duration_ms
            return
        timeline = self.resources[task.resource]
        task.start_ms, task.finish_ms = timeline.assign(ready_ms, task.duration_ms)

    # -- inspection ------------------------------------------------------------------

    @property
    def tasks(self) -> tuple[Task, ...]:
        """All scheduled tasks, in submission order."""
        return tuple(self._scheduled)

    def busy_ms(self, resource: str) -> float:
        """Total busy time accumulated on a resource."""
        if resource not in self.resources:
            raise SchedulingError(f"unknown resource {resource!r}")
        return self.resources[resource].busy_ms

    def validate(self) -> None:
        """Check schedule invariants (dependencies and causality).

        Intended for tests: every task must start no earlier than each of
        its dependencies' finish times and its own earliest-start bound.
        """
        by_resource: dict[str, list[Task]] = {}
        for task in self._scheduled:
            assert task.start_ms is not None and task.finish_ms is not None
            if task.start_ms + 1e-9 < task.earliest_start_ms:
                raise SchedulingError(f"{task.name} starts before earliest-start")
            for dep in task.deps:
                if task.start_ms + 1e-9 < dep.finish():
                    raise SchedulingError(
                        f"{task.name} starts before dependency {dep.name} finishes"
                    )
            if task.resource is not None:
                by_resource.setdefault(task.resource, []).append(task)
        for name, tasks in by_resource.items():
            capacity = self.resources[name].capacity
            events: list[tuple[float, int]] = []
            for task in tasks:
                if task.duration_ms <= 0:
                    continue
                events.append((task.start_ms + 1e-9, 1))
                events.append((task.finish_ms - 1e-9, -1))
            load = 0
            for _, delta in sorted(events):
                load += delta
                if load > capacity:
                    raise SchedulingError(
                        f"resource {name} oversubscribed beyond capacity {capacity}"
                    )
