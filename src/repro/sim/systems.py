"""The seven VR system designs the paper evaluates (Fig. 4 pipelines).

Every system consumes the same deterministic workload stream and platform
configuration and produces a :class:`~repro.sim.metrics.SimulationResult`.
The execution pipelines are built frame by frame on the task-graph DES
(:mod:`repro.sim.scheduler`), with persistent resource timelines providing
cross-frame pipelining and contention — the effects Sec. 2.3 analyses.

Systems
-------
* :class:`LocalOnlySystem` — traditional commercial mobile VR.
* :class:`RemoteOnlySystem` — cloud streaming of full frames.
* :class:`StaticCollaborativeSystem` — foreground objects local,
  background remote with one-frame prefetch and misprediction refetch
  (Furion/FlashBack-style).
* :class:`CollaborativeFoveatedSystem` — the Q-VR software framework with
  pluggable eccentricity controller and optional UCA; concrete designs:

  - FFR: fixed ``e1 = 5`` degrees, composition/ATW on the GPU;
  - DFR: LIWC-adaptive ``e1``, composition/ATW still on the GPU;
  - SW-QVR: software-adaptive ``e1`` (previous-frame latencies, pipeline
    serialisation), UCA enabled;
  - Q-VR: LIWC + UCA (the full co-design).

Streaming model: the remote path (RR -> encode -> transmit -> decode) is
chunk-pipelined (Sec. 3.2 "parallel streaming"); in the DES the network
transfer starts one chunk of render+encode after the request reaches the
server, and the decoder finishes one chunk after the transfer — the
steady-state latency of the classic pipeline formula, while the radio's
occupancy (which throttles FPS) remains the full serialisation time.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field, replace

import numpy as np

from repro import constants
from repro.codec.h264 import H264Model
from repro.codec.stream import DEFAULT_CHUNKS, pipelined_latency_ms
from repro.core.controllers import (
    ControlContext,
    ControlFeedback,
    EccentricityController,
    FixedEccentricityController,
    LIWCController,
    SoftwareAdaptiveController,
)
from repro.core.foveation import DisplayGeometry, FoveationModel
from repro.core.partition import PartitionEngine
from repro.core.uca import UCAConfig, UCAUnit
from repro.errors import ConfigurationError
from repro.gpu.config import GPUConfig, RemoteServerConfig
from repro.gpu.mobile_gpu import MobileGPU
from repro.gpu.remote_gpu import RemoteRenderer
from repro.motion.dof import GazeDelta, PoseDelta
from repro.network.channel import NetworkChannel
from repro.network.conditions import NetworkConditions, WIFI
from repro.network.profile import NetworkProfile
from repro.sim import resources as R
from repro.sim.metrics import FrameRecord, SimulationResult, effective_warmup
from repro.sim.scheduler import Task, TaskGraphScheduler
from repro.sim.server import ShareSchedule
from repro.workloads.apps import VRApp
from repro.workloads.generator import FrameWorkload, WorkloadGenerator

__all__ = [
    "PlatformConfig",
    "POSE_UPLOAD_BYTES",
    "VRSystem",
    "LocalOnlySystem",
    "RemoteOnlySystem",
    "StaticCollaborativeSystem",
    "CollaborativeFoveatedSystem",
    "make_system",
    "SYSTEM_NAMES",
]

#: CPU time for the per-frame VR application logic (CL).
CL_MS = 1.5

#: CPU time for render setup and remote issue (LS).
LS_MS = 0.5

#: LIWC decision latency (nanosecond-class table lookup, Sec. 4.3).
LIWC_SELECT_MS = 0.001

#: Frames kept in flight by the pacing window (double buffering).
_PACING_WINDOW = 2

#: Uplink payload of one remote render request: 6-DoF pose, gaze vector,
#: eccentricity decision and timestamps.  Serialises at the link's uplink
#: rate when :attr:`~repro.network.conditions.NetworkConditions.uplink_mbps`
#: is modelled; costs only propagation otherwise (the legacy model).
POSE_UPLOAD_BYTES = 64.0


@dataclass(frozen=True)
class PlatformConfig:
    """Everything that defines the hardware/network environment of a run.

    ``network`` accepts either static :class:`NetworkConditions` (the
    Table 2 presets, constant for the whole run) or a time-varying
    :class:`~repro.network.profile.NetworkProfile`; the channel samples
    it as the frame loop advances.

    ``server_schedule`` is this client's scheduled share of the rendering
    server over simulation time — ``(start_ms, share)`` segments emitted
    by the admission planner (:mod:`repro.sim.server`).  ``None`` (the
    default) means the full configured server throughput, as before.
    """

    gpu: GPUConfig = field(default_factory=GPUConfig)
    server: RemoteServerConfig = field(default_factory=RemoteServerConfig)
    network: NetworkConditions | NetworkProfile = WIFI
    codec: H264Model = field(default_factory=H264Model)
    uca: UCAConfig = field(default_factory=UCAConfig)
    stream_chunks: int = DEFAULT_CHUNKS
    server_schedule: tuple[tuple[float, float], ...] | None = None

    def __post_init__(self) -> None:
        if self.stream_chunks < 1:
            raise ConfigurationError("stream_chunks must be >= 1")
        if self.server_schedule is not None:
            # ShareSchedule validates shape, ordering and positivity.
            ShareSchedule(self.server_schedule)

    def with_gpu_frequency(self, frequency_mhz: float) -> "PlatformConfig":
        """Copy of this platform at another local GPU/UCA clock."""
        return replace(
            self,
            gpu=self.gpu.at_frequency(frequency_mhz),
            uca=replace(self.uca, frequency_mhz=frequency_mhz),
        )


class VRSystem(ABC):
    """Base class: one rendering system design on one platform."""

    name: str = "abstract"

    def __init__(self, app: VRApp, platform: PlatformConfig | None = None, seed: int = 0) -> None:
        self.app = app
        self.platform = platform if platform is not None else PlatformConfig()
        self.seed = seed
        self.mobile = MobileGPU(self.platform.gpu)
        self.remote = RemoteRenderer(self.platform.server, self.platform.gpu)
        self.channel = NetworkChannel(self.platform.network, seed=seed + 7)
        self.codec = self.platform.codec
        self.display = DisplayGeometry(app.width_px, app.height_px)
        self.server_schedule = (
            ShareSchedule(self.platform.server_schedule)
            if self.platform.server_schedule is not None
            else None
        )

    # -- public API -----------------------------------------------------------------

    def run(self, n_frames: int = 300, warmup_frames: int = 30) -> SimulationResult:
        """Simulate ``n_frames`` frames and return the result."""
        workloads = WorkloadGenerator(self.app, seed=self.seed).generate(n_frames)
        scheduler = TaskGraphScheduler(R.default_capacities())
        records = self._simulate(scheduler, workloads)
        scheduler.validate()
        return SimulationResult(
            system=self.name,
            app=self.app.name,
            records=records,
            warmup_frames=effective_warmup(n_frames, warmup_frames),
        )

    @abstractmethod
    def _simulate(
        self, scheduler: TaskGraphScheduler, workloads: list[FrameWorkload]
    ) -> list[FrameRecord]:
        """Build and execute the per-frame pipelines."""

    # -- shared helpers ----------------------------------------------------------------

    def _frontend(
        self,
        scheduler: TaskGraphScheduler,
        index: int,
        pacing_deps: list[Task],
    ) -> tuple[Task, Task]:
        """Submit the CPU front end (CL then LS) for one frame."""
        cl = scheduler.submit(f"f{index}:CL", CL_MS, R.CPU, deps=tuple(pacing_deps))
        ls = scheduler.submit(f"f{index}:LS", LS_MS, R.CPU, deps=(cl,))
        return cl, ls

    def _server_share(self) -> float:
        """This client's scheduled share of the server at the current instant."""
        if self.server_schedule is None:
            return 1.0
        return self.server_schedule.share_at(self.channel.now_ms)

    def _remote_render_ms(self, workload) -> float:
        """Server render time under the client's current scheduled share.

        The MCM GPU array is time-shared: a client holding share ``s`` of
        the server sees its remote renders stretched by ``1/s``.  Without
        a schedule the full configured throughput applies (fair-share
        sessions encode their uniform division in the platform's server
        config instead, exactly as before).
        """
        return self.remote.render_time_ms(workload) / self._server_share()

    def _remote_chain(
        self,
        scheduler: TaskGraphScheduler,
        index: int,
        issue: Task,
        render_ms: float,
        encode_ms: float,
        transmit_ms: float,
        decode_ms: float,
        label: str = "",
    ) -> tuple[Task, Task]:
        """Submit the chunk-pipelined remote path; returns (net, vd) tasks.

        The request travels one uplink leg (propagation, plus pose-upload
        serialisation when the uplink is modelled); the radio transfer
        starts after the first chunk has rendered+encoded; the decode
        task models the tail chunk (full decode occupancy is reported in
        the frame record, not on the critical path).
        """
        chunks = self.platform.stream_chunks
        up = scheduler.submit(
            f"f{index}:up{label}",
            self.channel.uplink_time_ms(POSE_UPLOAD_BYTES),
            None,
            deps=(issue,),
        )
        rr = scheduler.submit(f"f{index}:RR{label}", render_ms, R.REMOTE_GPU, deps=(up,))
        scheduler.submit(f"f{index}:ENC{label}", encode_ms, R.ENCODER, deps=(rr,))
        scheduler.run()
        lead_ms = (render_ms + encode_ms) / chunks
        net = scheduler.submit(
            f"f{index}:NET{label}",
            transmit_ms,
            R.NET,
            deps=(up,),
            earliest_start_ms=up.finish() + lead_ms,
        )
        vd = scheduler.submit(
            f"f{index}:VD{label}", decode_ms / chunks, R.VIDEO_DECODER, deps=(net,)
        )
        return net, vd

    def _serial_remote_ms(
        self, render_ms: float, encode_ms: float, transmit_ms: float, decode_ms: float
    ) -> float:
        """Isolated (serial-path) latency of one remote fetch.

        One uplink leg (propagation plus pose-upload serialisation when
        the uplink is modelled) plus the chunk-pipelined completion time
        of the render/encode/transmit/decode stages — the quantity the
        paper's latency breakdowns stack.
        """
        return self.channel.uplink_time_ms(POSE_UPLOAD_BYTES) + pipelined_latency_ms(
            [render_ms, encode_ms, transmit_ms, decode_ms],
            self.platform.stream_chunks,
        )

    def _path_latency_ms(self, *segments_ms: float) -> float:
        """Serial end-to-end path: sensor + CPU front end + segments + display."""
        return (
            constants.SENSOR_TRANSPORT_MS
            + CL_MS
            + LS_MS
            + sum(segments_ms)
            + constants.DISPLAY_SCANOUT_MS
        )

    def _tracking_time(self, *latch_times_ms: float) -> float:
        """Motion sample time backing a frame's displayed content.

        Modern VR runtimes *late-latch* the render pose: the pose that
        shapes a frame's content is sampled when the work actually begins,
        not when the frame's logic was queued.  The frame's motion-to-
        photon latency therefore runs from the oldest pose latch among the
        points that consume tracking data (local render start, remote
        issue completion), minus the 2 ms sensor transport the paper
        counts (Sec. 5).
        """
        return min(latch_times_ms) - constants.SENSOR_TRANSPORT_MS


class LocalOnlySystem(VRSystem):
    """Traditional local rendering in commercial mobile VR devices."""

    name = "local"

    def _simulate(self, scheduler, workloads):
        records: list[FrameRecord] = []
        pace: list[Task] = []
        merges: list[Task] = []
        for wl in workloads:
            cl, ls = self._frontend(scheduler, wl.index, pace)
            render_ms = self.mobile.render_time_ms(wl.full)
            lr = scheduler.submit(f"f{wl.index}:LR", render_ms, R.GPU, deps=(ls,))
            atw_cost = self.mobile.atw_cost(self.app.pixels_per_frame)
            atw = scheduler.submit(f"f{wl.index}:ATW", atw_cost.total_ms, R.GPU, deps=(lr,))
            disp = scheduler.submit(
                f"f{wl.index}:DISP", constants.DISPLAY_SCANOUT_MS, None, deps=(atw,)
            )
            scheduler.run()
            merges.append(atw)
            pace = [ls]
            if len(merges) >= _PACING_WINDOW:
                pace.append(merges[-_PACING_WINDOW])
            self.channel.advance_to(disp.finish())
            assert lr.start_ms is not None
            records.append(
                FrameRecord(
                    index=wl.index,
                    tracking_ms=self._tracking_time(lr.start_ms),
                    display_ms=disp.finish(),
                    path_latency_ms=self._path_latency_ms(
                        render_ms, atw_cost.total_ms
                    ),
                    local_ms=render_ms,
                    gpu_busy_ms=render_ms + atw_cost.total_ms,
                    cpu_busy_ms=CL_MS + LS_MS,
                )
            )
        return records


class RemoteOnlySystem(VRSystem):
    """Cloud streaming: the server renders and streams full frames."""

    name = "remote"

    def _simulate(self, scheduler, workloads):
        records: list[FrameRecord] = []
        pace: list[Task] = []
        merges: list[Task] = []
        for wl in workloads:
            cl, ls = self._frontend(scheduler, wl.index, pace)
            pixels = self.app.pixels_per_frame
            render_ms = self._remote_render_ms(wl.full)
            encode_ms = self.remote.encode_time_ms(pixels)
            payload = self.codec.encode(pixels, wl.content_complexity).payload_bytes
            transmit_ms = self.channel.transfer_time_ms(payload)
            decode_ms = self.codec.decode_time_ms(pixels)
            net, vd = self._remote_chain(
                scheduler, wl.index, ls, render_ms, encode_ms, transmit_ms, decode_ms
            )
            atw_cost = self.mobile.atw_cost(pixels)
            atw = scheduler.submit(f"f{wl.index}:ATW", atw_cost.total_ms, R.GPU, deps=(vd,))
            disp = scheduler.submit(
                f"f{wl.index}:DISP", constants.DISPLAY_SCANOUT_MS, None, deps=(atw,)
            )
            scheduler.run()
            merges.append(atw)
            pace = [ls]
            if len(merges) >= _PACING_WINDOW:
                pace.append(merges[-_PACING_WINDOW])
            self.channel.advance_to(disp.finish())
            remote_path = vd.finish() - ls.finish()
            serial_remote = self._serial_remote_ms(
                render_ms, encode_ms, transmit_ms, decode_ms
            )
            records.append(
                FrameRecord(
                    index=wl.index,
                    tracking_ms=self._tracking_time(ls.finish()),
                    display_ms=disp.finish(),
                    path_latency_ms=self._path_latency_ms(
                        serial_remote, atw_cost.total_ms
                    ),
                    remote_path_ms=remote_path,
                    transmitted_bytes=payload,
                    gpu_busy_ms=atw_cost.total_ms,
                    net_busy_ms=transmit_ms,
                    vd_busy_ms=decode_ms,
                    cpu_busy_ms=CL_MS + LS_MS,
                    dropped=remote_path > constants.MTP_LATENCY_REQUIREMENT_MS,
                )
            )
        return records


class StaticCollaborativeSystem(VRSystem):
    """Static collaborative rendering with background prefetch (Sec. 2.2-II).

    The pre-defined interactive (foreground) objects render locally at
    native resolution; the full background frame plus its depth map is
    prefetched from the server one frame ahead using predicted motion.
    A misprediction (probability rising with head-motion activity, since
    the pose must be extrapolated ~3 frames out) forces a synchronous
    refetch.  Composition is the expensive depth-embedding variant and
    runs on the GPU, as does ATW.
    """

    name = "static"

    #: Base misprediction probability of the one-frame-ahead pose predictor.
    base_miss_rate = 0.05

    #: Additional miss probability at full head-motion activity.
    activity_miss_gain = 0.55

    def _simulate(self, scheduler, workloads):
        records: list[FrameRecord] = []
        rng = np.random.default_rng(self.seed + 31)
        pace: list[Task] = []
        merges: list[Task] = []
        prefetched: Task | None = None  # background-ready event for this frame
        prefetched_payload = 0.0
        prefetched_serial = 0.0
        for wl in workloads:
            cl, ls = self._frontend(scheduler, wl.index, pace)
            scheduler.run()

            # Local foreground rendering.
            f = wl.interactive_fraction
            local_wl = wl.full.scaled(fragment_scale=f, vertex_scale=f, batch_scale=f)
            local_ms = self.mobile.render_time_ms(local_wl)
            lr = scheduler.submit(f"f{wl.index}:LR", local_ms, R.GPU, deps=(ls,))

            # Background for *this* frame: the prefetch issued last frame,
            # unless the pose prediction missed.
            miss_p = min(
                self.base_miss_rate + self.activity_miss_gain * wl.motion.activity, 0.6
            )
            mispredicted = bool(rng.random() < miss_p)
            if prefetched is None or mispredicted:
                bg_ready, issued_payload, serial_fetch = self._fetch_background(
                    scheduler, wl, ls, refetch=mispredicted
                )
            else:
                bg_ready = prefetched
                issued_payload = prefetched_payload
                serial_fetch = prefetched_serial

            # Composition (depth embedding) and ATW compete for the GPU.
            comp = self.mobile.static_composition_cost(self.app.pixels_per_frame)
            c = scheduler.submit(
                f"f{wl.index}:C", comp.total_ms, R.GPU, deps=(lr, bg_ready)
            )
            atw_cost = self.mobile.atw_cost(self.app.pixels_per_frame)
            atw = scheduler.submit(f"f{wl.index}:ATW", atw_cost.total_ms, R.GPU, deps=(c,))
            disp = scheduler.submit(
                f"f{wl.index}:DISP", constants.DISPLAY_SCANOUT_MS, None, deps=(atw,)
            )

            # Prefetch the *next* frame's background now (predicted pose).
            # After a misprediction the synchronous refetch is fresh enough
            # to serve as the next frame's background, so no extra prefetch
            # is issued (otherwise the radio would carry two background
            # streams per frame).
            if mispredicted:
                prefetched, prefetched_payload, prefetched_serial = (
                    bg_ready, issued_payload, serial_fetch,
                )
            else:
                prefetched, prefetched_payload, prefetched_serial = (
                    self._fetch_background(scheduler, wl, ls, refetch=False, label="pre")
                )
            scheduler.run()
            merges.append(atw)
            pace = [ls]
            if len(merges) >= _PACING_WINDOW:
                pace.append(merges[-_PACING_WINDOW])
            self.channel.advance_to(disp.finish())

            remote_path = bg_ready.finish() - ls.finish()
            assert lr.start_ms is not None
            records.append(
                FrameRecord(
                    index=wl.index,
                    tracking_ms=self._tracking_time(lr.start_ms, ls.finish()),
                    display_ms=disp.finish(),
                    path_latency_ms=self._path_latency_ms(
                        max(local_ms, serial_fetch),
                        comp.total_ms,
                        atw_cost.total_ms,
                    ),
                    local_ms=local_ms,
                    remote_path_ms=max(remote_path, 0.0),
                    transmitted_bytes=issued_payload,
                    gpu_busy_ms=local_ms + comp.total_ms + atw_cost.total_ms,
                    net_busy_ms=issued_payload / self.channel.mean_effective_bytes_per_ms,
                    vd_busy_ms=self.codec.decode_time_ms(self.app.pixels_per_frame),
                    cpu_busy_ms=CL_MS + LS_MS,
                    mispredicted=mispredicted,
                    dropped=mispredicted,
                )
            )
        return records

    def _fetch_background(
        self,
        scheduler: TaskGraphScheduler,
        wl: FrameWorkload,
        issue: Task,
        refetch: bool,
        label: str = "",
    ) -> tuple[Task, float, float]:
        """Submit one background fetch.

        Returns (ready event, payload bytes, serial path latency).
        """
        pixels = self.app.pixels_per_frame
        bg_fraction = 1.0 - wl.interactive_fraction
        bg_wl = wl.full.scaled(
            fragment_scale=bg_fraction, vertex_scale=bg_fraction, batch_scale=bg_fraction
        )
        render_ms = self._remote_render_ms(bg_wl)
        encode_ms = self.remote.encode_time_ms(pixels)
        colour = self.codec.encode(pixels, wl.content_complexity).payload_bytes
        # The depth map needed for composition travels at half
        # resolution (depth compresses well and composition tolerates
        # coarser depth than colour).
        depth = self.codec.encode_depth(pixels / 2.0).payload_bytes
        payload = colour + depth
        transmit_ms = self.channel.transfer_time_ms(payload)
        decode_ms = self.codec.decode_time_ms(pixels)
        suffix = f"{label}{'R' if refetch else ''}"
        _, vd = self._remote_chain(
            scheduler, wl.index, issue, render_ms, encode_ms, transmit_ms, decode_ms,
            label=suffix,
        )
        serial_ms = self._serial_remote_ms(render_ms, encode_ms, transmit_ms, decode_ms)
        return vd, payload, serial_ms


class CollaborativeFoveatedSystem(VRSystem):
    """The Q-VR software framework with a pluggable controller and UCA flag.

    Concrete configurations (factory :func:`make_system`):

    ========  ==========================  ========
    design    controller                  UCA
    ========  ==========================  ========
    FFR       FixedEccentricity(5 deg)    no (GPU)
    DFR       LIWCController              no (GPU)
    SW-QVR    SoftwareAdaptiveController  no (GPU)
    Q-VR      LIWCController              yes
    ========  ==========================  ========
    """

    def __init__(
        self,
        app: VRApp,
        controller: EccentricityController,
        uses_uca: bool,
        name: str,
        platform: PlatformConfig | None = None,
        seed: int = 0,
    ) -> None:
        super().__init__(app, platform, seed)
        self.controller = controller
        self.uses_uca = uses_uca
        self.name = name
        self.foveation = FoveationModel(self.display)
        self.engine = PartitionEngine(self.foveation, self.codec)
        self.uca = UCAUnit(self.platform.uca)

    def _simulate(self, scheduler, workloads):
        self.controller.reset()
        records: list[FrameRecord] = []
        pace: list[Task] = []
        merges: list[Task] = []
        prev_motion = None
        current_e1 = getattr(self.controller, "e1_deg", constants.MIN_ECCENTRICITY_DEG)
        for wl in workloads:
            cl, ls = self._frontend(scheduler, wl.index, pace)

            # --- controller: choose e1 from hardware-visible state -------------
            pose_delta = (
                wl.motion.pose.delta_from(prev_motion.pose)
                if prev_motion is not None
                else PoseDelta()
            )
            gaze_delta = (
                wl.motion.gaze.delta_from(prev_motion.gaze)
                if prev_motion is not None
                else GazeDelta()
            )
            prev_motion = wl.motion
            probe = self.foveation.plan(
                current_e1, None, wl.motion.gaze.x_px, wl.motion.gaze.y_px
            )
            context = ControlContext(
                pose_delta=pose_delta,
                gaze_delta=gaze_delta,
                triangles=wl.full.vertices,
                fovea_fraction=probe.fovea_fraction,
                periphery_pixels=probe.periphery_pixels,
                ack_throughput_bytes_per_ms=self.channel.ack_throughput_bytes_per_ms,
            )
            e1 = self.controller.select_e1(context)
            current_e1 = e1
            liwc_task = scheduler.submit(
                f"f{wl.index}:LIWC", LIWC_SELECT_MS, R.LIWC, deps=(cl,)
            )

            # --- partition and per-portion timings --------------------------------
            part = self.engine.partition(
                wl.full, e1, wl.motion.gaze, wl.content_complexity
            )
            local_ms = self.mobile.render_time_ms(part.local)
            rr_ms = self._remote_render_ms(part.remote)
            enc_ms = self.remote.encode_time_ms(part.plan.periphery_pixels)
            transmit_ms = self.channel.transfer_time_ms(part.transmitted_bytes)
            decode_ms = self.codec.decode_time_ms(part.plan.periphery_pixels)

            lr = scheduler.submit(
                f"f{wl.index}:LR", local_ms, R.GPU, deps=(ls, liwc_task)
            )
            if part.plan.covers_full_frame:
                remote_ready = ls
                transmit_ms = 0.0
                net_busy = 0.0
            else:
                _, vd = self._remote_chain(
                    scheduler, wl.index, ls, rr_ms, enc_ms, transmit_ms, decode_ms
                )
                remote_ready = vd
                net_busy = transmit_ms

            # --- composition + ATW ---------------------------------------------------
            pixels = self.app.pixels_per_frame
            if self.uses_uca:
                tail = self.uca.critical_tail_ms(self.app.width_px, self.app.height_px)
                merge = scheduler.submit(
                    f"f{wl.index}:UCA", tail, R.UCA, deps=(lr, remote_ready)
                )
                gpu_busy = local_ms
                uca_busy = self.uca.occupancy_ms(self.app.width_px, self.app.height_px)
                merge_path_ms = tail
            else:
                comp = self.mobile.foveated_composition_cost(pixels)
                c = scheduler.submit(
                    f"f{wl.index}:C", comp.total_ms, R.GPU, deps=(lr, remote_ready)
                )
                atw_cost = self.mobile.atw_cost(pixels)
                merge = scheduler.submit(
                    f"f{wl.index}:ATW", atw_cost.total_ms, R.GPU, deps=(c,)
                )
                gpu_busy = local_ms + comp.total_ms + atw_cost.total_ms
                uca_busy = 0.0
                merge_path_ms = comp.total_ms + atw_cost.total_ms
            disp = scheduler.submit(
                f"f{wl.index}:DISP", constants.DISPLAY_SCANOUT_MS, None, deps=(merge,)
            )
            scheduler.run()

            # --- pacing and controller feedback -----------------------------------------
            # Advance the environment clock: the next frame's transfers
            # and ACK observations sample the link profile at the instant
            # this frame reached the display.
            self.channel.advance_to(disp.finish())
            merges.append(merge)
            pace = [ls]
            if self.controller.requires_completed_frame:
                # Software control logic must wait for this frame's outputs
                # (Fig. 4-B) before the next frame's CL may run.
                pace.append(merge)
            elif len(merges) >= _PACING_WINDOW:
                pace.append(merges[-_PACING_WINDOW])

            des_remote_ms = (
                remote_ready.finish() - ls.finish()
                if remote_ready is not ls
                else 0.0
            )
            serial_remote = (
                0.0
                if part.plan.covers_full_frame
                else self._serial_remote_ms(rr_ms, enc_ms, transmit_ms, decode_ms)
            )
            self.controller.observe(
                ControlFeedback(
                    measured_local_ms=local_ms,
                    measured_remote_ms=serial_remote,
                    triangles=wl.full.vertices,
                    fovea_fraction=part.plan.fovea_fraction,
                    periphery_pixels=part.plan.periphery_pixels,
                    payload_bytes=part.transmitted_bytes,
                    ack_throughput_bytes_per_ms=self.channel.ack_throughput_bytes_per_ms,
                )
            )
            assert lr.start_ms is not None
            records.append(
                FrameRecord(
                    index=wl.index,
                    tracking_ms=self._tracking_time(lr.start_ms, ls.finish()),
                    display_ms=disp.finish(),
                    path_latency_ms=self._path_latency_ms(
                        max(local_ms, serial_remote), merge_path_ms
                    ),
                    e1_deg=part.plan.e1_deg,
                    e2_deg=part.plan.e2_deg,
                    local_ms=local_ms,
                    remote_path_ms=serial_remote,
                    transmitted_bytes=part.transmitted_bytes,
                    gpu_busy_ms=gpu_busy,
                    net_busy_ms=net_busy,
                    vd_busy_ms=decode_ms if remote_ready is not ls else 0.0,
                    uca_busy_ms=uca_busy,
                    cpu_busy_ms=CL_MS + LS_MS,
                    resolution_reduction=part.plan.resolution_reduction,
                    dropped=des_remote_ms > constants.MTP_LATENCY_REQUIREMENT_MS,
                )
            )
        return records


#: Registry of constructible design names.
SYSTEM_NAMES: tuple[str, ...] = (
    "local",
    "remote",
    "static",
    "ffr",
    "dfr",
    "sw-qvr",
    "qvr",
)


def make_system(
    name: str,
    app: VRApp,
    platform: PlatformConfig | None = None,
    seed: int = 0,
) -> VRSystem:
    """Construct a system design by its evaluation name.

    Accepted names: ``local``, ``remote``, ``static``, ``ffr``, ``dfr``,
    ``sw-qvr``, ``qvr`` (case-insensitive).
    """
    key = name.lower()
    if key == "local":
        return LocalOnlySystem(app, platform, seed)
    if key == "remote":
        return RemoteOnlySystem(app, platform, seed)
    if key == "static":
        return StaticCollaborativeSystem(app, platform, seed)
    if key == "ffr":
        return CollaborativeFoveatedSystem(
            app, FixedEccentricityController(), uses_uca=False, name="ffr",
            platform=platform, seed=seed,
        )
    if key == "dfr":
        return CollaborativeFoveatedSystem(
            app, LIWCController(), uses_uca=False, name="dfr",
            platform=platform, seed=seed,
        )
    if key == "sw-qvr":
        # The paper's pure-software Q-VR implements everything in software:
        # eccentricity selection from previous-frame measured latencies, and
        # composition/ATW on the GPU (Sec. 6.1 credits Q-VR's frame-rate
        # advantage over it both to LIWC's hardware prediction and to
        # detaching ATW/composition from GPU core execution).
        return CollaborativeFoveatedSystem(
            app, SoftwareAdaptiveController(), uses_uca=False, name="sw-qvr",
            platform=platform, seed=seed,
        )
    if key == "qvr":
        return CollaborativeFoveatedSystem(
            app, LIWCController(), uses_uca=True, name="qvr",
            platform=platform, seed=seed,
        )
    raise ConfigurationError(f"unknown system {name!r}; known: {SYSTEM_NAMES}")
