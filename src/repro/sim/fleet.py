"""Elastic render fleets: multi-server capacity, failures, migration.

The paper's collaborative design assumes the remote tier can absorb
whatever the mobile clients offload; surveys of synchronous multi-party
VR stress the opposite — real sessions are bounded by *elastic,
failure-prone* server infrastructure.  This module turns the
reproduction's server from a scalar capacity into a simulated cluster:

* :class:`RenderFleet` — a roster of **named**
  :class:`~repro.sim.server.RenderServer`s with a pluggable
  :class:`PlacementPolicy` (first-fit, least-loaded, sticky/affinity)
  mapping serviced clients onto servers at every planning epoch;
* the capacity events extending the session vocabulary
  (:mod:`repro.sim.session`) — :class:`ServerUp`, :class:`ServerDown`
  (with graceful ``drain``), and :class:`ServerFail` — so
  :meth:`~repro.sim.session.Session.timeline` re-plans placement at
  every capacity *or* client event;
* :func:`plan_fleet_timeline` — the fleet-aware planner behind
  ``Session.timeline()``: on shrink or failure, displaced clients are
  **migrated** to a surviving server (a configurable migration penalty
  is spliced into their ``(start_ms, share)`` schedules as a starvation
  window while state transfers) or — under the naive ``"requeue"``
  mode — dropped to the back of the admission queue FCFS behind
  incumbents, where they render at the starvation share until a later
  re-planning event re-seats them.

Planning invariants:

* incumbents whose server survives are never re-placed (no spontaneous
  consolidation churn); the placement policy decides only for new,
  promoted, and displaced clients;
* a displaced client that fits nowhere is **parked** — it keeps its one
  contiguous :class:`~repro.sim.runner.RunSpec` but renders at
  :data:`STALL_SHARE` until capacity returns (the connection survives
  the outage, the frames mostly do not);
* fleet servers are homogeneous in hardware
  (:class:`~repro.gpu.config.RemoteServerConfig`) and may differ only in
  capacity, so a mid-run migration never changes the render-time model
  behind a frozen spec;
* everything stays deterministic and cache-stable: the planner emits
  ordinary specs whose schedules carry the whole story, and a
  single-server fleet with no capacity events plans bit-identically to
  the same session on a bare ``RenderServer``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, replace

from repro import constants
from repro.errors import ConfigurationError
from repro.network.profile import ShareSchedule
from repro.obs import trace as obs_trace
from repro.sim.metrics import ServerWindow
from repro.sim.runner import CLIENT_SEED_STRIDE
from repro.sim.server import AdmissionDecision, ClientDemand, RenderServer
from repro.sim.session import (
    _HORIZON_SLACK,
    CapacityEvent,
    Epoch,
    Join,
    Leave,
    ProfileSwitch,
    Session,
    SessionTimeline,
    _client_spec,
    _ClientState,
)

__all__ = [
    "ServerUp",
    "ServerDown",
    "ServerFail",
    "PlacementPolicy",
    "FirstFitPlacement",
    "LeastLoadedPlacement",
    "StickyPlacement",
    "PLACEMENTS",
    "PLACEMENT_NAMES",
    "placement_by_name",
    "MIGRATION_MODES",
    "FLEET_OVERFLOW_MODES",
    "STALL_SHARE",
    "RenderFleet",
    "fleet_from_payload",
    "plan_fleet_timeline",
]

#: Starvation share a parked or state-transferring client renders (and
#: transmits) at: the session keeps the connection alive, but the frames
#: all but stop — small enough to gut the tail frame rate, positive so
#: schedules stay valid and the run keeps advancing deterministically.
STALL_SHARE = 0.05

#: How a fleet treats clients displaced by a shrink or failure.
MIGRATION_MODES = ("migrate", "requeue")

#: What happens to a *new* client no server can seat.  Displaced
#: incumbents always park/queue — mid-session clients are never rejected.
FLEET_OVERFLOW_MODES = ("queue", "reject")


# ---------------------------------------------------------------------------
# Capacity events
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ServerUp(CapacityEvent):
    """A fleet server comes (back) online; its capacity joins the pool."""

    rank = 2


@dataclass(frozen=True)
class ServerDown(CapacityEvent):
    """A planned scale-down.  ``drain=True`` (the default) migrates the
    displaced clients gracefully — state was transferred while the server
    drained, so no migration penalty applies; ``drain=False`` yanks the
    server, and re-seated clients pay the penalty."""

    rank = 0

    drain: bool = True


@dataclass(frozen=True)
class ServerFail(CapacityEvent):
    """An abrupt failure: in-flight state is lost, every displaced client
    pays the migration penalty when re-seated (even on the same server
    after a later :class:`ServerUp`)."""

    rank = 0


# ---------------------------------------------------------------------------
# Placement policies
# ---------------------------------------------------------------------------


class PlacementPolicy(ABC):
    """Chooses a server for one client at one planning boundary."""

    name: str = "abstract"

    @abstractmethod
    def place(
        self,
        candidates: tuple[str, ...],
        loads: dict[str, float],
        capacities: dict[str, float],
        last_server: str | None,
    ) -> str:
        """Pick one of ``candidates`` (non-empty, fleet declaration order,
        all with room for the client).  ``loads`` holds the weight already
        placed this epoch; ``last_server`` is where the client last
        rendered (None for a first placement)."""


class FirstFitPlacement(PlacementPolicy):
    """The first declared server with room — the dense-packing baseline."""

    name = "first-fit"

    def place(self, candidates, loads, capacities, last_server):
        """Return the first candidate in fleet declaration order."""
        return candidates[0]


class LeastLoadedPlacement(PlacementPolicy):
    """The server with the lowest capacity-relative load (ties: declaration
    order) — spreads clients, keeping headroom for failover."""

    name = "least-loaded"

    def place(self, candidates, loads, capacities, last_server):
        """Return the candidate with the lowest load/capacity ratio."""
        best = min(
            range(len(candidates)),
            key=lambda i: (loads[candidates[i]] / capacities[candidates[i]], i),
        )
        return candidates[best]


class StickyPlacement(PlacementPolicy):
    """Affinity: the client's previous server when it has room (cheap
    re-attach, warm caches), least-loaded otherwise."""

    name = "sticky"

    def place(self, candidates, loads, capacities, last_server):
        """Return ``last_server`` when eligible, else least-loaded."""
        if last_server is not None and last_server in candidates:
            return last_server
        return LeastLoadedPlacement().place(
            candidates, loads, capacities, last_server
        )


#: Registry of placement policies by CLI name.
PLACEMENTS: dict[str, PlacementPolicy] = {
    policy.name: policy
    for policy in (FirstFitPlacement(), LeastLoadedPlacement(), StickyPlacement())
}

#: Placement-policy names, first-fit (the default) first.
PLACEMENT_NAMES: tuple[str, ...] = tuple(PLACEMENTS)


def placement_by_name(name: str) -> PlacementPolicy:
    """Resolve a placement policy by its registry name."""
    key = name.strip().lower()
    if key not in PLACEMENTS:
        raise ConfigurationError(
            f"unknown placement policy {name!r}; known: {PLACEMENT_NAMES}"
        )
    return PLACEMENTS[key]


# ---------------------------------------------------------------------------
# The fleet
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RenderFleet:
    """A roster of named rendering servers behind one session.

    Attributes
    ----------
    servers:
        ``(name, RenderServer)`` pairs (a mapping is accepted and
        normalised); declaration order is the deterministic tie-break
        every placement policy falls back to.  Servers must share one
        :class:`~repro.gpu.config.RemoteServerConfig` and tick grid
        (homogeneous hardware — capacities may differ), so migrating a
        client never changes the render-time model inside its frozen
        spec.
    placement:
        Placement policy name (:data:`PLACEMENT_NAMES`).
    migration:
        ``"migrate"`` re-seats displaced clients immediately through the
        placement policy; ``"requeue"`` (the naive baseline the failover
        experiment beats) drops clients displaced by an *unplanned*
        outage (failure, non-drained down) to the back of the queue,
        where they stall until a later re-planning event re-admits them
        — drained scale-downs migrate gracefully under both modes.
    migration_penalty_ms:
        Starvation window spliced into a re-seated client's server
        schedule while its state transfers; clamped to the epoch (the
        next re-plan re-syncs).  Drained scale-downs skip it.
    initial:
        Names up at t = 0 (default: every declared server).  Servers not
        initially up join the pool through :class:`ServerUp` events.
    overflow:
        Fate of a *new* client no server can seat: ``"queue"`` (wait for
        capacity, the default) or ``"reject"`` (final, as on a bare
        server).
    """

    servers: tuple[tuple[str, RenderServer], ...]
    placement: str = "first-fit"
    migration: str = "migrate"
    migration_penalty_ms: float = 120.0
    initial: tuple[str, ...] | None = None
    overflow: str = "queue"

    def __post_init__(self) -> None:
        pairs = (
            tuple(self.servers.items())
            if isinstance(self.servers, dict)
            else tuple(tuple(pair) for pair in self.servers)
        )
        object.__setattr__(self, "servers", pairs)
        if not pairs:
            raise ConfigurationError("a fleet needs at least one server")
        names = [name for name, _ in pairs]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate fleet server names: {names}")
        for name, server in pairs:
            if not isinstance(name, str) or not name:
                raise ConfigurationError(
                    f"fleet server names must be non-empty strings, got {name!r}"
                )
            if not isinstance(server, RenderServer):
                raise ConfigurationError(
                    f"fleet server {name!r} must be a RenderServer, got "
                    f"{type(server).__name__}"
                )
        reference = pairs[0][1]
        for name, server in pairs[1:]:
            if server.config != reference.config or server.tick_ms != reference.tick_ms:
                raise ConfigurationError(
                    f"fleet servers must share one hardware config and tick "
                    f"grid (capacities may differ); {name!r} disagrees with "
                    f"{pairs[0][0]!r}"
                )
        placement_by_name(self.placement)  # raises on unknown names
        if self.migration not in MIGRATION_MODES:
            raise ConfigurationError(
                f"unknown migration mode {self.migration!r}; "
                f"known: {MIGRATION_MODES}"
            )
        if self.overflow not in FLEET_OVERFLOW_MODES:
            raise ConfigurationError(
                f"unknown fleet overflow mode {self.overflow!r}; "
                f"known: {FLEET_OVERFLOW_MODES}"
            )
        if self.migration_penalty_ms < 0:
            raise ConfigurationError(
                f"migration_penalty_ms must be >= 0, got "
                f"{self.migration_penalty_ms}"
            )
        if self.initial is not None:
            initial = tuple(self.initial)
            object.__setattr__(self, "initial", initial)
            unknown = [name for name in initial if name not in names]
            if unknown:
                raise ConfigurationError(
                    f"initial servers {unknown} not in the fleet: {names}"
                )

    @classmethod
    def from_capacities(
        cls, capacities: dict[str, float], **kwargs
    ) -> "RenderFleet":
        """A homogeneous fleet from ``{name: capacity_clients}``."""
        return cls(
            servers=tuple(
                (name, RenderServer(capacity_clients=float(capacity)))
                for name, capacity in capacities.items()
            ),
            **kwargs,
        )

    @property
    def names(self) -> tuple[str, ...]:
        """Server names in declaration order."""
        return tuple(name for name, _ in self.servers)

    def server(self, name: str) -> RenderServer:
        """The named server."""
        for candidate, server in self.servers:
            if candidate == name:
                return server
        raise ConfigurationError(
            f"no fleet server {name!r}; known: {self.names}"
        )

    def initially_up(self, name: str) -> bool:
        """True when the named server is up at t = 0."""
        return self.initial is None or name in self.initial

    @property
    def total_capacity(self) -> float:
        """Capacity of the whole declared roster, in client-equivalents."""
        return sum(server.capacity for _, server in self.servers)

    def validate_events(self, events) -> None:
        """Replay up/down state so inconsistent capacity timelines fail
        at session build time (unknown server, double-down, up-while-up)."""
        up = {name: self.initially_up(name) for name in self.names}
        for event in sorted(events, key=lambda e: (e.t_ms, e.rank)):
            if event.server not in up:
                raise ConfigurationError(
                    f"{type(event).__name__} at {event.t_ms:g} ms names "
                    f"unknown server {event.server!r}; fleet has {self.names}"
                )
            if isinstance(event, ServerUp):
                if up[event.server]:
                    raise ConfigurationError(
                        f"ServerUp at {event.t_ms:g} ms: {event.server!r} "
                        "is already up"
                    )
                up[event.server] = True
            elif isinstance(event, (ServerDown, ServerFail)):
                if not up[event.server]:
                    raise ConfigurationError(
                        f"{type(event).__name__} at {event.t_ms:g} ms: "
                        f"{event.server!r} is already down"
                    )
                up[event.server] = False
            else:
                raise ConfigurationError(
                    f"unknown capacity event {type(event).__name__}"
                )


# ---------------------------------------------------------------------------
# Per-client planner state
# ---------------------------------------------------------------------------


class _FleetClientState(_ClientState):
    """Session client bookkeeping plus placement history and queue rank."""

    def __init__(self, index, spec, joined_ms, resolved) -> None:
        super().__init__(index, spec, joined_ms, resolved)
        self.assigned: str | None = None
        self.last_server: str | None = None
        self.placement_history: list[tuple[float, str | None]] = []
        self.migrations = 0
        self.queue_since = joined_ms
        self.requeued = False
        self.holdoff_ms: float | None = None
        self.penalty_pending = False

    def assign(self, t_ms: float, server: str) -> bool:
        """Seat the client; returns True when this is a cross-server move."""
        migrated = self.last_server is not None and self.last_server != server
        if migrated:
            self.migrations += 1
            obs_trace.active().instant(
                "fleet.migrate", client=self.index, t_ms=t_ms,
                src=self.last_server, dst=server,
            )
        if not self.placement_history or self.placement_history[-1][1] != server:
            self.placement_history.append((t_ms, server))
        self.assigned = server
        self.last_server = server
        self.requeued = False
        self.holdoff_ms = None
        return migrated

    def park(self, t_ms: float) -> None:
        """Record a span with no server (rendering at the stall share)."""
        if not self.placement_history or self.placement_history[-1][1] is not None:
            self.placement_history.append((t_ms, None))
            obs_trace.active().instant(
                "fleet.park", client=self.index, t_ms=t_ms
            )

    def displace(self, t_ms: float, drained: bool, requeue: bool) -> None:
        """The client's server went away; decide its queueing fate.

        A drained scale-down is planned: the client migrates gracefully
        (no penalty) and keeps incumbent priority even under the naive
        ``"requeue"`` mode, which models the handling of *unplanned*
        displacement only.
        """
        self.assigned = None
        obs_trace.active().instant(
            "fleet.displace", client=self.index, t_ms=t_ms,
            drained=drained, requeue=requeue,
        )
        if not drained:
            self.penalty_pending = True
        if requeue and not drained:
            self.requeued = True
            self.queue_since = t_ms
            self.holdoff_ms = t_ms

    def priority(self) -> tuple:
        """Placement order: seated/serviced incumbents, then waiters FCFS."""
        incumbent = self.assigned is not None or (
            self.service_start is not None and not self.requeued
        )
        if incumbent:
            start = (
                self.service_start
                if self.service_start is not None
                else self.joined_ms
            )
            return (0, start, self.joined_ms, self.index)
        return (1, self.queue_since, self.joined_ms, self.index)

    def freeze(self, **kwargs):
        """Freeze the client row, stamping its placement history."""
        row = super().freeze(**kwargs)
        return replace(
            row,
            servers=tuple(self.placement_history),
            migrations=self.migrations,
        )


def fleet_from_payload(payload: object, source: str = "fleet") -> RenderFleet:
    """Build a :class:`RenderFleet` from a decoded JSON description.

    The one fleet schema shared by ``repro scenarios --fleet`` files and
    the ``"fleet"`` section of demand scenarios (:mod:`repro.sim.demand`)::

        {"servers": {"a": 2.0, "b": {"capacity": 1.0}},
         "placement": "least-loaded",      # optional
         "migration": "migrate",           # optional: migrate | requeue
         "migration_penalty_ms": 120.0,    # optional
         "initial": ["a"],                 # optional: names up at t = 0
         "overflow": "queue"}              # optional: queue | reject

    Server values are a bare capacity (client-equivalents) or an object
    with a ``"capacity"`` key.  ``source`` names the payload's origin in
    error messages.
    """
    if not isinstance(payload, dict) or not isinstance(payload.get("servers"), dict):
        raise ConfigurationError(
            f'{source} must be a JSON object with a "servers" mapping'
        )
    known = {
        "servers", "placement", "migration", "migration_penalty_ms",
        "initial", "overflow",
    }
    unknown = sorted(set(payload) - known)
    if unknown:
        raise ConfigurationError(
            f"unknown fleet keys {unknown} in {source}; known: {sorted(known)}"
        )
    capacities: dict[str, float] = {}
    for name, value in payload["servers"].items():
        if isinstance(value, dict):
            value = value.get("capacity")
        try:
            capacities[str(name)] = float(value)
        except (TypeError, ValueError):
            raise ConfigurationError(
                f"bad capacity {value!r} for fleet server {name!r} in {source}"
            ) from None
    kwargs = {
        key: payload[key]
        for key in ("placement", "migration", "overflow")
        if key in payload
    }
    if "migration_penalty_ms" in payload:
        kwargs["migration_penalty_ms"] = float(payload["migration_penalty_ms"])
    if "initial" in payload:
        kwargs["initial"] = tuple(str(n) for n in payload["initial"])
    return RenderFleet.from_capacities(capacities, **kwargs)


#: Window-local share schedule of a fully stalled epoch.
_STALLED = ((0.0, STALL_SHARE),)


# ---------------------------------------------------------------------------
# The fleet planner
# ---------------------------------------------------------------------------


def plan_fleet_timeline(
    session: Session,
    system: str = "qvr",
    n_frames: int = 200,
    seed: int = 0,
    warmup_frames: int | None = None,
) -> SessionTimeline:
    """Epoch-by-epoch placement, migration, and re-allocation over a fleet.

    The fleet-aware twin of the session's dynamic planner: every client
    *or* capacity event opens a planning boundary where departures and
    capacity losses apply first (the enforced same-timestamp order),
    displaced clients are re-seated by the placement policy or parked,
    freed capacity promotes waiters FCFS, and each server's rendering
    throughput is re-allocated among the clients placed on it while the
    session downlink is allocated across the whole serviced roster.  The
    output is an ordinary :class:`~repro.sim.session.SessionTimeline`
    whose epochs additionally carry placements and per-server occupancy
    windows.
    """
    fleet = session.fleet
    assert fleet is not None and session.platform is not None
    duration_ms = n_frames * constants.FRAME_BUDGET_MS
    horizon_ms = duration_ms * _HORIZON_SLACK
    ordered = session.ordered_events()
    for event in ordered:
        if event.t_ms >= duration_ms:
            raise ConfigurationError(
                f"event at {event.t_ms:g} ms falls outside the nominal "
                f"session ({n_frames} frames = {duration_ms:g} ms)"
            )
    default_network = session.platform.network
    placement = placement_by_name(fleet.placement)
    capacities = {name: fleet.server(name).capacity for name in fleet.names}

    states = [
        _FleetClientState(
            index, spec, 0.0, spec.resolved_platform(session.platform)
        )
        for index, spec in enumerate(session.clients)
    ]
    up = {name: fleet.initially_up(name) for name in fleet.names}

    events_at: dict[float, list] = {}
    for event in ordered:
        events_at.setdefault(event.t_ms, []).append(event)
    boundaries = sorted(set(events_at) | {0.0})

    epochs: list[Epoch] = []
    for k, t0 in enumerate(boundaries):
        t1 = boundaries[k + 1] if k + 1 < len(boundaries) else duration_ms
        drained_now: set[str] = set()
        lost_now: set[str] = set()
        for event in events_at.get(t0, ()):
            if isinstance(event, Join):
                spec = _client_spec(event.spec)
                states.append(
                    _FleetClientState(
                        len(states),
                        spec,
                        t0,
                        spec.resolved_platform(session.platform),
                    )
                )
            elif isinstance(event, Leave):
                states[event.client].leave(t0)
            elif isinstance(event, ProfileSwitch):
                states[event.client].switch(t0, event.profile)
            elif isinstance(event, ServerUp):
                up[event.server] = True
            elif isinstance(event, (ServerDown, ServerFail)):
                up[event.server] = False
                if isinstance(event, ServerDown) and event.drain:
                    drained_now.add(event.server)
                else:
                    lost_now.add(event.server)
        for state in states:
            if state.assigned is None:
                continue
            if not state.present_at(t0):
                state.assigned = None  # a leaver frees its seat silently
            elif (
                not up[state.assigned]
                or state.assigned in drained_now
                or state.assigned in lost_now
            ):
                # Down servers displace their clients even when a same-t
                # ServerUp brings the box straight back: a fail/up blip
                # still lost the in-flight state (penalty on re-seat).
                state.displace(
                    t0,
                    drained=state.assigned in drained_now,
                    requeue=fleet.migration == "requeue",
                )

        roster = sorted(
            (s for s in states if s.present_at(t0)),
            key=_FleetClientState.priority,
        )
        demands = tuple(
            ClientDemand.estimate(
                app=s.spec.app,
                profile=s.profile(),
                seed=seed + CLIENT_SEED_STRIDE * s.index + 7,
                weight=s.spec.weight,
                server=fleet.servers[0][1].config,
            )
            for s in roster
        )
        up_names = tuple(name for name in fleet.names if up[name])
        loads = {name: 0.0 for name in up_names}
        for s in roster:
            if s.assigned is not None:
                loads[s.assigned] += s.spec.weight

        decisions: list[AdmissionDecision] = []
        arrivals: dict[str, list[int]] = {}
        migrated_in: dict[str, list[int]] = {}
        for s, demand in zip(roster, demands):
            if s.assigned is not None:
                decisions.append(AdmissionDecision(s.index, "admit"))
                continue
            candidates = tuple(
                name
                for name in up_names
                if fleet.server(name).fits(demand.weight, loads[name])
            )
            if not candidates or s.holdoff_ms == t0:
                if s.service_start is None and fleet.overflow == "reject":
                    s.rejected = True
                    decisions.append(
                        AdmissionDecision(s.index, "reject", service_level=0.0)
                    )
                else:
                    decisions.append(
                        AdmissionDecision(s.index, "queue", service_level=0.0)
                    )
                continue
            target = placement.place(candidates, loads, capacities, s.last_server)
            loads[target] += demand.weight
            moved = s.assign(t0, target)
            arrivals.setdefault(target, []).append(s.index)
            if moved:
                migrated_in.setdefault(target, []).append(s.index)
            decisions.append(AdmissionDecision(s.index, "admit"))

        placed = [s for s in roster if s.assigned is not None]
        window_end = horizon_ms if k + 1 == len(boundaries) else t1
        window = window_end - t0
        if placed:
            # The downlink is shared session-wide, so its split is
            # computed over the whole placed roster; each server's
            # rendering throughput is split only within its own group.
            # When one server hosts everyone (the common single-server
            # case) the two calls would be argument-identical, so one
            # allocation serves both resources.
            placed_demands = tuple(
                d for s, d in zip(roster, demands) if s.assigned is not None
            )
            hosts = {s.assigned for s in placed}
            # min() rather than next(iter(...)): the set is a singleton on
            # this branch, but pulling its element via iteration order is
            # a determinism hazard the moment that invariant slips.
            session_alloc = fleet.server(
                up_names[0] if len(hosts) > 1 else min(hosts)
            ).allocate(
                placed_demands,
                session.policy,
                horizon_ms=window,
                sharing_efficiency=session.sharing_efficiency,
                service_levels=(1.0,) * len(placed),
                start_ms=t0,
            )
            downlink_of = {
                s.index: a.downlink for s, a in zip(placed, session_alloc)
            }
            server_of: dict[int, ShareSchedule] = {}
            if len(hosts) == 1:
                for s, allocation in zip(placed, session_alloc):
                    server_of[s.index] = allocation.server
            else:
                for name in up_names:
                    group = [
                        (s, d)
                        for s, d in zip(roster, demands)
                        if s.assigned == name
                    ]
                    if not group:
                        continue
                    group_alloc = fleet.server(name).allocate(
                        tuple(d for _, d in group),
                        session.policy,
                        horizon_ms=window,
                        sharing_efficiency=session.sharing_efficiency,
                        service_levels=(1.0,) * len(group),
                        start_ms=t0,
                    )
                    for (s, _), allocation in zip(group, group_alloc):
                        server_of[s.index] = allocation.server
            for s in placed:
                schedule = server_of[s.index]
                if s.penalty_pending and fleet.migration_penalty_ms > 0:
                    if fleet.migration_penalty_ms >= window:
                        schedule = ShareSchedule(_STALLED)
                    else:
                        schedule = schedule.with_stall(
                            fleet.migration_penalty_ms, STALL_SHARE
                        )
                s.penalty_pending = False
                s.record_segments(
                    t0,
                    schedule.segments,
                    downlink_of[s.index].segments,
                    len(placed),
                )
        for s in roster:
            # Parked: displaced with nowhere to go (or re-queued) — keep
            # the run alive at the stall share until capacity returns.
            if s.assigned is None and s.service_start is not None:
                s.park(t0)
                s.record_segments(t0, _STALLED, _STALLED, len(placed))
        epochs.append(
            Epoch(
                start_ms=t0,
                end_ms=t1,
                decisions=tuple(decisions),
                serviced=tuple(s.index for s in placed),
                placements=tuple((s.index, s.assigned) for s in placed),
                servers=tuple(
                    ServerWindow(
                        server=name,
                        start_ms=t0,
                        end_ms=t1,
                        capacity=capacities[name],
                        load=loads[name],
                        clients=tuple(
                            s.index for s in placed if s.assigned == name
                        ),
                        arrivals=tuple(arrivals.get(name, ())),
                        migrated_in=tuple(migrated_in.get(name, ())),
                    )
                    for name in up_names
                ),
            )
        )

    client_rows = tuple(
        state.freeze(
            session=session,
            system=system,
            n_frames=n_frames,
            seed=seed,
            warmup_frames=warmup_frames,
            duration_ms=duration_ms,
            default_network=default_network,
        )
        for state in states
    )
    return SessionTimeline(
        session=session,
        n_frames=n_frames,
        duration_ms=duration_ms,
        epochs=tuple(epochs),
        clients=client_rows,
    )
