"""Multi-user collaborative VR scenarios on the batch execution layer.

The paper's framing is *planet-scale* mobile VR ("users around the world,
regardless of their hardware and network conditions") and it compares
against multi-user systems (Firefly, Coterie).  This module describes the
natural next step — **several Q-VR clients sharing one rendering server
and one access link** — as plain :class:`~repro.sim.runner.RunSpec`
batches: a scenario expands to one spec per client (carrying the
``shared_clients`` degradation and a distinct per-client seed) and runs
through the same :class:`~repro.sim.runner.BatchEngine` as every other
experiment, so multi-user evaluation parallelises and memoizes for free.

Sessions are **heterogeneous**: each :class:`ClientSpec` names its own
``(app, platform, profile)`` tuple — one participant on a flagship SoC
over Wi-Fi, another on a throttled GPU over a 4G link that drops mid-run
— matching how surveys of synchronous VR collaboration characterise real
sessions.  The uniform all-same-title scenario remains the
:meth:`MultiUserScenario.uniform` special case.

Model: each client runs the full Q-VR control loop independently; the
shared infrastructure scales each client's effective resources —

* the server's rendering throughput divides across concurrently active
  clients (the MCM GPUs are time-shared);
* the shared downlink divides its throughput across clients;

so every client's LIWC observes a *degraded environment* (slower ACK
throughput, longer remote latencies) and re-balances by growing its local
fovea.  The testable prediction — more co-located users, larger average
eccentricity and lower per-user FPS, until the local GPUs saturate — is
the behaviour a planet-scale deployment would exhibit.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.errors import ConfigurationError
from repro.network.conditions import NetworkConditions
from repro.network.profile import NetworkProfile, as_profile
from repro.sim.metrics import SimulationResult
from repro.sim.runner import (
    BatchEngine,
    CLIENT_SEED_STRIDE,
    RunSpec,
    default_engine,
    effective_warmup,
)
from repro.sim.systems import PlatformConfig

__all__ = [
    "ClientSpec",
    "MultiUserScenario",
    "MultiUserResult",
    "simulate_shared_infrastructure",
]


@dataclass(frozen=True)
class ClientSpec:
    """One participant of a shared session: app, hardware, link dynamics.

    Attributes
    ----------
    app:
        The title this client runs.
    platform:
        The client's own platform; ``None`` inherits the scenario default.
    profile:
        Link conditions/profile override (a
        :class:`~repro.network.profile.NetworkProfile`, static
        conditions, or a registry name); ``None`` keeps the platform's
        network.  A client whose resolved network differs from the
        scenario default is on a *private* link: it still shares the
        rendering server, but its downlink is not divided across the
        session's clients.
    system:
        Per-client system design override; ``None`` uses the scenario
        run's system.
    """

    app: str
    platform: PlatformConfig | None = None
    profile: NetworkProfile | NetworkConditions | str | None = None
    system: str | None = None

    def resolved_platform(self, default: PlatformConfig) -> PlatformConfig:
        """The platform this client runs on, with its profile applied."""
        platform = self.platform if self.platform is not None else default
        if self.profile is not None:
            platform = replace(platform, network=as_profile(self.profile))
        return platform


@dataclass(frozen=True)
class MultiUserScenario:
    """A shared-infrastructure deployment of heterogeneous clients.

    Construct either from ``clients`` (per-client
    :class:`ClientSpec` tuples — bare app-name strings are promoted) or
    from the legacy uniform surface ``apps`` (one title per client, all
    on the scenario platform).  Exactly one of the two spellings must
    describe the session; both fields are populated coherently after
    construction.

    Attributes
    ----------
    apps:
        One title per client (derived from ``clients`` when those are
        given explicitly).
    platform:
        The default single-user platform being shared; clients may
        override it per :class:`ClientSpec`.
    sharing_efficiency:
        Fraction of ideal 1/N scaling the infrastructure achieves
        (statistical multiplexing recovers some capacity because clients'
        transfers interleave; 1.0 = perfect interleaving, values < 1
        model scheduling losses).
    clients:
        The full per-client description of the session.
    """

    apps: tuple[str, ...] = ()
    platform: PlatformConfig | None = None
    sharing_efficiency: float = 0.9
    clients: tuple[ClientSpec, ...] = ()

    def __post_init__(self) -> None:
        if self.platform is None:
            object.__setattr__(self, "platform", PlatformConfig())
        if self.clients:
            promoted = tuple(
                client if isinstance(client, ClientSpec) else ClientSpec(app=client)
                for client in self.clients
            )
            object.__setattr__(self, "clients", promoted)
            derived = tuple(client.app for client in promoted)
            if self.apps and tuple(self.apps) != derived:
                raise ConfigurationError(
                    f"apps {self.apps!r} disagree with clients {derived!r}; "
                    "provide one of the two"
                )
            object.__setattr__(self, "apps", derived)
        elif self.apps:
            object.__setattr__(self, "apps", tuple(self.apps))
            object.__setattr__(
                self, "clients", tuple(ClientSpec(app=app) for app in self.apps)
            )
        else:
            raise ConfigurationError(
                "scenario needs n_users >= 1 (one app or ClientSpec per client)"
            )
        if not 0 < self.sharing_efficiency <= 1:
            raise ConfigurationError("sharing_efficiency must be in (0, 1]")

    @classmethod
    def uniform(
        cls,
        app: str,
        n_users: int,
        platform: PlatformConfig | None = None,
        sharing_efficiency: float = 0.9,
    ) -> "MultiUserScenario":
        """A scenario of ``n_users`` clients all running the same title."""
        if n_users < 1:
            raise ConfigurationError(f"n_users must be >= 1, got {n_users}")
        return cls(
            apps=(app,) * n_users,
            platform=platform,
            sharing_efficiency=sharing_efficiency,
        )

    @classmethod
    def heterogeneous(
        cls,
        clients: tuple[ClientSpec | str, ...],
        platform: PlatformConfig | None = None,
        sharing_efficiency: float = 0.9,
    ) -> "MultiUserScenario":
        """A scenario of per-client ``(app, platform, profile)`` tuples."""
        return cls(
            platform=platform,
            sharing_efficiency=sharing_efficiency,
            clients=tuple(clients),
        )

    @property
    def n_clients(self) -> int:
        """Number of co-located clients."""
        return len(self.clients)

    def to_specs(
        self,
        system: str = "qvr",
        n_frames: int = 200,
        seed: int = 0,
        warmup_frames: int | None = None,
    ) -> tuple[RunSpec, ...]:
        """One frozen spec per client, ready for any batch engine.

        Clients receive distinct seeds (stride
        :data:`~repro.sim.runner.CLIENT_SEED_STRIDE`) so their motion and
        scene dynamics are independent; each spec carries the client's
        resolved platform/profile and the scenario's sharing parameters,
        so the engine derives the degraded per-client environment.
        """
        warmup = (
            effective_warmup(n_frames) if warmup_frames is None else warmup_frames
        )
        assert self.platform is not None
        default_network = self.platform.network
        specs = []
        for client_index, client in enumerate(self.clients):
            resolved = client.resolved_platform(self.platform)
            specs.append(
                RunSpec(
                    system=client.system if client.system is not None else system,
                    app=client.app,
                    platform=resolved,
                    n_frames=n_frames,
                    seed=seed + CLIENT_SEED_STRIDE * client_index,
                    warmup_frames=warmup,
                    shared_clients=self.n_clients,
                    sharing_efficiency=self.sharing_efficiency,
                    # A client on its own link shares the server but not
                    # the session downlink.
                    shared_downlink=resolved.network == default_network,
                )
            )
        return tuple(specs)


@dataclass(frozen=True)
class MultiUserResult:
    """Per-client results plus aggregate statistics."""

    per_client: tuple[SimulationResult, ...]

    @property
    def mean_fps(self) -> float:
        """Average per-client frame rate."""
        return float(np.mean([r.measured_fps for r in self.per_client]))

    @property
    def mean_e1_deg(self) -> float:
        """Average steady-state eccentricity across clients."""
        return float(np.mean([r.mean_e1_deg for r in self.per_client]))

    @property
    def mean_latency_ms(self) -> float:
        """Average end-to-end latency across clients."""
        return float(np.mean([r.mean_latency_ms for r in self.per_client]))

    @property
    def clients_meeting_fps(self) -> int:
        """How many clients hold the 90 Hz requirement."""
        return sum(1 for r in self.per_client if r.meets_target_fps)


def simulate_shared_infrastructure(
    scenario: MultiUserScenario,
    n_frames: int = 200,
    seed: int = 0,
    system: str = "qvr",
    engine: BatchEngine | None = None,
) -> MultiUserResult:
    """Simulate every client of a shared-infrastructure scenario.

    The scenario expands to per-client :class:`RunSpec` values and runs
    through the batch engine (the caller's, or the default serial one),
    so a parallel or caching engine accelerates multi-user studies the
    same way it accelerates figure sweeps.
    """
    specs = scenario.to_specs(system=system, n_frames=n_frames, seed=seed)
    chosen = engine if engine is not None else default_engine()
    batch = chosen.run_specs(specs)
    return MultiUserResult(per_client=tuple(batch[spec] for spec in specs))
