"""Multi-user collaborative VR extension (the paper's future direction).

The paper's framing is *planet-scale* mobile VR ("users around the world,
regardless of their hardware and network conditions") and it compares
against multi-user systems (Firefly, Coterie).  This module extends the
reproduction with the natural next step: **several Q-VR clients sharing
one rendering server and one access link**.

Model: each client runs the full Q-VR control loop independently; the
shared infrastructure scales each client's effective resources —

* the server's rendering throughput divides across concurrently active
  clients (the MCM GPUs are time-shared);
* the shared downlink divides its throughput across clients;

so every client's LIWC observes a *degraded environment* (slower ACK
throughput, longer remote latencies) and re-balances by growing its local
fovea.  The testable prediction — more co-located users, larger average
eccentricity and lower per-user FPS, until the local GPUs saturate — is
the behaviour a planet-scale deployment would exhibit.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.errors import ConfigurationError
from repro.network.conditions import NetworkConditions
from repro.sim.metrics import SimulationResult
from repro.sim.systems import PlatformConfig, make_system
from repro.workloads.apps import VRApp, get_app

__all__ = ["MultiUserScenario", "MultiUserResult", "simulate_shared_infrastructure"]


@dataclass(frozen=True)
class MultiUserScenario:
    """A shared-infrastructure deployment.

    Attributes
    ----------
    apps:
        One title per client (clients may run different games).
    platform:
        The single-user platform being shared.
    sharing_efficiency:
        Fraction of ideal 1/N scaling the infrastructure achieves
        (statistical multiplexing recovers some capacity because clients'
        transfers interleave; 1.0 = perfect interleaving, i.e. each of N
        clients sees capacity/N x 1/efficiency... values < 1 model
        scheduling losses).
    """

    apps: tuple[str, ...]
    platform: PlatformConfig
    sharing_efficiency: float = 0.9

    def __post_init__(self) -> None:
        if not self.apps:
            raise ConfigurationError("scenario needs at least one client")
        if not 0 < self.sharing_efficiency <= 1:
            raise ConfigurationError("sharing_efficiency must be in (0, 1]")

    @property
    def n_clients(self) -> int:
        """Number of co-located clients."""
        return len(self.apps)


@dataclass(frozen=True)
class MultiUserResult:
    """Per-client results plus aggregate statistics."""

    per_client: tuple[SimulationResult, ...]

    @property
    def mean_fps(self) -> float:
        """Average per-client frame rate."""
        return float(np.mean([r.measured_fps for r in self.per_client]))

    @property
    def mean_e1_deg(self) -> float:
        """Average steady-state eccentricity across clients."""
        return float(np.mean([r.mean_e1_deg for r in self.per_client]))

    @property
    def mean_latency_ms(self) -> float:
        """Average end-to-end latency across clients."""
        return float(np.mean([r.mean_latency_ms for r in self.per_client]))

    @property
    def clients_meeting_fps(self) -> int:
        """How many clients hold the 90 Hz requirement."""
        return sum(1 for r in self.per_client if r.meets_target_fps)


def _shared_platform(scenario: MultiUserScenario) -> PlatformConfig:
    """Derive each client's effective platform under sharing."""
    n = scenario.n_clients
    if n == 1:
        return scenario.platform
    share = 1.0 / (n * scenario.sharing_efficiency)
    base = scenario.platform
    shared_network = NetworkConditions(
        name=base.network.name,
        throughput_mbps=base.network.throughput_mbps * share,
        propagation_ms=base.network.propagation_ms,
        snr_db=base.network.snr_db,
        jitter_fraction=min(base.network.jitter_fraction * (1 + 0.1 * (n - 1)), 0.5),
    )
    shared_server = replace(
        base.server,
        per_gpu_speedup=base.server.per_gpu_speedup * share,
    )
    return replace(base, network=shared_network, server=shared_server)


def simulate_shared_infrastructure(
    scenario: MultiUserScenario,
    n_frames: int = 200,
    seed: int = 0,
    system: str = "qvr",
) -> MultiUserResult:
    """Simulate every client of a shared-infrastructure scenario.

    Each client runs the full per-frame control loop against its share of
    the server and link; clients receive distinct seeds so their motion
    and scene dynamics are independent.
    """
    platform = _shared_platform(scenario)
    results = []
    for client_index, app_name in enumerate(scenario.apps):
        app: VRApp = get_app(app_name)
        client = make_system(system, app, platform, seed=seed + 97 * client_index)
        results.append(client.run(n_frames=n_frames))
    return MultiUserResult(per_client=tuple(results))
