"""Multi-user collaborative VR scenarios on the batch execution layer.

The paper's framing is *planet-scale* mobile VR ("users around the world,
regardless of their hardware and network conditions") and it compares
against multi-user systems (Firefly, Coterie).  This module describes the
natural next step — **several Q-VR clients sharing one rendering server
and one access link** — as plain :class:`~repro.sim.runner.RunSpec`
batches: a scenario expands to one spec per client (carrying the
``shared_clients`` degradation and a distinct per-client seed) and runs
through the same :class:`~repro.sim.runner.BatchEngine` as every other
experiment, so multi-user evaluation parallelises and memoizes for free.

Model: each client runs the full Q-VR control loop independently; the
shared infrastructure scales each client's effective resources —

* the server's rendering throughput divides across concurrently active
  clients (the MCM GPUs are time-shared);
* the shared downlink divides its throughput across clients;

so every client's LIWC observes a *degraded environment* (slower ACK
throughput, longer remote latencies) and re-balances by growing its local
fovea.  The testable prediction — more co-located users, larger average
eccentricity and lower per-user FPS, until the local GPUs saturate — is
the behaviour a planet-scale deployment would exhibit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.sim.metrics import SimulationResult
from repro.sim.runner import (
    BatchEngine,
    CLIENT_SEED_STRIDE,
    RunSpec,
    default_engine,
    effective_warmup,
)
from repro.sim.systems import PlatformConfig

__all__ = ["MultiUserScenario", "MultiUserResult", "simulate_shared_infrastructure"]


@dataclass(frozen=True)
class MultiUserScenario:
    """A shared-infrastructure deployment.

    Attributes
    ----------
    apps:
        One title per client (clients may run different games).
    platform:
        The single-user platform being shared.
    sharing_efficiency:
        Fraction of ideal 1/N scaling the infrastructure achieves
        (statistical multiplexing recovers some capacity because clients'
        transfers interleave; 1.0 = perfect interleaving, i.e. each of N
        clients sees capacity/N x 1/efficiency... values < 1 model
        scheduling losses).
    """

    apps: tuple[str, ...]
    platform: PlatformConfig
    sharing_efficiency: float = 0.9

    def __post_init__(self) -> None:
        if len(self.apps) < 1:
            raise ConfigurationError(
                "scenario needs n_users >= 1 (one app per client)"
            )
        if not 0 < self.sharing_efficiency <= 1:
            raise ConfigurationError("sharing_efficiency must be in (0, 1]")

    @classmethod
    def uniform(
        cls,
        app: str,
        n_users: int,
        platform: PlatformConfig | None = None,
        sharing_efficiency: float = 0.9,
    ) -> "MultiUserScenario":
        """A scenario of ``n_users`` clients all running the same title."""
        if n_users < 1:
            raise ConfigurationError(f"n_users must be >= 1, got {n_users}")
        return cls(
            apps=(app,) * n_users,
            platform=platform if platform is not None else PlatformConfig(),
            sharing_efficiency=sharing_efficiency,
        )

    @property
    def n_clients(self) -> int:
        """Number of co-located clients."""
        return len(self.apps)

    def to_specs(
        self,
        system: str = "qvr",
        n_frames: int = 200,
        seed: int = 0,
        warmup_frames: int | None = None,
    ) -> tuple[RunSpec, ...]:
        """One frozen spec per client, ready for any batch engine.

        Clients receive distinct seeds (stride
        :data:`~repro.sim.runner.CLIENT_SEED_STRIDE`) so their motion and
        scene dynamics are independent; each spec carries the scenario's
        sharing parameters so the engine derives the degraded platform.
        """
        warmup = (
            effective_warmup(n_frames) if warmup_frames is None else warmup_frames
        )
        return tuple(
            RunSpec(
                system=system,
                app=app_name,
                platform=self.platform,
                n_frames=n_frames,
                seed=seed + CLIENT_SEED_STRIDE * client_index,
                warmup_frames=warmup,
                shared_clients=self.n_clients,
                sharing_efficiency=self.sharing_efficiency,
            )
            for client_index, app_name in enumerate(self.apps)
        )


@dataclass(frozen=True)
class MultiUserResult:
    """Per-client results plus aggregate statistics."""

    per_client: tuple[SimulationResult, ...]

    @property
    def mean_fps(self) -> float:
        """Average per-client frame rate."""
        return float(np.mean([r.measured_fps for r in self.per_client]))

    @property
    def mean_e1_deg(self) -> float:
        """Average steady-state eccentricity across clients."""
        return float(np.mean([r.mean_e1_deg for r in self.per_client]))

    @property
    def mean_latency_ms(self) -> float:
        """Average end-to-end latency across clients."""
        return float(np.mean([r.mean_latency_ms for r in self.per_client]))

    @property
    def clients_meeting_fps(self) -> int:
        """How many clients hold the 90 Hz requirement."""
        return sum(1 for r in self.per_client if r.meets_target_fps)


def simulate_shared_infrastructure(
    scenario: MultiUserScenario,
    n_frames: int = 200,
    seed: int = 0,
    system: str = "qvr",
    engine: BatchEngine | None = None,
) -> MultiUserResult:
    """Simulate every client of a shared-infrastructure scenario.

    The scenario expands to per-client :class:`RunSpec` values and runs
    through the batch engine (the caller's, or the default serial one),
    so a parallel or caching engine accelerates multi-user studies the
    same way it accelerates figure sweeps.
    """
    specs = scenario.to_specs(system=system, n_frames=n_frames, seed=seed)
    chosen = engine if engine is not None else default_engine()
    batch = chosen.run_specs(specs)
    return MultiUserResult(per_client=tuple(batch[spec] for spec in specs))
