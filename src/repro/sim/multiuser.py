"""Multi-user collaborative VR scenarios on the batch execution layer.

The paper's framing is *planet-scale* mobile VR ("users around the world,
regardless of their hardware and network conditions") and it compares
against multi-user systems (Firefly, Coterie).  This module describes the
natural next step — **several Q-VR clients sharing one rendering server
and one access link** — as plain :class:`~repro.sim.runner.RunSpec`
batches: a scenario expands to one spec per client (carrying the
``shared_clients`` degradation and a distinct per-client seed) and runs
through the same :class:`~repro.sim.runner.BatchEngine` as every other
experiment, so multi-user evaluation parallelises and memoizes for free.

Sessions are **heterogeneous**: each :class:`ClientSpec` names its own
``(app, platform, profile)`` tuple — one participant on a flagship SoC
over Wi-Fi, another on a throttled GPU over a 4G link that drops mid-run
— matching how surveys of synchronous VR collaboration characterise real
sessions.  The uniform all-same-title scenario remains the
:meth:`MultiUserScenario.uniform` special case.

Model: each client runs the full Q-VR control loop independently; the
shared infrastructure scales each client's effective resources —

* the server's rendering throughput divides across concurrently active
  clients (the MCM GPUs are time-shared);
* the shared downlink divides its throughput across clients;

so every client's LIWC observes a *degraded environment* (slower ACK
throughput, longer remote latencies) and re-balances by growing its local
fovea.  The testable prediction — more co-located users, larger average
eccentricity and lower per-user FPS, until the local GPUs saturate — is
the behaviour a planet-scale deployment would exhibit.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.errors import ConfigurationError
from repro.network.conditions import NetworkConditions
from repro.network.profile import NetworkProfile, as_profile
from repro.sim.metrics import SimulationResult
from repro.sim.runner import BatchEngine, RunSpec, default_engine
from repro.sim.server import AdmissionDecision, POLICY_NAMES, RenderServer
from repro.sim.systems import PlatformConfig

__all__ = [
    "ClientSpec",
    "MultiUserScenario",
    "MultiUserResult",
    "SessionPlan",
    "simulate_shared_infrastructure",
]


@dataclass(frozen=True)
class ClientSpec:
    """One participant of a shared session: app, hardware, link dynamics.

    Attributes
    ----------
    app:
        The title this client runs.
    platform:
        The client's own platform; ``None`` inherits the scenario default.
    profile:
        Link conditions/profile override (a
        :class:`~repro.network.profile.NetworkProfile`, static
        conditions, or a registry name); ``None`` keeps the platform's
        network.  A client whose resolved network differs from the
        scenario default is on a *private* link: it still shares the
        rendering server, but its downlink is not divided across the
        session's clients.
    system:
        Per-client system design override; ``None`` uses the scenario
        run's system.
    weight:
        Demand in client-equivalents, the admission controller's
        currency (see :class:`~repro.sim.server.RenderServer`); 1.0 is
        one full-demand client.
    """

    app: str
    platform: PlatformConfig | None = None
    profile: NetworkProfile | NetworkConditions | str | None = None
    system: str | None = None
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ConfigurationError(f"client weight must be > 0, got {self.weight}")

    def resolved_platform(self, default: PlatformConfig) -> PlatformConfig:
        """The platform this client runs on, with its profile applied."""
        platform = self.platform if self.platform is not None else default
        if self.profile is not None:
            platform = replace(platform, network=as_profile(self.profile))
        return platform


@dataclass(frozen=True)
class MultiUserScenario:
    """A shared-infrastructure deployment of heterogeneous clients.

    Construct either from ``clients`` (per-client
    :class:`ClientSpec` tuples — bare app-name strings are promoted) or
    from the legacy uniform surface ``apps`` (one title per client, all
    on the scenario platform).  Exactly one of the two spellings must
    describe the session; both fields are populated coherently after
    construction.

    Attributes
    ----------
    apps:
        One title per client (derived from ``clients`` when those are
        given explicitly).
    platform:
        The default single-user platform being shared; clients may
        override it per :class:`ClientSpec`.
    sharing_efficiency:
        Fraction of ideal 1/N scaling the infrastructure achieves
        (statistical multiplexing recovers some capacity because clients'
        transfers interleave; 1.0 = perfect interleaving, values < 1
        model scheduling losses).
    clients:
        The full per-client description of the session.
    policy:
        Server scheduling policy (:data:`~repro.sim.server.POLICY_NAMES`).
        The default ``"fair-share"`` reproduces the uniform division of
        earlier releases bit-identically (same specs, same cache keys);
        ``"weighted"`` and ``"deadline"`` plan explicit per-client share
        schedules at admission time.
    server:
        The rendering server doing admission and scheduling; ``None``
        keeps the legacy unlimited-capacity behaviour under fair-share
        and a default :class:`~repro.sim.server.RenderServer` otherwise.
    """

    apps: tuple[str, ...] = ()
    platform: PlatformConfig | None = None
    sharing_efficiency: float = 0.9
    clients: tuple[ClientSpec, ...] = ()
    policy: str = "fair-share"
    server: RenderServer | None = None

    def __post_init__(self) -> None:
        if self.policy not in POLICY_NAMES:
            raise ConfigurationError(
                f"unknown scheduling policy {self.policy!r}; known: {POLICY_NAMES}"
            )
        if self.platform is None:
            object.__setattr__(self, "platform", PlatformConfig())
        if self.clients:
            promoted = tuple(
                client if isinstance(client, ClientSpec) else ClientSpec(app=client)
                for client in self.clients
            )
            object.__setattr__(self, "clients", promoted)
            derived = tuple(client.app for client in promoted)
            if self.apps and tuple(self.apps) != derived:
                raise ConfigurationError(
                    f"apps {self.apps!r} disagree with clients {derived!r}; "
                    "provide one of the two"
                )
            object.__setattr__(self, "apps", derived)
        elif self.apps:
            object.__setattr__(self, "apps", tuple(self.apps))
            object.__setattr__(
                self, "clients", tuple(ClientSpec(app=app) for app in self.apps)
            )
        else:
            raise ConfigurationError(
                "scenario needs n_users >= 1 (one app or ClientSpec per client)"
            )
        if not 0 < self.sharing_efficiency <= 1:
            raise ConfigurationError("sharing_efficiency must be in (0, 1]")

    @classmethod
    def uniform(
        cls,
        app: str,
        n_users: int,
        platform: PlatformConfig | None = None,
        sharing_efficiency: float = 0.9,
        policy: str = "fair-share",
        server: RenderServer | None = None,
    ) -> "MultiUserScenario":
        """A scenario of ``n_users`` clients all running the same title."""
        if n_users < 1:
            raise ConfigurationError(f"n_users must be >= 1, got {n_users}")
        return cls(
            apps=(app,) * n_users,
            platform=platform,
            sharing_efficiency=sharing_efficiency,
            policy=policy,
            server=server,
        )

    @classmethod
    def heterogeneous(
        cls,
        clients: tuple[ClientSpec | str, ...],
        platform: PlatformConfig | None = None,
        sharing_efficiency: float = 0.9,
        policy: str = "fair-share",
        server: RenderServer | None = None,
    ) -> "MultiUserScenario":
        """A scenario of per-client ``(app, platform, profile)`` tuples."""
        return cls(
            platform=platform,
            sharing_efficiency=sharing_efficiency,
            clients=tuple(clients),
            policy=policy,
            server=server,
        )

    @property
    def n_clients(self) -> int:
        """Number of co-located clients."""
        return len(self.clients)

    def to_specs(
        self,
        system: str = "qvr",
        n_frames: int = 200,
        seed: int = 0,
        warmup_frames: int | None = None,
    ) -> tuple[RunSpec, ...]:
        """One frozen spec per *serviced* client, ready for any engine.

        Clients receive distinct seeds (stride
        :data:`~repro.sim.runner.CLIENT_SEED_STRIDE`) so their motion and
        scene dynamics are independent; each spec carries the client's
        resolved platform/profile and the scenario's sharing parameters,
        so the engine derives the degraded per-client environment.

        Under the default fair-share policy (with no explicit server)
        every client is serviced and the expansion is byte-identical to
        earlier releases; otherwise the admission plan may reject or
        queue clients, whose specs are simply absent (see :meth:`plan`
        for the full per-client verdicts).
        """
        return self.plan(
            system=system, n_frames=n_frames, seed=seed, warmup_frames=warmup_frames
        ).specs

    def as_session(self):
        """This scenario as a (static, event-free) dynamic session.

        The bridge to the event-driven surface: add events to the
        returned :class:`~repro.sim.session.Session` and the same roster
        churns; add none and it plans bit-identically to :meth:`plan`.
        """
        from repro.sim.session import Session

        return Session(
            clients=self.clients,
            platform=self.platform,
            sharing_efficiency=self.sharing_efficiency,
            policy=self.policy,
            server=self.server,
        )

    def plan(
        self,
        system: str = "qvr",
        n_frames: int = 200,
        seed: int = 0,
        warmup_frames: int | None = None,
    ) -> "SessionPlan":
        """Admit, schedule and expand the session into frozen run specs.

        A thin compatibility shim over a single-epoch event-free
        :class:`~repro.sim.session.Session` (see :meth:`as_session`),
        whose static path is the exact planning logic of earlier
        releases: the legacy fair-share path (no explicit server) admits
        everyone and emits exactly the specs of those releases — same
        cache keys, bit-identical results — and any other configuration
        runs the full server pipeline (demand estimation, admission,
        policy scheduling) whose share schedules ride inside the specs.
        """
        return self.as_session().timeline(
            system=system,
            n_frames=n_frames,
            seed=seed,
            warmup_frames=warmup_frames,
        ).plan()


@dataclass(frozen=True)
class SessionPlan:
    """The admission controller's output for one session.

    ``decisions`` covers every client in session order; ``specs`` holds
    one frozen run spec per *serviced* client (admitted or degraded), in
    the same order — rejected and queued clients run nothing.
    """

    decisions: tuple[AdmissionDecision, ...]
    specs: tuple[RunSpec, ...]

    @property
    def serviced_indices(self) -> tuple[int, ...]:
        """Session indices of the clients that actually run."""
        return tuple(d.client_index for d in self.decisions if d.serviced)


@dataclass(frozen=True)
class MultiUserResult:
    """Per-client results plus aggregate statistics.

    ``per_client`` aligns with the session's *serviced* clients (see
    ``decisions`` when an admission controller turned clients away; the
    default fair-share session services everyone).
    """

    per_client: tuple[SimulationResult, ...]
    decisions: tuple[AdmissionDecision, ...] | None = None

    @property
    def mean_fps(self) -> float:
        """Average per-client frame rate."""
        if not self.per_client:
            return float("nan")
        return float(np.mean([r.measured_fps for r in self.per_client]))

    @property
    def mean_e1_deg(self) -> float:
        """Average steady-state eccentricity across clients."""
        if not self.per_client:
            return float("nan")
        return float(np.mean([r.mean_e1_deg for r in self.per_client]))

    @property
    def mean_latency_ms(self) -> float:
        """Average end-to-end latency across clients."""
        if not self.per_client:
            return float("nan")
        return float(np.mean([r.mean_latency_ms for r in self.per_client]))

    @property
    def clients_meeting_fps(self) -> int:
        """How many clients hold the 90 Hz requirement."""
        return sum(1 for r in self.per_client if r.meets_target_fps)


def simulate_shared_infrastructure(
    scenario: MultiUserScenario,
    n_frames: int = 200,
    seed: int = 0,
    system: str = "qvr",
    engine: BatchEngine | None = None,
) -> MultiUserResult:
    """Simulate every client of a shared-infrastructure scenario.

    The scenario expands to per-client :class:`RunSpec` values and runs
    through the batch engine (the caller's, or the default serial one),
    so a parallel or caching engine accelerates multi-user studies the
    same way it accelerates figure sweeps.  Clients the admission
    controller rejected or queued contribute no result; their verdicts
    are reported on the returned :attr:`MultiUserResult.decisions`.
    """
    plan = scenario.plan(system=system, n_frames=n_frames, seed=seed)
    chosen = engine if engine is not None else default_engine()
    batch = chosen.run_specs(plan.specs)
    return MultiUserResult(
        per_client=tuple(batch[spec] for spec in plan.specs),
        decisions=plan.decisions,
    )
