"""Sharded, work-stealing batch execution with spill-to-disk result streams.

This is the execution substrate underneath :class:`~repro.sim.runner.
BatchEngine` for population-scale sweeps: the spec list is partitioned
into contiguous **shards**, shards are served from per-worker queues
with idle workers **stealing** from the tail of the busiest queue, and
every completed run is **streamed to disk** as an append-only pickle
frame in a per-shard result file — so a 10k-spec sweep executes in
memory bounded by one shard, an interrupted sweep resumes from the spill
files, and a killed worker's shard is requeued and re-executed without
losing the frames it already wrote.

Three execution modes share one on-disk protocol (:class:`ResultStream`):

* ``inline`` — shards run one after another in this process (the
  reference order; also the fallback when every worker has died);
* ``process`` — shards run on a ``concurrent.futures`` process pool,
  scheduled by the parent from per-worker queues with steal-from-tail
  (the pool executes wherever a process is free, so the queues model
  *scheduling order*, not CPU pinning);
* ``subprocess`` — the simulated multi-machine mode: independent
  ``python -m repro.sim.shard`` worker processes claim shards from the
  spool directory via atomic claim files, heartbeat while executing,
  and steal unclaimed shards from the tail once their own partition is
  drained.  The parent requeues any shard whose claimant died or whose
  heartbeat went stale, so a ``SIGKILL``-ed worker's shard is stolen
  and re-executed — deterministically, because every run derives all
  randomness from its spec.

Determinism contract: shard planning is a pure function of the spec
list, frames within a shard are written in spec order, and each run is
bit-reproducible from its spec — so the stream's contents are identical
at any shard count, worker count, mode, and across crash/requeue or
interrupt/resume cycles.
"""

from __future__ import annotations

import concurrent.futures
import hashlib
import json
import os
import pickle
import subprocess
import sys
import time
from collections import deque
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable, Iterable, Iterator, Sequence

from repro.errors import ConfigurationError
from repro.obs import clock as obs_clock
from repro.obs import trace as obs_trace
from repro.sim.metrics import SimulationResult
from repro.sim.runner import RunSpec, run, spec_key

__all__ = [
    "Shard",
    "ShardStats",
    "ShardedExecutor",
    "ResultStream",
    "SHARD_MODES",
    "plan_shards",
]

#: Execution modes of the sharded executor (see the module docstring).
SHARD_MODES = ("inline", "process", "subprocess")

#: Heartbeat period (seconds) subprocess workers refresh their claim at.
DEFAULT_HEARTBEAT_S = 1.0

#: A claim whose heartbeat is older than this many periods is stale.
_STALE_HEARTBEATS = 4

#: Test hook: sleep this many milliseconds after each spec execution in a
#: subprocess worker, widening the mid-shard window fault tests kill in.
_DELAY_ENV = "REPRO_SHARD_SPEC_DELAY_MS"

#: What a torn or garbage frame tail surfaces as: the pickle machinery
#: raises different exception types depending on where the bytes were cut
#: (mid-length prefix, unknown opcode, bad protocol marker, missing
#: global), and all of them mean the same thing here — end of the valid
#: prefix.
_TORN_FRAME_ERRORS = (
    EOFError,
    pickle.UnpicklingError,
    AttributeError,
    ValueError,
    IndexError,
    KeyError,
)


@dataclass(frozen=True)
class Shard:
    """One contiguous slice of a sweep's spec list."""

    index: int
    specs: tuple[RunSpec, ...]

    def __len__(self) -> int:
        return len(self.specs)


def plan_shards(specs: Sequence[RunSpec], shards: int) -> tuple[Shard, ...]:
    """Partition ``specs`` into at most ``shards`` contiguous shards.

    A pure function of the inputs: sizes differ by at most one (the
    remainder lands on the leading shards), order is preserved, and a
    request for more shards than specs degrades to one-spec shards —
    empty shards are never produced, so every planned shard does work.
    """
    if shards < 1:
        raise ConfigurationError(f"shards must be >= 1, got {shards}")
    specs = list(specs)
    if not specs:
        return ()
    shards = min(shards, len(specs))
    base, extra = divmod(len(specs), shards)
    planned = []
    cursor = 0
    for index in range(shards):
        size = base + (1 if index < extra else 0)
        planned.append(Shard(index=index, specs=tuple(specs[cursor : cursor + size])))
        cursor += size
    return tuple(planned)


def _plan_digest(specs: Sequence[RunSpec], shards: int) -> str:
    """Content hash binding a result stream to one (spec list, shards) plan."""
    hasher = hashlib.sha256()
    hasher.update(str(shards).encode())
    for spec in specs:
        hasher.update(spec_key(spec).encode())
    return hasher.hexdigest()


# ---------------------------------------------------------------------------
# The on-disk result stream
# ---------------------------------------------------------------------------


class ResultStream:
    """Append-only per-shard result files with a manifest index.

    Layout of the stream directory::

        manifest.json       the shard plan: n_shards, spec count, digest
        shard-0007.spec     pickled Shard (subprocess workers read these)
        shard-0007.part     in-progress frames (appended, flushed per spec)
        shard-0007.results  completed shard (atomic rename of the .part)
        shard-0007.claim    subprocess-mode ownership + heartbeat (mtime)
        shard-0007.owner    who completed the shard (provenance)

    Each frame is one ``pickle.dump((spec, result))``, written in spec
    order and flushed immediately, so readers observe a valid prefix at
    every instant and a truncated tail (from a crash mid-write) is
    detected and discarded on the next scan.
    """

    MANIFEST = "manifest.json"

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    # -- paths ---------------------------------------------------------------

    def results_path(self, index: int) -> Path:
        """Completed-results file for shard ``index``."""
        return self.directory / f"shard-{index:04d}.results"

    def part_path(self, index: int) -> Path:
        """In-progress partial file for shard ``index``."""
        return self.directory / f"shard-{index:04d}.part"

    def spec_path(self, index: int) -> Path:
        """Pickled spec list for shard ``index``."""
        return self.directory / f"shard-{index:04d}.spec"

    def claim_path(self, index: int) -> Path:
        """Work-stealing claim marker for shard ``index``."""
        return self.directory / f"shard-{index:04d}.claim"

    def owner_path(self, index: int) -> Path:
        """Claim-owner record for shard ``index``."""
        return self.directory / f"shard-{index:04d}.owner"

    # -- manifest ------------------------------------------------------------

    def write_manifest(self, shards: Sequence[Shard], digest: str) -> None:
        """Record the shard plan; validate instead when one already exists.

        A stream directory is bound to exactly one plan: resuming with a
        different spec list or shard count would silently interleave two
        sweeps' results, so a digest mismatch fails loudly.
        """
        path = self.directory / self.MANIFEST
        payload = {
            "version": 1,
            "n_shards": len(shards),
            "n_specs": sum(len(s) for s in shards),
            "digest": digest,
        }
        if path.exists():
            existing = json.loads(path.read_text())
            if existing.get("digest") != digest:
                raise ConfigurationError(
                    f"result stream at {self.directory} was created for a "
                    "different sweep (spec list or shard count changed); "
                    "use a fresh stream directory per sweep configuration"
                )
            return
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload, indent=2) + "\n")
        os.replace(tmp, path)

    def manifest(self) -> dict | None:
        """The recorded shard plan, or None for a fresh directory."""
        path = self.directory / self.MANIFEST
        if not path.exists():
            return None
        return json.loads(path.read_text())

    # -- shard spec spool (subprocess mode) -----------------------------------

    def write_shard_specs(self, shards: Sequence[Shard]) -> None:
        """Spool each shard's spec list for subprocess workers to claim."""
        for shard in shards:
            path = self.spec_path(shard.index)
            if path.exists():
                continue
            tmp = path.with_suffix(".tmp")
            with tmp.open("wb") as handle:
                pickle.dump(shard, handle)
            os.replace(tmp, path)

    def load_shard(self, index: int) -> Shard:
        """Load one spooled shard description."""
        with self.spec_path(index).open("rb") as handle:
            shard = pickle.load(handle)
        if not isinstance(shard, Shard) or shard.index != index:
            raise ConfigurationError(
                f"corrupt shard spool entry {self.spec_path(index)}"
            )
        return shard

    def spooled_indices(self) -> list[int]:
        """Indices of every spooled shard, ascending."""
        return sorted(
            int(path.stem.split("-")[1])
            for path in self.directory.glob("shard-*.spec")
        )

    # -- completion state ------------------------------------------------------

    def completed_shards(self) -> list[int]:
        """Indices of shards whose result files are complete, ascending."""
        return sorted(
            int(path.stem.split("-")[1])
            for path in self.directory.glob("shard-*.results")
        )

    def is_complete(self, index: int) -> bool:
        """True when shard ``index`` has a completed results file."""
        return self.results_path(index).exists()

    # -- reading ---------------------------------------------------------------

    @staticmethod
    def _iter_frames(path: Path) -> Iterator[tuple[RunSpec, SimulationResult]]:
        """Yield the valid frame prefix of one shard file, one at a time."""
        try:
            handle = path.open("rb")
        except OSError:
            return
        with handle:
            while True:
                try:
                    frame = pickle.load(handle)
                except _TORN_FRAME_ERRORS:
                    return
                if not isinstance(frame, tuple) or len(frame) != 2:
                    return
                yield frame

    def iter_shard(self, index: int) -> Iterator[tuple[RunSpec, SimulationResult]]:
        """Yield one completed shard's ``(spec, result)`` frames in order."""
        yield from self._iter_frames(self.results_path(index))

    def iter_results(self) -> Iterator[tuple[RunSpec, SimulationResult]]:
        """Yield every completed frame, shard by shard, lazily from disk."""
        for index in self.completed_shards():
            yield from self.iter_shard(index)

    def __len__(self) -> int:
        """Completed frames on disk (consumes only counters, not results)."""
        return sum(1 for _ in self.iter_results())


class _ShardWriter:
    """Appends one shard's frames, salvaging any valid prefix on resume.

    Opening the writer scans an existing ``.part`` file left by a crashed
    or interrupted run: frames whose specs match the shard's spec order
    are kept (their byte prefix is preserved verbatim, so the final file
    is bit-identical to an uninterrupted run), everything after the first
    mismatch or torn frame is truncated, and execution resumes at
    :attr:`start`.
    """

    def __init__(self, stream: ResultStream, shard: Shard) -> None:
        self.stream = stream
        self.shard = shard
        self.part = stream.part_path(shard.index)
        self.start = 0
        offset = 0
        if self.part.exists():
            with self.part.open("rb") as handle:
                while self.start < len(shard.specs):
                    try:
                        frame = pickle.load(handle)
                    except _TORN_FRAME_ERRORS:
                        break
                    if (
                        not isinstance(frame, tuple)
                        or len(frame) != 2
                        or frame[0] != shard.specs[self.start]
                    ):
                        break
                    offset = handle.tell()
                    self.start += 1
        self._handle = self.part.open("r+b" if self.part.exists() else "wb")
        self._handle.truncate(offset)
        self._handle.seek(offset)
        self._written = self.start

    def append(self, spec: RunSpec, result: SimulationResult) -> None:
        """Append one (spec, result) record and flush it to disk."""
        pickle.dump((spec, result), self._handle, protocol=pickle.HIGHEST_PROTOCOL)
        self._handle.flush()
        self._written += 1

    def close(self, completed: bool) -> None:
        """Close the writer; on completion, publish the results file."""
        self._handle.close()
        if completed:
            if self._written != len(self.shard.specs):
                raise ConfigurationError(
                    f"shard {self.shard.index} closed as complete with "
                    f"{self._written}/{len(self.shard.specs)} frames"
                )
            os.replace(self.part, self.stream.results_path(self.shard.index))


# ---------------------------------------------------------------------------
# Shard execution (shared by every mode)
# ---------------------------------------------------------------------------


def _execute_shard(
    shard: Shard,
    stream_dir: str | os.PathLike,
    engine: str | None,
    delay_ms: float = 0.0,
    heartbeat: Callable[[], None] | None = None,
    trace_dir: str | None = None,
) -> tuple[int, int]:
    """Run one shard, streaming frames to disk; returns (index, executed).

    Skips work already on disk: a completed shard is a no-op, a partial
    ``.part`` file resumes after its salvaged prefix.  An engine override
    rewrites how each spec executes; the *requested* spec is what lands
    in the frame, so stream contents are override-invariant.  With
    ``trace_dir`` set, a fork-safe per-process tracer records one
    execute span per spec (keyed by shard ordinal + spec key) and a
    resume event for any salvaged prefix.
    """
    tracer = obs_trace.ensure(trace_dir)
    stream = ResultStream(stream_dir)
    if stream.is_complete(shard.index):
        return shard.index, 0
    writer = _ShardWriter(stream, shard)
    if writer.start and tracer.enabled:
        tracer.instant(
            "shard.resume", key=("resume", shard.index, writer.start),
            shard=shard.index, salvaged=writer.start,
        )
    executed = 0
    try:
        for spec in shard.specs[writer.start :]:
            job = spec if engine is None else replace(spec, engine=engine)
            key = (shard.index, spec_key(job)) if tracer.enabled else None
            with tracer.span("shard.execute", key=key, shard=shard.index):
                result = run(job)
            writer.append(spec, result)
            executed += 1
            if heartbeat is not None:
                heartbeat()
            if delay_ms > 0.0:
                time.sleep(delay_ms / 1000.0)
    except BaseException:
        writer.close(completed=False)
        raise
    writer.close(completed=True)
    return shard.index, executed


# ---------------------------------------------------------------------------
# Executor statistics
# ---------------------------------------------------------------------------


@dataclass
class ShardStats:
    """Accounting of one sharded execution."""

    shards: int = 0
    specs: int = 0
    executed: int = 0
    salvaged: int = 0
    skipped_shards: int = 0
    steals: int = 0
    requeues: int = 0
    workers: int = 0
    inline_fallback: int = 0


# ---------------------------------------------------------------------------
# The executor
# ---------------------------------------------------------------------------


class ShardedExecutor:
    """Work-stealing execution of spec shards over a spill-to-disk stream.

    Parameters
    ----------
    shards:
        Target shard count (capped at the spec count).
    workers:
        Concurrent workers (ignored by ``inline`` mode).
    mode:
        One of :data:`SHARD_MODES`.
    stream_dir:
        Directory for the :class:`ResultStream`.  Reusing a directory
        resumes the identical sweep: completed shards are skipped, a
        partial shard resumes after its salvaged prefix.
    engine:
        Optional execution-engine override (``"vector"`` / ``"scalar"``)
        applied at execution only; streamed frames keep requested specs.
    heartbeat_s:
        Subprocess-mode heartbeat period; a claim is considered stale —
        and its shard requeued for stealing — after four missed beats.
    """

    def __init__(
        self,
        shards: int = 4,
        workers: int = 1,
        mode: str = "inline",
        stream_dir: str | os.PathLike | None = None,
        engine: str | None = None,
        heartbeat_s: float = DEFAULT_HEARTBEAT_S,
    ) -> None:
        if mode not in SHARD_MODES:
            raise ConfigurationError(
                f"unknown shard mode {mode!r}; known: {SHARD_MODES}"
            )
        if shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {shards}")
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if heartbeat_s <= 0:
            raise ConfigurationError("heartbeat_s must be > 0")
        self.shards = shards
        self.workers = workers
        self.mode = mode
        self.engine = engine
        self.heartbeat_s = heartbeat_s
        self._stream_dir = stream_dir
        self._tempdir = None
        self.stats = ShardStats()
        self.stream: ResultStream | None = None

    def _resolve_stream(self) -> ResultStream:
        if self._stream_dir is None:
            import tempfile

            self._tempdir = tempfile.TemporaryDirectory(prefix="qvr-shards-")
            self._stream_dir = self._tempdir.name
        self.stream = ResultStream(self._stream_dir)
        return self.stream

    def cleanup(self) -> None:
        """Remove the temporary stream directory, when this executor owns one."""
        if self._tempdir is not None:
            self._tempdir.cleanup()
            self._tempdir = None

    # -- public API -----------------------------------------------------------

    def execute(
        self, specs: Iterable[RunSpec]
    ) -> Iterator[tuple[RunSpec, SimulationResult]]:
        """Execute specs shard by shard, yielding frames as shards complete.

        Frames stream lazily from the spill files (memory stays bounded
        by one pickle frame plus whatever the consumer retains); each
        unique spec is yielded exactly once.  Yield order follows shard
        *completion* order, which is timing-dependent — consumers key by
        spec, and the on-disk stream itself is deterministic.
        """
        planned = plan_shards(list(specs), self.shards)
        stream = self._resolve_stream()
        self.stats.shards = len(planned)
        self.stats.specs = sum(len(s) for s in planned)
        if not planned:
            return
        digest = _plan_digest([s for shard in planned for s in shard.specs], len(planned))
        stream.write_manifest(planned, digest)

        done = set(stream.completed_shards())
        pending = [shard for shard in planned if shard.index not in done]
        self.stats.skipped_shards = len(planned) - len(pending)
        for index in sorted(done):
            yield from stream.iter_shard(index)
        if not pending:
            return

        one_worker = len(pending) == 1 or self.workers == 1
        if self.mode == "inline" or (self.mode == "process" and one_worker):
            # A single process-pool worker is sequential execution with
            # pickling overhead; run the reference inline order instead.
            yield from self._run_inline(pending)
            return
        if self.mode == "process":
            runner = self._run_pool(pending)
        else:
            runner = self._run_subprocess(pending)
        for index in runner:
            yield from stream.iter_shard(index)

    # -- inline ---------------------------------------------------------------

    def _run_inline(
        self, pending: list[Shard]
    ) -> Iterator[tuple[RunSpec, SimulationResult]]:
        """Execute shards in this process, yielding frames as they finish.

        Results cross no process boundary here, so each frame is yielded
        live while its bytes are spilled — the multi-process modes'
        write-then-read-back round trip would be pure overhead.  The
        spill files still record every frame (same resume and provenance
        contract as the other modes); a salvaged prefix is replayed from
        disk before execution resumes after it.
        """
        tracer = obs_trace.active()
        for shard in pending:
            writer = _ShardWriter(self.stream, shard)
            self.stats.salvaged += writer.start
            if writer.start:
                if tracer.enabled:
                    tracer.instant(
                        "shard.resume",
                        key=("resume", shard.index, writer.start),
                        shard=shard.index, salvaged=writer.start,
                    )
                # The writer truncated the spill to exactly the salvaged
                # prefix, so a plain scan replays just those frames.
                yield from ResultStream._iter_frames(
                    self.stream.part_path(shard.index)
                )
            try:
                for spec in shard.specs[writer.start :]:
                    job = spec if self.engine is None else replace(spec, engine=self.engine)
                    key = (shard.index, spec_key(job)) if tracer.enabled else None
                    with tracer.span("shard.execute", key=key, shard=shard.index):
                        result = run(job)
                    writer.append(spec, result)
                    self.stats.executed += 1
                    yield spec, result
            except BaseException:
                writer.close(completed=False)
                raise
            writer.close(completed=True)

    # -- process pool ----------------------------------------------------------

    def _run_pool(self, pending: list[Shard]) -> Iterator[int]:
        """Parent-scheduled work stealing over a process pool.

        Shards are dealt round-robin into per-worker queues; a finishing
        worker takes the next shard from the head of its own queue, or —
        once drained — steals from the *tail* of the longest surviving
        queue.  The pool itself runs tasks wherever a process is free,
        so the queues model scheduling order (which shard is dispatched
        when and counted as a steal), not processor affinity.
        """
        workers = min(self.workers, len(pending))
        self.stats.workers = workers
        queues: list[deque[Shard]] = [deque() for _ in range(workers)]
        for position, shard in enumerate(pending):
            queues[position % workers].append(shard)
        for shard in pending:
            self.stats.salvaged += _salvage_count(self.stream, shard)

        def next_shard(worker: int) -> tuple[Shard, bool] | None:
            """Pop local work, or steal from the longest queue."""
            if queues[worker]:
                return queues[worker].popleft(), False
            victim = max(range(workers), key=lambda w: (len(queues[w]), -w))
            if queues[victim]:
                return queues[victim].pop(), True
            return None

        tracer = obs_trace.active()
        with concurrent.futures.ProcessPoolExecutor(max_workers=workers) as pool:
            futures: dict[concurrent.futures.Future, int] = {}

            def dispatch(worker: int) -> None:
                """Run one claimed shard, then requeue this worker."""
                claimed = next_shard(worker)
                if claimed is None:
                    return
                shard, stolen = claimed
                if stolen:
                    self.stats.steals += 1
                    tracer.instant(
                        "shard.steal", key=("steal", shard.index),
                        shard=shard.index, worker=worker,
                    )
                future = pool.submit(
                    _execute_shard,
                    shard,
                    str(self.stream.directory),
                    self.engine,
                    trace_dir=tracer.directory,
                )
                futures[future] = worker

            for worker in range(workers):
                dispatch(worker)
            while futures:
                completed = next(concurrent.futures.as_completed(futures))
                worker = futures.pop(completed)
                index, executed = completed.result()
                self.stats.executed += executed
                dispatch(worker)
                yield index

    # -- subprocess (simulated multi-machine) -----------------------------------

    def _run_subprocess(self, pending: list[Shard]) -> Iterator[int]:
        """Spool shards, launch claim-based workers, police heartbeats.

        The parent's only runtime roles are liveness and completion: it
        requeues shards whose claimant died or stopped heartbeating (the
        surviving workers then steal them), and falls back to inline
        execution if every worker has exited with work still pending, so
        the sweep always completes.
        """
        stream = self.stream
        stream.write_shard_specs(pending)
        for shard in pending:
            self.stats.salvaged += _salvage_count(stream, shard)
        workers = min(self.workers, len(pending))
        self.stats.workers = workers
        env = dict(os.environ)
        package_root = str(Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            package_root if not existing else package_root + os.pathsep + existing
        )
        procs = [
            subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "repro.sim.shard",
                    "--spool",
                    str(stream.directory),
                    "--worker-id",
                    str(worker),
                    "--workers",
                    str(workers),
                    "--heartbeat",
                    str(self.heartbeat_s),
                ]
                + ([] if self.engine is None else ["--engine", self.engine])
                + (
                    []
                    if obs_trace.active().directory is None
                    else ["--trace", obs_trace.active().directory]
                ),
                env=env,
            )
            for worker in range(workers)
        ]
        stale_after = self.heartbeat_s * _STALE_HEARTBEATS
        remaining = {shard.index: shard for shard in pending}
        executed_before = {
            shard.index: _salvage_count(stream, shard) for shard in pending
        }
        try:
            while remaining:
                for index in sorted(remaining):
                    if stream.is_complete(index):
                        shard = remaining.pop(index)
                        self.stats.executed += len(shard.specs) - executed_before[index]
                        yield index
                if not remaining:
                    break
                self._requeue_stale(remaining, stale_after)
                if all(proc.poll() is not None for proc in procs):
                    # Every worker exited; run what is left ourselves.
                    leftovers = [
                        remaining[index]
                        for index in sorted(remaining)
                        if not stream.is_complete(index)
                    ]
                    for shard in leftovers:
                        stream.claim_path(shard.index).unlink(missing_ok=True)
                        before = _salvage_count(stream, shard)
                        obs_trace.active().instant(
                            "shard.fallback", key=("fallback", shard.index),
                            shard=shard.index,
                        )
                        _execute_shard(
                            shard, stream.directory, self.engine,
                            trace_dir=obs_trace.active().directory,
                        )
                        self.stats.executed += len(shard.specs) - before
                        self.stats.inline_fallback += 1
                        _write_owner(stream, shard.index, "parent")
                        del remaining[shard.index]
                        yield shard.index
                    break
                time.sleep(min(0.05, self.heartbeat_s / 4))
        finally:
            for proc in procs:
                if proc.poll() is None:
                    proc.terminate()
            for proc in procs:
                try:
                    proc.wait(timeout=5)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()

    def _requeue_stale(self, remaining: dict[int, Shard], stale_after: float) -> None:
        """Release claims whose owner died or whose heartbeat went stale."""
        now = obs_clock.wall_s()
        for index in list(remaining):
            claim = self.stream.claim_path(index)
            if self.stream.is_complete(index) or not claim.exists():
                continue
            try:
                payload = json.loads(claim.read_text())
                pid = int(payload.get("pid", -1))
                beat = claim.stat().st_mtime
            except (OSError, ValueError):
                continue  # torn claim write; judge it next poll
            dead = not _pid_alive(pid)
            if dead or now - beat > stale_after:
                claim.unlink(missing_ok=True)
                self.stats.requeues += 1
                obs_trace.active().instant(
                    "shard.requeue", key=("requeue", index, self.stats.requeues),
                    shard=index, owner_pid=pid, dead=dead,
                )


def _salvage_count(stream: ResultStream, shard: Shard) -> int:
    """Frames of ``shard`` already valid on disk (its resumable prefix)."""
    if stream.is_complete(shard.index):
        return len(shard.specs)
    count = 0
    for spec, _ in stream._iter_frames(stream.part_path(shard.index)):
        if count >= len(shard.specs) or spec != shard.specs[count]:
            break
        count += 1
    return count


def _pid_alive(pid: int) -> bool:
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


def _write_owner(stream: ResultStream, index: int, owner: str) -> None:
    try:
        stream.owner_path(index).write_text(owner + "\n")
    except OSError:
        pass


# ---------------------------------------------------------------------------
# Subprocess worker entry point (``python -m repro.sim.shard``)
# ---------------------------------------------------------------------------


def _claim(stream: ResultStream, index: int, worker: int) -> bool:
    """Atomically claim one shard; False when another worker holds it."""
    try:
        fd = os.open(stream.claim_path(index), os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    with os.fdopen(fd, "w") as handle:
        json.dump({"pid": os.getpid(), "worker": worker}, handle)
    return True


def _next_claimable(stream: ResultStream, worker: int, workers: int) -> tuple[int, bool] | None:
    """The next shard this worker should take, and whether it is a steal.

    Own-partition shards (``index % workers == worker``) come first in
    ascending order; once the partition is drained, unclaimed shards are
    stolen from the tail (descending index) — the work-stealing
    discipline that keeps every machine busy through stragglers.
    """
    spooled = stream.spooled_indices()
    candidates = [i for i in spooled if not stream.is_complete(i) and not stream.claim_path(i).exists()]
    own = [i for i in candidates if i % workers == worker]
    if own:
        return own[0], False
    if candidates:
        return candidates[-1], True
    return None


def worker_main(argv: list[str] | None = None) -> int:
    """Claim-execute-heartbeat loop of one subprocess shard worker."""
    import argparse

    parser = argparse.ArgumentParser(description=worker_main.__doc__)
    parser.add_argument("--spool", required=True, help="stream/spool directory")
    parser.add_argument("--worker-id", type=int, default=0)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--engine", default=None)
    parser.add_argument("--heartbeat", type=float, default=DEFAULT_HEARTBEAT_S)
    parser.add_argument("--trace", default=None, help="obs trace directory")
    args = parser.parse_args(argv)

    label = f"worker-{args.worker_id}"
    tracer = obs_trace.ensure(args.trace, process=label)
    stream = ResultStream(args.spool)
    delay_ms = float(os.environ.get(_DELAY_ENV, "0") or "0")
    last_beat = obs_clock.monotonic_s()

    def heartbeat_for(index: int) -> Callable[[], None]:
        """Build the liveness heartbeat callback for shard ``index``."""
        claim = stream.claim_path(index)

        def beat() -> None:
            """Touch the claim mtime to signal this worker is alive."""
            nonlocal last_beat
            now = obs_clock.monotonic_s()
            if now - last_beat >= args.heartbeat / 2:
                try:
                    os.utime(claim)
                except OSError:
                    pass
                last_beat = now
                tracer.instant("shard.heartbeat", shard=index, worker=args.worker_id)

        return beat

    while True:
        claimable = _next_claimable(stream, args.worker_id, args.workers)
        if claimable is None:
            obs_trace.shutdown()
            return 0
        index, stolen = claimable
        if not _claim(stream, index, args.worker_id):
            continue  # lost the race; look again
        tracer.instant(
            "shard.claim", key=("claim", index, args.worker_id),
            shard=index, worker=args.worker_id, stolen=stolen,
        )
        if stolen:
            tracer.instant(
                "shard.steal", key=("steal", index),
                shard=index, worker=args.worker_id,
            )
        try:
            shard = stream.load_shard(index)
            _execute_shard(
                shard,
                stream.directory,
                args.engine,
                delay_ms=delay_ms,
                heartbeat=heartbeat_for(index),
                trace_dir=args.trace,
            )
            _write_owner(stream, index, label)
        finally:
            stream.claim_path(index).unlink(missing_ok=True)


if __name__ == "__main__":  # pragma: no cover — exercised via subprocess tests
    # `python -m repro.sim.shard` loads this file as ``__main__``; delegate to
    # the canonically imported module so pickled Shard objects (restored as
    # ``repro.sim.shard.Shard``) pass the isinstance checks in load_shard.
    from repro.sim.shard import worker_main as _canonical_worker_main

    raise SystemExit(_canonical_worker_main())
