"""Per-frame records and summary metrics for system simulations.

Conventions:

* **end-to-end latency** (motion-to-photon) of a frame is the time from
  its motion sample (sensor capture) to display scan-out completion,
  matching the paper's "from tracking to display" accounting;
* **measured FPS** is computed from steady-state display completion
  intervals after a warm-up prefix;
* **paper-formula FPS** is the paper's ``FPS = min(1/T_GPU, 1/T_network)``
  (Sec. 6.1), evaluated per frame from resource busy times and averaged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from statistics import mean
from typing import Iterable

import numpy as np

from repro import constants
from repro.errors import ConfigurationError

__all__ = [
    "DEFAULT_WARMUP",
    "ExactMoments",
    "FrameRecord",
    "QuantileSketch",
    "RunningMoments",
    "SimulationResult",
    "ServerStats",
    "ServerWindow",
    "StreamSummary",
    "WindowStats",
    "aggregate_server_stats",
    "effective_warmup",
    "paper_fps",
    "records_from_arrays",
    "tail_fps",
    "window_stats",
]

#: Default steady-state warm-up prefix excluded from summary metrics.
DEFAULT_WARMUP = 30


def effective_warmup(n_frames: int, warmup_frames: int = DEFAULT_WARMUP) -> int:
    """Warm-up prefix actually applied to a run of ``n_frames`` frames.

    The single clamping rule shared by the scalar systems, the vectorized
    kernels and the batch runner: the requested warm-up applies verbatim
    when it leaves at least one steady-state frame, and collapses to zero
    otherwise (a run too short to have a steady state keeps all frames).
    """
    return warmup_frames if warmup_frames < n_frames else 0


def tail_fps(display_times_ms, percentile: float = 99.0) -> float:
    """Tail frame rate of a display-completion series.

    ``1000 / p``-th-percentile of the consecutive display intervals —
    e.g. ``tail_fps(times, 99)`` is the classic "p99 FPS" (the rate of
    the worst 1% of frames).  Shared by the steady-state result metric
    and windowed analyses (the admission experiment's drop-window tail).
    """
    if len(display_times_ms) < 2:
        return float("nan")
    intervals = np.diff(np.asarray(display_times_ms, dtype=float))
    worst = float(np.percentile(intervals, percentile))
    if worst <= 0:
        return float("inf")
    return 1000.0 / worst


# ---------------------------------------------------------------------------
# Streaming (mergeable) aggregation
# ---------------------------------------------------------------------------


class RunningMoments:
    """Mergeable running count / mean / variance / extremes (Welford-Chan).

    The constant-memory replacement for collect-then-``np.mean`` when a
    sweep is too large to hold: feed values one at a time with
    :meth:`add`, or fold two partial aggregates with :meth:`merge` (the
    parallel Chan update), and read the summary statistics at any point.
    NaN values are skipped (they carry no information about the stream);
    an empty aggregate reports NaN statistics, matching the steady-state
    metrics' convention.
    """

    __slots__ = ("count", "mean", "_m2", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def add(self, value: float) -> None:
        """Fold one observation into the aggregate."""
        value = float(value)
        if math.isnan(value):
            return
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def extend(self, values: Iterable[float]) -> None:
        """Fold an iterable of observations (consumed lazily)."""
        for value in values:
            self.add(value)

    def merge(self, other: "RunningMoments") -> None:
        """Fold another partial aggregate into this one (in place)."""
        if not isinstance(other, RunningMoments):
            raise ConfigurationError(
                "RunningMoments merges only with RunningMoments, got "
                f"{type(other).__name__}"
            )
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self._m2 = other._m2
            self.min = other.min
            self.max = other.max
            return
        total = self.count + other.count
        delta = other.mean - self.mean
        self.mean += delta * other.count / total
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self.count = total
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max

    @property
    def variance(self) -> float:
        """Population variance of the observations seen so far."""
        if self.count == 0:
            return float("nan")
        return self._m2 / self.count

    @property
    def std(self) -> float:
        """Population standard deviation."""
        variance = self.variance
        return math.sqrt(variance) if variance == variance else float("nan")


class ExactMoments:
    """Order-independent mergeable moments: exact partial-sum accumulation.

    A drop-in alternative to :class:`RunningMoments` whose mean and
    standard deviation do not depend on the order observations (or
    partial aggregates) were folded in: the running sum and sum of
    squares are kept as exact floating-point expansions (Shewchuk's
    grow-expansion, the algorithm behind ``math.fsum``), so the exact
    accumulated value — and therefore its correctly rounded reading — is
    invariant under any permutation of :meth:`add` / :meth:`merge`
    calls.

    This is the property population-scale consumers need: the sharded
    executor yields results in nondeterministic completion order, and a
    Welford fold of the same values in two different orders differs in
    the last ULPs.  With exact sums, two runs that fold the same
    multiset of values report bit-identical statistics however the
    scheduler interleaved them.

    NaN observations are skipped (as in :class:`RunningMoments`);
    infinities are tallied separately (an exact expansion cannot carry
    them) and saturate the statistics deterministically.
    """

    __slots__ = ("count", "_sum", "_sumsq", "min", "max", "_pos_inf", "_neg_inf")

    def __init__(self) -> None:
        self.count = 0
        self._sum: list[float] = []
        self._sumsq: list[float] = []
        self.min = float("inf")
        self.max = float("-inf")
        self._pos_inf = 0
        self._neg_inf = 0

    @staticmethod
    def _grow(partials: list[float], x: float) -> None:
        """Fold ``x`` into an exact nonoverlapping expansion, in place."""
        i = 0
        for y in partials:
            if abs(x) < abs(y):
                x, y = y, x
            hi = x + y
            lo = y - (hi - x)
            if lo:
                partials[i] = lo
                i += 1
            x = hi
        partials[i:] = [x]

    def add(self, value: float) -> None:
        """Fold one observation into the aggregate."""
        value = float(value)
        if math.isnan(value):
            return
        self.count += 1
        if math.isinf(value):
            if value > 0:
                self._pos_inf += 1
            else:
                self._neg_inf += 1
        else:
            self._grow(self._sum, value)
            self._grow(self._sumsq, value * value)
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def extend(self, values: Iterable[float]) -> None:
        """Fold an iterable of observations (consumed lazily)."""
        for value in values:
            self.add(value)

    def merge(self, other: "ExactMoments") -> None:
        """Fold another partial aggregate into this one (in place).

        Exact: merging is equivalent to having added the other side's
        observations directly, in any order.
        """
        if not isinstance(other, ExactMoments):
            raise ConfigurationError(
                "ExactMoments merges only with ExactMoments, got "
                f"{type(other).__name__}"
            )
        self.count += other.count
        for x in other._sum:
            self._grow(self._sum, x)
        for x in other._sumsq:
            self._grow(self._sumsq, x)
        self._pos_inf += other._pos_inf
        self._neg_inf += other._neg_inf
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max

    @property
    def mean(self) -> float:
        """Correctly rounded mean of the observations seen so far."""
        if self.count == 0:
            return float("nan")
        if self._pos_inf and self._neg_inf:
            return float("nan")
        if self._pos_inf:
            return float("inf")
        if self._neg_inf:
            return float("-inf")
        return math.fsum(self._sum) / self.count

    @property
    def variance(self) -> float:
        """Population variance, computed from the exact sums."""
        if self.count == 0:
            return float("nan")
        if self._pos_inf or self._neg_inf:
            return float("inf")
        mean = math.fsum(self._sum) / self.count
        variance = math.fsum(self._sumsq) / self.count - mean * mean
        return max(variance, 0.0)

    @property
    def std(self) -> float:
        """Population standard deviation."""
        variance = self.variance
        return math.sqrt(variance) if variance == variance else float("nan")


#: Default sub-buckets per decade of the log-binned quantile sketch —
#: worst-case relative quantile error is ``10**(1/(2*64)) - 1`` (~1.8%).
_SKETCH_BINS_PER_DECADE = 64


class QuantileSketch:
    """Mergeable fixed-resolution percentile sketch for positive magnitudes.

    A log-binned (HDR-histogram-style) sketch: the positive axis between
    ``min_value`` and ``max_value`` is divided into ``bins_per_decade``
    geometrically spaced buckets per power of ten, and each observation
    increments one bucket counter.  Memory is bounded by the (sparse)
    bucket map regardless of stream length, two sketches with the same
    geometry merge by adding counters, and every operation is
    deterministic — the properties the sharded batch executor needs to
    aggregate a 10k-spec sweep without materializing it.

    Quantiles are answered to within one bucket: the worst-case relative
    error is ``10**(1/(2*bins_per_decade)) - 1`` (< 2% at the default
    resolution).  Values below ``min_value`` (including zeros and
    negatives) clamp into the lowest bucket and values at or above
    ``max_value`` into the highest; NaNs are skipped.  The defaults span
    1 µs to 10⁷ ms, generous for every millisecond- or FPS-scale series
    the simulator produces.
    """

    __slots__ = ("lo", "hi", "bins_per_decade", "_counts", "count")

    def __init__(
        self,
        min_value: float = 1e-3,
        max_value: float = 1e7,
        bins_per_decade: int = _SKETCH_BINS_PER_DECADE,
    ) -> None:
        if not 0 < min_value < max_value:
            raise ConfigurationError(
                f"need 0 < min_value < max_value, got [{min_value}, {max_value})"
            )
        if bins_per_decade < 1:
            raise ConfigurationError("bins_per_decade must be >= 1")
        self.lo = float(min_value)
        self.hi = float(max_value)
        self.bins_per_decade = int(bins_per_decade)
        self._counts: dict[int, int] = {}
        self.count = 0

    @property
    def _max_bin(self) -> int:
        return int(
            math.ceil(math.log10(self.hi / self.lo) * self.bins_per_decade)
        )

    def _bin(self, value: float) -> int:
        if value < self.lo:
            return 0
        if value >= self.hi:
            return self._max_bin
        index = int(math.floor(math.log10(value / self.lo) * self.bins_per_decade))
        return min(max(index, 0), self._max_bin)

    def add(self, value: float) -> None:
        """Fold one observation into the sketch."""
        value = float(value)
        if math.isnan(value):
            return
        index = self._bin(value)
        self._counts[index] = self._counts.get(index, 0) + 1
        self.count += 1

    def extend(self, values: Iterable[float]) -> None:
        """Fold an iterable of observations (consumed lazily)."""
        for value in values:
            self.add(value)

    def merge(self, other: "QuantileSketch") -> None:
        """Fold another sketch into this one (same geometry required)."""
        if (
            other.lo != self.lo
            or other.hi != self.hi
            or other.bins_per_decade != self.bins_per_decade
        ):
            raise ConfigurationError(
                "cannot merge quantile sketches with different geometries"
            )
        for index, n in other._counts.items():
            self._counts[index] = self._counts.get(index, 0) + n
        self.count += other.count

    def quantile(self, q: float) -> float:
        """The value at quantile ``q`` in [0, 1], to one-bucket resolution.

        Returns the geometric midpoint of the bucket containing the
        ``ceil(q * count)``-th smallest observation; NaN when empty.
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return float("nan")
        rank = max(1, math.ceil(q * self.count))
        seen = 0
        for index in sorted(self._counts):
            seen += self._counts[index]
            if seen >= rank:
                centre = (index + 0.5) / self.bins_per_decade
                return min(self.lo * 10.0**centre, self.hi)
        return self.hi  # pragma: no cover — unreachable (counts sum to count)


class StreamSummary:
    """Running moments plus a percentile sketch over one value stream.

    The unit of streaming sweep aggregation: exact count / mean / std /
    min / max via :class:`RunningMoments` and approximate percentiles via
    :class:`QuantileSketch`, mergeable across shards.  This is what the
    population-scale paths fold per-spec metrics into instead of holding
    a full-sweep result list.

    ``exact=True`` swaps the Welford moments for :class:`ExactMoments`,
    making every reported statistic independent of fold/merge order —
    the mode the population demand path uses so a sharded run's report
    is bit-identical at any shard count and completion order (sketch
    counters and extremes are order-independent either way; only the
    Welford mean/std are not).  Summaries merge only with summaries of
    the same mode.
    """

    __slots__ = ("moments", "sketch")

    def __init__(
        self, sketch: QuantileSketch | None = None, exact: bool = False
    ) -> None:
        self.moments = ExactMoments() if exact else RunningMoments()
        self.sketch = sketch if sketch is not None else QuantileSketch()

    def add(self, value: float) -> None:
        """Fold one observation into both aggregates."""
        self.moments.add(value)
        self.sketch.add(value)

    def extend(self, values: Iterable[float]) -> None:
        """Fold an iterable of observations (consumed lazily)."""
        for value in values:
            self.add(value)

    def merge(self, other: "StreamSummary") -> None:
        """Fold another summary into this one (in place)."""
        self.moments.merge(other.moments)
        self.sketch.merge(other.sketch)

    @property
    def count(self) -> int:
        """Number of observations folded in."""
        return self.moments.count

    @property
    def mean(self) -> float:
        """Mean of the observations (NaN when empty)."""
        return self.moments.mean if self.moments.count else float("nan")

    @property
    def std(self) -> float:
        """Population standard deviation."""
        return self.moments.std

    @property
    def min(self) -> float:
        """Smallest observation (NaN when empty)."""
        return self.moments.min if self.moments.count else float("nan")

    @property
    def max(self) -> float:
        """Largest observation (NaN when empty)."""
        return self.moments.max if self.moments.count else float("nan")

    def quantile(self, q: float) -> float:
        """Sketch quantile at ``q`` in [0, 1]."""
        return self.sketch.quantile(q)

    @property
    def p50(self) -> float:
        """Median, to sketch resolution."""
        return self.quantile(0.50)

    @property
    def p90(self) -> float:
        """90th percentile, to sketch resolution."""
        return self.quantile(0.90)

    @property
    def p99(self) -> float:
        """99th percentile, to sketch resolution."""
        return self.quantile(0.99)

    def row(self) -> dict[str, float]:
        """The summary as a flat dict (for tables and JSON artifacts)."""
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.min,
            "p50": self.p50,
            "p90": self.p90,
            "p99": self.p99,
            "max": self.max,
        }


@dataclass(frozen=True)
class WindowStats:
    """Aggregate metrics over one time window of a run.

    The unit of per-epoch aggregation for event-driven sessions
    (:mod:`repro.sim.session`): an epoch of the session maps to a
    ``[start_ms, end_ms)`` window of each client's run, and each window
    summarises to frame count, throughput and tail frame rate plus the
    mean partition/transmission state.  Windows too short to measure an
    interval (< 2 frames) report NaN rates, matching the steady-state
    metrics' convention.
    """

    start_ms: float
    end_ms: float
    frames: int
    mean_fps: float
    p99_fps: float
    mean_e1_deg: float
    mean_kb_per_frame: float


def window_stats(records, start_ms: float, end_ms: float) -> WindowStats:
    """Aggregate the frames displayed inside ``[start_ms, end_ms)``.

    Frames are classified by display instant (the same convention the
    netdrop/admission experiments use); FPS derives from the completion
    intervals inside the window and the p99 tail via :func:`tail_fps`.
    """
    if end_ms <= start_ms:
        raise ConfigurationError(
            f"window must have positive length, got [{start_ms}, {end_ms})"
        )
    inside = [r for r in records if start_ms <= r.display_ms < end_ms]
    times = [r.display_ms for r in inside]
    if len(times) >= 2:
        span = times[-1] - times[0]
        mean_fps = 1000.0 * (len(times) - 1) / span if span > 0 else float("inf")
    else:
        mean_fps = float("nan")
    e1 = [r.e1_deg for r in inside if not np.isnan(r.e1_deg)]
    return WindowStats(
        start_ms=start_ms,
        end_ms=end_ms,
        frames=len(inside),
        mean_fps=mean_fps,
        p99_fps=tail_fps(times, 99.0),
        mean_e1_deg=float(np.mean(e1)) if e1 else float("nan"),
        mean_kb_per_frame=(
            float(np.mean([r.transmitted_bytes for r in inside])) / 1e3
            if inside
            else float("nan")
        ),
    )


@dataclass(frozen=True)
class ServerWindow:
    """One server's occupancy over one planning epoch of a fleet session.

    The unit the render-fleet planner (:mod:`repro.sim.fleet`) emits per
    up server per epoch: who was placed there, how much of its capacity
    they consumed, and which clients arrived at this boundary —
    ``migrated_in`` is the subset of ``arrivals`` displaced off another
    server (scale-down, failure, or consolidation), the raw material of
    the failover metrics.
    """

    server: str
    start_ms: float
    end_ms: float
    capacity: float
    load: float
    clients: tuple[int, ...] = ()
    arrivals: tuple[int, ...] = ()
    migrated_in: tuple[int, ...] = ()

    @property
    def utilisation(self) -> float:
        """Fraction of the server's capacity placed clients consume."""
        return self.load / self.capacity if self.capacity > 0 else float("nan")


@dataclass(frozen=True)
class ServerStats:
    """Whole-session aggregate of one server's :class:`ServerWindow` rows."""

    server: str
    up_ms: float
    mean_utilisation: float
    peak_load: float
    distinct_clients: int
    migrations_in: int


class _ServerFold:
    """Streaming accumulator of one server's :class:`ServerWindow` rows."""

    __slots__ = ("up_ms", "weighted", "peak_load", "clients", "migrations_in")

    def __init__(self) -> None:
        self.up_ms = 0.0
        self.weighted = 0.0
        self.peak_load = float("-inf")
        self.clients: set[int] = set()
        self.migrations_in = 0

    def add(self, window: ServerWindow) -> None:
        """Fold one server window into the running totals."""
        length = window.end_ms - window.start_ms
        self.up_ms += length
        utilisation = window.utilisation
        if not np.isnan(utilisation):
            self.weighted += utilisation * length
        if window.load > self.peak_load:
            self.peak_load = window.load
        self.clients.update(window.clients)
        self.migrations_in += len(window.migrated_in)


def aggregate_server_stats(windows) -> tuple[ServerStats, ...]:
    """Fold per-epoch :class:`ServerWindow` rows into per-server stats.

    Servers appear in first-seen order; ``mean_utilisation`` is
    time-weighted over the windows the server was up (epochs where it was
    down contribute neither time nor load).  Zero-length windows (two
    events at one instant) carry no weight.

    The fold is a single streaming pass — ``windows`` may be any
    iterable (including a lazily generated one) and is never
    materialized, so fleet timelines with millions of epoch rows
    aggregate in bounded memory.
    """
    folds: dict[str, _ServerFold] = {}
    for window in windows:
        fold = folds.get(window.server)
        if fold is None:
            fold = folds[window.server] = _ServerFold()
        fold.add(window)
    return tuple(
        ServerStats(
            server=name,
            up_ms=fold.up_ms,
            mean_utilisation=(
                fold.weighted / fold.up_ms if fold.up_ms > 0 else float("nan")
            ),
            peak_load=fold.peak_load,
            distinct_clients=len(fold.clients),
            migrations_in=fold.migrations_in,
        )
        for name, fold in folds.items()
    )


@dataclass(frozen=True)
class FrameRecord:
    """Timing and accounting for one simulated frame.

    All times are in milliseconds on the simulation clock.

    Attributes
    ----------
    index:
        Frame number.
    tracking_ms:
        Motion sample (sensor capture) time.
    display_ms:
        Display scan-out completion time.
    e1_deg, e2_deg:
        Partition eccentricities (NaN for non-foveated systems).
    local_ms:
        Local GPU render time of the frame's local portion.
    remote_path_ms:
        Latency of the remote path (render+encode+transmit+decode) from
        issue to layer availability; 0 for local-only.
    transmitted_bytes:
        Downlink payload attributable to the frame.
    gpu_busy_ms, net_busy_ms, vd_busy_ms, uca_busy_ms, cpu_busy_ms:
        Per-frame resource occupancy (for FPS formula and energy).
    resolution_reduction:
        Fraction of native pixels eliminated by foveation (0 if none).
    dropped:
        True when the frame needed ATW reconstruction (missed inputs).
    mispredicted:
        True when a static-design prefetch missed.
    path_latency_ms:
        The frame's *serial* critical-path latency (tracking -> display as
        if the frame executed in isolation) — the paper's end-to-end
        system-latency metric behind Fig. 3 and Fig. 12.  The
        ``tracking_ms``/``display_ms`` pair instead reflects the pipelined
        DES schedule (with cross-frame overlap), which is what FPS and
        contention are measured from.
    """

    index: int
    tracking_ms: float
    display_ms: float
    path_latency_ms: float = float("nan")
    e1_deg: float = float("nan")
    e2_deg: float = float("nan")
    local_ms: float = 0.0
    remote_path_ms: float = 0.0
    transmitted_bytes: float = 0.0
    gpu_busy_ms: float = 0.0
    net_busy_ms: float = 0.0
    vd_busy_ms: float = 0.0
    uca_busy_ms: float = 0.0
    cpu_busy_ms: float = 0.0
    resolution_reduction: float = 0.0
    dropped: bool = False
    mispredicted: bool = False

    @property
    def pipeline_latency_ms(self) -> float:
        """Motion-to-photon latency in the pipelined DES schedule."""
        return self.display_ms - self.tracking_ms

    @property
    def e2e_latency_ms(self) -> float:
        """End-to-end system latency (the paper's metric).

        The serial path latency when recorded; falls back to the pipelined
        measurement for systems that do not fill it in.
        """
        if not np.isnan(self.path_latency_ms):
            return self.path_latency_ms
        return self.pipeline_latency_ms

    @property
    def latency_ratio(self) -> float:
        """``T_remote / T_local`` — the Fig. 14a balance metric."""
        if self.local_ms <= 0:
            return float("inf") if self.remote_path_ms > 0 else 1.0
        return self.remote_path_ms / self.local_ms


#: FrameRecord fields that carry booleans rather than floats.
_BOOL_FIELDS = frozenset({"dropped", "mispredicted"})


def records_from_arrays(index, **columns) -> list[FrameRecord]:
    """Build :class:`FrameRecord` rows from parallel per-field columns.

    ``index`` and each keyword column are equal-length sequences (lists or
    numpy arrays); every keyword must name a :class:`FrameRecord` field.
    Values are coerced to the field's scalar type (``float``, or ``bool``
    for the drop/misprediction flags), so numpy scalars never leak into
    the records — vectorized and scalar engines produce identical rows.
    """
    n = len(index)
    names = []
    data = []
    for name, column in columns.items():
        if len(column) != n:
            raise ConfigurationError(
                f"column {name!r} has {len(column)} entries, expected {n}"
            )
        # Bulk-convert each column once (``tolist`` yields native Python
        # scalars from numpy arrays) instead of coercing per element.
        values = column.tolist() if hasattr(column, "tolist") else list(column)
        if name in _BOOL_FIELDS:
            values = [bool(v) for v in values]
        else:
            values = [float(v) for v in values]
        names.append(name)
        data.append(values)
    indices = index.tolist() if hasattr(index, "tolist") else list(index)
    if not data:
        return [FrameRecord(index=int(i)) for i in indices]
    records = []
    append = records.append
    for i, row in zip(indices, zip(*data)):
        append(FrameRecord(index=int(i), **dict(zip(names, row))))
    return records


def paper_fps(gpu_busy_ms: float, net_busy_ms: float) -> float:
    """The paper's ``FPS = min(1/T_GPU, 1/T_network)`` in frames/second."""
    bounds = []
    if gpu_busy_ms > 0:
        bounds.append(1000.0 / gpu_busy_ms)
    if net_busy_ms > 0:
        bounds.append(1000.0 / net_busy_ms)
    if not bounds:
        return float("inf")
    return min(bounds)


@dataclass
class SimulationResult:
    """A completed run of one system on one workload stream."""

    system: str
    app: str
    records: list[FrameRecord] = field(default_factory=list)
    warmup_frames: int = 30

    def __post_init__(self) -> None:
        if self.warmup_frames < 0:
            raise ConfigurationError("warmup_frames must be >= 0")

    # -- helpers --------------------------------------------------------------------

    def _steady(self) -> list[FrameRecord]:
        if len(self.records) <= self.warmup_frames:
            return self.records
        return self.records[self.warmup_frames :]

    # -- latency ----------------------------------------------------------------------

    @property
    def mean_latency_ms(self) -> float:
        """Mean steady-state end-to-end latency (the paper's metric)."""
        steady = self._steady()
        if not steady:
            return float("nan")
        return mean(r.e2e_latency_ms for r in steady)

    @property
    def mean_pipeline_latency_ms(self) -> float:
        """Mean steady-state latency in the pipelined DES schedule."""
        steady = self._steady()
        if not steady:
            return float("nan")
        return mean(r.pipeline_latency_ms for r in steady)

    def latency_percentile_ms(self, percentile: float) -> float:
        """Steady-state latency percentile (e.g. 99)."""
        steady = self._steady()
        if not steady:
            return float("nan")
        return float(np.percentile([r.e2e_latency_ms for r in steady], percentile))

    @property
    def meets_mtp(self) -> bool:
        """True when mean latency satisfies the 25 ms MTP requirement."""
        return self.mean_latency_ms <= constants.MTP_LATENCY_REQUIREMENT_MS

    # -- frame rate --------------------------------------------------------------------

    @property
    def measured_fps(self) -> float:
        """Steady-state FPS from display completion intervals."""
        steady = self._steady()
        if len(steady) < 2:
            return float("nan")
        span_ms = steady[-1].display_ms - steady[0].display_ms
        if span_ms <= 0:
            return float("inf")
        return 1000.0 * (len(steady) - 1) / span_ms

    def fps_percentile(self, percentile: float = 99.0) -> float:
        """Tail frame rate: the FPS that ``percentile``% of frames exceed.

        Steady-state :func:`tail_fps` — the per-client tail metric the
        server's deadline scheduling is designed to protect.
        """
        return tail_fps([r.display_ms for r in self._steady()], percentile)

    @property
    def p99_fps(self) -> float:
        """Steady-state p99 tail FPS (see :meth:`fps_percentile`)."""
        return self.fps_percentile(99.0)

    @property
    def formula_fps(self) -> float:
        """The paper's min(1/T_GPU, 1/T_network) averaged over frames."""
        steady = self._steady()
        if not steady:
            return float("nan")
        return mean(paper_fps(r.gpu_busy_ms, r.net_busy_ms) for r in steady)

    @property
    def meets_target_fps(self) -> bool:
        """True when measured FPS reaches the 90 Hz requirement."""
        return self.measured_fps >= constants.TARGET_FPS

    # -- partition / transmission ----------------------------------------------------------

    @property
    def mean_e1_deg(self) -> float:
        """Steady-state mean fovea eccentricity (NaN if non-foveated)."""
        steady = [r.e1_deg for r in self._steady() if not np.isnan(r.e1_deg)]
        return float(np.mean(steady)) if steady else float("nan")

    @property
    def mean_transmitted_bytes(self) -> float:
        """Mean downlink payload per frame."""
        steady = self._steady()
        if not steady:
            return float("nan")
        return mean(r.transmitted_bytes for r in steady)

    @property
    def mean_resolution_reduction(self) -> float:
        """Mean fraction of native resolution eliminated."""
        steady = self._steady()
        if not steady:
            return float("nan")
        return mean(r.resolution_reduction for r in steady)

    @property
    def drop_rate(self) -> float:
        """Fraction of steady-state frames needing reconstruction."""
        steady = self._steady()
        if not steady:
            return float("nan")
        return mean(1.0 if r.dropped else 0.0 for r in steady)

    # -- streaming ---------------------------------------------------------------------------

    def fold_into(
        self,
        latency: "StreamSummary | None" = None,
        fps: "StreamSummary | None" = None,
    ) -> None:
        """Fold this run's steady-state series into streaming summaries.

        Per-frame end-to-end latencies land in ``latency`` and the
        instantaneous frame rates (1000 / display interval) in ``fps``.
        This is the bounded-memory consumption path for population-scale
        sweeps: each result is folded as it streams off the executor and
        can then be dropped, instead of accumulating a full-sweep list.
        """
        steady = self._steady()
        if latency is not None:
            latency.extend(r.e2e_latency_ms for r in steady)
        if fps is not None and len(steady) >= 2:
            fps.extend(
                1000.0 / (b.display_ms - a.display_ms)
                for a, b in zip(steady, steady[1:])
                if b.display_ms > a.display_ms
            )

    # -- balance -----------------------------------------------------------------------------

    def latency_ratios(self) -> list[float]:
        """Per-frame ``T_remote / T_local`` series (all frames, Fig. 14a)."""
        return [r.latency_ratio for r in self.records]

    @property
    def mean_latency_ratio(self) -> float:
        """Steady-state mean of the balance ratio."""
        steady = self._steady()
        finite = [r.latency_ratio for r in steady if np.isfinite(r.latency_ratio)]
        return float(np.mean(finite)) if finite else float("nan")
