"""Network condition presets (paper Table 2).

The paper evaluates three download-speed classes — Wi-Fi 200 Mbps, 4G LTE
100 Mbps and Early 5G 500 Mbps — with 20 dB SNR white noise inserted into
the channel.  Each preset also carries a one-way propagation delay (the
paper's netcat validation includes real channel latency) and a jitter
amplitude for the stochastic per-frame throughput model.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import NetworkError

__all__ = ["NetworkConditions", "WIFI", "LTE_4G", "EARLY_5G", "ALL_CONDITIONS", "by_name"]


@dataclass(frozen=True)
class NetworkConditions:
    """A wireless link profile.

    Attributes
    ----------
    name:
        Human-readable label used in tables.
    throughput_mbps:
        Nominal download throughput in megabits per second (Table 2).
    uplink_mbps:
        Nominal upload throughput in megabits per second.  Mobile access
        links are asymmetric (the paper's Table 2 classes quote download
        speeds only), so the uplink is modelled separately: pose uploads
        and LIWC feedback serialise at this rate.  ``None`` keeps the
        legacy model — an unmodelled (infinite-rate) uplink where the
        request path costs only propagation — which preserves the exact
        results and cache keys of earlier releases.
    propagation_ms:
        One-way propagation + stack latency to the rendering server.
    snr_db:
        Signal-to-noise ratio of the white-noise channel model; must be
        positive (the Shannon efficiency derating degenerates at and
        below 0 dB and the noise model is meaningless there).
    jitter_fraction:
        Relative RMS per-frame throughput variation.
    """

    name: str
    throughput_mbps: float
    propagation_ms: float
    snr_db: float = 20.0
    jitter_fraction: float = 0.08
    uplink_mbps: float | None = None

    def __post_init__(self) -> None:
        if self.throughput_mbps <= 0:
            raise NetworkError(f"throughput must be > 0, got {self.throughput_mbps}")
        if self.uplink_mbps is not None and self.uplink_mbps <= 0:
            raise NetworkError(
                f"uplink_mbps must be > 0 (or None for an unmodelled uplink), "
                f"got {self.uplink_mbps}"
            )
        if self.propagation_ms < 0:
            raise NetworkError(f"propagation must be >= 0, got {self.propagation_ms}")
        if self.snr_db <= 0:
            raise NetworkError(f"snr_db must be > 0 dB, got {self.snr_db}")
        if not 0 <= self.jitter_fraction < 1:
            raise NetworkError(
                f"jitter_fraction must be in [0, 1), got {self.jitter_fraction}"
            )

    def with_uplink(self, uplink_mbps: float) -> "NetworkConditions":
        """Copy of these conditions with an asymmetric uplink rate."""
        return replace(self, uplink_mbps=uplink_mbps)


WIFI = NetworkConditions(name="Wi-Fi", throughput_mbps=200.0, propagation_ms=2.0)
LTE_4G = NetworkConditions(name="4G LTE", throughput_mbps=100.0, propagation_ms=12.0)
EARLY_5G = NetworkConditions(name="Early 5G", throughput_mbps=500.0, propagation_ms=4.0)

#: The Table 2 sweep, in the paper's presentation order.
ALL_CONDITIONS = (WIFI, LTE_4G, EARLY_5G)


#: CLI-friendly slug aliases for the Table 2 presets.
_SLUGS: dict[str, NetworkConditions] = {
    "wifi": WIFI,
    "4g": LTE_4G,
    "lte": LTE_4G,
    "5g": EARLY_5G,
}


def by_name(name: str) -> NetworkConditions:
    """Look up a preset by its table label or slug (case-insensitive).

    Accepts both the paper's table labels (``"Wi-Fi"``, ``"4G LTE"``,
    ``"Early 5G"``) and the short slug forms the CLI uses (``"wifi"``,
    ``"4g"``/``"lte"``, ``"5g"``).
    """
    key = name.strip().lower()
    for conditions in ALL_CONDITIONS:
        if conditions.name.lower() == key:
            return conditions
    if key in _SLUGS:
        return _SLUGS[key]
    valid = sorted({c.name for c in ALL_CONDITIONS} | set(_SLUGS))
    raise NetworkError(
        f"unknown network conditions {name!r}; valid names: {', '.join(valid)}"
    )
