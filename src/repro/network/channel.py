"""Wireless channel model with SNR-derived efficiency and ACK feedback.

The paper's methodology (Sec. 5): network latency is computed by dividing
the compressed frame size by the download speed, with 20 dB SNR white noise
inserted to better reflect reality, validated against netcat channels.

This module reproduces that model:

* the **effective throughput** is the nominal rate scaled by a
  Shannon-derived spectral-efficiency factor for the configured SNR and by
  a per-frame lognormal-ish jitter term (deterministic per seed);
* conditions may be **time-varying**: the channel carries a simulation
  clock (:meth:`NetworkChannel.advance_to`) and samples its
  :class:`~repro.network.profile.NetworkProfile` at the current instant,
  so a mid-run bandwidth drop reaches every subsequent transfer and the
  ACK estimate the controllers watch;
* transfers include a fixed protocol overhead and the one-way propagation
  delay is exposed separately (it belongs to the *path*, not the payload);
* the **uplink** may be asymmetric: when
  :attr:`~repro.network.conditions.NetworkConditions.uplink_mbps` is set,
  pose uploads and LIWC feedback serialise at that rate
  (:meth:`NetworkChannel.uplink_time_ms`); when unset, the request path
  costs only propagation, as in earlier releases;
* the channel records per-transfer observations and exposes the **ACK
  throughput estimate** that LIWC monitors ("monitor the network's ACK
  packets for assessing the remote latencies").
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro import constants
from repro.errors import NetworkError
from repro.network.conditions import NetworkConditions
from repro.network.profile import NetworkProfile, as_profile

__all__ = ["TransferRecord", "NetworkChannel", "snr_efficiency"]

#: Fixed per-transfer protocol overhead (headers, pacing), in ms.
_TRANSFER_OVERHEAD_MS = 0.25

#: Spectral-efficiency normaliser: bits/Hz considered "ideal" by the model.
_IDEAL_BITS_PER_HZ = 8.0


def snr_efficiency(snr_db: float) -> float:
    """Fraction of nominal throughput delivered at a given SNR.

    Shannon capacity ``log2(1 + SNR)`` normalised by an 8 bit/Hz ideal:
    20 dB -> ~0.83, matching the paper's observation that the noisy channel
    delivers most but not all of the nominal download speed.
    """
    snr_linear = 10.0 ** (snr_db / 10.0)
    return min(1.0, math.log2(1.0 + snr_linear) / _IDEAL_BITS_PER_HZ)


@dataclass(frozen=True)
class TransferRecord:
    """Accounting record for one completed transfer."""

    payload_bytes: float
    duration_ms: float
    throughput_bytes_per_ms: float


class NetworkChannel:
    """A stateful wireless link between the HMD and the rendering server.

    Parameters
    ----------
    conditions:
        Static link conditions or a time-varying
        :class:`~repro.network.profile.NetworkProfile` (static conditions
        become the constant profile).
    seed:
        Seed for the deterministic per-transfer jitter stream and for any
        stochastic profile sampling.

    Notes
    -----
    The jitter stream advances once per transfer and profile sampling is
    a pure function of ``(seed, time)``, so two identically seeded
    channels replaying the same transfer/clock sequence observe identical
    durations — experiments are exactly reproducible.  The owner of the
    channel (the frame loop) moves the clock forward with
    :meth:`advance_to`; all throughput properties read the conditions at
    the current instant.
    """

    def __init__(
        self, conditions: NetworkConditions | NetworkProfile, seed: int = 0
    ) -> None:
        self.profile = as_profile(conditions)
        self._sampler = self.profile.sampler(seed)
        self._now_ms = 0.0
        self._rng = np.random.default_rng(seed)
        self._history: list[TransferRecord] = []
        self._ack_estimate_bytes_per_ms: float | None = None

    # -- the environment clock -------------------------------------------------

    @property
    def now_ms(self) -> float:
        """Current instant of the channel's environment clock."""
        return self._now_ms

    def advance_to(self, t_ms: float) -> None:
        """Move the environment clock forward (monotonic; never rewinds)."""
        if t_ms > self._now_ms:
            self._now_ms = t_ms

    @property
    def conditions(self) -> NetworkConditions:
        """Link conditions at the current instant of the profile."""
        return self._sampler.conditions_at(self._now_ms)

    # -- throughput ----------------------------------------------------------

    @property
    def nominal_bytes_per_ms(self) -> float:
        """Nominal (noise-free) throughput in bytes per millisecond."""
        return (
            self.conditions.throughput_mbps
            * 1e6
            / constants.BITS_PER_BYTE
            / 1000.0
        )

    @property
    def mean_effective_bytes_per_ms(self) -> float:
        """Mean effective throughput after SNR derating (no jitter)."""
        return self.nominal_bytes_per_ms * snr_efficiency(self.conditions.snr_db)

    def _draw_effective_bytes_per_ms(self) -> float:
        jitter = 1.0 + self.conditions.jitter_fraction * float(self._rng.standard_normal())
        jitter = max(jitter, 0.25)
        return self.mean_effective_bytes_per_ms * jitter

    # -- transfers -----------------------------------------------------------

    def transfer_time_ms(self, payload_bytes: float) -> float:
        """Simulate one downlink transfer and return its duration.

        The duration covers serialisation at the effective throughput plus
        protocol overhead; propagation is exposed separately via
        :attr:`one_way_ms` because pipelined streaming pays it once, not
        per chunk.
        """
        if payload_bytes < 0:
            raise NetworkError(f"payload must be >= 0, got {payload_bytes}")
        if payload_bytes == 0:
            return 0.0
        throughput = self._draw_effective_bytes_per_ms()
        duration = payload_bytes / throughput + _TRANSFER_OVERHEAD_MS
        record = TransferRecord(
            payload_bytes=payload_bytes,
            duration_ms=duration,
            throughput_bytes_per_ms=payload_bytes / duration,
        )
        self._history.append(record)
        self._update_ack_estimate(record)
        return duration

    def expected_transfer_time_ms(self, payload_bytes: float) -> float:
        """Deterministic (jitter-free) transfer duration for planning."""
        if payload_bytes < 0:
            raise NetworkError(f"payload must be >= 0, got {payload_bytes}")
        if payload_bytes == 0:
            return 0.0
        return payload_bytes / self.mean_effective_bytes_per_ms + _TRANSFER_OVERHEAD_MS

    # -- uplink ----------------------------------------------------------------

    @property
    def uplink_bytes_per_ms(self) -> float | None:
        """Effective uplink throughput, or None when the uplink is unmodelled.

        The uplink shares the path's SNR derating with the downlink; it
        is deterministic (no per-transfer jitter draw) so enabling it
        never perturbs the downlink's seeded jitter stream.
        """
        uplink_mbps = self.conditions.uplink_mbps
        if uplink_mbps is None:
            return None
        return (
            uplink_mbps
            * 1e6
            / constants.BITS_PER_BYTE
            / 1000.0
            * snr_efficiency(self.conditions.snr_db)
        )

    def uplink_time_ms(self, payload_bytes: float) -> float:
        """One-way uplink latency of a request carrying ``payload_bytes``.

        Propagation plus serialisation at the effective uplink rate (and
        the fixed protocol overhead).  With an unmodelled uplink
        (``uplink_mbps is None``) or an empty payload this degenerates to
        the bare propagation delay — the legacy request-path model, so
        existing configurations reproduce bit-identically.
        """
        if payload_bytes < 0:
            raise NetworkError(f"payload must be >= 0, got {payload_bytes}")
        throughput = self.uplink_bytes_per_ms
        if throughput is None or payload_bytes == 0:
            return self.one_way_ms
        return self.one_way_ms + payload_bytes / throughput + _TRANSFER_OVERHEAD_MS

    @property
    def one_way_ms(self) -> float:
        """One-way propagation latency of the path."""
        return self.conditions.propagation_ms

    @property
    def round_trip_ms(self) -> float:
        """ACK round-trip time of the path."""
        return 2.0 * self.conditions.propagation_ms

    # -- ACK-based observation (what LIWC sees) --------------------------------

    def _update_ack_estimate(self, record: TransferRecord, alpha: float = 0.3) -> None:
        observed = record.throughput_bytes_per_ms
        if self._ack_estimate_bytes_per_ms is None:
            self._ack_estimate_bytes_per_ms = observed
        else:
            self._ack_estimate_bytes_per_ms = (
                (1.0 - alpha) * self._ack_estimate_bytes_per_ms + alpha * observed
            )

    @property
    def ack_throughput_bytes_per_ms(self) -> float:
        """LIWC's view of the link: an EWMA over observed ACK throughput.

        Before any transfer completes, falls back to the SNR-derated mean
        (the modem's link-rate report).
        """
        if self._ack_estimate_bytes_per_ms is None:
            return self.mean_effective_bytes_per_ms
        return self._ack_estimate_bytes_per_ms

    @property
    def history(self) -> tuple[TransferRecord, ...]:
        """All completed transfers, oldest first."""
        return tuple(self._history)
