"""Time-varying network profiles: the dynamic-environment abstraction.

The paper targets collaborative VR for "users around the world, regardless
of their hardware and network conditions" (Sec. 1).  Real links are not a
frozen :class:`~repro.network.conditions.NetworkConditions` preset — they
drop, recover, and wander.  This module generalises the preset into a
**profile**: a deterministic schedule of link conditions over simulation
time that :class:`~repro.network.channel.NetworkChannel` samples as the
frame loop advances, so the LIWC/SW controllers see (and react to)
mid-run bandwidth changes.

Profiles
--------
* :class:`ConstantProfile` — today's static presets, unchanged semantics;
* :class:`PiecewiseProfile` — a step schedule of conditions (e.g. the
  canonical bandwidth-drop window, :meth:`PiecewiseProfile.bandwidth_drop`);
* :class:`TraceProfile` — trace-driven from arrays or a CSV file
  (``time_ms,throughput_mbps[,propagation_ms]``);
* :class:`MarkovProfile` — a seeded two-state good/degraded Markov chain.

Every profile is a frozen, hashable dataclass, so it travels inside
:class:`~repro.sim.systems.PlatformConfig` through ``RunSpec`` hashing and
the on-disk result cache exactly like the static presets do.  Sampling is
deterministic: the same ``(profile, seed)`` pair replays the same link
history, which keeps batch runs bit-identical across processes and cache
round-trips.
"""

from __future__ import annotations

import csv
from abc import ABC, abstractmethod
from bisect import bisect_right
from dataclasses import dataclass, replace

import numpy as np

from repro.errors import ConfigurationError, NetworkError
from repro.network.conditions import LTE_4G, NetworkConditions, WIFI, by_name

__all__ = [
    "NetworkProfile",
    "ConstantProfile",
    "PiecewiseProfile",
    "TraceProfile",
    "MarkovProfile",
    "AllocatedProfile",
    "OffsetProfile",
    "SwitchedProfile",
    "ShareSchedule",
    "shared_conditions",
    "allocated_conditions",
    "as_profile",
    "profile_by_name",
    "PROFILES",
]

#: Seed salt decorrelating the Markov state stream from the channel jitter
#: stream (both derive from the same channel seed).
_MARKOV_SEED_SALT = 7919


def shared_conditions(
    conditions: NetworkConditions, n_clients: int, sharing_efficiency: float
) -> NetworkConditions:
    """Conditions one of ``n_clients`` co-located clients observes.

    The downlink divides across clients (with ``sharing_efficiency`` of
    ideal 1/N scaling) and jitter grows with the number of interleaved
    transfers — the shared-infrastructure degradation every multi-user
    spec applies before running.
    """
    if n_clients == 1:
        return conditions
    share = 1.0 / (n_clients * sharing_efficiency)
    return NetworkConditions(
        name=conditions.name,
        throughput_mbps=conditions.throughput_mbps * share,
        propagation_ms=conditions.propagation_ms,
        snr_db=conditions.snr_db,
        jitter_fraction=_shared_jitter(conditions.jitter_fraction, n_clients),
        uplink_mbps=(
            conditions.uplink_mbps * share
            if conditions.uplink_mbps is not None
            else None
        ),
    )


def _shared_jitter(jitter_fraction: float, n_clients: int) -> float:
    """Jitter growth from ``n_clients`` interleaving their transfers."""
    return min(jitter_fraction * (1 + 0.1 * (n_clients - 1)), 0.5)


def allocated_conditions(
    conditions: NetworkConditions, share: float, n_clients: int
) -> NetworkConditions:
    """Conditions one client observes under a *scheduled* link allocation.

    Like :func:`shared_conditions` but with an explicit ``share`` of the
    link (a policy decision rather than uniform division): throughput and
    any modelled uplink scale by the share, while jitter grows with the
    number of interleaved clients exactly as in the uniform model.
    """
    if share <= 0:
        raise NetworkError(f"allocation share must be > 0, got {share}")
    return replace(
        conditions,
        throughput_mbps=conditions.throughput_mbps * share,
        jitter_fraction=_shared_jitter(conditions.jitter_fraction, n_clients),
        uplink_mbps=(
            conditions.uplink_mbps * share
            if conditions.uplink_mbps is not None
            else None
        ),
    )


class _ConstantSampler:
    """Sampler of a time-invariant profile."""

    def __init__(self, conditions: NetworkConditions) -> None:
        self._conditions = conditions

    def conditions_at(self, t_ms: float) -> NetworkConditions:
        return self._conditions


class _ScheduleSampler:
    """Sampler over a pre-materialised step schedule (piecewise, trace)."""

    def __init__(self, segments: tuple[tuple[float, NetworkConditions], ...]) -> None:
        self._starts = [start for start, _ in segments]
        self._conditions = [conditions for _, conditions in segments]

    def conditions_at(self, t_ms: float) -> NetworkConditions:
        index = bisect_right(self._starts, t_ms) - 1
        return self._conditions[max(index, 0)]


class NetworkProfile(ABC):
    """A deterministic schedule of link conditions over simulation time."""

    @abstractmethod
    def sampler(self, seed: int = 0):
        """A sampler exposing ``conditions_at(t_ms) -> NetworkConditions``.

        Stateless profiles ignore ``seed``; stochastic ones (Markov)
        derive their whole state sequence from it, so equal seeds replay
        equal link histories.
        """

    @abstractmethod
    def shared(self, n_clients: int, sharing_efficiency: float) -> "NetworkProfile":
        """This profile as observed by one of ``n_clients`` shared clients."""

    @property
    def name(self) -> str:
        """Display label (used in tables and the CLI)."""
        return type(self).__name__

    @property
    def initial_conditions(self) -> NetworkConditions:
        """Conditions at the start of a run (t = 0)."""
        return self.sampler(0).conditions_at(0.0)


@dataclass(frozen=True)
class ConstantProfile(NetworkProfile):
    """A time-invariant link — the classic Table 2 preset as a profile."""

    conditions: NetworkConditions

    def sampler(self, seed: int = 0) -> _ConstantSampler:
        return _ConstantSampler(self.conditions)

    def shared(self, n_clients: int, sharing_efficiency: float) -> "ConstantProfile":
        return ConstantProfile(
            shared_conditions(self.conditions, n_clients, sharing_efficiency)
        )

    @property
    def name(self) -> str:
        return self.conditions.name

    @property
    def initial_conditions(self) -> NetworkConditions:
        return self.conditions


@dataclass(frozen=True)
class PiecewiseProfile(NetworkProfile):
    """A step schedule: ``segments`` of ``(start_ms, conditions)`` pairs.

    Segment starts must be strictly increasing and the first segment must
    begin at 0 ms (every instant of a run has defined conditions).
    """

    segments: tuple[tuple[float, NetworkConditions], ...]
    label: str = "piecewise"

    def __post_init__(self) -> None:
        if not self.segments:
            raise NetworkError("piecewise profile needs at least one segment")
        normalised = tuple(
            (float(start), conditions) for start, conditions in self.segments
        )
        object.__setattr__(self, "segments", normalised)
        starts = [start for start, _ in normalised]
        if starts[0] != 0.0:
            raise NetworkError(
                f"first segment must start at 0 ms, got {starts[0]}"
            )
        if any(b <= a for a, b in zip(starts, starts[1:])):
            raise NetworkError(f"segment starts must strictly increase: {starts}")
        for _, conditions in normalised:
            if not isinstance(conditions, NetworkConditions):
                raise NetworkError(
                    f"segment conditions must be NetworkConditions, got "
                    f"{type(conditions).__name__}"
                )

    @classmethod
    def bandwidth_drop(
        cls,
        base: NetworkConditions,
        start_ms: float,
        duration_ms: float,
        factor: float,
        label: str | None = None,
    ) -> "PiecewiseProfile":
        """Nominal link with one bandwidth-drop window.

        Throughput multiplies by ``factor`` for ``duration_ms`` starting
        at ``start_ms``, then recovers — the canonical dynamic-environment
        experiment (eccentricity should grow and the remote share shrink
        inside the window).
        """
        if start_ms <= 0 or duration_ms <= 0:
            raise NetworkError("drop window must have positive start and duration")
        if not 0 < factor < 1:
            raise NetworkError(f"drop factor must be in (0, 1), got {factor}")
        degraded = replace(base, throughput_mbps=base.throughput_mbps * factor)
        return cls(
            segments=(
                (0.0, base),
                (float(start_ms), degraded),
                (float(start_ms + duration_ms), base),
            ),
            label=label if label is not None else f"{base.name} drop x{factor:g}",
        )

    def sampler(self, seed: int = 0) -> _ScheduleSampler:
        return _ScheduleSampler(self.segments)

    def shared(self, n_clients: int, sharing_efficiency: float) -> "PiecewiseProfile":
        return PiecewiseProfile(
            segments=tuple(
                (start, shared_conditions(conditions, n_clients, sharing_efficiency))
                for start, conditions in self.segments
            ),
            label=self.label,
        )

    @property
    def name(self) -> str:
        return self.label

    @property
    def boundaries_ms(self) -> tuple[float, ...]:
        """Instants at which conditions change (segment starts after 0)."""
        return tuple(start for start, _ in self.segments[1:])


@dataclass(frozen=True)
class TraceProfile(NetworkProfile):
    """A trace-driven link: sampled throughput (and optionally latency).

    ``times_ms`` must start at 0 and strictly increase; each sample holds
    until the next one (step interpolation, the standard replay semantics
    of throughput traces).  ``propagation_ms`` optionally overrides the
    base path latency per sample.
    """

    base: NetworkConditions
    times_ms: tuple[float, ...]
    throughput_mbps: tuple[float, ...]
    propagation_ms: tuple[float, ...] | None = None
    label: str = "trace"

    def __post_init__(self) -> None:
        times = tuple(float(t) for t in self.times_ms)
        throughputs = tuple(float(x) for x in self.throughput_mbps)
        object.__setattr__(self, "times_ms", times)
        object.__setattr__(self, "throughput_mbps", throughputs)
        if self.propagation_ms is not None:
            object.__setattr__(
                self, "propagation_ms", tuple(float(p) for p in self.propagation_ms)
            )
        if not times:
            raise NetworkError("trace profile needs at least one sample")
        if len(times) != len(throughputs):
            raise NetworkError(
                f"trace length mismatch: {len(times)} times vs "
                f"{len(throughputs)} throughput samples"
            )
        if self.propagation_ms is not None and len(self.propagation_ms) != len(times):
            raise NetworkError(
                f"trace length mismatch: {len(times)} times vs "
                f"{len(self.propagation_ms)} propagation samples"
            )
        if times[0] != 0.0:
            raise NetworkError(f"trace must start at 0 ms, got {times[0]}")
        if any(b <= a for a, b in zip(times, times[1:])):
            raise NetworkError("trace times must strictly increase")
        if any(x <= 0 for x in throughputs):
            raise NetworkError("trace throughput samples must be > 0")

    @classmethod
    def from_csv(
        cls,
        path: str,
        base: NetworkConditions = WIFI,
        label: str | None = None,
    ) -> "TraceProfile":
        """Load ``time_ms,throughput_mbps[,propagation_ms]`` rows.

        A non-numeric first row is treated as a header and skipped.
        """
        times: list[float] = []
        throughputs: list[float] = []
        propagations: list[float] = []
        with open(path, newline="") as handle:
            for row in csv.reader(handle):
                cells = [cell.strip() for cell in row if cell.strip()]
                if not cells:
                    continue
                try:
                    values = [float(cell) for cell in cells]
                except ValueError:
                    if not times:  # header row
                        continue
                    raise NetworkError(f"non-numeric trace row in {path!r}: {row}")
                if len(values) < 2:
                    raise NetworkError(
                        f"trace rows need time_ms,throughput_mbps; got {row} in {path!r}"
                    )
                times.append(values[0])
                throughputs.append(values[1])
                if len(values) >= 3:
                    propagations.append(values[2])
        if propagations and len(propagations) != len(times):
            raise NetworkError(
                f"trace {path!r} mixes rows with and without propagation_ms"
            )
        return cls(
            base=base,
            times_ms=tuple(times),
            throughput_mbps=tuple(throughputs),
            propagation_ms=tuple(propagations) if propagations else None,
            label=label if label is not None else path,
        )

    def _segments(self) -> tuple[tuple[float, NetworkConditions], ...]:
        segments = []
        for index, start in enumerate(self.times_ms):
            conditions = replace(
                self.base, throughput_mbps=self.throughput_mbps[index]
            )
            if self.propagation_ms is not None:
                conditions = replace(
                    conditions, propagation_ms=self.propagation_ms[index]
                )
            segments.append((start, conditions))
        return tuple(segments)

    def sampler(self, seed: int = 0) -> _ScheduleSampler:
        return _ScheduleSampler(self._segments())

    def shared(self, n_clients: int, sharing_efficiency: float) -> "TraceProfile":
        if n_clients == 1:
            return self
        share = 1.0 / (n_clients * sharing_efficiency)
        return TraceProfile(
            base=shared_conditions(self.base, n_clients, sharing_efficiency),
            times_ms=self.times_ms,
            throughput_mbps=tuple(x * share for x in self.throughput_mbps),
            propagation_ms=self.propagation_ms,
            label=self.label,
        )

    @property
    def name(self) -> str:
        return self.label


class _MarkovSampler:
    """Lazily materialised good/degraded state sequence for one seed."""

    def __init__(self, profile: "MarkovProfile", seed: int) -> None:
        self._profile = profile
        self._rng = np.random.default_rng([int(seed), _MARKOV_SEED_SALT])
        self._good_states = [True]

    def conditions_at(self, t_ms: float) -> NetworkConditions:
        if t_ms < 0:
            raise NetworkError(f"profile time must be >= 0, got {t_ms}")
        interval = int(t_ms // self._profile.dwell_ms)
        while len(self._good_states) <= interval:
            good = self._good_states[-1]
            draw = float(self._rng.random())
            if good:
                self._good_states.append(draw >= self._profile.p_degrade)
            else:
                self._good_states.append(draw < self._profile.p_recover)
        if self._good_states[interval]:
            return self._profile.good
        return self._profile.degraded


@dataclass(frozen=True)
class MarkovProfile(NetworkProfile):
    """A seeded two-state (good/degraded) Markov link model.

    The chain starts in the good state and re-evaluates every
    ``dwell_ms``: from good it degrades with probability ``p_degrade``,
    from degraded it recovers with probability ``p_recover``.  The state
    sequence is a pure function of the sampler seed, so runs replay
    exactly.
    """

    good: NetworkConditions
    degraded: NetworkConditions
    p_degrade: float = 0.05
    p_recover: float = 0.25
    dwell_ms: float = 250.0
    label: str = "markov"

    def __post_init__(self) -> None:
        if not 0 <= self.p_degrade <= 1 or not 0 <= self.p_recover <= 1:
            raise NetworkError("transition probabilities must be in [0, 1]")
        if self.dwell_ms <= 0:
            raise NetworkError(f"dwell_ms must be > 0, got {self.dwell_ms}")

    def sampler(self, seed: int = 0) -> _MarkovSampler:
        return _MarkovSampler(self, seed)

    def shared(self, n_clients: int, sharing_efficiency: float) -> "MarkovProfile":
        return MarkovProfile(
            good=shared_conditions(self.good, n_clients, sharing_efficiency),
            degraded=shared_conditions(self.degraded, n_clients, sharing_efficiency),
            p_degrade=self.p_degrade,
            p_recover=self.p_recover,
            dwell_ms=self.dwell_ms,
            label=self.label,
        )

    @property
    def name(self) -> str:
        return self.label

    @property
    def initial_conditions(self) -> NetworkConditions:
        return self.good


@dataclass(frozen=True)
class ShareSchedule:
    """A step schedule of resource shares: ``(start_ms, share)`` segments.

    The unit the admission planner (:mod:`repro.sim.server`) emits per
    client per resource and the frame loop samples: segments must start
    at 0 ms, strictly increase, and carry positive shares.  Defined in
    the network layer so :class:`AllocatedProfile` and the server share
    one validation/lookup implementation (the server imports profiles,
    never the reverse).
    """

    segments: tuple[tuple[float, float], ...]

    def __post_init__(self) -> None:
        if not self.segments:
            raise ConfigurationError("share schedule needs at least one segment")
        normalised = tuple(
            (float(start), float(share)) for start, share in self.segments
        )
        object.__setattr__(self, "segments", normalised)
        starts = [start for start, _ in normalised]
        if starts[0] != 0.0:
            raise ConfigurationError(
                f"share schedule must start at 0 ms, got {starts[0]}"
            )
        if any(b <= a for a, b in zip(starts, starts[1:])):
            raise ConfigurationError(
                f"share-schedule starts must strictly increase: {starts}"
            )
        if any(share <= 0 for _, share in normalised):
            raise ConfigurationError("share-schedule shares must be > 0")
        # share_at sits on the per-frame hot path; precompute the bisect
        # keys once (frozen dataclass, hence the setattr back door).
        object.__setattr__(self, "_starts", starts)

    def share_at(self, t_ms: float) -> float:
        """The share in force at instant ``t_ms`` (first segment before 0)."""
        index = max(bisect_right(self._starts, t_ms) - 1, 0)
        return self.segments[index][1]

    def with_stall(self, stall_ms: float, stall_share: float) -> "ShareSchedule":
        """This schedule with its opening ``stall_ms`` pinned to ``stall_share``.

        The splice the render-fleet planner (:mod:`repro.sim.fleet`)
        applies to a migrated client's epoch schedule: while state
        transfers to the new server the client renders at a starvation
        share, then the planned allocation resumes mid-schedule exactly
        where it would have been.  A stall covering the whole schedule
        leaves one flat starvation segment; ``stall_ms <= 0`` is the
        identity.
        """
        if stall_ms <= 0:
            return self
        if stall_share <= 0:
            raise ConfigurationError(
                f"stall share must be > 0, got {stall_share}"
            )
        segments: list[tuple[float, float]] = [(0.0, float(stall_share))]
        resume = self.share_at(stall_ms)
        if resume != stall_share:
            segments.append((float(stall_ms), resume))
        for start, share in self.segments:
            if start > stall_ms and share != segments[-1][1]:
                segments.append((start, share))
        return ShareSchedule(tuple(segments))


class _AllocatedSampler:
    """Sampler applying a share schedule on top of a base profile sampler."""

    def __init__(
        self,
        base_sampler,
        schedule: ShareSchedule,
        n_clients: int,
    ) -> None:
        self._base = base_sampler
        self._schedule = schedule
        self._n_clients = n_clients

    def conditions_at(self, t_ms: float) -> NetworkConditions:
        return allocated_conditions(
            self._base.conditions_at(t_ms),
            self._schedule.share_at(t_ms),
            self._n_clients,
        )


@dataclass(frozen=True)
class AllocatedProfile(NetworkProfile):
    """A base profile observed through a scheduled per-client link share.

    The rendering server's admission/scheduling layer
    (:mod:`repro.sim.server`) emits one share schedule per client of a
    shared session: ``segments`` of ``(start_ms, share)`` pairs, each
    share the fraction of the session link this client holds until the
    next boundary.  Sampling composes the base profile's conditions at
    ``t`` with the share in force at ``t``, so a policy that re-allocates
    mid-run (e.g. deadline scheduling reacting to a trace-driven drop)
    reaches every transfer and the ACK estimate the controllers watch.
    """

    base: NetworkProfile
    segments: tuple[tuple[float, float], ...]
    n_clients: int = 1
    label: str = "allocated"

    def __post_init__(self) -> None:
        # ShareSchedule validates shape, ordering and positivity, and
        # normalises the floats; keep its canonical form.
        object.__setattr__(
            self, "segments", ShareSchedule(self.segments).segments
        )
        if self.n_clients < 1:
            raise NetworkError(f"n_clients must be >= 1, got {self.n_clients}")

    def sampler(self, seed: int = 0) -> _AllocatedSampler:
        return _AllocatedSampler(
            self.base.sampler(seed),
            ShareSchedule(self.segments),
            self.n_clients,
        )

    def shared(self, n_clients: int, sharing_efficiency: float) -> "AllocatedProfile":
        # The schedule already encodes this client's share of the session
        # link; uniform re-division on top would double-count the split.
        return self

    @property
    def name(self) -> str:
        return f"{self.base.name}:{self.label}"


class _OffsetSampler:
    """Sampler translating a client-local clock onto session time."""

    def __init__(self, base_sampler, offset_ms: float) -> None:
        self._base = base_sampler
        self._offset_ms = offset_ms

    def conditions_at(self, t_ms: float) -> NetworkConditions:
        return self._base.conditions_at(t_ms + self._offset_ms)


@dataclass(frozen=True)
class OffsetProfile(NetworkProfile):
    """A base profile observed from a later session instant.

    A late-starting client of an event-driven session (see
    :mod:`repro.sim.session`) runs its own frame loop from local t = 0,
    but the session link has already been evolving for ``offset_ms``:
    sampling maps local ``t`` to session ``t + offset_ms``, so a client
    promoted out of the admission queue mid-drop observes the drop, not
    a fresh copy of the link's opening conditions.
    """

    base: NetworkProfile
    offset_ms: float

    def __post_init__(self) -> None:
        if self.offset_ms < 0:
            raise NetworkError(f"offset_ms must be >= 0, got {self.offset_ms}")
        object.__setattr__(self, "offset_ms", float(self.offset_ms))

    def sampler(self, seed: int = 0) -> _OffsetSampler:
        return _OffsetSampler(self.base.sampler(seed), self.offset_ms)

    def shared(self, n_clients: int, sharing_efficiency: float) -> "OffsetProfile":
        return OffsetProfile(
            self.base.shared(n_clients, sharing_efficiency), self.offset_ms
        )

    @property
    def name(self) -> str:
        return f"{self.base.name}@+{self.offset_ms:g}ms"


class _SwitchedSampler:
    """Sampler dispatching to the profile in force at each instant."""

    def __init__(
        self,
        segments: tuple[tuple[float, NetworkProfile], ...],
        seed: int,
    ) -> None:
        self._starts = [start for start, _ in segments]
        self._samplers = [profile.sampler(seed) for _, profile in segments]

    def conditions_at(self, t_ms: float) -> NetworkConditions:
        index = max(bisect_right(self._starts, t_ms) - 1, 0)
        return self._samplers[index].conditions_at(t_ms)


@dataclass(frozen=True)
class SwitchedProfile(NetworkProfile):
    """Profiles spliced at session instants: ``(start_ms, profile)`` segments.

    The dynamic-session event ``ProfileSwitch`` (a client roaming from
    Wi-Fi onto 4G mid-session, say) composes the client's link history
    into one profile: each segment's profile is in force from its start
    until the next boundary, sampled on the *session* clock so a splice
    into the middle of a trace lands mid-trace, not at the trace's start.
    Segment starts must begin at 0 and strictly increase.
    """

    segments: tuple[tuple[float, NetworkProfile], ...]
    label: str = "switched"

    def __post_init__(self) -> None:
        if not self.segments:
            raise NetworkError("switched profile needs at least one segment")
        normalised = tuple(
            (float(start), profile) for start, profile in self.segments
        )
        object.__setattr__(self, "segments", normalised)
        starts = [start for start, _ in normalised]
        if starts[0] != 0.0:
            raise NetworkError(
                f"first switched segment must start at 0 ms, got {starts[0]}"
            )
        if any(b <= a for a, b in zip(starts, starts[1:])):
            raise NetworkError(
                f"switched-segment starts must strictly increase: {starts}"
            )
        for _, profile in normalised:
            if not isinstance(profile, NetworkProfile):
                raise NetworkError(
                    f"switched segments must hold NetworkProfile values, got "
                    f"{type(profile).__name__}"
                )

    def sampler(self, seed: int = 0) -> _SwitchedSampler:
        return _SwitchedSampler(self.segments, seed)

    def shared(self, n_clients: int, sharing_efficiency: float) -> "SwitchedProfile":
        return SwitchedProfile(
            segments=tuple(
                (start, profile.shared(n_clients, sharing_efficiency))
                for start, profile in self.segments
            ),
            label=self.label,
        )

    @property
    def name(self) -> str:
        return self.label


#: Named dynamic profiles the CLI accepts (``repro batch --profile``,
#: ``repro scenarios``).  Static preset names and slugs ("wifi", "4g",
#: "lte", "5g", ...) are NOT duplicated here — :func:`profile_by_name`
#: falls through to :func:`~repro.network.conditions.by_name`, the
#: single registry of those.
PROFILES: dict[str, NetworkProfile] = {
    "wifi-drop": PiecewiseProfile.bandwidth_drop(
        WIFI, start_ms=900.0, duration_ms=900.0, factor=0.15, label="wifi-drop"
    ),
    "4g-drop": PiecewiseProfile.bandwidth_drop(
        LTE_4G, start_ms=900.0, duration_ms=900.0, factor=0.25, label="4g-drop"
    ),
    "wifi-markov": MarkovProfile(
        good=WIFI,
        degraded=replace(WIFI, throughput_mbps=50.0, jitter_fraction=0.2),
        label="wifi-markov",
    ),
}


def profile_by_name(name: str) -> NetworkProfile:
    """Resolve a profile by registry name, preset label/slug, or CSV path."""
    key = name.strip().lower()
    if key.endswith(".csv"):
        return TraceProfile.from_csv(name.strip())
    if key in PROFILES:
        return PROFILES[key]
    try:
        return ConstantProfile(by_name(key))
    except NetworkError as preset_error:
        raise NetworkError(
            f"unknown network profile {name!r}; dynamic profiles: "
            f"{', '.join(sorted(PROFILES))}; a path to a trace CSV; or a "
            f"static preset ({preset_error})"
        ) from None


def as_profile(value: "NetworkProfile | NetworkConditions | str") -> NetworkProfile:
    """Coerce conditions, profile objects, or names into a profile."""
    if isinstance(value, NetworkProfile):
        return value
    if isinstance(value, NetworkConditions):
        return ConstantProfile(value)
    if isinstance(value, str):
        return profile_by_name(value)
    raise NetworkError(
        f"cannot interpret {type(value).__name__} as a network profile"
    )
