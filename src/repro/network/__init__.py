"""Network substrate: wireless conditions presets and channel model."""

from repro.network.channel import NetworkChannel, TransferRecord, snr_efficiency
from repro.network.conditions import (
    ALL_CONDITIONS,
    EARLY_5G,
    LTE_4G,
    NetworkConditions,
    WIFI,
    by_name,
)

__all__ = [
    "NetworkChannel",
    "TransferRecord",
    "snr_efficiency",
    "NetworkConditions",
    "WIFI",
    "LTE_4G",
    "EARLY_5G",
    "ALL_CONDITIONS",
    "by_name",
]
