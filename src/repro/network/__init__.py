"""Network substrate: condition presets, time-varying profiles, channel."""

from repro.network.channel import NetworkChannel, TransferRecord, snr_efficiency
from repro.network.conditions import (
    ALL_CONDITIONS,
    EARLY_5G,
    LTE_4G,
    NetworkConditions,
    WIFI,
    by_name,
)
from repro.network.profile import (
    AllocatedProfile,
    ConstantProfile,
    MarkovProfile,
    NetworkProfile,
    PROFILES,
    PiecewiseProfile,
    TraceProfile,
    allocated_conditions,
    as_profile,
    profile_by_name,
    shared_conditions,
)

__all__ = [
    "NetworkChannel",
    "TransferRecord",
    "snr_efficiency",
    "NetworkConditions",
    "WIFI",
    "LTE_4G",
    "EARLY_5G",
    "ALL_CONDITIONS",
    "by_name",
    "NetworkProfile",
    "ConstantProfile",
    "PiecewiseProfile",
    "TraceProfile",
    "MarkovProfile",
    "AllocatedProfile",
    "PROFILES",
    "as_profile",
    "profile_by_name",
    "shared_conditions",
    "allocated_conditions",
]
