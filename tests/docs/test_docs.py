"""Keep the docs/ tree honest: working links, CLI reference in sync."""

import argparse
import re
from pathlib import Path

import pytest

from repro.cli import build_parser

REPO = Path(__file__).resolve().parents[2]
DOCS = sorted((REPO / "docs").glob("*.md"))
PAGES = DOCS + [REPO / "README.md"]

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_FLAG = re.compile(r"(?<![\w-])--([a-z][a-z0-9-]*)")


def test_docs_tree_exists():
    names = {page.name for page in DOCS}
    assert {
        "architecture.md", "cli.md", "demand_scenarios.md", "determinism.md",
    } <= names


@pytest.mark.parametrize("page", PAGES, ids=lambda p: p.name)
def test_relative_links_resolve(page):
    """Every relative markdown link points at a file that exists."""
    broken = []
    for target in _LINK.findall(page.read_text()):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path = target.split("#", 1)[0]
        if not path:  # pure in-page anchor
            continue
        resolved = (page.parent / path).resolve()
        if not resolved.is_relative_to(REPO):
            continue  # GitHub-side links (e.g. the CI badge) escape the repo
        if not resolved.exists():
            broken.append(target)
    assert not broken, f"broken links in {page.name}: {broken}"


def test_readme_links_the_docs_tree():
    readme = (REPO / "README.md").read_text()
    for name in (
        "docs/architecture.md",
        "docs/cli.md",
        "docs/demand_scenarios.md",
        "docs/determinism.md",
    ):
        assert name in readme, f"README does not link {name}"


def test_determinism_page_documents_every_lint_rule():
    """docs/determinism.md must catalogue every registered rule code."""
    from repro.lint import all_rule_codes

    text = (REPO / "docs" / "determinism.md").read_text()
    missing = [code for code in all_rule_codes() if code not in text]
    assert not missing, f"docs/determinism.md omits lint rules {missing}"
    # The framework-reserved codes are part of the suppression contract.
    assert "LINT001" in text and "LINT002" in text


# ---------------------------------------------------------------------------
# CLI reference consistency: docs/cli.md vs the real argparse tree
# ---------------------------------------------------------------------------


def _parser_flags():
    """{command: set of long flags} from the real parser (minus --help)."""
    flags = {}
    for action in build_parser()._actions:
        if not isinstance(action, argparse._SubParsersAction):
            continue
        for name, sub in action.choices.items():
            flags[name] = {
                a.option_strings[-1].lstrip("-")
                for a in sub._actions
                if a.option_strings and "--help" not in a.option_strings
            }
    return flags


def _documented_flags():
    """{command: set of flags} parsed out of docs/cli.md sections."""
    text = (REPO / "docs" / "cli.md").read_text()
    shared_match = re.search(
        r"^## Shared engine options\n(.*?)(?=^### )", text, re.M | re.S
    )
    assert shared_match, "docs/cli.md lost its Shared engine options section"
    shared = set(_FLAG.findall(shared_match.group(1)))
    documented = {}
    sections = re.split(r"^### repro ", text, flags=re.M)[1:]
    for section in sections:
        name, _, body = section.partition("\n")
        flags = set(_FLAG.findall(body))
        if "shared engine options" in body.lower():
            flags |= shared
        documented[name.strip()] = flags
    return documented


def test_every_subcommand_is_documented():
    assert set(_documented_flags()) == set(_parser_flags())


@pytest.mark.parametrize("command", sorted(_parser_flags()))
def test_cli_reference_matches_parser(command):
    documented = _documented_flags()[command]
    actual = _parser_flags()[command]
    missing = actual - documented
    stale = documented - actual
    assert not missing, f"docs/cli.md omits {sorted(missing)} for {command!r}"
    assert not stale, (
        f"docs/cli.md documents {sorted(stale)} which {command!r} does not accept"
    )
