"""End-to-end workflow tests: the README and example code paths."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro import (
    DisplayGeometry,
    FoveationModel,
    PlatformConfig,
    get_app,
    make_system,
    run_comparison,
    speedup_over,
)
from repro.codec.h264 import H264Model
from repro.core.partition import PartitionEngine
from repro.energy import EnergyAccountant
from repro.gpu import MobileGPU, RemoteRenderer


class TestReadmeQuickstart:
    def test_quickstart_snippet(self):
        results = run_comparison("Doom3-L", systems=("local", "qvr"), n_frames=60)
        speedup = speedup_over(results, "qvr")
        assert speedup > 1.0
        assert results["qvr"].measured_fps > results["local"].measured_fps


class TestFullStackPartitionToTiming:
    """Drive a frame through partition -> GPU -> codec -> network by hand."""

    def test_manual_frame_walkthrough(self):
        app = get_app("HL2-H")
        engine = PartitionEngine(
            FoveationModel(DisplayGeometry(app.width_px, app.height_px)), H264Model()
        )
        mobile = MobileGPU()
        remote = RemoteRenderer()

        full = app.full_workload()
        part = engine.partition(full, 25.0, content_complexity=app.content_complexity)

        local_ms = mobile.render_time_ms(part.local)
        remote_ms = remote.render_time_ms(part.remote)
        full_ms = mobile.render_time_ms(full)

        # The fovea is a small share of the full frame; the server is fast.
        assert local_ms < 0.5 * full_ms
        assert remote_ms < local_ms
        # Payload shrinks versus streaming the whole frame.
        whole = H264Model().encode(app.pixels_per_frame, app.content_complexity)
        assert part.transmitted_bytes < 0.5 * whole.payload_bytes

    @given(st.floats(min_value=6.0, max_value=60.0))
    @settings(max_examples=10, deadline=None)
    def test_partition_timing_monotone_in_e1(self, e1):
        """Bigger fovea: strictly more local time, no more remote payload."""
        app = get_app("UT3")
        engine = PartitionEngine(
            FoveationModel(DisplayGeometry(app.width_px, app.height_px))
        )
        mobile = MobileGPU()
        full = app.full_workload()
        small = engine.partition(full, e1)
        large = engine.partition(full, e1 + 8.0)
        assert mobile.render_time_ms(large.local) >= mobile.render_time_ms(small.local)
        assert large.transmitted_bytes <= small.transmitted_bytes * (1 + 1e-9)


class TestEnergyWorkflow:
    def test_example_energy_path(self):
        app = get_app("Doom3-L")
        accountant = EnergyAccountant()
        baseline = make_system("local", app).run(n_frames=50)
        qvr = make_system("qvr", app).run(n_frames=50)
        ratio = accountant.normalized_energy(
            qvr, baseline, 500.0, "Wi-Fi", has_liwc=True, has_uca=True
        )
        assert 0.0 < ratio < 1.0


class TestPlatformSweepWorkflow:
    def test_degraded_platform_still_functional(self):
        """Worst supported platform: 300 MHz + LTE still simulates sanely."""
        from repro.network.conditions import LTE_4G

        platform = PlatformConfig(network=LTE_4G).with_gpu_frequency(300.0)
        result = make_system("qvr", get_app("GRID"), platform).run(n_frames=60)
        assert np.isfinite(result.mean_latency_ms)
        assert 5.0 <= result.mean_e1_deg <= 90.0
        # At this configuration the paper's Table 4 marks infeasibility;
        # the run records it rather than failing.
        assert result.measured_fps > 0
