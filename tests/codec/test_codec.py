"""Tests for the H.264 rate/latency model and streaming pipeline math."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.codec.h264 import H264Model
from repro.codec.stream import StreamPlan, pipelined_latency_ms
from repro.errors import CodecError


class TestH264Rate:
    def test_paper_background_size_band(self):
        """Table 1 backgrounds: ~480-650 KB for a stereo 1920x2160 frame."""
        codec = H264Model()
        pixels = 1920 * 2160 * 2
        for complexity, lo_kb, hi_kb in ((0.29, 430, 530), (0.72, 600, 700)):
            size_kb = codec.encode(pixels, complexity).payload_bytes / 1e3
            assert lo_kb < size_kb < hi_kb

    def test_rate_monotone_in_complexity(self):
        codec = H264Model()
        assert codec.bits_per_pixel(0.9) > codec.bits_per_pixel(0.1)

    def test_compressed_smaller_than_raw(self):
        codec = H264Model()
        frame = codec.encode(1e6, 0.5)
        assert frame.payload_bytes < 1e6 * 3
        assert frame.compression_ratio > 1.0

    def test_depth_cheaper_than_colour(self):
        codec = H264Model()
        assert codec.encode_depth(1e6).payload_bytes < codec.encode(1e6, 0.5).payload_bytes

    def test_layer_penalty_raises_bpp(self):
        codec = H264Model()
        flat = codec.encode(1e6, 0.5)
        layered = codec.encode_layer(1e6, 0.5, downsample_scale=3.0)
        assert layered.bits_per_pixel > flat.bits_per_pixel

    def test_layer_scale_one_matches_plain_encode(self):
        codec = H264Model()
        assert codec.encode_layer(1e6, 0.5, 1.0).payload_bytes == pytest.approx(
            codec.encode(1e6, 0.5).payload_bytes
        )

    def test_decode_time_linear(self):
        codec = H264Model()
        assert codec.decode_time_ms(4e6) == pytest.approx(2 * codec.decode_time_ms(2e6))

    def test_invalid_inputs(self):
        codec = H264Model()
        with pytest.raises(CodecError):
            codec.encode(-1, 0.5)
        with pytest.raises(CodecError):
            codec.encode(1e6, 2.0)
        with pytest.raises(CodecError):
            codec.encode_layer(1e6, 0.5, 0.5)
        with pytest.raises(CodecError):
            codec.decode_time_ms(-1)

    @given(st.floats(min_value=0, max_value=1.5), st.floats(min_value=0, max_value=1e8))
    @settings(max_examples=40)
    def test_payload_nonnegative(self, complexity, pixels):
        frame = H264Model().encode(pixels, complexity)
        assert frame.payload_bytes >= 0


class TestPipelinedLatency:
    def test_one_chunk_is_serial(self):
        assert pipelined_latency_ms([4.0, 2.0, 8.0], chunks=1) == pytest.approx(14.0)

    def test_many_chunks_approach_bottleneck(self):
        latency = pipelined_latency_ms([4.0, 2.0, 8.0], chunks=1000)
        assert latency == pytest.approx(8.0, rel=0.01)

    def test_monotone_decreasing_in_chunks(self):
        stages = [5.0, 3.0, 9.0, 1.0]
        values = [pipelined_latency_ms(stages, k) for k in (1, 2, 4, 8, 16)]
        assert values == sorted(values, reverse=True)

    def test_bounded_by_bottleneck_and_serial(self):
        stages = [5.0, 3.0, 9.0]
        for k in (1, 2, 4, 8):
            latency = pipelined_latency_ms(stages, k)
            assert max(stages) <= latency <= sum(stages)

    def test_empty_stages(self):
        assert pipelined_latency_ms([], 4) == 0.0

    def test_invalid_inputs(self):
        with pytest.raises(CodecError):
            pipelined_latency_ms([1.0], chunks=0)
        with pytest.raises(CodecError):
            pipelined_latency_ms([-1.0], chunks=2)

    @given(
        st.lists(st.floats(min_value=0, max_value=50), min_size=1, max_size=6),
        st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=50)
    def test_pipeline_bounds_property(self, stages, chunks):
        latency = pipelined_latency_ms(stages, chunks)
        assert max(stages) - 1e-9 <= latency <= sum(stages) + 1e-9


class TestStreamPlan:
    def test_latency_composition(self):
        plan = StreamPlan(
            render_ms=2.0, encode_ms=1.0, transmit_ms=8.0, decode_ms=1.0,
            propagation_ms=3.0, chunks=8,
        )
        assert plan.bottleneck_ms == 8.0
        assert plan.latency_ms == pytest.approx(
            3.0 + pipelined_latency_ms([2.0, 1.0, 8.0, 1.0], 8)
        )
        assert plan.serial_latency_ms == pytest.approx(15.0)

    def test_streaming_beats_serial(self):
        plan = StreamPlan(2.0, 1.0, 8.0, 1.0, propagation_ms=3.0)
        assert plan.latency_ms < plan.serial_latency_ms
