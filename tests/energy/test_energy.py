"""Tests for power models, McPAT overhead estimates and energy accounting."""

import pytest

from repro.analysis.calibration import ANCHORS
from repro.energy.accounting import EnergyAccountant
from repro.energy.mcpat import estimate_liwc, estimate_sram, estimate_uca
from repro.energy.power import AcceleratorPower, GPUPowerModel, RADIO_POWER, RadioPowerModel
from repro.errors import ConfigurationError
from repro.sim.metrics import FrameRecord, SimulationResult


class TestGPUPower:
    def test_dynamic_scaling_superlinear(self):
        model = GPUPowerModel()
        assert model.dynamic_w(500) == pytest.approx(model.dynamic_w_at_reference)
        # Halving frequency saves more than half the dynamic power.
        assert model.dynamic_w(250) < 0.5 * model.dynamic_w(500)

    def test_energy_combines_dynamic_and_static(self):
        model = GPUPowerModel(dynamic_w_at_reference=2.0, static_w=0.5)
        energy = model.energy_mj(busy_ms=10.0, frame_span_ms=20.0, frequency_mhz=500)
        assert energy == pytest.approx(2.0 * 10 + 0.5 * 20)

    def test_busy_clamped_to_span(self):
        model = GPUPowerModel(dynamic_w_at_reference=1.0, static_w=0.0)
        assert model.energy_mj(50.0, 20.0, 500) == pytest.approx(20.0)

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            GPUPowerModel(dynamic_w_at_reference=0.0)
        with pytest.raises(ConfigurationError):
            GPUPowerModel().dynamic_w(0.0)


class TestRadioPower:
    def test_lte_more_expensive_than_wifi(self):
        assert RADIO_POWER["4G LTE"].active_w > RADIO_POWER["Wi-Fi"].active_w

    def test_energy_includes_tail(self):
        radio = RadioPowerModel(active_w=1.0, tail_w=0.5, tail_ms=5.0, idle_w=0.0)
        with_transfer = radio.energy_mj(active_ms=2.0, frame_span_ms=10.0)
        assert with_transfer == pytest.approx(2.0 * 1.0 + 0.5 * 5.0)

    def test_no_tail_without_transfer(self):
        radio = RadioPowerModel(active_w=1.0, tail_w=0.5, tail_ms=5.0, idle_w=0.1)
        assert radio.energy_mj(0.0, 10.0) == pytest.approx(1.0 * 0 + 0.1 * 10)

    def test_all_presets_present(self):
        assert set(RADIO_POWER) == {"Wi-Fi", "4G LTE", "Early 5G"}


class TestMcPAT:
    def test_liwc_matches_paper(self):
        """Sec. 4.3: 64 KB table -> ~0.66 mm^2, <= 25 mW."""
        report = estimate_liwc()
        assert ANCHORS["liwc_area_mm2"].check(report.area_mm2)
        assert ANCHORS["liwc_power_mw"].check(report.power_mw)

    def test_uca_matches_paper(self):
        """Sec. 4.3: 4 MULs + 8 SIMD4 FPUs -> ~1.6 mm^2, ~94 mW."""
        report = estimate_uca()
        assert ANCHORS["uca_area_mm2"].check(report.area_mm2)
        assert ANCHORS["uca_power_mw"].check(report.power_mw)

    def test_power_scales_with_frequency(self):
        assert estimate_uca(frequency_mhz=250).power_mw == pytest.approx(
            estimate_uca(frequency_mhz=500).power_mw / 2
        )

    def test_sram_scales_with_size(self):
        small = estimate_sram(32)
        large = estimate_sram(64)
        assert large.area_mm2 == pytest.approx(2 * small.area_mm2)

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            estimate_sram(0)
        with pytest.raises(ConfigurationError):
            estimate_liwc(table_depth=0)

    def test_report_str(self):
        assert "LIWC" in str(estimate_liwc())


def _result(gpu_busy, net_busy, uca_busy=0.0, vd_busy=0.0, n=20, period=11.0):
    records = [
        FrameRecord(
            index=i,
            tracking_ms=i * period,
            display_ms=i * period + 15,
            gpu_busy_ms=gpu_busy,
            net_busy_ms=net_busy,
            uca_busy_ms=uca_busy,
            vd_busy_ms=vd_busy,
        )
        for i in range(n)
    ]
    return SimulationResult("x", "app", records, warmup_frames=2)


class TestAccounting:
    def test_breakdown_components(self):
        accountant = EnergyAccountant()
        breakdown = accountant.breakdown(
            _result(gpu_busy=5.0, net_busy=2.0, uca_busy=4.0, vd_busy=1.0),
            gpu_frequency_mhz=500,
            network_name="Wi-Fi",
            has_liwc=True,
            has_uca=True,
        )
        assert breakdown.gpu_mj > 0
        assert breakdown.radio_mj > 0
        assert breakdown.uca_mj > 0
        assert breakdown.liwc_mj > 0
        assert breakdown.total_mj == pytest.approx(
            breakdown.gpu_mj
            + breakdown.radio_mj
            + breakdown.decoder_mj
            + breakdown.liwc_mj
            + breakdown.uca_mj
        )

    def test_local_baseline_has_no_radio(self):
        accountant = EnergyAccountant()
        breakdown = accountant.breakdown(
            _result(gpu_busy=30.0, net_busy=0.0), 500, "Wi-Fi"
        )
        assert breakdown.radio_mj == 0.0

    def test_normalized_energy_below_one_for_offload(self):
        """A Q-VR-like run (small GPU busy) must beat the local baseline."""
        accountant = EnergyAccountant()
        qvr = _result(gpu_busy=6.0, net_busy=3.0, uca_busy=4.0, vd_busy=0.5, period=8.0)
        local = _result(gpu_busy=35.0, net_busy=0.0, period=36.0)
        ratio = accountant.normalized_energy(
            qvr, local, 500, "Wi-Fi", has_liwc=True, has_uca=True
        )
        assert ratio < 0.6

    def test_unknown_network_rejected(self):
        with pytest.raises(ConfigurationError):
            EnergyAccountant().breakdown(_result(1, 1), 500, "6G")

    def test_empty_result_rejected(self):
        empty = SimulationResult("x", "y", [], warmup_frames=0)
        with pytest.raises(ConfigurationError):
            EnergyAccountant().breakdown(empty, 500, "Wi-Fi")

    def test_accelerator_power_defaults_match_mcpat(self):
        acc = AcceleratorPower()
        assert acc.liwc_w == pytest.approx(0.025)
        assert acc.uca_w == pytest.approx(0.094)
