"""Bit-parity of the vectorized frame kernels against the scalar oracle.

The vectorized engine (:mod:`repro.sim.kernels`) must be a pure
performance refactor: for every system design, app, network environment
and server schedule, it has to produce *bit-identical* frame records to
the original per-frame task-graph pipeline, which stays available as the
``engine="scalar"`` reference oracle.  These tests pin that contract —
any divergence, however small, is a bug in the kernels, never tolerance.
"""

import dataclasses
import math
from dataclasses import replace

import pytest

from repro.errors import ConfigurationError
from repro.network.conditions import WIFI
from repro.network.profile import PROFILES, TraceProfile
from repro.sim.kernels import run_vectorized
from repro.sim.metrics import DEFAULT_WARMUP, effective_warmup
from repro.sim.runner import BatchEngine, RunSpec, Sweep, run, spec_key
from repro.sim.systems import PlatformConfig, SYSTEM_NAMES


def assert_identical(vectorized, scalar):
    """Record-for-record, field-for-field bitwise equality (NaN == NaN)."""
    assert vectorized.system == scalar.system
    assert vectorized.app == scalar.app
    assert vectorized.warmup_frames == scalar.warmup_frames
    assert len(vectorized.records) == len(scalar.records)
    for rv, rs in zip(vectorized.records, scalar.records):
        for field in dataclasses.fields(rv):
            value_v = getattr(rv, field.name)
            value_s = getattr(rs, field.name)
            if (
                isinstance(value_v, float)
                and math.isnan(value_v)
                and math.isnan(value_s)
            ):
                continue
            assert value_v == value_s, (
                f"frame {rs.index}: {field.name} diverges "
                f"(vector {value_v!r} != scalar {value_s!r})"
            )


def run_both(system, app, platform=None, seed=0, n_frames=60, warmup_frames=10):
    """One spec through both engines; returns (vectorized, scalar)."""
    kwargs = dict(
        system=system,
        app=app,
        n_frames=n_frames,
        seed=seed,
        warmup_frames=warmup_frames,
    )
    if platform is not None:
        kwargs["platform"] = platform
    return (
        run(RunSpec(engine="vector", **kwargs)),
        run(RunSpec(engine="scalar", **kwargs)),
    )


#: Network/schedule environments the parity grid crosses every system
#: with.  ``piecewise-drop`` runs long enough (120 frames at ~11
#: ms/frame) to enter and leave wifi-drop's 900–1800 ms degraded window,
#: so parity covers the netdrop transient, not just steady state.
PLATFORM_CASES = {
    "static": (PlatformConfig(), 60),
    "piecewise-drop": (PlatformConfig(network=PROFILES["wifi-drop"]), 120),
    "markov": (PlatformConfig(network=PROFILES["wifi-markov"]), 60),
    "trace": (
        PlatformConfig(
            network=TraceProfile(
                base=WIFI,
                times_ms=(0.0, 300.0, 700.0),
                throughput_mbps=(200.0, 60.0, 150.0),
            )
        ),
        60,
    ),
    "server-schedule": (
        PlatformConfig(server_schedule=((0.0, 1.0), (350.0, 0.5))),
        60,
    ),
    "uplink": (PlatformConfig(network=replace(WIFI, uplink_mbps=20.0)), 60),
}


class TestBitParity:
    """Every system design, in every environment class."""

    @pytest.mark.parametrize("case", sorted(PLATFORM_CASES))
    @pytest.mark.parametrize("system", SYSTEM_NAMES)
    def test_every_system_in_every_environment(self, system, case):
        platform, n_frames = PLATFORM_CASES[case]
        vectorized, scalar = run_both(
            system, "Doom3-H", platform, n_frames=n_frames
        )
        assert_identical(vectorized, scalar)

    @pytest.mark.parametrize("app", ("GRID", "HL2-L"))
    @pytest.mark.parametrize("system", SYSTEM_NAMES)
    def test_other_resolutions_and_titles(self, system, app):
        """A second and third title, at a different render resolution."""
        vectorized, scalar = run_both(system, app, seed=3)
        assert_identical(vectorized, scalar)

    def test_netdrop_window_actually_reached(self):
        """The 120-frame piecewise run crosses into the degraded window.

        Guards the grid above against silently shrinking below the 900 ms
        drop onset: the tail of the wifi-drop run must diverge from the
        same spec on the static link.
        """
        platform, n_frames = PLATFORM_CASES["piecewise-drop"]
        dropped, _ = run_both("qvr", "Doom3-H", platform, n_frames=n_frames)
        static, _ = run_both("qvr", "Doom3-H", n_frames=n_frames)
        tail = slice(80, n_frames)
        assert [r.path_latency_ms for r in dropped.records[tail]] != [
            r.path_latency_ms for r in static.records[tail]
        ]

    def test_run_vectorized_direct_matches_runner_path(self):
        """The public kernel entry point equals the RunSpec dispatch."""
        spec = RunSpec(
            system="sw-qvr", app="Wolf", n_frames=40, warmup_frames=5
        )
        from repro.workloads.apps import get_app

        direct = run_vectorized(
            "sw-qvr",
            get_app("Wolf"),
            spec.effective_platform(),
            seed=0,
            n_frames=40,
            warmup_frames=5,
        )
        assert_identical(direct, run(spec))


class TestEngineSelection:
    """The engine field is execution detail, invisible to identity."""

    def test_engine_validated(self):
        with pytest.raises(ConfigurationError):
            RunSpec(system="local", app="GRID", engine="turbo")
        with pytest.raises(ConfigurationError):
            BatchEngine(engine="turbo")

    def test_cache_key_ignores_engine(self):
        base = RunSpec(system="qvr", app="GRID")
        assert spec_key(base) == spec_key(replace(base, engine="scalar"))

    def test_scalar_result_satisfies_vector_cache_entry(self, tmp_path):
        """A cache populated by one engine answers the other engine's specs."""
        spec = RunSpec(system="ffr", app="GRID", n_frames=30, warmup_frames=5)
        writer = BatchEngine(cache_dir=tmp_path, engine="scalar")
        scalar_result = writer.run_specs([spec])[spec]
        reader = BatchEngine(cache_dir=tmp_path, engine="vector")
        assert_identical(reader.run_specs([spec])[spec], scalar_result)
        assert reader.stats.executed == 0
        assert reader.stats.cache_hits == 1

    def test_batch_engine_override_keys_by_requested_spec(self):
        spec = RunSpec(system="local", app="GRID", n_frames=30, warmup_frames=5)
        engine = BatchEngine(engine="scalar")
        results = engine.run_specs([spec])
        assert set(results) == {spec}
        assert_identical(run(spec), results[spec])

    def test_sweep_threads_engine(self):
        sweep = Sweep(
            systems=("local", "remote"),
            apps=("GRID",),
            n_frames=40,
            engine="scalar",
        )
        assert all(spec.engine == "scalar" for spec in sweep.specs())
        assert all(
            spec.engine == "vector"
            for spec in replace(sweep, engine="vector").specs()
        )


class TestWarmupClamping:
    """One clamping rule, shared by both engines and the sweep layer."""

    def test_effective_warmup_rule(self):
        assert effective_warmup(300) == DEFAULT_WARMUP
        assert effective_warmup(31) == 30
        assert effective_warmup(30) == 0
        assert effective_warmup(10, 4) == 4
        assert effective_warmup(2, 1) == 1
        assert effective_warmup(1) == 0

    @pytest.mark.parametrize("n_frames,warmup", [(1, 0), (2, 1), (3, 2)])
    def test_tiny_runs_agree_across_engines(self, n_frames, warmup):
        """The n_frames <= 2 edge keeps the clamped warm-up, identically."""
        for system in ("local", "qvr"):
            vectorized, scalar = run_both(
                system, "GRID", n_frames=n_frames, warmup_frames=warmup
            )
            assert_identical(vectorized, scalar)
            assert vectorized.warmup_frames == warmup
