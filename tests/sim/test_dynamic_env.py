"""Acceptance tests: dynamic environments through the whole sim stack.

A run under a piecewise bandwidth-drop profile must be deterministic per
seed, bit-identical through the batch cache, and show the paper's
predicted adaptation: eccentricity grows and the remote share shrinks
during the degraded window, then both recover.
"""

import pickle

import numpy as np

from repro.network.conditions import NetworkConditions, WIFI
from repro.network.profile import ConstantProfile, MarkovProfile, PiecewiseProfile
from repro.sim.runner import BatchEngine, RunSpec, run
from repro.sim.systems import PlatformConfig


def _bit_identical(a, b) -> bool:
    return pickle.dumps(a) == pickle.dumps(b)


def _drop_profile() -> PiecewiseProfile:
    return PiecewiseProfile.bandwidth_drop(
        WIFI, start_ms=500.0, duration_ms=800.0, factor=0.15
    )


def _drop_spec(seed: int = 0, n_frames: int = 180) -> RunSpec:
    return RunSpec(
        system="qvr",
        app="GRID",
        platform=PlatformConfig(network=_drop_profile()),
        n_frames=n_frames,
        seed=seed,
        warmup_frames=0,
    )


class TestDeterminism:
    def test_deterministic_per_seed(self):
        assert _bit_identical(run(_drop_spec(seed=3)), run(_drop_spec(seed=3)))

    def test_seeds_differ(self):
        assert not _bit_identical(run(_drop_spec(seed=1)), run(_drop_spec(seed=2)))

    def test_bit_identical_through_batch_cache(self, tmp_path):
        spec = _drop_spec()
        cold_engine = BatchEngine(cache_dir=tmp_path)
        cold = cold_engine.run_specs([spec])[spec]
        warm_engine = BatchEngine(cache_dir=tmp_path)
        warm = warm_engine.run_specs([spec])[spec]
        assert warm_engine.stats.cache_hits == 1
        assert warm_engine.stats.executed == 0
        assert _bit_identical(cold, warm)

    def test_markov_profile_deterministic_per_seed(self):
        profile = MarkovProfile(
            good=WIFI,
            degraded=NetworkConditions(
                name="Wi-Fi", throughput_mbps=30.0, propagation_ms=2.0
            ),
            p_degrade=0.2,
            p_recover=0.3,
        )
        spec = RunSpec(
            system="qvr",
            app="Doom3-L",
            platform=PlatformConfig(network=profile),
            n_frames=80,
            seed=5,
            warmup_frames=0,
        )
        assert _bit_identical(run(spec), run(spec))


class TestConstantEquivalence:
    def test_constant_profile_matches_static_conditions(self):
        """Wrapping a preset in ConstantProfile must not change the physics."""
        static = RunSpec(
            system="qvr", app="GRID", platform=PlatformConfig(network=WIFI),
            n_frames=60, warmup_frames=0,
        )
        wrapped = RunSpec(
            system="qvr", app="GRID",
            platform=PlatformConfig(network=ConstantProfile(WIFI)),
            n_frames=60, warmup_frames=0,
        )
        assert _bit_identical(run(static), run(wrapped))

    def test_all_systems_unchanged_under_constant_profile(self):
        for system in ("local", "remote", "static", "qvr"):
            a = run(RunSpec(system=system, app="Doom3-L", n_frames=40, warmup_frames=0))
            b = run(
                RunSpec(
                    system=system, app="Doom3-L",
                    platform=PlatformConfig(network=ConstantProfile(WIFI)),
                    n_frames=40, warmup_frames=0,
                )
            )
            assert _bit_identical(a, b), system


class TestAdaptation:
    def _windows(self, result):
        start, end = _drop_profile().boundaries_ms
        before = [r for r in result.records if r.display_ms < start]
        during = [r for r in result.records if start <= r.display_ms < end]
        after = [r for r in result.records if r.display_ms >= end]
        return before, during, after

    def test_eccentricity_grows_during_drop(self):
        result = run(_drop_spec())
        before, during, after = self._windows(result)
        assert len(before) > 5 and len(during) > 5 and len(after) > 5
        e1_before = float(np.mean([r.e1_deg for r in before]))
        e1_during = float(np.mean([r.e1_deg for r in during]))
        e1_after = float(np.mean([r.e1_deg for r in after]))
        assert e1_during > 1.3 * e1_before
        assert e1_after < e1_during

    def test_remote_share_shrinks_during_drop(self):
        result = run(_drop_spec())
        before, during, after = self._windows(result)
        bytes_before = float(np.mean([r.transmitted_bytes for r in before]))
        bytes_during = float(np.mean([r.transmitted_bytes for r in during]))
        bytes_after = float(np.mean([r.transmitted_bytes for r in after]))
        assert bytes_during < 0.8 * bytes_before
        assert bytes_after > bytes_during

    def test_software_controller_also_reacts(self):
        """SW-QVR adapts from measured latencies, one frame behind."""
        spec = RunSpec(
            system="sw-qvr",
            app="GRID",
            platform=PlatformConfig(network=_drop_profile()),
            n_frames=180,
            warmup_frames=0,
        )
        result = run(spec)
        before, during, _ = self._windows(result)
        e1_before = float(np.mean([r.e1_deg for r in before]))
        e1_during = float(np.mean([r.e1_deg for r in during]))
        assert e1_during > e1_before

    def test_fps_degrades_then_recovers(self):
        result = run(_drop_spec())
        before, during, after = self._windows(result)

        def fps(records):
            span = records[-1].display_ms - records[0].display_ms
            return 1000.0 * (len(records) - 1) / span

        assert fps(during) < fps(before)
        assert fps(after) > fps(during)


class TestSharedDynamicProfiles:
    def test_shared_clients_degrade_a_profile_platform(self):
        solo = _drop_spec()
        shared = RunSpec(
            system="qvr",
            app="GRID",
            platform=PlatformConfig(network=_drop_profile()),
            n_frames=180,
            warmup_frames=0,
            shared_clients=4,
        )
        degraded = shared.effective_platform()
        assert isinstance(degraded.network, PiecewiseProfile)
        assert (
            degraded.network.initial_conditions.throughput_mbps
            < solo.platform.network.initial_conditions.throughput_mbps
        )