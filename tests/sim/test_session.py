"""Tests for the event-driven session surface (repro.sim.session)."""

import pickle

import pytest

from repro import constants
from repro.errors import ConfigurationError, NetworkError
from repro.network.conditions import LTE_4G, WIFI
from repro.network.profile import (
    ConstantProfile,
    OffsetProfile,
    SwitchedProfile,
    TraceProfile,
)
from repro.sim.multiuser import ClientSpec, MultiUserScenario
from repro.sim.runner import BatchEngine, RunSpec, spec_key
from repro.sim.server import RenderServer
from repro.sim.session import (
    Join,
    Leave,
    ProfileSwitch,
    Session,
    events_from_motion,
    simulate_session,
)
from repro.sim.systems import PlatformConfig


def _drop_trace(n_frames):
    frame_ms = constants.FRAME_BUDGET_MS
    return TraceProfile(
        base=WIFI,
        times_ms=(0.0, 0.3 * n_frames * frame_ms, 0.7 * n_frames * frame_ms),
        throughput_mbps=(200.0, 30.0, 200.0),
        label="test-drop",
    )


def _duration(n_frames):
    return n_frames * constants.FRAME_BUDGET_MS


def _queue_session(n_frames, events, clients=None, capacity=2.0, policy="fair-share"):
    return Session(
        clients=clients
        if clients is not None
        else (ClientSpec("GRID"), ClientSpec("Doom3-L")),
        events=events,
        platform=PlatformConfig(network=_drop_trace(n_frames)),
        policy=policy,
        server=RenderServer(capacity_clients=capacity, overflow="queue"),
    )


class TestEventValidation:
    def test_event_time_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            Join(0.0, "GRID")
        with pytest.raises(ConfigurationError):
            Leave(-5.0, client=0)

    def test_join_needs_a_spec(self):
        with pytest.raises(ConfigurationError):
            Join(100.0)

    def test_join_promotes_app_names(self):
        event = Join(100.0, "GRID")
        assert event.spec == ClientSpec("GRID")

    def test_switch_coerces_profile_names(self):
        event = ProfileSwitch(100.0, client=0, profile="4g")
        assert event.profile == ConstantProfile(LTE_4G)

    def test_unknown_client_index_rejected(self):
        with pytest.raises(ConfigurationError):
            Session(clients=("GRID",), events=(Leave(100.0, client=3),))

    def test_join_extends_the_index_space(self):
        # Client 1 only exists because the join precedes the leave.
        Session(
            clients=("GRID",),
            events=(Join(100.0, "Doom3-L"), Leave(200.0, client=1)),
        )
        with pytest.raises(ConfigurationError):
            Session(
                clients=("GRID",),
                events=(Leave(50.0, client=1), Join(100.0, "Doom3-L")),
            )

    def test_double_leave_rejected(self):
        with pytest.raises(ConfigurationError):
            Session(
                clients=("GRID", "Doom3-L"),
                events=(Leave(100.0, client=1), Leave(200.0, client=1)),
            )

    def test_switch_after_leave_rejected(self):
        with pytest.raises(ConfigurationError):
            Session(
                clients=("GRID", "Doom3-L"),
                events=(
                    Leave(100.0, client=1),
                    ProfileSwitch(200.0, client=1, profile="4g"),
                ),
            )

    def test_session_needs_a_client(self):
        with pytest.raises(ConfigurationError):
            Session(clients=())
        Session(clients=(), events=(Join(100.0, "GRID"),))  # joiner suffices

    def test_event_past_session_end_rejected(self):
        session = Session(
            clients=("GRID",), events=(Join(1e9, "Doom3-L"),)
        )
        with pytest.raises(ConfigurationError):
            session.timeline(n_frames=60)


class TestLegacyParity:
    """Single-epoch sessions reproduce MultiUserScenario.plan() exactly."""

    @pytest.mark.parametrize("policy", ["fair-share", "weighted", "deadline"])
    def test_same_specs_and_cache_keys_across_policies(self, policy):
        scenario = MultiUserScenario.heterogeneous(
            (ClientSpec("GRID"), ClientSpec("Doom3-L")),
            platform=PlatformConfig(network=_drop_trace(120)),
            policy=policy,
        )
        plan = scenario.plan(n_frames=60, seed=3)
        timeline = scenario.as_session().timeline(n_frames=60, seed=3)
        assert timeline.specs == plan.specs
        assert [spec_key(s) for s in timeline.specs] == [
            spec_key(s) for s in plan.specs
        ]
        assert timeline.plan() == plan

    def test_legacy_fair_share_keys_frozen_since_pr3(self):
        """The PR 2/3 golden keys survive the session redesign."""
        assert spec_key(RunSpec(system="qvr", app="GRID")) == (
            "85f0b5831502e52c523945418f1a48f7476244d2d564ef4b1231c3dd9ae47135"
        )
        assert spec_key(RunSpec(system="qvr", app="GRID", shared_clients=3)) == (
            "eb189f7d1ac2b0142e26bac6123871e4b55724ae03c97111e76efa8f43af49d9"
        )

    def test_neutral_start_ms_keeps_cache_keys(self):
        base = RunSpec(system="qvr", app="GRID")
        assert spec_key(base) == spec_key(RunSpec(system="qvr", app="GRID",
                                                  start_ms=0.0))
        late = RunSpec(system="qvr", app="GRID", start_ms=500.0)
        assert spec_key(late) != spec_key(base)

    @pytest.mark.parametrize("policy", ["fair-share", "deadline"])
    def test_bit_identical_results(self, policy):
        scenario = MultiUserScenario.heterogeneous(
            (ClientSpec("GRID"), ClientSpec("Doom3-L")),
            platform=PlatformConfig(network=_drop_trace(120)),
            policy=policy,
        )
        engine = BatchEngine()
        via_plan = engine.run_specs(scenario.plan(n_frames=40).specs)
        via_session = engine.run_specs(
            scenario.as_session().timeline(n_frames=40).specs
        )
        assert pickle.dumps(list(via_plan.values())) == pickle.dumps(
            list(via_session.values())
        )

    def test_multi_epoch_timeline_refuses_the_static_view(self):
        session = _queue_session(60, (Leave(100.0, client=1),))
        timeline = session.timeline(n_frames=60)
        with pytest.raises(ConfigurationError):
            timeline.plan()


class TestQueuePromotion:
    def test_queued_client_starts_late_when_capacity_frees(self):
        n_frames = 90
        duration = _duration(n_frames)
        session = _queue_session(
            n_frames,
            (Join(0.2 * duration, "Doom3-L"), Leave(0.5 * duration, client=1)),
        )
        timeline = session.timeline(n_frames=n_frames)
        joiner = timeline.client(2)
        assert joiner.joined_ms == pytest.approx(0.2 * duration)
        assert joiner.start_ms == pytest.approx(0.5 * duration)
        assert joiner.queued_ms == pytest.approx(0.3 * duration)
        assert joiner.run is not None
        assert joiner.run.start_ms == pytest.approx(0.5 * duration)
        assert 0 < joiner.run.n_frames < n_frames
        # The middle epoch shows the client waiting in the queue.
        assert timeline.epochs[1].queued == (2,)
        assert timeline.epochs[2].serviced == (0, 2)

    def test_capacity_freed_exactly_at_the_join_boundary(self):
        """A leave and a join at the same instant: the joiner never queues."""
        n_frames = 60
        t = 0.4 * _duration(n_frames)
        session = _queue_session(
            n_frames, (Leave(t, client=1), Join(t, "Doom3-L"))
        )
        timeline = session.timeline(n_frames=n_frames)
        joiner = timeline.client(2)
        assert joiner.start_ms == pytest.approx(t)
        assert joiner.queued_ms == 0.0
        assert not any(epoch.queued for epoch in timeline.epochs)

    def test_multiple_queued_clients_promote_first_come_first_served(self):
        n_frames = 90
        duration = _duration(n_frames)
        session = _queue_session(
            n_frames,
            (
                Join(0.1 * duration, "Doom3-L"),   # client 2, queues first
                Join(0.2 * duration, "GRID"),      # client 3, queues second
                Leave(0.4 * duration, client=1),   # frees one slot
                Leave(0.6 * duration, client=0),   # frees the second
            ),
        )
        timeline = session.timeline(n_frames=n_frames)
        first, second = timeline.client(2), timeline.client(3)
        assert first.start_ms == pytest.approx(0.4 * duration)
        assert second.start_ms == pytest.approx(0.6 * duration)
        assert first.start_ms < second.start_ms

    def test_promotion_is_first_fit_not_head_of_line_blocking(self):
        """A light late-comer may pass a heavy queued client: freed
        capacity goes to the oldest queued client *that fits* (the
        server's greedy admission), not strictly head-of-line."""
        n_frames = 90
        duration = _duration(n_frames)
        session = _queue_session(
            n_frames,
            (
                Join(0.1 * duration, ClientSpec("GRID", weight=2.0)),  # client 2
                Join(0.2 * duration, ClientSpec("Doom3-L")),           # client 3
                Leave(0.4 * duration, client=1),  # frees 1.0 of capacity
            ),
        )
        timeline = session.timeline(n_frames=n_frames)
        heavy, light = timeline.client(2), timeline.client(3)
        # The freed slot fits the light client, not the heavy one.
        assert light.start_ms == pytest.approx(0.4 * duration)
        assert heavy.run is None
        assert timeline.epochs[-1].queued == (2,)

    def test_promoted_client_is_not_demoted_when_an_older_queued_fits(self):
        """A running client outranks every waiter, even one that joined
        earlier: freed capacity must not demote the promoted client to
        re-seat the older, heavier one."""
        n_frames = 120
        duration = _duration(n_frames)
        session = _queue_session(
            n_frames,
            (
                Join(0.2 * duration, ClientSpec("GRID", weight=1.5)),  # client 1
                Join(0.4 * duration, ClientSpec("Doom3-L")),           # client 2
                Leave(0.6 * duration, client=0),  # frees 1.0
            ),
            clients=(ClientSpec("GRID"),),
        )
        timeline = session.timeline(n_frames=n_frames)
        # Client 2 (w=1) was admitted first-fit past queued client 1
        # (w=1.5); after the leave, 1 + 1.5 > 2 still: client 1 must
        # keep waiting rather than evict the running client 2.
        assert timeline.client(2).start_ms == pytest.approx(0.4 * duration)
        assert timeline.client(2).end_ms is None
        assert timeline.client(1).run is None
        assert timeline.epochs[-1].serviced == (2,)
        assert timeline.epochs[-1].queued == (1,)
        # Every epoch's serviced roster matches the frozen runs: a
        # serviced client stays serviced until it leaves or the session
        # ends.
        for client in timeline.clients:
            if client.run is None:
                continue
            for epoch in timeline.epochs:
                if client.start_ms <= epoch.start_ms and (
                    client.end_ms is None or epoch.start_ms < client.end_ms
                ):
                    assert client.index in epoch.serviced

    def test_client_leaving_while_still_queued_never_runs(self):
        n_frames = 60
        duration = _duration(n_frames)
        session = _queue_session(
            n_frames,
            (Join(0.2 * duration, "Doom3-L"), Leave(0.5 * duration, client=2)),
        )
        timeline = session.timeline(n_frames=n_frames)
        ghost = timeline.client(2)
        assert ghost.start_ms is None
        assert ghost.run is None
        assert ghost.end_ms == pytest.approx(0.5 * duration)
        assert timeline.serviced_indices == (0, 1)
        # The simulation simply has no result for it.
        result = simulate_session(session, n_frames=n_frames)
        assert result.result_for(2) is None
        assert len(result.per_client) == 2

    def test_rejection_is_final_even_when_capacity_frees(self):
        """Unlike queue mode, overflow='reject' turns the client away for
        good: a later leave must not resurrect it."""
        n_frames = 60
        duration = _duration(n_frames)
        session = Session(
            clients=(ClientSpec("GRID"), ClientSpec("Doom3-L")),
            events=(
                Join(0.2 * duration, "Doom3-L"),
                Leave(0.5 * duration, client=1),
            ),
            platform=PlatformConfig(network=_drop_trace(n_frames)),
            server=RenderServer(capacity_clients=2.0, overflow="reject"),
        )
        timeline = session.timeline(n_frames=n_frames)
        joiner = timeline.client(2)
        assert joiner.run is None
        assert joiner.start_ms is None
        assert not any(epoch.queued for epoch in timeline.epochs)
        # After the leave, only the surviving incumbent is serviced.
        assert timeline.epochs[-1].serviced == (0,)

    def test_incumbents_are_never_evicted_by_a_join(self):
        n_frames = 60
        session = _queue_session(
            n_frames, (Join(0.3 * _duration(n_frames), "GRID"),)
        )
        timeline = session.timeline(n_frames=n_frames)
        assert timeline.client(0).start_ms == 0.0
        assert timeline.client(1).start_ms == 0.0
        assert timeline.client(2).run is None  # queued forever
        assert timeline.epochs[-1].queued == (2,)


class TestEpochPlanning:
    def test_leave_re_allocates_the_survivors_share(self):
        """After the only other client leaves, the survivor's share grows."""
        n_frames = 60
        t = 0.5 * _duration(n_frames)
        session = _queue_session(n_frames, (Leave(t, client=1),))
        timeline = session.timeline(n_frames=n_frames)
        survivor = timeline.client(0).run
        assert survivor is not None
        schedule = dict(survivor.server_allocation)
        before = [s for start, s in survivor.server_allocation if start < t]
        after = [s for start, s in survivor.server_allocation if start >= t]
        assert schedule[0.0] == before[0]
        assert max(after) > max(before)

    def test_fair_share_event_session_caps_lone_client_at_full_resource(self):
        n_frames = 60
        session = _queue_session(n_frames, (Leave(300.0, client=1),))
        timeline = session.timeline(n_frames=n_frames)
        survivor = timeline.client(0).run
        # 1 / (1 * 0.9) capped at 1.0: a lone client uses the whole server.
        assert any(share == 1.0 for _, share in survivor.server_allocation)

    def test_leaver_runs_a_prorated_frame_count(self):
        n_frames = 80
        t = 0.25 * _duration(n_frames)
        session = _queue_session(n_frames, (Leave(t, client=1),))
        leaver = session.timeline(n_frames=n_frames).client(1)
        assert leaver.end_ms == pytest.approx(t)
        assert leaver.run.n_frames == 20
        assert leaver.run.warmup_frames < 20

    def test_a_later_switch_cannot_rewrite_earlier_shared_epochs(self):
        """Event locality: adding a future roam must not retroactively
        privatise the client's pre-switch time on the shared downlink."""
        n_frames = 120
        duration = _duration(n_frames)
        t_leave, t_switch = 0.5 * duration, 0.7 * duration
        base = _queue_session(n_frames, (Leave(t_leave, client=1),))
        roamed = _queue_session(
            n_frames,
            (Leave(t_leave, client=1),
             ProfileSwitch(t_switch, client=0, profile="4g")),
        )
        without = simulate_session(base, n_frames=n_frames)
        with_roam = simulate_session(roamed, n_frames=n_frames)
        a = without.client_window(0, 0.0, t_switch)
        b = with_roam.client_window(0, 0.0, t_switch)
        # Identical link history before the switch: identical frames.
        assert a.frames == b.frames
        assert a.mean_fps == b.mean_fps
        # The roam only changes behaviour after the switch instant.
        after_a = without.client_window(0, t_switch, duration)
        after_b = with_roam.client_window(0, t_switch, duration)
        assert after_a.mean_fps != after_b.mean_fps

    def test_shared_starter_keeps_its_downlink_share_before_the_switch(self):
        n_frames = 60
        t = 0.5 * _duration(n_frames)
        session = _queue_session(
            n_frames, (ProfileSwitch(t, client=0, profile="4g"),)
        )
        run = session.timeline(n_frames=n_frames).client(0).run
        network = run.platform.network
        assert isinstance(network, SwitchedProfile)
        allocated = network.segments[0][1]
        from repro.network.profile import AllocatedProfile

        assert isinstance(allocated, AllocatedProfile)
        # Pre-switch the client holds its scheduled slice of the shared
        # link (2 clients at 0.9 efficiency -> ~0.556), not full Wi-Fi.
        before = network.sampler(0).conditions_at(t / 2)
        assert before.throughput_mbps == pytest.approx(
            200.0 / (2 * 0.9)
        )
        # Post-switch the private 4G link is sampled at full capacity.
        assert network.sampler(0).conditions_at(t + 1.0) == LTE_4G

    def test_profile_switch_composes_a_switched_profile(self):
        n_frames = 60
        t = 0.5 * _duration(n_frames)
        session = _queue_session(
            n_frames, (ProfileSwitch(t, client=1, profile="4g"),)
        )
        timeline = session.timeline(n_frames=n_frames)
        run = timeline.client(1).run
        network = run.platform.network
        assert isinstance(network, SwitchedProfile)
        assert network.segments[1][0] == pytest.approx(t)
        # A switched client is on a private link: full capacity, no
        # session downlink schedule.
        assert run.shared_downlink is False
        assert run.downlink_allocation is None
        # The unswitched incumbent keeps the shared downlink.
        assert timeline.client(0).run.shared_downlink is True
        assert timeline.client(0).run.downlink_allocation is not None

    def test_timeline_is_deterministic(self):
        n_frames = 60
        duration = _duration(n_frames)
        events = (Join(0.2 * duration, "Doom3-L"), Leave(0.5 * duration, client=1))
        a = _queue_session(n_frames, events).timeline(n_frames=n_frames)
        b = _queue_session(n_frames, events).timeline(n_frames=n_frames)
        assert a.specs == b.specs
        assert a.epochs == b.epochs

    def test_ties_at_one_instant_apply_leave_first(self):
        n_frames = 60
        t = 0.4 * _duration(n_frames)
        # However the two are declared, the leave (rank 0) applies before
        # the join (rank 2), so the joiner takes the freed slot.
        session = _queue_session(
            n_frames, (Join(t, "Doom3-L"), Leave(t, client=0))
        )
        timeline = session.timeline(n_frames=n_frames)
        assert timeline.client(2).start_ms == pytest.approx(t)


class TestSameTimestampOrdering:
    """Regression: equal-t events follow the documented total order, not
    implicit declaration order (Leave/Fail rank 0 < switch 1 < Join/Up 2)."""

    def test_declaration_order_of_tied_events_is_irrelevant(self):
        n_frames = 60
        t = 0.4 * _duration(n_frames)
        one = _queue_session(
            n_frames, (Join(t, "Doom3-L"), Leave(t, client=0))
        )
        other = _queue_session(
            n_frames, (Leave(t, client=0), Join(t, "Doom3-L"))
        )
        a = one.timeline(n_frames=n_frames)
        b = other.timeline(n_frames=n_frames)
        assert a.specs == b.specs
        assert [spec_key(s) for s in a.specs] == [spec_key(s) for s in b.specs]
        assert a.epochs == b.epochs

    def test_ordered_events_sorts_by_rank_within_an_instant(self):
        t = 500.0
        join = Join(t, "Doom3-L")
        leave = Leave(t, client=0)
        switch = ProfileSwitch(t, client=1, profile="4g")
        session = Session(
            clients=("GRID", "Doom3-L"), events=(join, switch, leave)
        )
        assert session.ordered_events() == (leave, switch, join)

    def test_tied_joins_keep_declaration_order(self):
        """Within one rank, declaration order still assigns indices."""
        n_frames = 60
        t = 0.4 * _duration(n_frames)
        session = _queue_session(
            n_frames,
            (Join(t, "GRID"), Join(t, "Doom3-L"), Leave(t, client=0),
             Leave(t, client=1)),
        )
        timeline = session.timeline(n_frames=n_frames)
        assert timeline.client(2).spec.app == "GRID"
        assert timeline.client(3).spec.app == "Doom3-L"

    def test_join_and_leave_of_the_same_client_at_one_instant_rejected(self):
        """The leave orders first, so it names a not-yet-existing client."""
        t = 500.0
        with pytest.raises(ConfigurationError):
            Session(
                clients=("GRID",),
                events=(Join(t, "Doom3-L"), Leave(t, client=1)),
            )


class TestEventsFromMotion:
    def _trace(self, n_frames=200, seed=0):
        from repro import constants as c
        from repro.motion.traces import generate_trace

        return generate_trace(n_frames, c.FRAME_BUDGET_MS, 1920, 2160, seed=seed)

    def test_emits_paired_switches_for_sustained_bursts(self):
        trace = self._trace(400, seed=0)
        events = events_from_motion(
            trace, degraded="4g", recovered="wifi", client=1
        )
        assert events, "seed 0 contains sustained high-velocity windows"
        assert len(events) % 2 == 0
        assert all(isinstance(e, ProfileSwitch) for e in events)
        assert all(e.client == 1 for e in events)
        for opening, closing in zip(events[::2], events[1::2]):
            assert opening.t_ms < closing.t_ms
            assert opening.profile == ConstantProfile(LTE_4G)
            assert closing.profile == ConstantProfile(WIFI)

    def test_deterministic_for_a_seed(self):
        a = events_from_motion(self._trace(), degraded="4g", recovered="wifi")
        b = events_from_motion(self._trace(), degraded="4g", recovered="wifi")
        assert a == b

    def test_thresholds_gate_event_generation(self):
        trace = self._trace(200, seed=0)
        none = events_from_motion(
            trace, degraded="4g", recovered="wifi", threshold=1.0
        )
        assert none == ()
        strict = events_from_motion(
            trace, degraded="4g", recovered="wifi", min_dwell_ms=1e6
        )
        assert strict == ()

    def test_events_plug_into_a_session(self):
        n_frames = 200
        trace = self._trace(n_frames, seed=0)
        events = events_from_motion(trace, degraded="4g", recovered="wifi")
        session = Session(clients=("GRID", "Doom3-L"), events=events)
        timeline = session.timeline(n_frames=n_frames)
        assert len(timeline.epochs) == len(events) + 1

    def test_parameter_validation(self):
        trace = self._trace(30)
        with pytest.raises(ConfigurationError):
            events_from_motion(trace, degraded="4g", recovered="wifi",
                               threshold=0.0)
        with pytest.raises(ConfigurationError):
            events_from_motion(trace, degraded="4g", recovered="wifi",
                               min_dwell_ms=0.0)
        with pytest.raises(ConfigurationError):
            events_from_motion(trace, degraded="4g", recovered="wifi",
                               client=-1)


class TestLateStartSampling:
    def test_late_starter_observes_the_session_clock(self):
        """A client promoted mid-drop sees the drop, not fresh conditions."""
        n_frames = 90
        duration = _duration(n_frames)
        trace = _drop_trace(n_frames)
        session = _queue_session(
            n_frames,
            # Promotion lands inside the drop window [0.3, 0.7).
            (Join(0.2 * duration, "Doom3-L"), Leave(0.4 * duration, client=1)),
        )
        run = session.timeline(n_frames=n_frames).client(2).run
        platform = run.effective_platform()
        sampler = platform.network.sampler(0)
        # Local t=0 is session t=0.4*duration: inside the 30 Mbps drop.
        drop_share = sampler.conditions_at(0.0).throughput_mbps
        assert drop_share < 30.0  # 30 Mbps x the client's downlink share
        # After the drop ends (session 0.7*duration = local 0.3*duration)
        # the link recovers.
        recovered = sampler.conditions_at(0.31 * duration).throughput_mbps
        assert recovered > drop_share
        assert trace.throughput_mbps[1] == 30.0

    def test_offset_profile_validates_and_shifts(self):
        profile = OffsetProfile(_drop_trace(90), 500.0)
        base = _drop_trace(90)
        assert profile.sampler(0).conditions_at(100.0) == base.sampler(
            0
        ).conditions_at(600.0)
        with pytest.raises(NetworkError):
            OffsetProfile(base, -1.0)


class TestSessionResult:
    def test_epoch_stats_cover_every_epoch(self):
        n_frames = 90
        duration = _duration(n_frames)
        session = _queue_session(
            n_frames,
            (Join(0.2 * duration, "Doom3-L"), Leave(0.4 * duration, client=1)),
        )
        result = simulate_session(session, n_frames=n_frames)
        stats = result.epoch_stats(0)  # the incumbent spans every epoch
        assert len(stats) == len(result.timeline.epochs)
        assert all(s is not None for s in stats)
        assert sum(s.frames for s in stats) <= n_frames
        # The joiner has no frames before its promotion epoch.
        joiner_stats = result.epoch_stats(2)
        assert joiner_stats[0] is None and joiner_stats[1] is None
        assert joiner_stats[2] is not None and joiner_stats[2].frames > 0

    def test_engine_caches_session_specs(self):
        n_frames = 60
        session = _queue_session(n_frames, (Leave(300.0, client=1),))
        engine = BatchEngine()
        first = simulate_session(session, n_frames=n_frames, engine=engine)
        second = simulate_session(session, n_frames=n_frames, engine=engine)
        assert engine.stats.executed == 2
        assert engine.stats.cache_hits == 2
        assert first.mean_fps == second.mean_fps
