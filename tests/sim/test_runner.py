"""Tests for the high-level experiment runner."""

import pytest

from repro.errors import ConfigurationError
from repro.network.conditions import EARLY_5G
from repro.sim.runner import BatchEngine, RunSpec, run, run_comparison, speedup_over
from repro.sim.systems import PlatformConfig
from repro.workloads.apps import get_app


class TestRunner:
    def test_run_comparison_by_name_and_object(self):
        by_name = run_comparison("Doom3-L", systems=("local",), n_frames=20)
        by_obj = run_comparison(get_app("Doom3-L"), systems=("local",), n_frames=20)
        assert by_name["local"].mean_latency_ms == by_obj["local"].mean_latency_ms

    def test_platform_propagates(self):
        fast_net = run_comparison(
            "HL2-L", systems=("qvr",), platform=PlatformConfig(network=EARLY_5G),
            n_frames=60,
        )
        default = run_comparison("HL2-L", systems=("qvr",), n_frames=60)
        assert (
            fast_net["qvr"].mean_transmitted_bytes
            != default["qvr"].mean_transmitted_bytes
        )

    def test_speedup_over_requires_both(self):
        results = run_comparison("Doom3-L", systems=("local",), n_frames=20)
        with pytest.raises(ConfigurationError):
            speedup_over(results, "qvr")

    def test_speedup_identity(self):
        results = run_comparison("Doom3-L", systems=("local",), n_frames=20)
        assert speedup_over(results, "local") == pytest.approx(1.0)

    def test_runspec_defaults(self):
        spec = RunSpec(system="qvr", app="GRID")
        assert spec.n_frames == 300
        assert spec.warmup_frames == 30

    def test_run_executes_spec(self):
        result = run(RunSpec(system="ffr", app="HL2-L", n_frames=25, warmup_frames=5))
        assert result.system == "ffr"
        assert result.app == "HL2-L"

    def test_unknown_system_rejected(self):
        with pytest.raises(ConfigurationError):
            RunSpec(system="warpdrive", app="GRID")

    def test_short_run_with_default_warmup_rejected(self):
        """warmup_frames >= n_frames would discard every steady frame."""
        with pytest.raises(ConfigurationError):
            RunSpec(system="qvr", app="GRID", n_frames=20)

    def test_run_comparison_short_run_uses_clamped_warmup(self):
        results = run_comparison("Doom3-L", systems=("local",), n_frames=20)
        assert results["local"].warmup_frames == 0
        assert len(results["local"].records) == 20

    def test_run_comparison_custom_engine(self):
        engine = BatchEngine()
        results = run_comparison(
            "Doom3-L", systems=("local", "qvr"), n_frames=40, engine=engine
        )
        assert set(results) == {"local", "qvr"}
        assert engine.stats.executed == 2

    def test_run_comparison_with_app_object_bypasses_registry(self):
        app = get_app("Doom3-L")
        results = run_comparison(app, systems=("local",), n_frames=20)
        assert results["local"].app == "Doom3-L"
