"""Tests for the rendering-server admission/scheduling subsystem."""

import pickle

import pytest

from repro.errors import ConfigurationError
from repro.network.conditions import LTE_4G, WIFI
from repro.network.profile import AllocatedProfile, ConstantProfile, TraceProfile
from repro.sim.multiuser import (
    ClientSpec,
    MultiUserScenario,
    simulate_shared_infrastructure,
)
from repro.sim.runner import BatchEngine, RunSpec, run_batch, spec_key
from repro.sim.server import (
    ClientDemand,
    DeadlinePolicy,
    FairSharePolicy,
    POLICY_NAMES,
    RenderServer,
    ShareSchedule,
    WeightedPolicy,
    policy_by_name,
)
from repro.sim.systems import PlatformConfig
from repro import constants


def _drop_trace(n_frames):
    frame_ms = constants.FRAME_BUDGET_MS
    return TraceProfile(
        base=WIFI,
        times_ms=(0.0, 0.3 * n_frames * frame_ms, 0.7 * n_frames * frame_ms),
        throughput_mbps=(200.0, 30.0, 200.0),
        label="test-drop",
    )


def _session(policy, n_frames=120, server=None):
    return MultiUserScenario.heterogeneous(
        (ClientSpec("GRID"), ClientSpec("Doom3-L")),
        platform=PlatformConfig(network=_drop_trace(n_frames)),
        policy=policy,
        server=server,
    )


class TestPolicyRegistry:
    def test_known_policies(self):
        assert POLICY_NAMES == ("fair-share", "weighted", "deadline")

    def test_by_name(self):
        assert isinstance(policy_by_name("deadline"), DeadlinePolicy)
        assert isinstance(policy_by_name("Fair-Share"), FairSharePolicy)

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            policy_by_name("lottery")
        with pytest.raises(ConfigurationError):
            MultiUserScenario.uniform("GRID", 2, policy="lottery")
        with pytest.raises(ConfigurationError):
            RunSpec(system="qvr", app="GRID", policy="lottery")


class TestShareSchedule:
    def test_step_lookup(self):
        schedule = ShareSchedule(((0.0, 0.5), (100.0, 0.9)))
        assert schedule.share_at(0.0) == 0.5
        assert schedule.share_at(99.9) == 0.5
        assert schedule.share_at(100.0) == 0.9
        assert schedule.share_at(1e9) == 0.9

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            ShareSchedule(())

    def test_malformed_schedules_rejected(self):
        with pytest.raises(ConfigurationError):  # must start at 0
            ShareSchedule(((10.0, 0.5),))
        with pytest.raises(ConfigurationError):  # starts must increase
            ShareSchedule(((0.0, 1.0), (500.0, 0.5), (250.0, 0.25)))
        with pytest.raises(ConfigurationError):  # shares must be > 0
            ShareSchedule(((0.0, 0.0),))

    def test_runspec_and_platform_validate_schedules_at_construction(self):
        bad = ((0.0, 1.0), (500.0, 0.5), (250.0, 0.25))
        with pytest.raises(ConfigurationError):
            RunSpec(system="qvr", app="GRID", policy="deadline",
                    server_allocation=bad)
        with pytest.raises(ConfigurationError):
            PlatformConfig(server_schedule=((0.0, -1.0),))


class TestFairShareBitCompatibility:
    """The acceptance bar: fair-share reproduces PR 2 exactly."""

    def test_default_scenario_specs_have_neutral_fields(self):
        specs = MultiUserScenario.uniform("GRID", 3).to_specs(n_frames=50)
        assert all(s.policy == "fair-share" for s in specs)
        assert all(s.server_allocation is None for s in specs)
        assert all(s.downlink_allocation is None for s in specs)

    def test_neutral_fields_do_not_change_cache_keys(self):
        """Keys with the new fields at neutral match the frozen PR 2 keys."""
        assert spec_key(RunSpec(system="qvr", app="GRID")) == (
            "85f0b5831502e52c523945418f1a48f7476244d2d564ef4b1231c3dd9ae47135"
        )
        assert spec_key(RunSpec(system="qvr", app="GRID", shared_clients=3)) == (
            "eb189f7d1ac2b0142e26bac6123871e4b55724ae03c97111e76efa8f43af49d9"
        )

    def test_uplink_neutral_value_keeps_conditions_keys(self):
        base = spec_key(RunSpec(system="qvr", app="GRID"))
        asymmetric = spec_key(
            RunSpec(
                system="qvr",
                app="GRID",
                platform=PlatformConfig(network=WIFI.with_uplink(20.0)),
            )
        )
        assert asymmetric != base

    def test_explicit_fair_share_matches_default(self):
        scenario = _session("fair-share")
        default = MultiUserScenario.heterogeneous(
            (ClientSpec("GRID"), ClientSpec("Doom3-L")),
            platform=PlatformConfig(network=_drop_trace(120)),
        )
        assert scenario.to_specs(n_frames=60) == default.to_specs(n_frames=60)

    def test_fair_share_results_bit_identical(self):
        explicit = simulate_shared_infrastructure(_session("fair-share"), n_frames=50)
        legacy = simulate_shared_infrastructure(
            MultiUserScenario.heterogeneous(
                (ClientSpec("GRID"), ClientSpec("Doom3-L")),
                platform=PlatformConfig(network=_drop_trace(120)),
            ),
            n_frames=50,
        )
        assert pickle.dumps(explicit.per_client) == pickle.dumps(legacy.per_client)


class TestCacheKeySeparation:
    def test_policies_separate_cache_keys(self):
        keys = {
            policy: tuple(
                spec_key(s) for s in _session(policy).to_specs(n_frames=50)
            )
            for policy in POLICY_NAMES
        }
        assert keys["fair-share"] != keys["weighted"]
        assert keys["fair-share"] != keys["deadline"]
        assert keys["weighted"] != keys["deadline"]

    def test_policy_tag_alone_separates_keys(self):
        base = RunSpec(system="qvr", app="GRID")
        tagged = RunSpec(system="qvr", app="GRID", policy="deadline")
        assert spec_key(base) != spec_key(tagged)

    def test_downlink_allocation_requires_server_allocation(self):
        with pytest.raises(ConfigurationError):
            RunSpec(
                system="qvr",
                app="GRID",
                downlink_allocation=((0.0, 0.5),),
            )

    def test_shared_downlink_spec_needs_both_schedules(self):
        """server_allocation alone on a shared link would silently skip
        the downlink division; only private links may omit the schedule."""
        with pytest.raises(ConfigurationError):
            RunSpec(
                system="qvr",
                app="GRID",
                shared_clients=4,
                server_allocation=((0.0, 0.25),),
            )
        private = RunSpec(
            system="qvr",
            app="GRID",
            shared_clients=4,
            shared_downlink=False,
            server_allocation=((0.0, 0.25),),
        )
        assert private.effective_platform().network == PlatformConfig().network


class TestAdmission:
    def _demands(self, n, weight=1.0):
        return tuple(
            ClientDemand.estimate("GRID", WIFI, seed=i, weight=weight)
            for i in range(n)
        )

    def test_within_capacity_all_admitted(self):
        server = RenderServer(capacity_clients=4.0)
        decisions = server.admit(self._demands(3))
        assert [d.action for d in decisions] == ["admit"] * 3
        assert all(d.service_level == 1.0 for d in decisions)

    def test_default_capacity_follows_gpu_count(self):
        assert RenderServer().capacity == 8.0

    def test_degrade_shrinks_everyone_proportionally(self):
        server = RenderServer(capacity_clients=2.0, overflow="degrade")
        decisions = server.admit(self._demands(4))
        assert [d.action for d in decisions] == ["degrade"] * 4
        assert all(d.service_level == pytest.approx(0.5) for d in decisions)

    def test_sub_client_capacity_degrades_a_lone_client(self):
        """capacity < 1 client-equivalent still serves, at reduced service."""
        server = RenderServer(capacity_clients=0.5, overflow="degrade")
        (decision,) = server.admit(self._demands(1))
        assert decision.action == "degrade"
        assert decision.service_level == pytest.approx(0.5)
        assert decision.serviced

    def test_sub_client_capacity_with_reject_turns_everyone_away(self):
        server = RenderServer(capacity_clients=0.5, overflow="reject")
        (decision,) = server.admit(self._demands(1))
        assert decision.action == "reject"
        assert not decision.serviced

    def test_reject_services_a_prefix(self):
        server = RenderServer(capacity_clients=2.0, overflow="reject")
        decisions = server.admit(self._demands(3))
        assert [d.action for d in decisions] == ["admit", "admit", "reject"]

    def test_queue_marks_the_excess(self):
        server = RenderServer(capacity_clients=1.0, overflow="queue")
        decisions = server.admit(self._demands(2))
        assert [d.action for d in decisions] == ["admit", "queue"]

    def test_rejected_clients_produce_no_specs_but_keep_verdicts(self):
        scenario = MultiUserScenario.uniform(
            "GRID",
            3,
            policy="weighted",
            server=RenderServer(capacity_clients=2.0, overflow="reject"),
        )
        plan = scenario.plan(n_frames=40)
        assert [d.action for d in plan.decisions] == ["admit", "admit", "reject"]
        assert len(plan.specs) == 2
        assert plan.serviced_indices == (0, 1)
        result = simulate_shared_infrastructure(scenario, n_frames=40)
        assert len(result.per_client) == 2
        assert result.decisions is not None
        # Only the serviced roster contends for the link/jitter model.
        assert all(spec.shared_clients == 2 for spec in plan.specs)

    def test_client_weights_consume_capacity(self):
        server = RenderServer(capacity_clients=2.0, overflow="reject")
        demands = (
            ClientDemand.estimate("GRID", WIFI, weight=1.5),
            ClientDemand.estimate("Doom3-L", WIFI, weight=1.0),
        )
        decisions = server.admit(demands)
        assert [d.action for d in decisions] == ["admit", "reject"]

    def test_bad_configuration_rejected(self):
        with pytest.raises(ConfigurationError):
            RenderServer(capacity_clients=0.0)
        with pytest.raises(ConfigurationError):
            RenderServer(overflow="drop-table")
        with pytest.raises(ConfigurationError):
            ClientSpec("GRID", weight=0.0)


class TestScheduling:
    def test_fair_share_allocation_matches_legacy_uniform_share(self):
        server = RenderServer()
        demands = tuple(
            ClientDemand.estimate("GRID", WIFI, seed=i) for i in range(2)
        )
        allocations = server.allocate(
            demands, "fair-share", horizon_ms=2000.0, sharing_efficiency=0.9
        )
        expected = 1.0 / (2 * 0.9)
        for allocation in allocations:
            assert allocation.server.segments == ((0.0, pytest.approx(expected)),)
            assert allocation.downlink.segments == ((0.0, pytest.approx(expected)),)

    def test_weighted_favours_the_better_provisioned_client(self):
        server = RenderServer()
        demands = (
            ClientDemand.estimate("GRID", WIFI),  # 200 Mbps
            ClientDemand.estimate("GRID", LTE_4G, seed=1),  # 100 Mbps
        )
        wifi, lte = server.allocate(demands, "weighted", horizon_ms=1000.0)
        assert wifi.downlink.share_at(0.0) > lte.downlink.share_at(0.0)

    def test_deadline_boosts_the_pressured_client_inside_the_drop(self):
        n_frames = 120
        scenario = _session("deadline", n_frames=n_frames)
        plan = scenario.plan(n_frames=n_frames)
        grid_spec = plan.specs[0]
        trace = _drop_trace(n_frames)
        in_drop = (trace.times_ms[1] + trace.times_ms[2]) / 2
        schedule = ShareSchedule(grid_spec.server_allocation)
        fair = 1.0 / (2 * 0.9)
        assert schedule.share_at(in_drop) > fair
        assert schedule.share_at(0.0) >= fair  # heavy client, mild pre-boost
        light = ShareSchedule(plan.specs[1].server_allocation)
        assert light.share_at(in_drop) < fair

    def test_allocation_service_level_scales_server_not_downlink(self):
        server = RenderServer()
        demands = (ClientDemand.estimate("GRID", WIFI),)
        (allocation,) = server.allocate(
            demands,
            "fair-share",
            horizon_ms=1000.0,
            sharing_efficiency=1.0,
            service_levels=(0.5,),
        )
        assert allocation.server.share_at(0.0) == pytest.approx(0.5)
        assert allocation.downlink.share_at(0.0) == pytest.approx(1.0)


class TestDeadlinePrediction:
    """The tentpole's testable prediction (issue acceptance criterion)."""

    def test_deadline_improves_drop_window_p99_fps_over_fair_share(self):
        from repro.analysis.experiments import admission_scheduling

        engine = BatchEngine()
        rows = admission_scheduling(
            n_frames=160, seed=0, policies=("fair-share", "deadline"), engine=engine
        )
        by = {(r.policy, r.app): r for r in rows}
        apps = ("GRID", "Doom3-L")
        fair_tail = min(by[("fair-share", app)].drop_p99_fps for app in apps)
        deadline_tail = min(by[("deadline", app)].drop_p99_fps for app in apps)
        # The session's worst per-client tail improves materially...
        assert deadline_tail > fair_tail * 1.2
        # ...and the pressured (heavy) client is the one being lifted.
        assert (
            by[("deadline", "GRID")].drop_p99_fps
            > by[("fair-share", "GRID")].drop_p99_fps
        )
        # ...while the session's mean FPS stays within noise.
        fair_mean = sum(by[("fair-share", app)].mean_fps for app in apps) / 2
        deadline_mean = sum(by[("deadline", app)].mean_fps for app in apps) / 2
        assert deadline_mean == pytest.approx(fair_mean, rel=0.10)


class TestDeterminism:
    def test_policy_runs_bit_identical_at_any_job_count(self):
        specs = _session("deadline").to_specs(n_frames=40)
        serial = run_batch(specs, jobs=1)
        parallel = run_batch(specs, jobs=2)
        for spec in specs:
            assert pickle.dumps(serial[spec]) == pickle.dumps(parallel[spec])

    def test_planning_is_deterministic_per_seed(self):
        first = _session("deadline").plan(n_frames=60, seed=9)
        second = _session("deadline").plan(n_frames=60, seed=9)
        assert first == second
        shifted = _session("deadline").plan(n_frames=60, seed=10)
        assert shifted.specs != first.specs

    def test_markov_profile_allocation_is_seed_stable(self):
        from repro.network.profile import PROFILES

        scenario = MultiUserScenario.heterogeneous(
            (ClientSpec("GRID"), ClientSpec("Doom3-L")),
            platform=PlatformConfig(network=PROFILES["wifi-markov"]),
            policy="weighted",
        )
        assert scenario.plan(n_frames=40, seed=2) == scenario.plan(
            n_frames=40, seed=2
        )


class TestAllocatedProfile:
    def test_shares_scale_the_base_profile(self):
        profile = AllocatedProfile(
            base=ConstantProfile(WIFI),
            segments=((0.0, 0.5), (500.0, 1.0)),
            n_clients=2,
        )
        sampler = profile.sampler(0)
        assert sampler.conditions_at(0.0).throughput_mbps == pytest.approx(100.0)
        assert sampler.conditions_at(600.0).throughput_mbps == pytest.approx(200.0)

    def test_shared_is_identity(self):
        profile = AllocatedProfile(
            base=ConstantProfile(WIFI), segments=((0.0, 0.5),)
        )
        assert profile.shared(4, 0.9) is profile

    def test_uplink_scales_with_the_share(self):
        profile = AllocatedProfile(
            base=ConstantProfile(WIFI.with_uplink(40.0)),
            segments=((0.0, 0.5),),
            n_clients=2,
        )
        assert profile.sampler(0).conditions_at(0.0).uplink_mbps == pytest.approx(
            20.0
        )


class TestSweepPolicyAxis:
    def test_policies_axis_multiplies_the_grid(self):
        from repro.sim.runner import Sweep

        sweep = Sweep(
            systems=("qvr",),
            apps=("GRID",),
            seeds=(0, 1),
            n_frames=40,
            policies=("fair-share", "deadline"),
        )
        specs = sweep.specs()
        assert len(sweep) == len(specs) == 4
        assert {s.policy for s in specs} == {"fair-share", "deadline"}
        # Distinct cache keys per policy even on a uniform roster.
        assert len({spec_key(s) for s in specs}) == 4

    def test_empty_policies_axis_rejected(self):
        from repro.sim.runner import Sweep

        with pytest.raises(ConfigurationError):
            Sweep(systems=("qvr",), apps=("GRID",), policies=())

    def test_default_axis_is_fair_share(self):
        from repro.sim.runner import Sweep

        sweep = Sweep(systems=("qvr",), apps=("GRID",), n_frames=40)
        assert sweep.resolved_policies() == ("fair-share",)
        assert all(s.policy == "fair-share" for s in sweep.specs())


class TestWeightedPolicyUnits:
    def test_weight_tracks_bandwidth(self):
        policy = WeightedPolicy()
        demand = ClientDemand.estimate("GRID", WIFI)
        assert policy.weight_at(demand, WIFI, 0.0) == pytest.approx(200.0)
        assert policy.weight_at(demand, LTE_4G, 0.0) == pytest.approx(100.0)
